"""Property tests: delta-driven re-cleaning ≡ from-scratch cleaning.

The contract of :meth:`CleaningSession.apply` (ISSUE 2 acceptance
semantics): after ``clean()`` and any sequence of changesets, the working
relation must be in the state a full pipeline run over the edited base
relation would produce, with the same satisfaction verdict — across all
three phases and for partial pipelines.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.constraints import CFD, MD
from repro.core import UniClean, UniCleanConfig
from repro.pipeline import Changeset, CleaningSession
from repro.relational import NULL, Relation, Schema

SCHEMA = Schema("R", ["K", "A", "B"])
MASTER_SCHEMA = Schema("Rm", ["K", "B"])

CFDS = [
    CFD(SCHEMA, ["K"], ["A"], name="fd_ka"),
    CFD(SCHEMA, ["A"], ["B"], name="fd_ab"),
    CFD(SCHEMA, ["K"], ["B"], {"K": "k1", "B": "b1"}, name="const_kb"),
]
MDS = [MD(SCHEMA, MASTER_SCHEMA, [("K", "K")], [("B", "B")], name="md_kb")]

keys = st.sampled_from(["k1", "k2", "k3"])
values = st.sampled_from(["a1", "a2", "b1", "b2"])
confs = st.sampled_from([0.0, 0.5, 1.0])
rows = st.lists(
    st.tuples(keys, values, values, confs, confs, confs), min_size=2, max_size=10
)

#: One changeset op in compact form; tids are taken modulo the live count.
ops = st.lists(
    st.one_of(
        st.tuples(
            st.just("edit"),
            st.integers(min_value=0, max_value=9),
            st.sampled_from(["K", "A", "B"]),
            st.sampled_from(["k1", "k2", "a1", "b1", "b2", NULL]),
            st.sampled_from([None, 0.0, 1.0]),  # None = keep confidence
        ),
        st.tuples(st.just("insert"), keys, values, values, confs),
        st.tuples(st.just("delete"), st.integers(min_value=0, max_value=9)),
    ),
    min_size=1,
    max_size=6,
)

CONFIGS = [
    UniCleanConfig(eta=0.8),
    UniCleanConfig(eta=0.8, run_erepair=False, run_hrepair=False),  # cRepair only
    UniCleanConfig(eta=0.8, run_hrepair=False),  # cRepair + eRepair
]


def build_relation(data) -> Relation:
    relation = Relation(SCHEMA)
    for k, a, b, ck, ca, cb in data:
        relation.add_row({"K": k, "A": a, "B": b}, {"K": ck, "A": ca, "B": cb})
    return relation


def build_master() -> Relation:
    return Relation.from_dicts(
        MASTER_SCHEMA, [{"K": "k1", "B": "b1"}, {"K": "k2", "B": "b2"}]
    )


def build_changeset(relation: Relation, compact) -> Changeset:
    changeset = Changeset()
    live = list(relation.tids())
    deleted = set()
    for op in compact:
        if op[0] == "edit":
            _tag, raw, attr, value, conf = op
            candidates = [t for t in live if t not in deleted]
            if not candidates:
                continue
            tid = candidates[raw % len(candidates)]
            if conf is None:
                changeset.edit(tid, attr, value)
            else:
                changeset.edit(tid, attr, value, conf=conf)
        elif op[0] == "insert":
            _tag, k, a, b = op[0], op[1], op[2], op[3]
            changeset.insert({"K": k, "A": a, "B": b}, {"K": op[4]})
        else:
            candidates = [t for t in live if t not in deleted]
            if not candidates:
                continue
            tid = candidates[op[1] % len(candidates)]
            deleted.add(tid)
            changeset.delete(tid)
    return changeset


def state(relation: Relation):
    return {t.tid: {a: t[a] for a in relation.schema.names} for t in relation}


def check_apply_equivalence(data, compact_batches, config, with_mds: bool):
    master = build_master() if with_mds else None
    mds = MDS if with_mds else ()
    session = CleaningSession(cfds=CFDS, mds=mds, master=master, config=config)
    session.clean(build_relation(data))
    for compact in compact_batches:
        changeset = build_changeset(session.base, compact)
        out = session.apply(changeset)
        reference = UniClean(cfds=CFDS, mds=mds, master=master, config=config).clean(
            session.base
        )
        assert state(out.repaired) == state(reference.repaired)
        assert out.clean == reference.clean
        # The merged log reproduces the same final cell marks.
        assert {
            cell: fix.kind for cell, fix in out.fix_log._latest.items()
        } == {cell: fix.kind for cell, fix in reference.fix_log._latest.items()}


class TestApplyEquivalence:
    @given(rows, ops)
    @settings(max_examples=60, deadline=None)
    def test_single_batch_full_pipeline(self, data, compact):
        check_apply_equivalence(data, [compact], CONFIGS[0], with_mds=True)

    @given(rows, ops)
    @settings(max_examples=40, deadline=None)
    def test_single_batch_crepair_only(self, data, compact):
        check_apply_equivalence(data, [compact], CONFIGS[1], with_mds=True)

    @given(rows, ops)
    @settings(max_examples=40, deadline=None)
    def test_single_batch_crepair_erepair(self, data, compact):
        check_apply_equivalence(data, [compact], CONFIGS[2], with_mds=True)

    @given(rows, ops)
    @settings(max_examples=40, deadline=None)
    def test_single_batch_cfds_only(self, data, compact):
        check_apply_equivalence(data, [compact], CONFIGS[0], with_mds=False)

    @given(rows, ops, ops)
    @settings(max_examples=40, deadline=None)
    def test_two_batches_compound(self, data, first, second):
        check_apply_equivalence(data, [first, second], CONFIGS[0], with_mds=True)

    @given(rows, ops)
    @settings(max_examples=30, deadline=None)
    def test_working_relation_stays_satisfying(self, data, compact):
        session = CleaningSession(
            cfds=CFDS, mds=MDS, master=build_master(), config=CONFIGS[0]
        )
        session.clean(build_relation(data))
        session.apply(build_changeset(session.base, compact))
        assert session.is_clean() == UniClean(
            cfds=CFDS, mds=MDS, master=build_master(), config=CONFIGS[0]
        ).clean(session.base).clean


#: Rules whose premise attribute (K) is never a repair target: edits to
#: the A/B columns have a *safe* closure, so they exercise the scoped
#: replay rather than the warm full-replay fallback.
SAFE_CFDS = [
    CFD(SCHEMA, ["K"], ["A"], name="s_fd_ka"),
    CFD(SCHEMA, ["K"], ["B"], name="s_fd_kb"),
    CFD(SCHEMA, ["K"], ["B"], {"K": "k1", "B": "b1"}, name="s_const_kb"),
]

safe_ops = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=9),
        st.sampled_from(["A", "B"]),  # never the group key
        st.sampled_from(["a1", "a2", "b1", "b2", NULL]),
        st.sampled_from([None, 0.0, 1.0]),
    ),
    min_size=1,
    max_size=6,
)


class TestScopedReplay:
    """The scoped (delta-proportional) path, hammered in isolation."""

    @given(rows, safe_ops)
    @settings(max_examples=60, deadline=None)
    def test_scoped_path_matches_scratch(self, data, compact):
        session = CleaningSession(
            cfds=SAFE_CFDS, mds=MDS, master=build_master(), config=CONFIGS[0]
        )
        session.clean(build_relation(data))
        live = list(session.base.tids())
        changeset = Changeset()
        for raw, attr, value, conf in compact:
            tid = live[raw % len(live)]
            if conf is None:
                changeset.edit(tid, attr, value)
            else:
                changeset.edit(tid, attr, value, conf=conf)
        out = session.apply(changeset)
        reference = UniClean(
            cfds=SAFE_CFDS, mds=MDS, master=build_master(), config=CONFIGS[0]
        ).clean(session.base)
        assert state(out.repaired) == state(reference.repaired)
        assert out.clean == reference.clean
        assert {
            cell: fix.kind for cell, fix in out.fix_log._latest.items()
        } == {cell: fix.kind for cell, fix in reference.fix_log._latest.items()}

    @given(rows, safe_ops, safe_ops)
    @settings(max_examples=40, deadline=None)
    def test_scoped_batches_compose(self, data, first, second):
        session = CleaningSession(
            cfds=SAFE_CFDS, mds=MDS, master=build_master(), config=CONFIGS[0]
        )
        session.clean(build_relation(data))
        for compact in (first, second):
            live = list(session.base.tids())
            changeset = Changeset()
            for raw, attr, value, conf in compact:
                tid = live[raw % len(live)]
                if conf is None:
                    changeset.edit(tid, attr, value)
                else:
                    changeset.edit(tid, attr, value, conf=conf)
            out = session.apply(changeset)
            reference = UniClean(
                cfds=SAFE_CFDS, mds=MDS, master=build_master(), config=CONFIGS[0]
            ).clean(session.base)
            assert state(out.repaired) == state(reference.repaired)
            assert out.clean == reference.clean
