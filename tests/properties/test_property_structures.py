"""Property-based tests for AVL, suffix tree and the entropy index."""

from collections import Counter

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.constraints import CFD
from repro.indexing import AVLTree, EntropyIndex, GeneralizedSuffixTree, entropy_of_counts
from repro.relational import Relation, Schema
from repro.similarity import longest_common_substring_length


class TestAVLProperties:
    @given(st.lists(st.integers(), unique=True, max_size=80))
    def test_inorder_equals_sorted(self, keys):
        tree = AVLTree()
        for k in keys:
            tree.insert(k, k)
        assert list(tree.keys()) == sorted(keys)
        tree.check_invariants()

    @given(
        st.lists(st.integers(min_value=0, max_value=50), max_size=120),
        st.random_module(),
    )
    def test_mixed_workload_matches_model(self, ops, _rng):
        tree = AVLTree()
        model = {}
        for k in ops:
            if k in model:
                tree.delete(k)
                del model[k]
            else:
                tree.insert(k, str(k))
                model[k] = str(k)
        assert dict(tree.items()) == model
        tree.check_invariants()

    @given(st.lists(st.integers(), unique=True, min_size=1, max_size=60))
    def test_min_max(self, keys):
        tree = AVLTree()
        for k in keys:
            tree.insert(k, None)
        assert tree.min()[0] == min(keys)
        assert tree.max()[0] == max(keys)


words = st.lists(
    st.text(alphabet="abc", min_size=1, max_size=8), min_size=1, max_size=12
)


class TestSuffixTreeProperties:
    @given(words, st.text(alphabet="abc", max_size=8))
    @settings(max_examples=80)
    def test_membership_matches_python_in(self, strings, probe):
        tree = GeneralizedSuffixTree()
        for i, s in enumerate(strings):
            tree.add_string(i, s)
        expected = {i for i, s in enumerate(strings) if probe in s}
        assert tree.strings_with_substring(probe) == expected

    @given(words, st.text(alphabet="abc", min_size=1, max_size=8))
    @settings(max_examples=80)
    def test_top_l_reports_true_lcs_lengths(self, strings, query):
        tree = GeneralizedSuffixTree()
        for i, s in enumerate(strings):
            tree.add_string(i, s)
        for sid, length in tree.top_l_lcs(query, len(strings)):
            assert length == longest_common_substring_length(query, strings[sid])

    @given(words, st.text(alphabet="abc", min_size=1, max_size=8))
    @settings(max_examples=60)
    def test_top_l_dominates_unreported(self, strings, query):
        tree = GeneralizedSuffixTree()
        for i, s in enumerate(strings):
            tree.add_string(i, s)
        got = dict(tree.top_l_lcs(query, len(strings)))
        floor = min(got.values()) if got else 0
        for i, s in enumerate(strings):
            if i not in got:
                assert longest_common_substring_length(query, s) <= floor


class TestEntropyProperties:
    @given(st.dictionaries(st.text(max_size=3), st.integers(min_value=1, max_value=20),
                           max_size=8))
    def test_entropy_in_unit_interval(self, counts):
        h = entropy_of_counts(Counter(counts))
        assert 0.0 <= h <= 1.0 + 1e-12

    @given(st.integers(min_value=1, max_value=30))
    def test_single_value_zero(self, count):
        assert entropy_of_counts(Counter({"v": count})) == 0.0

    @given(st.integers(min_value=2, max_value=8), st.integers(min_value=1, max_value=9))
    def test_uniform_is_one(self, k, count):
        counts = Counter({f"v{i}": count for i in range(k)})
        assert entropy_of_counts(counts) == 1.0 or abs(entropy_of_counts(counts) - 1.0) < 1e-9


rows = st.lists(
    st.tuples(
        st.sampled_from(["g1", "g2", "g3"]),
        st.sampled_from(["x", "y", "z"]),
    ),
    min_size=1,
    max_size=25,
)
edits = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=24),
        st.sampled_from(["K", "V"]),
        st.sampled_from(["g1", "g2", "g3", "x", "y", "z"]),
    ),
    max_size=15,
)


class TestEntropyIndexMaintenance:
    @given(rows, edits)
    @settings(max_examples=60)
    def test_incremental_equals_rebuild(self, data, updates):
        """Applying arbitrary cell updates through the index leaves it
        identical to a rebuild from scratch — the core maintenance
        invariant of the 2-in-1 structure (Section 6.3)."""
        schema = Schema("R", ["K", "V"])
        relation = Relation.from_dicts(
            schema, [{"K": g, "V": v} for g, v in data]
        )
        index = EntropyIndex(CFD(schema, ["K"], ["V"]), relation)
        for tid, attr, value in updates:
            if tid >= len(relation):
                continue
            t = relation.by_tid(tid)
            index.update_cell(t, attr, value)
            t[attr] = value
        index.check_consistency(relation)
