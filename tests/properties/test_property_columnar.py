"""Property tests: the columnar backend + vectorized check engine is
byte-identical to the dict backend + per-tuple reference engine.

Three families:

1. **Engine equivalence** — full cleans of the HOSP and PART testbeds
   under every backend×engine configuration must produce identical fix
   logs (every field), per-cell cost totals, satisfaction verdicts,
   repaired states and phase scheduling traces.
2. **Fuzzed mutation interleavings** — arbitrary sequences of
   ``set_value`` / insert / delete / ``remove`` applied to a columnar
   relation and a dict-backed twin keep the two byte-identical, keep the
   columns coherent with the tuple views (group stores attached to the
   columnar relation pass ``check_consistency``), and keep retired tids
   dead.
3. **Zero-materialization regression** — the vectorized bulk builds and
   the blocking-scan check loop never materialize a per-tuple ``_values``
   / ``_conf`` dict (the counter in :mod:`repro.relational.columns`).
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.consistency import relation_is_clean, relation_violations
from repro.constraints import CFD, MD
from repro.core import UniCleanConfig
from repro.evaluation import generate
from repro.indexing.group_store import GroupStoreRegistry
from repro.indexing.violation_index import ViolationIndex
from repro.pipeline import CleaningSession
from repro.relational import NULL, Relation, Schema
from repro.relational import columns
from repro.relational.columns import using_backend, using_engine

#: backend (columnar?) × check engine; the last entry is the seed-era
#: configuration every other one must reproduce byte for byte.
CONFIGS = [
    ("columnar+vectorized", True, "vectorized"),
    ("columnar+reference", True, "reference"),
    ("dict+reference", False, "reference"),
]


def _fingerprint(log):
    return [
        (f.kind.value, f.rule_name, f.tid, f.attr, repr(f.old_value),
         repr(f.new_value), repr(f.source))
        for f in log
    ]


def _full_state(relation):
    names = relation.schema.names
    return {
        t.tid: tuple((repr(t[a]), t.conf(a)) for a in names) for t in relation
    }


# ----------------------------------------------------------------------
# 1. Engine equivalence on the generated testbeds
# ----------------------------------------------------------------------
def _clean_observables(dataset: str, columnar: bool, engine: str, **params):
    """One full traced clean under the given backend×engine; everything
    observable, with no wall-clock anywhere."""
    with using_backend(columnar), using_engine(engine):
        ds = generate(dataset, **params)
        session = CleaningSession(
            cfds=ds.cfds, mds=ds.mds, master=ds.master,
            config=UniCleanConfig(eta=1.0), collect_traces=True,
        )
        result = session.clean(ds.dirty)
        return {
            "fix_log": _fingerprint(result.fix_log),
            "cost": result.cost,
            "clean": result.clean,
            "state": _full_state(result.repaired),
            "traces": dict(session.last_traces),
        }


@pytest.mark.parametrize("seed", [3, 7])
def test_hosp_clean_identical_across_engines(seed):
    results = {
        name: _clean_observables(
            "hosp", columnar, engine,
            size=150, master_size=75, noise_rate=0.08, seed=seed,
        )
        for name, columnar, engine in CONFIGS
    }
    reference = results["dict+reference"]
    assert reference["fix_log"]  # the workload must actually repair
    for name, observed in results.items():
        assert observed == reference, f"{name} diverged from the reference"


@pytest.mark.parametrize("seed", [11, 23])
def test_part_clean_identical_across_engines(seed):
    results = {
        name: _clean_observables(
            "partitioned", columnar, engine,
            size=600, n_blocks=8, noise_rate=0.05, seed=seed,
        )
        for name, columnar, engine in CONFIGS
    }
    reference = results["dict+reference"]
    assert reference["fix_log"]
    for name, observed in results.items():
        assert observed == reference, f"{name} diverged from the reference"


def test_violation_scan_identical_across_engines():
    """`relation_violations` itself (both null semantics) byte-matches."""
    with using_backend(True):
        ds = generate("hosp", size=200, master_size=100, noise_rate=0.1, seed=5)
    for semantics in ("tolerant", "strict"):
        with using_engine("vectorized"):
            fast = relation_violations(ds.dirty, ds.cfds, null_semantics=semantics)
        with using_engine("reference"):
            slow = relation_violations(ds.dirty, ds.cfds, null_semantics=semantics)
        assert [
            (v.constraint.name, v.tids, v.attr) for v in fast
        ] == [(v.constraint.name, v.tids, v.attr) for v in slow]
    with using_engine("vectorized"):
        fast_clean = relation_is_clean(ds.dirty, ds.cfds, ds.mds, ds.master)
    with using_engine("reference"):
        slow_clean = relation_is_clean(ds.dirty, ds.cfds, ds.mds, ds.master)
    assert fast_clean == slow_clean


# ----------------------------------------------------------------------
# 2. Fuzzed mutation interleavings
# ----------------------------------------------------------------------
SCHEMA = Schema("R", ["K", "A", "B"])
MASTER_SCHEMA = Schema("Rm", ["K", "B"])
CFDS = [
    CFD(SCHEMA, ["K"], ["A"], name="fd_ka"),
    CFD(SCHEMA, ["K"], ["B"], {"K": "k1", "B": "b1"}, name="const_kb"),
]
MDS = [MD(SCHEMA, MASTER_SCHEMA, [("K", "K")], [("B", "B")], name="md_kb")]

keys = st.sampled_from(["k1", "k2", "k3"])
values = st.sampled_from(["a1", "a2", "b1", "b2", 0, 0.0, False, NULL])
rows = st.lists(st.tuples(keys, values, values), min_size=1, max_size=8)
ops = st.lists(
    st.one_of(
        st.tuples(
            st.just("set"),
            st.integers(min_value=0, max_value=99),
            st.sampled_from(["K", "A", "B"]),
            values,
        ),
        st.tuples(
            st.just("conf"),
            st.integers(min_value=0, max_value=99),
            st.sampled_from(["K", "A", "B"]),
            st.sampled_from([None, 0.0, 0.5, 1.0]),
        ),
        st.tuples(st.just("insert"), keys, values, values),
        st.tuples(st.just("delete"), st.integers(min_value=0, max_value=99)),
    ),
    min_size=1,
    max_size=12,
)


def _build(data, columnar: bool) -> Relation:
    with using_backend(columnar):
        relation = Relation(SCHEMA)
    for k, a, b in data:
        relation.add_row({"K": k, "A": a, "B": b}, {"K": 0.5})
    return relation


def _apply_ops(relation: Relation, compact) -> None:
    for op in compact:
        live = list(relation.tids())
        if op[0] == "set":
            if not live:
                continue
            _tag, raw, attr, value = op
            t = relation.by_tid(live[raw % len(live)])
            relation.set_value(t, attr, value)
        elif op[0] == "conf":
            if not live:
                continue
            _tag, raw, attr, conf = op
            relation.by_tid(live[raw % len(live)]).set_conf(attr, conf)
        elif op[0] == "insert":
            _tag, k, a, b = op
            relation.add_row({"K": k, "A": a, "B": b})
        else:
            if not live:
                continue
            relation.remove(live[op[1] % len(live)])


class TestFuzzedInterleavings:
    @given(rows, ops)
    @settings(max_examples=80, deadline=None)
    def test_columnar_tracks_dict_twin(self, data, compact):
        columnar = _build(data, columnar=True)
        flat = _build(data, columnar=False)
        registry = GroupStoreRegistry(columnar)
        for cfd in CFDS:
            registry.cfd_store(cfd)
        for md in MDS:
            registry.md_store(md)
        _apply_ops(columnar, compact)
        _apply_ops(flat, compact)

        assert columnar.tids() == flat.tids()
        assert _full_state(columnar) == _full_state(flat)
        assert columnar._retired == flat._retired
        assert columnar._next_tid == flat._next_tid

        # Attached group stores stayed coherent with the column mutations.
        registry.check_consistency()

        # Retired tids stay dead — in the tuple map and in the store.
        store = columnar.column_store
        for tid in columnar._retired:
            assert not columnar.has_tid(tid)
            assert columnar.tid_retired(tid)
            assert store.dead.get(store.row_of[tid])
            assert store.row_tids[store.row_of[tid]] == -1 - tid
        assert store.live_rows() >= len(columnar)

        # Bulk accessors agree with the per-tuple view after mutation.
        table = store.table
        for attr in SCHEMA.names:
            assert [
                table.values[r] for r in columnar.column(attr)
            ] == [t[attr] for t in flat]
        assert columnar.project(SCHEMA.names) == flat.project(SCHEMA.names)
        grouped = {
            key: [t.tid for t in members]
            for key, members in columnar.group_by(["K"]).items()
        }
        flat_grouped = {
            key: [t.tid for t in members]
            for key, members in flat.group_by(["K"]).items()
        }
        assert grouped == flat_grouped

    @given(rows, ops)
    @settings(max_examples=40, deadline=None)
    def test_violations_identical_after_interleaving(self, data, compact):
        columnar = _build(data, columnar=True)
        flat = _build(data, columnar=False)
        _apply_ops(columnar, compact)
        _apply_ops(flat, compact)
        with using_engine("vectorized"):
            fast = relation_violations(columnar, CFDS)
        with using_engine("reference"):
            slow = relation_violations(flat, CFDS)
        assert [
            (v.constraint.name, v.tids, v.attr) for v in fast
        ] == [(v.constraint.name, v.tids, v.attr) for v in slow]


# ----------------------------------------------------------------------
# 3. Zero per-tuple dict materializations on the hot loop
# ----------------------------------------------------------------------
def test_blocking_scan_hot_loop_materializes_no_dicts():
    """Bulk group-store builds, the violation-index build and the
    vectorized check scan must never touch ``_values``/``_conf`` — the
    regression guard for the blocking-scan hot loop (CI job
    ``columnar-equivalence-smoke``)."""
    with using_backend(True):
        ds = generate("hosp", size=120, master_size=60, noise_rate=0.1, seed=9)
    relation = ds.dirty
    assert relation.column_store is not None
    from repro.constraints.rules import derive_rules

    rules = derive_rules(ds.cfds, ds.mds)
    with using_engine("vectorized"):
        before = columns.materializations()
        registry = GroupStoreRegistry(relation, attach=False)
        registry.ensure_rules(rules)
        index = ViolationIndex(relation, derive_rules(ds.cfds), attach=False)
        relation_violations(relation, ds.cfds, violation_index=index)
        relation_violations(relation, ds.cfds, null_semantics="strict")
        assert columns.materializations() == before, (
            "the vectorized hot loop materialized per-tuple dicts"
        )
