"""Property-based tests for the similarity metrics."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.similarity import (
    edit_distance,
    edit_similarity,
    jaro_similarity,
    jaro_winkler_similarity,
    lcs_similarity,
    longest_common_substring,
    longest_common_substring_length,
    passes_lcs_filter,
    qgram_similarity,
    within_edit_distance,
)

short_text = st.text(alphabet="abcdef", max_size=16)
any_text = st.text(max_size=24)


class TestEditDistanceProperties:
    @given(any_text, any_text)
    def test_symmetry(self, a, b):
        assert edit_distance(a, b) == edit_distance(b, a)

    @given(any_text)
    def test_identity(self, a):
        assert edit_distance(a, a) == 0

    @given(any_text, any_text)
    def test_length_difference_lower_bound(self, a, b):
        assert edit_distance(a, b) >= abs(len(a) - len(b))

    @given(any_text, any_text)
    def test_upper_bound(self, a, b):
        assert edit_distance(a, b) <= max(len(a), len(b))

    @given(short_text, short_text, short_text)
    @settings(max_examples=60)
    def test_triangle_inequality(self, a, b, c):
        assert edit_distance(a, c) <= edit_distance(a, b) + edit_distance(b, c)

    @given(any_text, any_text, st.integers(min_value=0, max_value=8))
    def test_banded_agrees_with_exact(self, a, b, k):
        exact = edit_distance(a, b)
        assert within_edit_distance(a, b, k) == (exact <= k)

    @given(any_text, any_text)
    def test_similarity_in_unit_interval(self, a, b):
        assert 0.0 <= edit_similarity(a, b) <= 1.0


class TestJaroProperties:
    @given(any_text, any_text)
    def test_bounds(self, a, b):
        assert 0.0 <= jaro_similarity(a, b) <= 1.0

    @given(any_text, any_text)
    def test_symmetry(self, a, b):
        assert jaro_similarity(a, b) == jaro_similarity(b, a)

    @given(any_text)
    def test_identity(self, a):
        assert jaro_similarity(a, a) == 1.0

    @given(any_text, any_text)
    def test_winkler_dominates_jaro(self, a, b):
        assert jaro_winkler_similarity(a, b) >= jaro_similarity(a, b) - 1e-12

    @given(any_text, any_text)
    def test_winkler_bounds(self, a, b):
        assert 0.0 <= jaro_winkler_similarity(a, b) <= 1.0


class TestQgramProperties:
    @given(any_text, any_text)
    def test_bounds(self, a, b):
        assert 0.0 <= qgram_similarity(a, b) <= 1.0

    @given(any_text)
    def test_identity(self, a):
        assert qgram_similarity(a, a) == 1.0

    @given(any_text, any_text)
    def test_symmetry(self, a, b):
        assert qgram_similarity(a, b) == qgram_similarity(b, a)


class TestLCSProperties:
    @given(short_text, short_text)
    def test_lcs_string_is_common_substring(self, a, b):
        sub = longest_common_substring(a, b)
        assert sub in a and sub in b
        assert len(sub) == longest_common_substring_length(a, b)

    @given(short_text, short_text)
    def test_lcs_bounded_by_shorter(self, a, b):
        assert longest_common_substring_length(a, b) <= min(len(a), len(b))

    @given(short_text, short_text)
    def test_symmetry(self, a, b):
        assert longest_common_substring_length(a, b) == \
            longest_common_substring_length(b, a)

    @given(short_text, short_text)
    def test_similarity_bounds(self, a, b):
        assert 0.0 <= lcs_similarity(a, b) <= 1.0

    @given(short_text, short_text, st.integers(min_value=0, max_value=6))
    @settings(max_examples=120)
    def test_blocking_filter_is_sound(self, a, b, k):
        """Section 5.2: the LCS filter never drops a true match — whenever
        edit_distance(a, b) <= k, the pair passes the filter."""
        if edit_distance(a, b) <= k:
            assert passes_lcs_filter(a, b, k)
