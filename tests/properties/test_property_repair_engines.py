"""Property tests: the vectorized repair engine is byte-identical to
the per-tuple reference repair path.

``REPRO_REPAIR_ENGINE`` selects how cRepair seeds its worklist and
resolves constant-CFD targets, how eRepair scores and applies majority
candidates, and how hRepair builds its equivalence classes — ref-column
kernels versus the seed-era per-tuple loops.  The standing invariant is
that the choice is *unobservable*: ordered fix logs (every field),
per-cell cost maps, phase scheduling traces, repaired states and clean
verdicts must match byte for byte under every
``REPRO_COLUMNAR`` × ``REPRO_REPAIR_ENGINE`` configuration.

Three families:

1. **Testbed equivalence** — full cleans of the HOSP and PART testbeds
   under all four backend×repair-engine configurations.
2. **Fuzzed mutation interleavings** — arbitrary edit / insert / remove
   sequences applied before cleaning; the whole repair trajectory must
   stay identical across configurations.
3. **Flag mechanics** — the engine switch validates its input, restores
   on exit, and degrades to the reference path for dict-backed
   relations.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.constraints import CFD, MD
from repro.core import UniCleanConfig
from repro.evaluation import generate
from repro.pipeline import CleaningSession
from repro.relational import NULL, Relation, Schema
from repro.relational.columns import (
    repair_engine,
    repair_vectorized_for,
    set_repair_engine,
    using_backend,
    using_repair_engine,
)

#: backend (columnar?) × repair engine; the last entry is the seed-era
#: configuration every other one must reproduce byte for byte.  The
#: dict+vectorized row checks the graceful degrade: without a column
#: store the flag is inert and the reference path runs.
CONFIGS = [
    ("columnar+vectorized", True, "vectorized"),
    ("columnar+reference", True, "reference"),
    ("dict+vectorized", False, "vectorized"),
    ("dict+reference", False, "reference"),
]


def _fingerprint(log):
    return [
        (f.kind.value, f.rule_name, f.tid, f.attr, repr(f.old_value),
         repr(f.new_value), repr(f.old_conf), repr(f.new_conf),
         repr(f.source))
        for f in log
    ]


def _full_state(relation):
    names = relation.schema.names
    return {
        t.tid: tuple((repr(t[a]), t.conf(a)) for a in names) for t in relation
    }


def _observables(session, result):
    return {
        "fix_log": _fingerprint(result.fix_log),
        "cost": result.cost,
        "cell_costs": dict(session._cell_costs),
        "clean": result.clean,
        "state": _full_state(result.repaired),
        "traces": dict(session.last_traces),
    }


def _assert_all_match(results, reference_name):
    reference = results[reference_name]
    for name, observed in results.items():
        for key in reference:
            assert observed[key] == reference[key], (
                f"{name} diverged from {reference_name} on {key}"
            )


# ----------------------------------------------------------------------
# 1. Testbed equivalence
# ----------------------------------------------------------------------
def _clean_observables(dataset, columnar, engine, **params):
    with using_backend(columnar), using_repair_engine(engine):
        ds = generate(dataset, **params)
        session = CleaningSession(
            cfds=ds.cfds, mds=ds.mds, master=ds.master,
            config=UniCleanConfig(eta=1.0), collect_traces=True,
        )
        result = session.clean(ds.dirty)
        return _observables(session, result)


@pytest.mark.parametrize("seed", [3, 7])
def test_hosp_repair_identical_across_engines(seed):
    results = {
        name: _clean_observables(
            "hosp", columnar, engine,
            size=150, master_size=75, noise_rate=0.08, seed=seed,
        )
        for name, columnar, engine in CONFIGS
    }
    assert results["dict+reference"]["fix_log"]  # workload must repair
    _assert_all_match(results, "dict+reference")


@pytest.mark.parametrize("seed", [11, 23])
def test_part_repair_identical_across_engines(seed):
    results = {
        name: _clean_observables(
            "partitioned", columnar, engine,
            size=600, n_blocks=8, noise_rate=0.05, seed=seed,
        )
        for name, columnar, engine in CONFIGS
    }
    assert results["dict+reference"]["fix_log"]
    _assert_all_match(results, "dict+reference")


# ----------------------------------------------------------------------
# 2. Fuzzed mutation interleavings
# ----------------------------------------------------------------------
SCHEMA = Schema("R", ["K", "A", "B"])
MASTER_SCHEMA = Schema("Rm", ["K", "B"])
CFDS = [
    CFD(SCHEMA, ["K"], ["A"], name="fd_ka"),
    CFD(SCHEMA, ["K"], ["B"], {"K": "k1", "B": "b1"}, name="const_kb"),
]
MDS = [MD(SCHEMA, MASTER_SCHEMA, [("K", "K")], [("B", "B")], name="md_kb")]
MASTER_ROWS = [{"K": "k1", "B": "b1"}, {"K": "k2", "B": "b2"}]

keys = st.sampled_from(["k1", "k2", "k3"])
values = st.sampled_from(["a1", "a2", "b1", "b2", 0, 0.0, False, NULL])
rows = st.lists(st.tuples(keys, values, values), min_size=1, max_size=8)
ops = st.lists(
    st.one_of(
        st.tuples(
            st.just("set"),
            st.integers(min_value=0, max_value=99),
            st.sampled_from(["K", "A", "B"]),
            values,
        ),
        st.tuples(st.just("insert"), keys, values, values),
        st.tuples(st.just("remove"), st.integers(min_value=0, max_value=99)),
    ),
    min_size=0,
    max_size=10,
)


def _build_and_mutate(data, mutations):
    relation = Relation(SCHEMA)
    for k, a, b in data:
        relation.add_row({"K": k, "A": a, "B": b}, {"K": 0.5})
    for op in mutations:
        live = list(relation.tids())
        if op[0] == "set":
            if not live:
                continue
            _tag, raw, attr, value = op
            t = relation.by_tid(live[raw % len(live)])
            relation.set_value(t, attr, value)
        elif op[0] == "insert":
            _tag, k, a, b = op
            relation.add_row({"K": k, "A": a, "B": b})
        else:
            if not live:
                continue
            relation.remove(live[op[1] % len(live)])
    return relation


def _trajectory(data, mutations, columnar, engine):
    with using_backend(columnar), using_repair_engine(engine):
        relation = _build_and_mutate(data, mutations)
        if not len(relation):
            return None
        master = Relation.from_dicts(MASTER_SCHEMA, MASTER_ROWS)
        session = CleaningSession(
            cfds=CFDS, mds=MDS, master=master,
            config=UniCleanConfig(eta=1.0), collect_traces=True,
        )
        result = session.clean(relation)
        return _observables(session, result)


class TestFuzzedRepairTrajectories:
    @given(rows, ops)
    @settings(max_examples=25, deadline=None)
    def test_trajectory_identical_across_engines(self, data, mutations):
        results = {
            name: _trajectory(data, mutations, columnar, engine)
            for name, columnar, engine in CONFIGS
        }
        reference = results["dict+reference"]
        if reference is None:
            assert all(observed is None for observed in results.values())
            return
        _assert_all_match(results, "dict+reference")


# ----------------------------------------------------------------------
# 3. Flag mechanics
# ----------------------------------------------------------------------
class TestRepairEngineFlag:
    def test_set_repair_engine_rejects_unknown(self):
        with pytest.raises(ValueError):
            set_repair_engine("turbo")

    def test_using_repair_engine_restores(self):
        before = repair_engine()
        with using_repair_engine("reference"):
            assert repair_engine() == "reference"
        assert repair_engine() == before

    def test_dict_backed_relations_degrade_to_reference(self):
        flat = Relation(SCHEMA, columnar=False)
        flat.add_row({"K": "k1", "A": "a1", "B": "b1"})
        with using_repair_engine("vectorized"):
            assert not repair_vectorized_for(flat)
        with using_backend(True):
            columnar = Relation.from_dicts(SCHEMA, [{"K": "k1"}])
        with using_repair_engine("vectorized"):
            assert repair_vectorized_for(columnar)
        with using_repair_engine("reference"):
            assert not repair_vectorized_for(columnar)
