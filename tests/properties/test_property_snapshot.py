"""Property tests: save/restore never perturbs a session's trajectory.

The ISSUE 5 acceptance semantics: for any relation, any changeset
sequence and any save point inside it, a session that is snapshotted to
disk and restored (in what is effectively a fresh engine: new relations,
rebuilt indexes, re-warmed caches) must from then on be observationally
**byte-identical** to the session that never stopped — same repaired
relation (values *and* confidences), same ordered fix log, same per-cell
cost total, same satisfaction verdict, and — reusing the phase-trace
machinery of :mod:`repro.core.trace` — the same per-phase scheduling
traces and fix segments for every subsequent apply.

Runs against both the unsharded :class:`CleaningSession` and the sharded
:class:`ShardedCleaningSession` (whose snapshot is a manifest plus one
snapshot per shard).
"""

import os
import tempfile

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.constraints import CFD, MD
from repro.core import UniCleanConfig
from repro.pipeline import Changeset, CleaningSession, ShardedCleaningSession
from repro.relational import NULL, Relation, Schema
from repro.similarity.predicates import edit_within

SCHEMA = Schema("R", ["blk", "K", "A", "B", "nm"])
MASTER_SCHEMA = Schema("Rm", ["blk", "nm", "A"])

CFDS = [
    CFD(SCHEMA, ["blk", "K"], ["A"], name="fd_ka"),
    # Not keyed on blk: couples blocks through K and exercises the
    # collision machinery (whose ever-key state snapshots must preserve).
    CFD(SCHEMA, ["K"], ["B"], name="fd_kb"),
    CFD(SCHEMA, ["K"], ["B"], {"K": "k1", "B": "b1"}, name="const_kb"),
]
MDS = [
    MD(SCHEMA, MASTER_SCHEMA,
       [("blk", "blk"), ("nm", "nm", edit_within(1))],
       [("A", "A")], name="md_a"),
]
MASTER = Relation.from_dicts(
    MASTER_SCHEMA,
    [
        {"blk": "x", "nm": "nm1", "A": "aX"},
        {"blk": "y", "nm": "nm2", "A": "aY"},
    ],
)
CONFIG = UniCleanConfig(eta=1.0)

blocks = st.sampled_from(["x", "y"])
keys = st.sampled_from(["k1", "k2", "k3"])
values = st.sampled_from(["a1", "a2", "b1", "b2"])
names = st.sampled_from(["nm1", "nm2", "nm8"])
confs = st.sampled_from([0.0, 1.0])
rows = st.lists(
    st.tuples(blocks, keys, values, values, names, confs, confs),
    min_size=2,
    max_size=9,
)

ops = st.lists(
    st.one_of(
        st.tuples(
            st.just("edit"),
            st.integers(min_value=0, max_value=9),
            st.sampled_from(["blk", "K", "A", "B", "nm"]),
            st.sampled_from(["x", "k1", "k2", "a1", "b2", "nm1", NULL]),
            st.sampled_from([None, 0.0, 1.0]),
        ),
        st.tuples(st.just("insert"), blocks, keys, values, names),
        st.tuples(st.just("delete"), st.integers(min_value=0, max_value=9)),
    ),
    min_size=1,
    max_size=4,
)

batches_strategy = st.lists(ops, min_size=1, max_size=3)
cut_strategy = st.integers(min_value=0, max_value=3)


def build_relation(data) -> Relation:
    relation = Relation(SCHEMA)
    for blk, k, a, b, nm, conf_k, conf_a in data:
        relation.add_row(
            {"blk": blk, "K": k, "A": a, "B": b, "nm": nm},
            {"K": conf_k, "A": conf_a, "B": 0.0, "blk": 1.0, "nm": 0.0},
        )
    return relation


def build_changeset(relation: Relation, compact) -> Changeset:
    changeset = Changeset()
    live = list(relation.tids())
    deleted = set()
    for op in compact:
        if op[0] == "edit":
            _tag, raw, attr, value, conf = op
            candidates = [t for t in live if t not in deleted]
            if not candidates:
                continue
            tid = candidates[raw % len(candidates)]
            if conf is None:
                changeset.edit(tid, attr, value)
            else:
                changeset.edit(tid, attr, value, conf=conf)
        elif op[0] == "insert":
            _tag, blk, k, a, nm = op
            changeset.insert({"blk": blk, "K": k, "A": a, "B": "b1", "nm": nm})
        else:
            candidates = [t for t in live if t not in deleted]
            if not candidates:
                continue
            tid = candidates[op[1] % len(candidates)]
            deleted.add(tid)
            changeset.delete(tid)
    return changeset


def fingerprint(log):
    return [
        (f.kind.value, f.rule_name, f.tid, f.attr, repr(f.old_value),
         repr(f.new_value), repr(f.source))
        for f in log
    ]


def full_state(relation):
    return {
        t.tid: tuple((repr(t[a]), t.conf(a)) for a in relation.schema.names)
        for t in relation
    }


def assert_same_outcome(reference_out, restored_out):
    assert full_state(reference_out.repaired) == full_state(
        restored_out.repaired
    )
    assert fingerprint(reference_out.fix_log) == fingerprint(
        restored_out.fix_log
    )
    assert abs(reference_out.cost - restored_out.cost) < 1e-9
    assert reference_out.clean == restored_out.clean


def assert_same_traces(reference: CleaningSession, restored: CleaningSession):
    """The phase-trace check: the restored session scheduled its phases
    exactly like the never-stopped one (same trace tokens/forests, same
    per-phase fix segments)."""
    assert reference.last_traces == restored.last_traces
    assert {
        phase: fingerprint(fixes)
        for phase, fixes in reference.last_segments.items()
    } == {
        phase: fingerprint(fixes)
        for phase, fixes in restored.last_segments.items()
    }


def roundtrip_session(session: CleaningSession) -> CleaningSession:
    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "session.snap")
        session.save(path)
        session.close()
        return CleaningSession.restore(path)


def roundtrip_sharded(session: ShardedCleaningSession) -> ShardedCleaningSession:
    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "sharded")
        session.save(path)
        session.close()
        return ShardedCleaningSession.restore(path)


class TestSessionRoundTrip:
    @given(data=rows, batches=batches_strategy, cut=cut_strategy)
    @settings(max_examples=50, deadline=None)
    def test_restored_trajectory_is_byte_identical(self, data, batches, cut):
        relation = build_relation(data)
        reference = CleaningSession(
            cfds=CFDS, mds=MDS, master=MASTER, config=CONFIG,
            collect_traces=True,
        )
        subject = CleaningSession(
            cfds=CFDS, mds=MDS, master=MASTER, config=CONFIG,
            collect_traces=True,
        )
        reference.clean(relation)
        subject.clean(relation)
        cut = min(cut, len(batches))
        for index, compact in enumerate(batches):
            if index == cut:
                subject = roundtrip_session(subject)
            changeset = build_changeset(reference.base, compact)
            reference_out = reference.apply(Changeset(list(changeset.ops)))
            restored_out = subject.apply(Changeset(list(changeset.ops)))
            assert_same_outcome(reference_out, restored_out)
            assert_same_traces(reference, subject)
        if cut >= len(batches):
            subject = roundtrip_session(subject)
        assert full_state(reference.working) == full_state(subject.working)
        assert fingerprint(reference.fix_log) == fingerprint(subject.fix_log)
        assert reference._cell_costs == subject._cell_costs
        assert reference.is_clean() == subject.is_clean()


class TestShardedRoundTrip:
    @given(data=rows, batches=batches_strategy, cut=cut_strategy)
    @settings(max_examples=25, deadline=None)
    def test_restored_trajectory_is_byte_identical(self, data, batches, cut):
        relation = build_relation(data)
        reference = ShardedCleaningSession(
            cfds=CFDS, mds=MDS, master=MASTER, config=CONFIG,
            n_workers=1, n_shards=2,
        )
        subject = ShardedCleaningSession(
            cfds=CFDS, mds=MDS, master=MASTER, config=CONFIG,
            n_workers=1, n_shards=2,
        )
        try:
            reference.clean(relation)
            subject.clean(relation)
            cut = min(cut, len(batches))
            for index, compact in enumerate(batches):
                if index == cut:
                    subject = roundtrip_sharded(subject)
                changeset = build_changeset(reference.base, compact)
                reference_out = reference.apply(Changeset(list(changeset.ops)))
                restored_out = subject.apply(Changeset(list(changeset.ops)))
                assert_same_outcome(reference_out, restored_out)
            if cut >= len(batches):
                subject = roundtrip_sharded(subject)
            assert full_state(reference.working) == full_state(subject.working)
            assert fingerprint(reference.fix_log) == fingerprint(
                subject.fix_log
            )
            assert reference.is_clean() == subject.is_clean()
        finally:
            reference.close()
            subject.close()
