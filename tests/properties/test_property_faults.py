"""Property test: fuzzed fault schedules never corrupt results.

For *any* seeded fault schedule drawn by :meth:`FaultInjector.fuzz` —
worker crashes, hangs-as-delays, injected errors, torn request and
response frames, at arbitrary dispatch counts — a sharded run over the
PART workload either

* completes, in which case its observables (repaired relation with
  confidences, ordered fix log, verdict) are **byte-identical** to the
  fault-free reference run, or
* raises a typed failure (:class:`WorkerFailure` and subclasses,
  :class:`TornFrame`, :class:`InjectedFault`), in which case the session
  is poisoned and refuses further stateful use until the next
  ``clean()``.

It is never silently wrong: no completed run may differ from the
reference, and no failure may escape as an untyped exception or leave a
half-merged session answering queries.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datasets import generate_partitioned
from repro.exceptions import DataError, TornFrame, WorkerFailure
from repro.pipeline import (
    Changeset,
    FaultInjector,
    ShardedCleaningSession,
    SupervisionPolicy,
)
from repro.pipeline.faults import InjectedFault, injected

SIZE = 48
N_BLOCKS = 6
SEED = 29

_DATA = generate_partitioned(size=SIZE, n_blocks=N_BLOCKS, seed=SEED)

TYPED_FAILURES = (WorkerFailure, TornFrame, InjectedFault)

# Small budgets keep the worst case (a schedule that defeats every
# retry) fast; hangs are fuzzed as delays so the timeout never gates.
POLICY = SupervisionPolicy(
    timeout=60.0, max_retries=1, backoff_base=0.01, backoff_max=0.05
)


def _deltas(n=2):
    tids = sorted(_DATA.dirty.tids())
    return [Changeset().edit(tids[i], "name", f"edited-{i}")
            for i in range(n)]


def _observables(session):
    names = session.working.schema.names
    return (
        [
            (t.tid, tuple(repr(t[a]) for a in names),
             tuple(t.conf(a) for a in names))
            for t in session.working
        ],
        [
            (f.kind.value, f.rule_name, f.tid, f.attr, repr(f.old_value),
             repr(f.new_value), repr(f.source))
            for f in session.fix_log.fixes()
        ],
        session._last_clean,
    )


def _run(session):
    session.clean(_DATA.dirty.clone())
    for delta in _deltas():
        session.apply(delta)
    return _observables(session)


@pytest.fixture(scope="module")
def reference():
    session = ShardedCleaningSession(
        cfds=_DATA.cfds, mds=_DATA.mds, master=_DATA.master,
        n_workers=1, n_shards=4,
    )
    result = _run(session)
    session.close()
    return result


@given(seed=st.integers(min_value=0, max_value=2**32 - 1))
@settings(max_examples=8, deadline=None)
def test_fuzzed_schedules_recover_or_fail_typed(seed, reference):
    injector = FaultInjector.fuzz(seed=seed, n_faults=2)
    session = ShardedCleaningSession(
        cfds=_DATA.cfds, mds=_DATA.mds, master=_DATA.master,
        n_workers=2, n_shards=4, supervision=POLICY,
    )
    try:
        with injected(injector):
            try:
                result = _run(session)
            except TYPED_FAILURES:
                # Typed failure: the session must be poisoned, not
                # half-merged — every stateful entry point refuses.
                with pytest.raises(DataError, match="failed state"):
                    session.apply(_deltas(1)[0])
                return
        # Completed: must be byte-identical to the fault-free run.
        assert result == reference
    finally:
        session.close()


@given(seed=st.integers(min_value=0, max_value=2**32 - 1))
@settings(max_examples=4, deadline=None)
def test_fuzzed_schedules_with_fallback_always_complete(seed, reference):
    """With the serial fallback and a healthy retry budget, every fuzzed
    schedule of recoverable kinds completes byte-identically: escalation
    is the backstop that turns persistent faults into exact answers."""
    injector = FaultInjector.fuzz(
        seed=seed, n_faults=1, kinds=("crash", "torn_response", "delay")
    )
    session = ShardedCleaningSession(
        cfds=_DATA.cfds, mds=_DATA.mds, master=_DATA.master,
        n_workers=2, n_shards=4,
        supervision=SupervisionPolicy(
            timeout=60.0, max_retries=2,
            backoff_base=0.01, backoff_max=0.05, serial_fallback=True,
        ),
    )
    try:
        with injected(injector):
            result = _run(session)
        assert result == reference
    finally:
        session.close()
