"""Property-based tests for the cleaning pipeline's invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.constraints import CFD
from repro.core import FixKind, UniClean, UniCleanConfig, crepair, hrepair, is_clean
from repro.relational import Relation, Schema

SCHEMA = Schema("R", ["K", "A", "B"])

#: Small value pools keep collision (and thus violation) rates high.
keys = st.sampled_from(["k1", "k2", "k3"])
values = st.sampled_from(["a1", "a2", "a3"])
confs = st.sampled_from([0.0, 0.5, 1.0])

row = st.tuples(keys, values, values, confs, confs, confs)
relations = st.lists(row, min_size=1, max_size=12)

RULES = [
    CFD(SCHEMA, ["K"], ["A"], name="fd_ka"),
    CFD(SCHEMA, ["A"], ["B"], name="fd_ab"),
    CFD(SCHEMA, ["K"], ["B"], {"K": "k1", "B": "a1"}, name="const_kb"),
]


def build(data) -> Relation:
    relation = Relation(SCHEMA)
    for k, a, b, ck, ca, cb in data:
        relation.add_row({"K": k, "A": a, "B": b}, {"K": ck, "A": ca, "B": cb})
    return relation


class TestHRepairProperties:
    @given(relations)
    @settings(max_examples=60, deadline=None)
    def test_always_reaches_consistency(self, data):
        """Corollary 7.1: hRepair finds a repair satisfying Σ (under the
        null-tolerant semantics) for arbitrary dirty inputs."""
        relation = build(data)
        result = hrepair(relation, RULES)
        assert is_clean(result.relation, RULES)

    @given(relations)
    @settings(max_examples=40, deadline=None)
    def test_input_never_modified(self, data):
        relation = build(data)
        before = [t.as_dict() for t in relation]
        hrepair(relation, RULES)
        assert [t.as_dict() for t in relation] == before

    @given(relations)
    @settings(max_examples=40, deadline=None)
    def test_fix_log_matches_diff(self, data):
        """Every changed cell appears in the fix log and vice versa."""
        relation = build(data)
        result = hrepair(relation, RULES)
        changed = {(tid, attr) for tid, attr, _, _ in relation.diff(result.relation)}
        assert changed == result.fix_log.marked_cells()


class TestCRepairProperties:
    @given(relations)
    @settings(max_examples=60, deadline=None)
    def test_never_touches_asserted_cells(self, data):
        relation = build(data)
        result = crepair(relation, RULES, eta=0.8)
        for fix in result.fix_log:
            original = relation.by_tid(fix.tid)
            assert not original.has_conf_at_least(fix.attr, 0.8)

    @given(relations)
    @settings(max_examples=40, deadline=None)
    def test_idempotent(self, data):
        """Running cRepair on its own output yields no further fixes."""
        relation = build(data)
        first = crepair(relation, RULES, eta=0.8)
        second = crepair(first.relation, RULES, eta=0.8)
        assert second.deterministic_fixes == 0

    @given(relations)
    @settings(max_examples=40, deadline=None)
    def test_each_cell_fixed_once(self, data):
        relation = build(data)
        result = crepair(relation, RULES, eta=0.8)
        cells = [f.cell for f in result.fix_log]
        assert len(cells) == len(set(cells))


class TestPipelineProperties:
    @given(relations)
    @settings(max_examples=40, deadline=None)
    def test_full_pipeline_clean_and_deterministic_preserved(self, data):
        relation = build(data)
        cleaner = UniClean(cfds=RULES, config=UniCleanConfig(eta=0.8))
        result = cleaner.clean(relation)
        assert result.clean
        # Deterministic cells carry their cRepair value to the end.
        for cell in result.fix_log.marked_cells(FixKind.DETERMINISTIC):
            tid, attr = cell
            fix = result.fix_log.latest_fix(tid, attr)
            assert fix.kind is FixKind.DETERMINISTIC
            assert result.repaired.by_tid(tid)[attr] == fix.new_value

    @given(relations)
    @settings(max_examples=30, deadline=None)
    def test_cost_nonnegative(self, data):
        relation = build(data)
        cleaner = UniClean(cfds=RULES, config=UniCleanConfig(eta=0.8))
        assert cleaner.clean(relation).cost >= 0.0

    @given(relations)
    @settings(max_examples=30, deadline=None)
    def test_changed_cells_all_marked(self, data):
        """Every net-changed cell is marked.  (The converse does not hold:
        a cell may be flipped by eRepair and flipped back by hRepair — a
        net no-op that still leaves log entries.)"""
        relation = build(data)
        cleaner = UniClean(cfds=RULES, config=UniCleanConfig(eta=0.8))
        result = cleaner.clean(relation)
        changed = {(tid, attr) for tid, attr, _, _ in relation.diff(result.repaired)}
        assert changed <= result.fix_log.marked_cells()
