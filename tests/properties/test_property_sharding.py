"""Property tests: sharded cleaning ≡ unsharded cleaning, byte for byte.

The ISSUE 3 acceptance semantics: for any relation and any changeset
sequence — including changesets that edit shard-key cells, insert and
delete tuples — a :class:`ShardedCleaningSession` must produce the same
repaired relation (values *and* confidences), the same ordered fix log,
the same per-cell cost total and the same satisfaction verdict as an
unsharded :class:`CleaningSession` given identical input.  The schema
mixes block-keyed variable CFDs (shardable), a cross-block variable CFD
key (collision pressure), a constant CFD and an MD, so the plan,
collision-retry, scoped and re-plan paths all get exercised.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.constraints import CFD, MD
from repro.core import UniCleanConfig
from repro.pipeline import Changeset, CleaningSession, ShardedCleaningSession
from repro.relational import NULL, Relation, Schema
from repro.similarity.predicates import edit_within

SCHEMA = Schema("R", ["blk", "K", "A", "B", "nm"])
MASTER_SCHEMA = Schema("Rm", ["blk", "nm", "A"])

CFDS = [
    CFD(SCHEMA, ["blk", "K"], ["A"], name="fd_ka"),
    # Not keyed on blk: couples blocks through K and pressures the
    # collision detector when repairs rewrite K.
    CFD(SCHEMA, ["K"], ["B"], name="fd_kb"),
    CFD(SCHEMA, ["K"], ["B"], {"K": "k1", "B": "b1"}, name="const_kb"),
]
MDS = [
    MD(SCHEMA, MASTER_SCHEMA,
       [("blk", "blk"), ("nm", "nm", edit_within(1))],
       [("A", "A")], name="md_a"),
]

blocks = st.sampled_from(["x", "y"])
keys = st.sampled_from(["k1", "k2", "k3"])
values = st.sampled_from(["a1", "a2", "b1", "b2"])
names = st.sampled_from(["nm1", "nm2", "nm8"])
confs = st.sampled_from([0.0, 1.0])
rows = st.lists(
    st.tuples(blocks, keys, values, values, names, confs, confs),
    min_size=2,
    max_size=10,
)

ops = st.lists(
    st.one_of(
        st.tuples(
            st.just("edit"),
            st.integers(min_value=0, max_value=9),
            st.sampled_from(["blk", "K", "A", "B", "nm"]),
            st.sampled_from(["x", "k1", "k2", "a1", "b2", "nm1", NULL]),
            st.sampled_from([None, 0.0, 1.0]),
        ),
        st.tuples(st.just("insert"), blocks, keys, values, names),
        st.tuples(st.just("delete"), st.integers(min_value=0, max_value=9)),
    ),
    min_size=1,
    max_size=5,
)

CONFIG = UniCleanConfig(eta=1.0)
MASTER = Relation.from_dicts(
    MASTER_SCHEMA,
    [
        {"blk": "x", "nm": "nm1", "A": "aX"},
        {"blk": "y", "nm": "nm2", "A": "aY"},
    ],
)


def build_relation(data) -> Relation:
    relation = Relation(SCHEMA)
    for blk, k, a, b, nm, conf_k, conf_a in data:
        relation.add_row(
            {"blk": blk, "K": k, "A": a, "B": b, "nm": nm},
            {"K": conf_k, "A": conf_a, "B": 0.0, "blk": 1.0, "nm": 0.0},
        )
    return relation


def build_changeset(relation: Relation, compact) -> Changeset:
    changeset = Changeset()
    live = list(relation.tids())
    deleted = set()
    for op in compact:
        if op[0] == "edit":
            _tag, raw, attr, value, conf = op
            candidates = [t for t in live if t not in deleted]
            if not candidates:
                continue
            tid = candidates[raw % len(candidates)]
            if conf is None:
                changeset.edit(tid, attr, value)
            else:
                changeset.edit(tid, attr, value, conf=conf)
        elif op[0] == "insert":
            _tag, blk, k, a, nm = op
            changeset.insert({"blk": blk, "K": k, "A": a, "B": "b1", "nm": nm})
        else:
            candidates = [t for t in live if t not in deleted]
            if not candidates:
                continue
            tid = candidates[op[1] % len(candidates)]
            deleted.add(tid)
            changeset.delete(tid)
    return changeset


def fingerprint(log):
    return [
        (f.kind.value, f.rule_name, f.tid, f.attr, repr(f.old_value),
         repr(f.new_value), repr(f.source))
        for f in log
    ]


def full_state(relation):
    return {
        t.tid: tuple((repr(t[a]), t.conf(a)) for a in relation.schema.names)
        for t in relation
    }


def assert_same(reference_out, sharded_out):
    assert full_state(reference_out.repaired) == full_state(sharded_out.repaired)
    assert fingerprint(reference_out.fix_log) == fingerprint(sharded_out.fix_log)
    assert abs(reference_out.cost - sharded_out.cost) < 1e-9
    assert reference_out.clean == sharded_out.clean


class TestShardedEquivalence:
    @settings(max_examples=60, deadline=None)
    @given(data=rows, n_shards=st.sampled_from([2, 3]))
    def test_clean_equivalence(self, data, n_shards):
        relation = build_relation(data)
        reference = CleaningSession(
            cfds=CFDS, mds=MDS, master=MASTER, config=CONFIG
        )
        sharded = ShardedCleaningSession(
            cfds=CFDS, mds=MDS, master=MASTER, config=CONFIG, n_shards=n_shards
        )
        assert_same(reference.clean(relation), sharded.clean(relation))

    @settings(max_examples=50, deadline=None)
    @given(data=rows, batches=st.lists(ops, min_size=1, max_size=3))
    def test_apply_equivalence(self, data, batches):
        relation = build_relation(data)
        reference = CleaningSession(
            cfds=CFDS, mds=MDS, master=MASTER, config=CONFIG
        )
        sharded = ShardedCleaningSession(
            cfds=CFDS, mds=MDS, master=MASTER, config=CONFIG, n_shards=2
        )
        assert_same(reference.clean(relation), sharded.clean(relation))
        for compact in batches:
            changeset = build_changeset(reference.base, compact)
            reference_out = reference.apply(Changeset(list(changeset.ops)))
            sharded_out = sharded.apply(Changeset(list(changeset.ops)))
            assert_same(reference_out, sharded_out)
            assert reference_out.full_reclean == sharded_out.full_reclean

    @settings(max_examples=35, deadline=None)
    @given(
        data=rows,
        batches=st.lists(
            st.tuples(
                st.tuples(blocks, keys, values, names),  # forced insert
                ops,
            ),
            min_size=1,
            max_size=4,
        ),
    )
    def test_replan_reuse_is_byte_identical_to_fresh_plan(self, data, batches):
        """ISSUE 4: K successive re-plans with session reuse must stay
        byte-identical to (a) an unsharded session applying the same
        deltas and (b) a *fresh* sharded plan of the final base —
        relation, costs, verdict, ordered fix log."""
        relation = build_relation(data)
        reference = CleaningSession(
            cfds=CFDS, mds=MDS, master=MASTER, config=CONFIG
        )
        sharded = ShardedCleaningSession(
            cfds=CFDS, mds=MDS, master=MASTER, config=CONFIG, n_shards=2
        )
        assert_same(reference.clean(relation), sharded.clean(relation))
        for (blk, k, a, nm), compact in batches:
            # Every batch leads with an insert, so every batch re-plans.
            changeset = Changeset().insert(
                {"blk": blk, "K": k, "A": a, "B": "b1", "nm": nm}
            )
            for op in build_changeset(reference.base, compact).ops:
                changeset.ops.append(op)
            reference_out = reference.apply(Changeset(list(changeset.ops)))
            sharded_out = sharded.apply(Changeset(list(changeset.ops)))
            assert_same(reference_out, sharded_out)
        # A fresh sharded plan over the final base reproduces the reused
        # session's state byte for byte.
        fresh = ShardedCleaningSession(
            cfds=CFDS, mds=MDS, master=MASTER, config=CONFIG, n_shards=2
        )
        fresh_result = fresh.clean(reference.base)
        assert full_state(sharded.working) == full_state(fresh_result.repaired)
        assert fingerprint(sharded.fix_log) == fingerprint(fresh_result.fix_log)

    @settings(max_examples=25, deadline=None)
    @given(data=rows)
    def test_partial_pipelines(self, data):
        relation = build_relation(data)
        for config in (
            UniCleanConfig(eta=1.0, run_erepair=False, run_hrepair=False),
            UniCleanConfig(eta=1.0, run_hrepair=False),
        ):
            reference = CleaningSession(
                cfds=CFDS, mds=MDS, master=MASTER, config=config
            )
            sharded = ShardedCleaningSession(
                cfds=CFDS, mds=MDS, master=MASTER, config=config, n_shards=2
            )
            assert_same(reference.clean(relation), sharded.clean(relation))
