"""Property tests: the similarity-join match engine is lossless and
byte-identical to exhaustive reference matching.

``REPRO_MATCH_ENGINE`` selects how ``MDBlockingIndex`` retrieves
similarity candidates for pure-similarity MD premises: the filtered
inverted-index join of ``matching/simjoin.py`` (``join``, the default)
versus the per-lookup top-``l`` suffix-tree retrieval (``reference``).
The join engine's filters are *necessary* conditions, so two properties
must hold everywhere:

1. **Filter losslessness** — its candidate set is a superset of the true
   match set of an exhaustive full scan;
2. **Byte-identity** — ``matches()``/``find_match()`` (and, through
   them, whole-pipeline fix logs, costs, states and verdicts) are
   identical to the exhaustive reference under every
   ``REPRO_COLUMNAR`` × ``REPRO_MATCH_ENGINE`` configuration.

Three families:

1. **Testbed equivalence** — full cleans of the DBLP and HOSP testbeds
   under all four backend×match-engine configurations, plus a
   pure-similarity-premise workload that actually exercises the join
   path inside a cleaning session.
2. **Fuzzed lookup equivalence** — hypothesis-generated master values,
   probes, and master edit/insert mutations between lookups (the index
   assumes an immutable master, so mutation means rebuild); candidates
   ⊇ scan matches and matches/find_match byte-identical, for both the
   edit-k and Jaccard-t filter families.
3. **Flag mechanics** — the engine switch validates input, restores on
   exit, and the per-index override beats the process-wide flag.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.constraints import MD
from repro.core import UniCleanConfig
from repro.evaluation import generate
from repro.indexing import MDBlockingIndex
from repro.pipeline import CleaningSession
from repro.relational import Relation, Schema
from repro.relational.columns import (
    match_engine,
    set_match_engine,
    using_backend,
    using_match_engine,
)
from repro.similarity import edit_within, qgram_jaccard_at_least

#: backend (columnar?) × match engine; the dict+reference entry is the
#: seed-era configuration every other one must reproduce byte for byte.
CONFIGS = [
    ("columnar+join", True, "join"),
    ("columnar+reference", True, "reference"),
    ("dict+join", False, "join"),
    ("dict+reference", False, "reference"),
]


def _fingerprint(log):
    return [
        (f.kind.value, f.rule_name, f.tid, f.attr, repr(f.old_value),
         repr(f.new_value), repr(f.old_conf), repr(f.new_conf),
         repr(f.source))
        for f in log
    ]


def _full_state(relation):
    names = relation.schema.names
    return {
        t.tid: tuple((repr(t[a]), t.conf(a)) for a in names) for t in relation
    }


def _observables(session, result):
    return {
        "fix_log": _fingerprint(result.fix_log),
        "cost": result.cost,
        "clean": result.clean,
        "state": _full_state(result.repaired),
        "traces": dict(session.last_traces),
    }


def _assert_all_match(results, reference_name):
    reference = results[reference_name]
    for name, observed in results.items():
        for key in reference:
            assert observed[key] == reference[key], (
                f"{name} diverged from {reference_name} on {key}"
            )


# ----------------------------------------------------------------------
# 1. Testbed equivalence
# ----------------------------------------------------------------------
def _clean_observables(dataset, columnar, engine, **params):
    with using_backend(columnar), using_match_engine(engine):
        ds = generate(dataset, **params)
        session = CleaningSession(
            cfds=ds.cfds, mds=ds.mds, master=ds.master,
            config=UniCleanConfig(eta=1.0), collect_traces=True,
        )
        result = session.clean(ds.dirty)
        return _observables(session, result)


@pytest.mark.parametrize("seed", [3, 7])
def test_dblp_clean_identical_across_match_engines(seed):
    results = {
        name: _clean_observables(
            "dblp", columnar, engine,
            size=120, master_size=60, noise_rate=0.08, seed=seed,
        )
        for name, columnar, engine in CONFIGS
    }
    assert results["dict+reference"]["fix_log"]  # workload must repair
    _assert_all_match(results, "dict+reference")


@pytest.mark.parametrize("seed", [11, 23])
def test_hosp_clean_identical_across_match_engines(seed):
    results = {
        name: _clean_observables(
            "hosp", columnar, engine,
            size=150, master_size=75, noise_rate=0.08, seed=seed,
        )
        for name, columnar, engine in CONFIGS
    }
    assert results["dict+reference"]["fix_log"]
    _assert_all_match(results, "dict+reference")


# A workload whose MD premise is *pure similarity* — no equality clause —
# so cleaning sessions actually route through the similarity engine (the
# testbeds above all carry equality clauses and take the exact-index
# path).  The master stays below top_l so the reference suffix tree is
# exhaustive here and byte-identity is well-defined.
SIM_SCHEMA = Schema("S", ["name", "grade"])
SIM_MASTER_ROWS = [
    {"name": "alpha omega", "grade": "A"},
    {"name": "beta gamma", "grade": "B"},
    {"name": "delta epsilon", "grade": "C"},
]
SIM_DIRTY_ROWS = [
    {"name": "alpha omeg", "grade": "Z"},   # 1 deletion from master
    {"name": "beta gamma", "grade": "B"},   # exact
    {"name": "unrelated", "grade": "Q"},    # no match
]


def _sim_md():
    return MD(
        SIM_SCHEMA, SIM_SCHEMA,
        [("name", "name", edit_within(2))], [("grade", "grade")],
        name="md_sim",
    )


def test_pure_similarity_premise_clean_identical_across_configs():
    results = {}
    for name, columnar, engine in CONFIGS:
        with using_backend(columnar), using_match_engine(engine):
            master = Relation.from_dicts(SIM_SCHEMA, SIM_MASTER_ROWS)
            dirty = Relation.from_dicts(SIM_SCHEMA, SIM_DIRTY_ROWS)
            session = CleaningSession(
                cfds=[], mds=[_sim_md()], master=master,
                config=UniCleanConfig(eta=1.0), collect_traces=True,
            )
            result = session.clean(dirty)
            results[name] = _observables(session, result)
            if engine == "join":
                (index,) = session.md_indexes.values()
                assert index.join_index is not None  # join path exercised
    assert results["dict+reference"]["fix_log"]
    _assert_all_match(results, "dict+reference")


# ----------------------------------------------------------------------
# 2. Fuzzed lookup equivalence
# ----------------------------------------------------------------------
WORDS = ["alpha", "beta", "gamma", "delta", "omega", "zeta"]
names = st.lists(
    st.sampled_from(WORDS), min_size=1, max_size=3
).map(" ".join)
typo_ops = st.sampled_from(["drop", "dup", "swap", "none"])
master_rows = st.lists(names, min_size=1, max_size=10)
mutations = st.lists(
    st.one_of(
        st.tuples(st.just("insert"), names),
        st.tuples(st.just("edit"), st.integers(min_value=0, max_value=99), names),
    ),
    min_size=0,
    max_size=4,
)
PREDICATES = [edit_within(2), qgram_jaccard_at_least(0.6)]


def _typo(value, op):
    if op == "drop" and len(value) > 1:
        return value[1:]
    if op == "dup":
        return value + value[-1]
    if op == "swap" and len(value) > 1:
        return value[1] + value[0] + value[2:]
    return value


def _assert_lookup_equivalence(master, probes, predicate):
    md = MD(
        SIM_SCHEMA, SIM_SCHEMA,
        [("name", "name", predicate)], [("grade", "grade")],
    )
    join = MDBlockingIndex(md, master, engine="join")
    scan = MDBlockingIndex(md, master, use_suffix_tree=False, engine="reference")
    for probe in probes:
        true_matches = [s.tid for s in scan.matches(probe)]
        # losslessness: filters never drop a true match
        assert {s.tid for s in join.candidates(probe)} >= set(true_matches)
        # byte-identity: same matches, same order, same witness
        assert [s.tid for s in join.matches(probe)] == true_matches
        got = join.find_match(probe)
        want = scan.find_match(probe)
        assert (got.tid if got else None) == (want.tid if want else None)


class TestFuzzedLookupEquivalence:
    @given(master_rows, names, typo_ops, mutations, st.sampled_from([0, 1]))
    @settings(max_examples=30, deadline=None)
    def test_join_lossless_and_identical(
        self, rows, probe_name, op, master_ops, predicate_index
    ):
        predicate = PREDICATES[predicate_index]
        master = Relation.from_dicts(
            SIM_SCHEMA, [{"name": n, "grade": "A"} for n in rows]
        )
        probes = [
            Relation.from_dicts(
                SIM_SCHEMA, [{"name": _typo(probe_name, op), "grade": "Z"}]
            ).by_tid(0)
        ]
        _assert_lookup_equivalence(master, probes, predicate)
        # master edits/inserts between lookups: the index contract assumes
        # an immutable master, so mutation means rebuild — equivalence
        # must survive arbitrary interleavings of edits and rebuilds.
        for mutation in master_ops:
            if mutation[0] == "insert":
                master.add_row({"name": mutation[1], "grade": "B"})
            else:
                _tag, raw, value = mutation
                tids = list(master.tids())
                t = master.by_tid(tids[raw % len(tids)])
                master.set_value(t, "name", value)
            _assert_lookup_equivalence(master, probes, predicate)


# ----------------------------------------------------------------------
# 3. Flag mechanics
# ----------------------------------------------------------------------
class TestMatchEngineFlagMechanics:
    def test_set_match_engine_rejects_unknown(self):
        with pytest.raises(ValueError):
            set_match_engine("hypersonic")

    def test_using_match_engine_restores(self):
        before = match_engine()
        with using_match_engine("reference"):
            assert match_engine() == "reference"
        assert match_engine() == before

    def test_config_override_reaches_session_indexes(self):
        master = Relation.from_dicts(SIM_SCHEMA, SIM_MASTER_ROWS)
        with using_match_engine("join"):
            session = CleaningSession(
                cfds=[], mds=[_sim_md()], master=master,
                config=UniCleanConfig(eta=1.0, match_engine="reference"),
            )
            session._ensure_md_indexes()
            assert all(
                ix.engine == "reference" for ix in session.md_indexes.values()
            )

    def test_old_configs_without_the_field_default_to_flag(self):
        config = UniCleanConfig(eta=1.0)
        del config.__dict__["match_engine"]  # simulate a pre-field pickle
        master = Relation.from_dicts(SIM_SCHEMA, SIM_MASTER_ROWS)
        with using_match_engine("reference"):
            session = CleaningSession(
                cfds=[], mds=[_sim_md()], master=master, config=config
            )
            session._ensure_md_indexes()
            assert all(
                ix.engine == "reference" for ix in session.md_indexes.values()
            )
