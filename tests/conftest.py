"""Shared fixtures: the paper's running example (Fig. 1) and helpers."""

from __future__ import annotations

import pytest

from repro import NULL, Relation, Schema, parse_rules
from repro.constraints import ParsedRules


@pytest.fixture(scope="session")
def tran_schema() -> Schema:
    """The transaction schema of Fig. 1(b)."""
    return Schema("tran", ["FN", "LN", "St", "city", "AC", "post", "phn", "gd"])


@pytest.fixture(scope="session")
def card_schema() -> Schema:
    """The master card schema of Fig. 1(a)."""
    return Schema("card", ["FN", "LN", "St", "city", "AC", "zip", "tel", "dob", "gd"])


@pytest.fixture()
def master_card(card_schema: Schema) -> Relation:
    """Master data Dm = {s1, s2} of Fig. 1(a)."""
    return Relation.from_dicts(
        card_schema,
        [
            dict(
                FN="Mark", LN="Smith", St="10 Oak St", city="Edi", AC="131",
                zip="EH8 9LE", tel="3256778", dob="10/10/1987", gd="Male",
            ),
            dict(
                FN="Robert", LN="Brady", St="5 Wren St", city="Ldn", AC="020",
                zip="WC1H 9SE", tel="3887644", dob="12/08/1975", gd="Male",
            ),
        ],
    )


@pytest.fixture()
def dirty_tran(tran_schema: Schema) -> Relation:
    """Dirty data D = {t1..t4} of Fig. 1(b), with the cf annotations."""
    rows = [
        dict(FN="M.", LN="Smith", St="10 Oak St", city="Ldn", AC="131",
             post="EH8 9LE", phn="9999999", gd="Male"),
        dict(FN="Max", LN="Smith", St="Po Box 25", city="Edi", AC="131",
             post="EH8 9AB", phn="3256778", gd="Male"),
        dict(FN="Bob", LN="Brady", St="5 Wren St", city="Edi", AC="020",
             post="WC1H 9SE", phn="3887834", gd="Male"),
        dict(FN="Robert", LN="Brady", St=NULL, city="Ldn", AC="020",
             post="WC1E 7HX", phn="3887644", gd="Male"),
    ]
    confs = [
        dict(FN=0.9, LN=1.0, St=0.9, city=0.5, AC=0.9, post=0.9, phn=0.0, gd=0.8),
        dict(FN=0.7, LN=1.0, St=0.5, city=0.9, AC=0.7, post=0.6, phn=0.8, gd=0.8),
        dict(FN=0.6, LN=1.0, St=0.9, city=0.2, AC=0.9, post=0.8, phn=0.9, gd=0.8),
        dict(FN=0.7, LN=1.0, St=0.0, city=0.5, AC=0.7, post=0.3, phn=0.7, gd=0.8),
    ]
    return Relation.from_dicts(tran_schema, rows, confs)


RULES_TEXT = """
cfd tran: AC='131' -> city='Edi' @phi1
cfd tran: AC='020' -> city='Ldn' @phi2
cfd tran: city, phn -> St, AC, post @phi3
cfd tran: FN='Bob' -> FN='Robert' @phi4
md tran~card: LN=LN, city=city, St=St, post=zip, FN ~edit<=3 FN -> FN=FN, phn=tel @psi
nmd tran~card: gd!=gd -> FN=FN, phn=tel @psi_neg
"""


@pytest.fixture()
def paper_rules(tran_schema: Schema, card_schema: Schema) -> ParsedRules:
    """The rules φ1–φ4, ψ and the negative gender MD of Example 1.1/2.4."""
    return parse_rules(RULES_TEXT, {"tran": tran_schema, "card": card_schema})
