"""Smoke tests for the experiment harness (tiny sizes; shape checks live
in the benchmarks)."""

import pytest

from repro.evaluation import (
    exp1_matching_helps_repairing,
    exp2_repairing_helps_matching,
    exp3_fix_accuracy,
    exp4_deterministic_fixes,
    exp5_scalability,
    format_table,
    generate,
)

SMALL = dict(size=60, master_size=40)


class TestDispatch:
    def test_generate_by_name(self):
        ds = generate("hosp", size=40, master_size=25)
        assert ds.name == "hosp"

    def test_unknown_dataset(self):
        with pytest.raises(ValueError):
            generate("nope")


class TestExp1:
    def test_rows_and_columns(self):
        rows = exp1_matching_helps_repairing("hosp", noise_rates=(0.06,), **SMALL)
        assert len(rows) == 1
        row = rows[0]
        assert {"uni_f1", "uni_cfd_f1", "quaid_f1"} <= set(row)
        assert 0.0 <= row["uni_f1"] <= 1.0

    def test_uni_at_least_uni_cfd(self):
        rows = exp1_matching_helps_repairing("dblp", noise_rates=(0.06,), **SMALL)
        assert rows[0]["uni_f1"] >= rows[0]["uni_cfd_f1"] - 0.02


class TestExp2:
    def test_uni_at_least_sortn(self):
        rows = exp2_repairing_helps_matching("hosp", noise_rates=(0.06,), **SMALL)
        assert rows[0]["uni_f1"] >= rows[0]["sortn_f1"] - 0.02


class TestExp3:
    def test_precision_ordering(self):
        rows = exp3_fix_accuracy("hosp", noise_rates=(0.06,), **SMALL)
        row = rows[0]
        # Deterministic fixes are the most precise; full Uni trades
        # precision for recall (Fig. 12).
        assert row["crepair_precision"] >= row["uni_precision"] - 0.05
        assert row["crepair_recall"] <= row["ce_recall"] + 1e-9
        assert row["ce_recall"] <= row["uni_recall"] + 1e-9


class TestExp4:
    def test_monotone_in_asr(self):
        out = exp4_deterministic_fixes(
            "hosp", duplicate_rates=(0.4,), asserted_rates=(0.0, 0.6), **SMALL
        )
        by_asr = out["by_asr"]
        assert by_asr[0]["det_pct"] <= by_asr[1]["det_pct"]

    def test_zero_asr_nearly_no_deterministic(self):
        """At asr = 0 only premise-free rules (e.g. the HOSP source
        constant, whose premise is vacuously asserted) can produce
        deterministic fixes — a small residue (Fig. 13b starts near 0)."""
        out = exp4_deterministic_fixes(
            "hosp", duplicate_rates=(0.4,), asserted_rates=(0.0,), **SMALL
        )
        assert out["by_asr"][0]["det_pct"] < 20.0


class TestExp5:
    def test_varies_d(self):
        rows = exp5_scalability("hosp", vary="D", values=(40, 80), master_size=30)
        assert [r["value"] for r in rows] == [40, 80]
        assert all(r["total_s"] > 0 for r in rows)

    def test_varies_sigma_requires_tpch(self):
        with pytest.raises(ValueError):
            exp5_scalability("hosp", vary="Sigma", values=(10,))

    def test_bad_vary(self):
        with pytest.raises(ValueError):
            exp5_scalability("hosp", vary="X", values=(1,))


class TestFormatTable:
    def test_renders(self):
        text = format_table([{"a": 1, "b": 0.51}], title="T")
        assert "T" in text and "0.510" in text

    def test_empty(self):
        assert "(no rows)" in format_table([], title="T")
