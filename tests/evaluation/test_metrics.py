"""Tests for the Section 8 quality metrics."""

import pytest

from repro.evaluation import Metrics, f_measure, matching_metrics, repair_metrics
from repro.exceptions import DataError
from repro.relational import Relation, Schema


class TestFMeasure:
    def test_harmonic_mean(self):
        assert f_measure(1.0, 1.0) == 1.0
        assert f_measure(0.5, 1.0) == pytest.approx(2 / 3)

    def test_zero(self):
        assert f_measure(0.0, 0.0) == 0.0


class TestMetricsFromCounts:
    def test_standard(self):
        m = Metrics.from_counts(8, 10, 16)
        assert m.precision == 0.8 and m.recall == 0.5
        assert m.f1 == pytest.approx(f_measure(0.8, 0.5))

    def test_nothing_found_precision_one(self):
        m = Metrics.from_counts(0, 0, 5)
        assert m.precision == 1.0 and m.recall == 0.0

    def test_nothing_relevant_recall_one(self):
        m = Metrics.from_counts(0, 0, 0)
        assert m.recall == 1.0

    def test_str(self):
        assert "P=" in str(Metrics.from_counts(1, 2, 3))


class TestRepairMetrics:
    @pytest.fixture()
    def schema(self):
        return Schema("R", ["A", "B"])

    @pytest.fixture()
    def triple(self, schema):
        clean = Relation.from_dicts(
            schema, [{"A": "a", "B": "b"}, {"A": "c", "B": "d"}]
        )
        dirty = clean.clone()
        dirty.by_tid(0)["A"] = "WRONG_A"
        dirty.by_tid(1)["B"] = "WRONG_B"
        return dirty, clean

    def test_perfect_repair(self, triple):
        dirty, clean = triple
        m = repair_metrics(dirty, clean.clone(), clean)
        assert m.precision == 1.0 and m.recall == 1.0

    def test_partial_repair(self, triple):
        dirty, clean = triple
        repaired = dirty.clone()
        repaired.by_tid(0)["A"] = "a"  # one of two errors fixed
        m = repair_metrics(dirty, repaired, clean)
        assert m.precision == 1.0
        assert m.recall == 0.5

    def test_wrong_update_hurts_precision(self, triple):
        dirty, clean = triple
        repaired = dirty.clone()
        repaired.by_tid(0)["A"] = "a"          # correct
        repaired.by_tid(0)["B"] = "bogus"      # wrong update of a clean cell
        m = repair_metrics(dirty, repaired, clean)
        assert m.precision == 0.5

    def test_no_op_repair(self, triple):
        dirty, clean = triple
        m = repair_metrics(dirty, dirty.clone(), clean)
        assert m.precision == 1.0 and m.recall == 0.0

    def test_cells_restriction(self, triple):
        dirty, clean = triple
        repaired = clean.clone()
        m = repair_metrics(dirty, repaired, clean, cells={(0, "A")})
        assert m.true_positives == 1  # only the restricted cell counts
        assert m.relevant == 2        # recall denominator stays global

    def test_tid_mismatch(self, schema, triple):
        dirty, clean = triple
        other = Relation.from_dicts(schema, [{"A": "x", "B": "y"}])
        with pytest.raises(DataError):
            repair_metrics(dirty, other, clean)


class TestMatchingMetrics:
    def test_perfect(self):
        truth = {(0, 0), (1, 1)}
        m = matching_metrics(truth, truth)
        assert m.f1 == 1.0

    def test_false_positive(self):
        m = matching_metrics({(0, 0), (5, 5)}, {(0, 0)})
        assert m.precision == 0.5 and m.recall == 1.0

    def test_missed_match(self):
        m = matching_metrics({(0, 0)}, {(0, 0), (1, 1)})
        assert m.recall == 0.5

    def test_empty_found(self):
        m = matching_metrics(set(), {(0, 0)})
        assert m.precision == 1.0 and m.recall == 0.0
