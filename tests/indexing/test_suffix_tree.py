"""Tests for the generalized suffix tree and LCS blocking."""

import random

import pytest

from repro.indexing import GeneralizedSuffixTree
from repro.similarity import edit_distance, longest_common_substring_length


@pytest.fixture()
def tree() -> GeneralizedSuffixTree:
    t = GeneralizedSuffixTree()
    t.add_strings([(0, "robert"), (1, "bob"), (2, "roberta"), (3, "mark")])
    return t


class TestMembership:
    def test_contains_substring(self, tree):
        for sub in ["rob", "obert", "ark", "b", "roberta"]:
            assert tree.contains_substring(sub), sub

    def test_absent_substring(self, tree):
        assert not tree.contains_substring("xyz")
        assert not tree.contains_substring("robertz")

    def test_empty_substring(self, tree):
        assert tree.contains_substring("")

    def test_strings_with_substring(self, tree):
        assert tree.strings_with_substring("rober") == {0, 2}
        assert tree.strings_with_substring("ob") == {0, 1, 2}
        assert tree.strings_with_substring("zzz") == set()
        assert tree.strings_with_substring("") == {0, 1, 2, 3}

    def test_exhaustive_substrings_indexed(self):
        tree = GeneralizedSuffixTree()
        s = "mississippi"
        tree.add_string(0, s)
        for i in range(len(s)):
            for j in range(i + 1, len(s) + 1):
                assert tree.contains_substring(s[i:j])

    def test_duplicate_id_rejected(self, tree):
        with pytest.raises(ValueError):
            tree.add_string(0, "again")

    def test_len_and_ids(self, tree):
        assert len(tree) == 4
        assert tree.ids() == (0, 1, 2, 3)
        assert tree.string(1) == "bob"


class TestTopL:
    def test_exact_match_ranks_first(self, tree):
        out = tree.top_l_lcs("robert", 4)
        assert out[0] == (0, 6)

    def test_lcs_lengths_are_correct(self, tree):
        for sid, length in tree.top_l_lcs("rob", 4):
            assert length == longest_common_substring_length("rob", tree.string(sid))

    def test_l_limits_results(self, tree):
        assert len(tree.top_l_lcs("rob", 2)) == 2

    def test_zero_l(self, tree):
        assert tree.top_l_lcs("rob", 0) == []

    def test_empty_tree(self):
        assert GeneralizedSuffixTree().top_l_lcs("x", 3) == []

    def test_no_overlap_query(self, tree):
        assert tree.top_l_lcs("zzzz", 3) == []

    def test_top_l_matches_brute_force(self):
        rng = random.Random(3)
        words = ["".join(rng.choice("abcd") for _ in range(rng.randrange(3, 9)))
                 for _ in range(30)]
        tree = GeneralizedSuffixTree()
        for i, w in enumerate(words):
            tree.add_string(i, w)
        query = "abcdab"
        got = dict(tree.top_l_lcs(query, len(words)))
        # Every reported length must be the true LCS length.
        for sid, length in got.items():
            assert length == longest_common_substring_length(query, words[sid])
        # The top-reported lengths must dominate all unreported strings.
        if got:
            reported_min = min(got.values())
            for i, w in enumerate(words):
                if i not in got:
                    assert longest_common_substring_length(query, w) <= reported_min


class TestBlockingCandidates:
    def test_candidates_meet_bound(self, tree):
        for sid in tree.lcs_candidates("robert", k=2, l=4):
            s = tree.string(sid)
            bound = max(len(s), 6) / 3
            assert longest_common_substring_length("robert", s) >= bound

    def test_true_match_survives(self):
        tree = GeneralizedSuffixTree()
        master = ["edinburgh", "london", "glasgow", "aberdeen"]
        for i, w in enumerate(master):
            tree.add_string(i, w)
        query = "edinbrugh"  # transposition: distance 2
        k = edit_distance(query, "edinburgh")
        assert 0 in tree.lcs_candidates(query, k=k, l=4)
