"""Property and determinism tests for the incremental violation index.

Two invariants carry the whole design (see docs/architecture.md):

1. **Coherence** — after any sequence of ``Relation.set_value`` edits,
   every partition equals the partition of a freshly built index;
2. **Determinism** — crepair/erepair/hrepair produce byte-identical fix
   logs with the indexed engine and with the legacy full-rescan baseline.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import relation_is_clean
from repro.constraints import CFD, MD
from repro.constraints.rules import derive_rules
from repro.core import crepair, erepair, hrepair, is_clean
from repro.indexing import ViolationIndex
from repro.relational import NULL, Relation, Schema

SCHEMA = Schema("R", ["K", "A", "B"])
MASTER_SCHEMA = Schema("Rm", ["K", "B"])

CFDS = [
    CFD(SCHEMA, ["K"], ["A"], name="fd_ka"),
    CFD(SCHEMA, ["A"], ["B"], name="fd_ab"),
    CFD(SCHEMA, ["K"], ["B"], {"K": "k1", "B": "b1"}, name="const_kb"),
]
MDS = [MD(SCHEMA, MASTER_SCHEMA, [("K", "K")], [("B", "B")], name="md_kb")]

keys = st.sampled_from(["k1", "k2", "k3"])
values = st.sampled_from(["a1", "a2", "b1", "b2"])
confs = st.sampled_from([0.0, 0.5, 1.0])
rows = st.lists(st.tuples(keys, values, values, confs, confs, confs), min_size=1, max_size=12)
edits = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=11),       # tid (mod len)
        st.sampled_from(["K", "A", "B"]),             # attr
        st.sampled_from(["k1", "k2", "a1", "b1", "b2", NULL]),  # new value
    ),
    max_size=30,
)


def build_relation(data) -> Relation:
    relation = Relation(SCHEMA)
    for k, a, b, ck, ca, cb in data:
        relation.add_row({"K": k, "A": a, "B": b}, {"K": ck, "A": ca, "B": cb})
    return relation


def build_master() -> Relation:
    return Relation.from_dicts(
        MASTER_SCHEMA, [{"K": "k1", "B": "b1"}, {"K": "k2", "B": "b2"}]
    )


def fingerprint(log):
    return [
        (f.kind.value, f.rule_name, f.tid, f.attr, repr(f.old_value),
         repr(f.new_value), repr(f.source))
        for f in log
    ]


class TestPartitionCoherence:
    @given(rows, edits)
    @settings(max_examples=80, deadline=None)
    def test_partitions_match_fresh_build_after_random_edits(self, data, steps):
        """Invariant 1: maintained partitions == freshly built partitions."""
        relation = build_relation(data)
        rules = derive_rules(CFDS, MDS)
        index = ViolationIndex(relation, rules)
        for tid_raw, attr, value in steps:
            t = relation.by_tid(tid_raw % len(relation))
            relation.set_value(t, attr, value)
        index.check_consistency(relation)
        index.detach()

    @given(rows, edits)
    @settings(max_examples=40, deadline=None)
    def test_dirty_marks_cover_every_changed_tuple(self, data, steps):
        """Dirtiness over-approximates: a changed tuple is queued for every
        rule whose scope contains the changed attribute."""
        relation = build_relation(data)
        rules = derive_rules(CFDS, MDS)
        index = ViolationIndex(relation, rules)
        for idx in range(len(rules)):
            index.pop_dirty_tids(idx) if idx in index._dirty_tids else index.pop_dirty_keys(idx)
        touched = set()
        for tid_raw, attr, value in steps:
            t = relation.by_tid(tid_raw % len(relation))
            if relation.set_value(t, attr, value):
                touched.add((t.tid, attr))
        for idx, rule in enumerate(rules):
            if idx in index._dirty_keys:
                continue  # group-granular; covered by coherence test
            dirty = set(index.pop_dirty_tids(idx))
            for tid, attr in touched:
                if attr in rule.scope_attrs() and index.is_member(idx, tid):
                    assert tid in dirty
        index.detach()


class TestDirtyQueues:
    def test_pop_orders_by_tid_and_clears(self):
        relation = build_relation([("k1", "a1", "b1", 0, 0, 0)] * 5)
        rules = derive_rules(CFDS)
        index = ViolationIndex(relation, rules)
        index.mark_all_dirty()
        first = index.pop_dirty_tids(2)  # const_kb is the only constant rule
        assert first == sorted(first)
        assert index.pop_dirty_tids(2) == []

    def test_lhs_change_moves_tuple_between_partitions(self):
        relation = build_relation(
            [("k1", "a1", "b1", 0, 0, 0), ("k1", "a1", "b2", 0, 0, 0)]
        )
        rules = derive_rules([CFDS[0]])  # K -> A (variable)
        index = ViolationIndex(relation, rules)
        t = relation.by_tid(0)
        relation.set_value(t, "K", "k9")
        assert index.members(0, ("k9",)) == [0]
        assert index.members(0, ("k1",)) == [1]
        # Both the old and the new partition are queued.
        assert set(index.pop_dirty_keys(0)) == {("k1",), ("k9",)}
        index.check_consistency(relation)

    def test_null_lhs_leaves_membership(self):
        relation = build_relation([("k1", "a1", "b1", 0, 0, 0)])
        rules = derive_rules([CFDS[0]])
        index = ViolationIndex(relation, rules)
        relation.set_value(relation.by_tid(0), "K", NULL)
        assert not index.is_member(0, 0)
        index.check_consistency(relation)


class TestEngineEquivalence:
    """Invariant 2: indexed and legacy engines emit identical fix logs."""

    @given(rows)
    @settings(max_examples=60, deadline=None)
    def test_crepair_logs_identical(self, data):
        master = build_master()
        runs = []
        for flag in (True, False):
            result = crepair(
                build_relation(data), CFDS, MDS, master=master,
                eta=0.8, use_violation_index=flag,
            )
            runs.append(result)
        assert fingerprint(runs[0].fix_log) == fingerprint(runs[1].fix_log)
        assert not runs[0].relation.diff(runs[1].relation)

    @given(rows)
    @settings(max_examples=60, deadline=None)
    def test_erepair_logs_identical(self, data):
        master = build_master()
        runs = []
        for flag in (True, False):
            result = erepair(
                build_relation(data), CFDS, MDS, master=master,
                delta2=0.9, use_violation_index=flag,
            )
            runs.append(result)
        assert fingerprint(runs[0].fix_log) == fingerprint(runs[1].fix_log)
        assert not runs[0].relation.diff(runs[1].relation)

    @given(rows)
    @settings(max_examples=60, deadline=None)
    def test_hrepair_logs_identical(self, data):
        master = build_master()
        runs = []
        for flag in (True, False):
            result = hrepair(
                build_relation(data), CFDS, MDS, master=master,
                use_violation_index=flag,
            )
            runs.append(result)
        assert fingerprint(runs[0].fix_log) == fingerprint(runs[1].fix_log)
        assert not runs[0].relation.diff(runs[1].relation)
        assert is_clean(runs[0].relation, CFDS, MDS, master)

    @given(rows)
    @settings(max_examples=40, deadline=None)
    def test_indexed_clean_check_agrees_with_legacy(self, data):
        relation = build_relation(data)
        master = build_master()
        assert relation_is_clean(relation, CFDS, MDS, master) == is_clean(
            relation, CFDS, MDS, master
        )


class TestObserverHygiene:
    def test_phases_leave_no_observers_attached(self):
        relation = build_relation([("k1", "a1", "b1", 0, 0, 0)] * 3)
        master = build_master()
        crepair(relation, CFDS, MDS, master=master, in_place=True)
        erepair(relation, CFDS, MDS, master=master, in_place=True)
        hrepair(relation, CFDS, MDS, master=master, in_place=True)
        assert relation._observers == []
