"""Tests for the 2-in-1 entropy structure — Section 6.3, Example 6.2/6.3."""

import math
from collections import Counter

import pytest

from repro.constraints import CFD
from repro.exceptions import ConstraintError
from repro.indexing import EntropyIndex, entropy_of_counts
from repro.relational import NULL, Relation, Schema


@pytest.fixture()
def schema() -> Schema:
    return Schema("R", ["A", "B", "C", "E", "F", "H"])


@pytest.fixture()
def example_relation(schema) -> Relation:
    """The relation of Fig. 8."""
    rows = [
        ("a1", "b1", "c1", "e1", "f1", "h1"),
        ("a1", "b1", "c1", "e1", "f2", "h2"),
        ("a1", "b1", "c1", "e1", "f3", "h3"),
        ("a1", "b1", "c1", "e2", "f1", "h3"),
        ("a2", "b2", "c2", "e1", "f2", "h4"),
        ("a2", "b2", "c2", "e2", "f1", "h4"),
        ("a2", "b2", "c3", "e3", "f3", "h5"),
        ("a2", "b2", "c4", "e3", "f3", "h6"),
    ]
    return Relation.from_dicts(
        schema, [dict(zip("ABCEFH", row)) for row in rows]
    )


@pytest.fixture()
def phi(schema) -> CFD:
    """φ = R(ABC → E, wildcards) of Example 6.2."""
    return CFD(schema, ["A", "B", "C"], ["E"], name="phi")


class TestEntropyFunction:
    def test_single_value_is_zero(self):
        assert entropy_of_counts(Counter({"a": 10})) == 0.0

    def test_uniform_is_one(self):
        assert entropy_of_counts(Counter({"a": 3, "b": 3})) == 1.0
        assert entropy_of_counts(Counter({"a": 2, "b": 2, "c": 2})) == pytest.approx(1.0)

    def test_example_6_2_value(self):
        # H(φ|ABC=(a1,b1,c1)) ≈ 0.8 in the paper (3×e1, 1×e2).
        h = entropy_of_counts(Counter({"e1": 3, "e2": 1}))
        assert h == pytest.approx(0.811, abs=1e-3)

    def test_bounds(self):
        for counts in [{"a": 5, "b": 1}, {"a": 9, "b": 3, "c": 1}]:
            h = entropy_of_counts(Counter(counts))
            assert 0.0 <= h <= 1.0

    def test_empty(self):
        assert entropy_of_counts(Counter()) == 0.0


class TestBuild:
    def test_rejects_constant_cfd(self, schema):
        constant = CFD(schema, ["A"], ["B"], {"B": "k"})
        with pytest.raises(ConstraintError):
            EntropyIndex(constant)

    def test_example_6_2_groups(self, phi, example_relation):
        index = EntropyIndex(phi, example_relation)
        g1 = index.group(("a1", "b1", "c1"))
        g2 = index.group(("a2", "b2", "c2"))
        g3 = index.group(("a2", "b2", "c3"))
        assert g1.entropy == pytest.approx(0.811, abs=1e-3)
        assert g2.entropy == 1.0
        assert g3.entropy == 0.0
        assert index.group_count() == 4

    def test_example_6_2_conclusion(self, phi, example_relation):
        """Only the (a1,b1,c1) group is reliably fixable: its entropy is
        below 1 and its majority is e1 (→ t4[E] := e1)."""
        index = EntropyIndex(phi, example_relation)
        best = index.min_entropy_group()
        assert best.key == ("a1", "b1", "c1")
        value, count = best.majority()
        assert (value, count) == ("e1", 3)

    def test_conflicting_groups_sorted(self, phi, example_relation):
        index = EntropyIndex(phi, example_relation)
        entropies = [g.entropy for g in index.conflicting_groups()]
        assert entropies == sorted(entropies)
        assert len(entropies) == 2  # zero-entropy groups excluded

    def test_is_clean(self, phi, schema):
        consistent = Relation.from_dicts(
            schema,
            [dict(A="a", B="b", C="c", E="e", F="f", H="h")] * 3,
        )
        assert EntropyIndex(phi, consistent).is_clean()

    def test_null_lhs_not_indexed(self, phi, schema):
        r = Relation.from_dicts(
            schema, [dict(A=NULL, B="b", C="c", E="e", F="f", H="h")]
        )
        assert EntropyIndex(phi, r).group_count() == 0


class TestMaintenance:
    def test_update_cell_rhs(self, phi, example_relation):
        index = EntropyIndex(phi, example_relation)
        t4 = example_relation.by_tid(3)
        index.update_cell(t4, "E", "e1")
        t4["E"] = "e1"
        group = index.group(("a1", "b1", "c1"))
        assert group.entropy == 0.0
        index.check_consistency(example_relation)

    def test_update_cell_lhs_moves_group(self, phi, example_relation):
        index = EntropyIndex(phi, example_relation)
        t = example_relation.by_tid(0)
        index.update_cell(t, "A", "a2")
        t["A"] = "a2"
        assert index.group(("a2", "b1", "c1")) is not None
        index.check_consistency(example_relation)

    def test_update_unrelated_attr_noop(self, phi, example_relation):
        index = EntropyIndex(phi, example_relation)
        t = example_relation.by_tid(0)
        index.update_cell(t, "H", "zzz")
        t["H"] = "zzz"
        index.check_consistency(example_relation)

    def test_remove_last_tuple_drops_group(self, phi, schema):
        r = Relation.from_dicts(
            schema, [dict(A="a", B="b", C="c", E="e", F="f", H="h")]
        )
        index = EntropyIndex(phi, r)
        index.remove_tuple(r.by_tid(0))
        assert index.group_count() == 0

    def test_add_tuple(self, phi, example_relation, schema):
        index = EntropyIndex(phi, example_relation)
        t = example_relation.add_row(dict(A="a1", B="b1", C="c1", E="e1", F="f", H="h"))
        index.add_tuple(t)
        group = index.group(("a1", "b1", "c1"))
        assert group.size == 5
        index.check_consistency(example_relation)

    def test_majority_tie_is_deterministic(self, phi, schema):
        r = Relation.from_dicts(
            schema,
            [
                dict(A="a", B="b", C="c", E="e1", F="f", H="h"),
                dict(A="a", B="b", C="c", E="e2", F="f", H="h"),
            ],
        )
        index = EntropyIndex(phi, r)
        value, _ = index.group(("a", "b", "c")).majority()
        assert value == "e1"  # lexicographically smallest on ties

    def test_group_of(self, phi, example_relation):
        index = EntropyIndex(phi, example_relation)
        t = example_relation.by_tid(7)
        assert index.group_of(t).key == ("a2", "b2", "c4")
