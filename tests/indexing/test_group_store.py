"""The shared LHS-keyed group store: one grouping, many consumers."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.constraints import CFD, MD
from repro.constraints.rules import derive_rules
from repro.indexing import (
    EntropyIndex,
    GroupStoreRegistry,
    ViolationIndex,
)
from repro.relational import NULL, Relation, Schema

SCHEMA = Schema("R", ["K", "A", "B"])
MASTER_SCHEMA = Schema("Rm", ["K", "B"])
CFDS = [
    CFD(SCHEMA, ["K"], ["A"], name="fd_ka"),
    CFD(SCHEMA, ["A"], ["B"], name="fd_ab"),
]
MDS = [MD(SCHEMA, MASTER_SCHEMA, [("K", "K")], [("B", "B")], name="md_kb")]

keys = st.sampled_from(["k1", "k2", "k3"])
values = st.sampled_from(["a1", "a2", "b1", "b2", NULL])
rows = st.lists(st.tuples(keys, values, values), min_size=1, max_size=12)
steps = st.lists(
    st.one_of(
        st.tuples(st.just("set"), st.integers(0, 11), st.sampled_from(["K", "A", "B"]), values),
        st.tuples(st.just("insert"), keys, values, values),
        st.tuples(st.just("delete"), st.integers(0, 11)),
    ),
    max_size=25,
)


def build(data) -> Relation:
    return Relation.from_dicts(
        SCHEMA, [{"K": k, "A": a, "B": b} for k, a, b in data]
    )


class TestSharing:
    def test_same_cfd_resolves_to_same_store(self):
        relation = build([("k1", "a1", "b1")])
        registry = GroupStoreRegistry(relation)
        assert registry.cfd_store(CFDS[0]) is registry.cfd_store(CFDS[0])

    def test_entropy_index_and_violation_index_share_one_store(self):
        """The ROADMAP 'unify groupings' item: eRepair's entropy stats and
        the violation index partitions of the same CFD are views over ONE
        backing group store — a cell change walks the grouping once."""
        relation = build([("k1", "a1", "b1"), ("k1", "a2", "b1")])
        registry = GroupStoreRegistry(relation)
        rules = derive_rules(CFDS, MDS)
        vindex = ViolationIndex(relation, rules, registry=registry)
        entropy = EntropyIndex(CFDS[0], store=registry.cfd_store(CFDS[0]))
        idx = next(
            i for i, rule in enumerate(rules)
            if getattr(rule, "cfd", None) is CFDS[0]
        )
        assert vindex._cfd_parts[idx] is entropy.store
        # One relation-level observer dispatch updates both consumers.
        t = relation.by_tid(0)
        relation.set_value(t, "A", "zzz")
        group = entropy.store.groups[("k1",)]
        assert "zzz" in group.value_counts
        assert vindex.members(idx, ("k1",)) == [0, 1]
        vindex.detach()
        entropy.detach()

    def test_shared_entropy_index_rejects_direct_mutation(self):
        relation = build([("k1", "a1", "b1")])
        registry = GroupStoreRegistry(relation)
        entropy = EntropyIndex(CFDS[0], store=registry.cfd_store(CFDS[0]))
        try:
            entropy.add_tuple(relation.by_tid(0))
        except RuntimeError:
            pass
        else:  # pragma: no cover
            raise AssertionError("shared EntropyIndex must reject mutators")


class TestCoherence:
    @given(rows, steps)
    @settings(max_examples=60, deadline=None)
    def test_stores_match_fresh_build_under_all_mutations(self, data, ops):
        """Cell edits, inserts and deletes through the relation's observer
        hooks keep every store equal to a freshly built one."""
        relation = build(data)
        registry = GroupStoreRegistry(relation)
        registry.ensure_rules(derive_rules(CFDS, MDS))
        for op in ops:
            live = relation.tids()
            if op[0] == "set" and live:
                t = relation.by_tid(live[op[1] % len(live)])
                relation.set_value(t, op[2], op[3])
            elif op[0] == "insert":
                relation.add_row({"K": op[1], "A": op[2], "B": op[3]})
            elif op[0] == "delete" and len(live) > 1:
                relation.remove(live[op[1] % len(live)])
        registry.check_consistency()
        registry.detach()

    @given(rows, steps)
    @settings(max_examples=40, deadline=None)
    def test_entropy_view_tracks_shared_store(self, data, ops):
        relation = build(data)
        registry = GroupStoreRegistry(relation)
        entropy = EntropyIndex(CFDS[1], store=registry.cfd_store(CFDS[1]))
        for op in ops:
            live = relation.tids()
            if op[0] == "set" and live:
                relation.set_value(relation.by_tid(live[op[1] % len(live)]), op[2], op[3])
            elif op[0] == "insert":
                relation.add_row({"K": op[1], "A": op[2], "B": op[3]})
            elif op[0] == "delete" and len(live) > 1:
                relation.remove(live[op[1] % len(live)])
        entropy.check_consistency(relation)
        entropy.detach()
        registry.detach()


class TestKeyInterning:
    """ISSUE 4 micro-opt: identical LHS keys resolve to one canonical
    tuple, so re-keying on the group-rewrite hot loop stops allocating
    (and re-hashing) equal tuples."""

    def test_rekeying_returns_canonical_tuples(self):
        relation = build([("k1", "a1", "b1"), ("k2", "a1", "b2")])
        registry = GroupStoreRegistry(relation)
        store = registry.cfd_store(CFDS[0])
        t0, t1 = relation.by_tid(0), relation.by_tid(1)
        # Move t1 into t0's group and back, twice: every materialization
        # of the same key must be the same object.
        seen = []
        for _ in range(2):
            relation.set_value(t1, "K", "k1")
            seen.append(store.key_of[1])
            relation.set_value(t1, "K", "k2")
            seen.append(store.key_of[1])
        assert seen[0] is seen[2] and seen[1] is seen[3]
        assert store.key_of[0] is seen[0]
        assert store.intern_key(("k1",)) is seen[0]
        registry.detach()

    def test_md_blocking_keys_are_interned(self):
        relation = build([("k1", "a1", "b1"), ("k1", "a2", "b2")])
        registry = GroupStoreRegistry(relation)
        store = registry.md_store(MDS[0])
        assert store.key_of[0] is store.key_of[1]
        t1 = relation.by_tid(1)
        relation.set_value(t1, "K", "k2")
        relation.set_value(t1, "K", "k1")
        assert store.key_of[1] is store.key_of[0]
        registry.detach()
