"""Tests for MD blocking indexes."""

import pytest

from repro.constraints import MD
from repro.indexing import ExactIndex, MDBlockingIndex, build_md_indexes
from repro.relational import NULL, Relation, Schema
from repro.relational.columns import using_match_engine
from repro.similarity import edit_within


@pytest.fixture()
def schema() -> Schema:
    return Schema("R", ["name", "zip", "phone"])


@pytest.fixture()
def master(schema) -> Relation:
    return Relation.from_dicts(
        schema,
        [
            {"name": "edinburgh royal", "zip": "11111", "phone": "101"},
            {"name": "london general", "zip": "22222", "phone": "202"},
            {"name": "glasgow central", "zip": "11111", "phone": "303"},
            {"name": "aberdeen north", "zip": NULL, "phone": "404"},
        ],
    )


class TestExactIndex:
    def test_lookup(self, schema, master):
        index = ExactIndex(master, ["zip"])
        assert {t.tid for t in index.lookup(("11111",))} == {0, 2}
        assert index.lookup(("99999",)) == []

    def test_nulls_skipped(self, schema, master):
        index = ExactIndex(master, ["zip"])
        assert all(t.tid != 3 for bucket in [index.lookup(("11111",))] for t in bucket)
        assert index.bucket_count() == 2

    def test_lookup_tuple(self, schema, master):
        index = ExactIndex(master, ["zip"])
        probe = master.by_tid(0)
        assert probe in index.lookup_tuple(probe, ["zip"])

    def test_multi_attribute_key(self, schema, master):
        index = ExactIndex(master, ["zip", "phone"])
        assert [t.tid for t in index.lookup(("11111", "101"))] == [0]


class TestMDBlockingIndex:
    @pytest.fixture()
    def eq_md(self, schema) -> MD:
        return MD(schema, schema, [("zip", "zip")], [("phone", "phone")])

    @pytest.fixture()
    def sim_md(self, schema) -> MD:
        return MD(schema, schema, [("name", "name", edit_within(2))], [("phone", "phone")])

    def test_equality_candidates_are_bucket(self, schema, master, eq_md):
        index = MDBlockingIndex(eq_md, master)
        probe = Relation.from_dicts(schema, [{"zip": "11111", "name": "x", "phone": "y"}])
        candidates = index.candidates(probe.by_tid(0))
        assert {t.tid for t in candidates} == {0, 2}

    def test_null_key_no_candidates(self, schema, master, eq_md):
        index = MDBlockingIndex(eq_md, master)
        probe = Relation.from_dicts(schema, [{"zip": NULL, "name": "x", "phone": "y"}])
        assert index.candidates(probe.by_tid(0)) == []

    def test_similarity_blocking_finds_typo(self, schema, master, sim_md):
        index = MDBlockingIndex(sim_md, master, top_l=4)
        probe = Relation.from_dicts(
            schema, [{"name": "edinburh royal", "zip": "z", "phone": "p"}]  # 1 deletion
        )
        matches = index.matches(probe.by_tid(0))
        assert [s.tid for s in matches] == [0]

    def test_full_scan_fallback(self, schema, master, sim_md):
        index = MDBlockingIndex(sim_md, master, use_suffix_tree=False)
        probe = Relation.from_dicts(
            schema, [{"name": "edinburh royal", "zip": "z", "phone": "p"}]
        )
        assert len(index.candidates(probe.by_tid(0))) == len(master)
        assert [s.tid for s in index.matches(probe.by_tid(0))] == [0]

    def test_find_match_deterministic(self, schema, master, eq_md):
        index = MDBlockingIndex(eq_md, master)
        probe = Relation.from_dicts(schema, [{"zip": "11111", "name": "x", "phone": "y"}])
        match = index.find_match(probe.by_tid(0))
        assert match.tid == 0  # smallest master tid

    def test_find_match_none(self, schema, master, eq_md):
        index = MDBlockingIndex(eq_md, master)
        probe = Relation.from_dicts(schema, [{"zip": "00000", "name": "x", "phone": "y"}])
        assert index.find_match(probe.by_tid(0)) is None

    def test_build_md_indexes_normalizes(self, schema, master):
        md = MD(schema, schema, [("zip", "zip")], [("phone", "phone"), ("name", "name")])
        indexes = build_md_indexes([md], master)
        assert len(indexes) == 2
        assert all(index.md.is_normalized for index in indexes.values())


class TestTopLDroppedMatchRegression:
    """The lossy-default regression: top-``l`` LCS retrieval can silently
    drop a true match when ``l`` decoys out-rank it on LCS length.  The
    join engine — now the default — is exhaustive on the same workload.
    """

    @pytest.fixture()
    def schema(self) -> Schema:
        return Schema("R", ["name", "phone"])

    @pytest.fixture()
    def master(self, schema) -> Relation:
        # Six decoys contain the probe "abcdefgh" verbatim (LCS 8, edit
        # distance huge); the single true edit<=1 match "abcdefgx" only
        # reaches LCS 7, so top-l=4 retrieval keeps decoys exclusively.
        rows = [
            {"name": f"abcdefgh suffix {i:02d}", "phone": str(i)} for i in range(6)
        ]
        rows.append({"name": "abcdefgx", "phone": "99"})
        return Relation.from_dicts(schema, rows)

    @pytest.fixture()
    def md(self, schema) -> MD:
        return MD(schema, schema, [("name", "name", edit_within(1))], [("phone", "phone")])

    @pytest.fixture()
    def probe(self, schema):
        return Relation.from_dicts(
            schema, [{"name": "abcdefgh", "phone": "p"}]
        ).by_tid(0)

    def test_reference_engine_drops_the_true_match(self, md, master, probe):
        index = MDBlockingIndex(md, master, top_l=4, engine="reference")
        assert not index.is_exact
        assert index.matches(probe) == []  # silently lossy

    def test_join_engine_finds_it_and_is_exact(self, md, master, probe):
        index = MDBlockingIndex(md, master, top_l=4, engine="join")
        assert index.is_exact
        assert [s.tid for s in index.matches(probe)] == [6]

    def test_exhaustive_scan_agrees_with_join(self, md, master, probe):
        scan = MDBlockingIndex(md, master, use_suffix_tree=False, engine="reference")
        join = MDBlockingIndex(md, master, engine="join")
        assert [s.tid for s in join.matches(probe)] == [
            s.tid for s in scan.matches(probe)
        ]

    def test_join_is_the_default_engine(self, md, master, probe):
        with using_match_engine("join"):
            index = MDBlockingIndex(md, master, top_l=4)
            assert index.engine == "join"
            assert index.is_exact
            assert [s.tid for s in index.matches(probe)] == [6]

    def test_warm_cache_round_trip_under_join(self, md, master, probe):
        index = MDBlockingIndex(md, master, engine="join")
        first = index.cached_matches(probe)
        entries = index.cache_entries()
        fresh = MDBlockingIndex(md, master, engine="join")
        fresh.warm_cache(entries)
        assert [s.tid for s in fresh.cached_matches(probe)] == [
            s.tid for s in first
        ]
        # the warmed cache answered without a new probe
        assert fresh.join_index.stats["probes"] == 0
