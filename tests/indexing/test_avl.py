"""Tests for the AVL tree."""

import random

import pytest

from repro.indexing import AVLTree


class TestBasics:
    def test_insert_and_get(self):
        tree = AVLTree()
        tree.insert(2, "two")
        tree.insert(1, "one")
        assert tree.get(1) == "one"
        assert tree.get(9, "dflt") == "dflt"

    def test_duplicate_key_rejected(self):
        tree = AVLTree()
        tree.insert(1, "a")
        with pytest.raises(KeyError):
            tree.insert(1, "b")

    def test_contains(self):
        tree = AVLTree()
        tree.insert(5, None)
        assert 5 in tree and 6 not in tree

    def test_len_and_bool(self):
        tree = AVLTree()
        assert not tree and len(tree) == 0
        tree.insert(1, 1)
        assert tree and len(tree) == 1

    def test_min_max(self):
        tree = AVLTree()
        for k in [5, 1, 9, 3]:
            tree.insert(k, str(k))
        assert tree.min() == (1, "1")
        assert tree.max() == (9, "9")

    def test_min_of_empty(self):
        with pytest.raises(KeyError):
            AVLTree().min()
        with pytest.raises(KeyError):
            AVLTree().max()

    def test_delete(self):
        tree = AVLTree()
        for k in [2, 1, 3]:
            tree.insert(k, k)
        tree.delete(2)
        assert 2 not in tree and len(tree) == 2

    def test_delete_missing(self):
        tree = AVLTree()
        with pytest.raises(KeyError):
            tree.delete(1)

    def test_items_in_order(self):
        tree = AVLTree()
        keys = [7, 3, 9, 1, 5]
        for k in keys:
            tree.insert(k, None)
        assert list(tree.keys()) == sorted(keys)


class TestBalance:
    def test_height_logarithmic_on_sorted_insert(self):
        tree = AVLTree()
        for k in range(1024):
            tree.insert(k, None)
        assert tree.height() <= 11  # 1.44 * log2(1024) ≈ 14.4; AVL ≈ 11

    def test_invariants_under_random_workload(self):
        rng = random.Random(42)
        tree = AVLTree()
        present = set()
        for _ in range(2000):
            k = rng.randrange(300)
            if k in present and rng.random() < 0.5:
                tree.delete(k)
                present.discard(k)
            elif k not in present:
                tree.insert(k, k)
                present.add(k)
            if rng.random() < 0.02:
                tree.check_invariants()
        tree.check_invariants()
        assert sorted(present) == list(tree.keys())

    def test_delete_two_children(self):
        tree = AVLTree()
        for k in [50, 25, 75, 10, 30, 60, 90]:
            tree.insert(k, k)
        tree.delete(50)  # root with two children
        tree.check_invariants()
        assert list(tree.keys()) == [10, 25, 30, 60, 75, 90]

    def test_tuple_keys(self):
        tree = AVLTree()
        tree.insert((0.5, "a"), 1)
        tree.insert((0.5, "b"), 2)
        tree.insert((0.1, "z"), 3)
        assert tree.min() == ((0.1, "z"), 3)
