"""End-to-end pipeline runs over the generated benchmark datasets."""

import pytest

from repro.core import FixKind, UniCleanConfig, is_clean
from repro.datasets import generate_dblp, generate_hosp, generate_tpch
from repro.evaluation import matching_metrics, repair_metrics, run_uniclean
from repro.matching import MDMatcher, SortedNeighborhood


@pytest.fixture(scope="module")
def hosp():
    return generate_hosp(size=120, master_size=70, noise_rate=0.06)


@pytest.fixture(scope="module")
def hosp_result(hosp):
    return run_uniclean(hosp, UniCleanConfig(eta=1.0))


class TestHospPipeline:
    def test_repair_is_consistent(self, hosp, hosp_result):
        assert is_clean(hosp_result.repaired, hosp.cfds, hosp.mds, hosp.master)

    def test_precision_high(self, hosp, hosp_result):
        m = repair_metrics(hosp.dirty, hosp_result.repaired, hosp.clean)
        assert m.precision >= 0.9

    def test_recall_substantial(self, hosp, hosp_result):
        m = repair_metrics(hosp.dirty, hosp_result.repaired, hosp.clean)
        assert m.recall >= 0.4

    def test_deterministic_fixes_nearly_perfect(self, hosp, hosp_result):
        det = hosp_result.fix_log.marked_cells(FixKind.DETERMINISTIC)
        if not det:
            pytest.skip("no deterministic fixes in this draw")
        correct = sum(
            1
            for tid, attr in det
            if hosp_result.repaired.by_tid(tid)[attr] == hosp.clean.by_tid(tid)[attr]
        )
        assert correct / len(det) >= 0.95

    def test_matching_beats_sortn(self, hosp, hosp_result):
        uni = matching_metrics(
            MDMatcher(hosp.mds, hosp.master).match(hosp_result.repaired).pairs,
            hosp.true_matches,
        )
        sortn = matching_metrics(
            SortedNeighborhood(hosp.mds, hosp.master, window=10).match(hosp.dirty).pairs,
            hosp.true_matches,
        )
        assert uni.f1 >= sortn.f1 - 0.02


class TestDblpPipeline:
    @pytest.fixture(scope="class")
    def dblp(self):
        return generate_dblp(size=120, master_size=70, noise_rate=0.06)

    def test_pipeline(self, dblp):
        result = run_uniclean(dblp, UniCleanConfig(eta=1.0))
        assert is_clean(result.repaired, dblp.cfds, dblp.mds, dblp.master)
        m = repair_metrics(dblp.dirty, result.repaired, dblp.clean)
        assert m.precision >= 0.85

    def test_mds_add_recall(self, dblp):
        with_mds = run_uniclean(dblp, UniCleanConfig(eta=1.0))
        without = run_uniclean(dblp, UniCleanConfig(eta=1.0), with_mds=False)
        m_with = repair_metrics(dblp.dirty, with_mds.repaired, dblp.clean)
        m_without = repair_metrics(dblp.dirty, without.repaired, dblp.clean)
        assert m_with.recall >= m_without.recall


class TestTpchPipeline:
    def test_pipeline(self):
        ds = generate_tpch(size=100, master_size=60, noise_rate=0.06)
        result = run_uniclean(ds, UniCleanConfig(eta=1.0))
        assert is_clean(result.repaired, ds.cfds, ds.mds, ds.master)
        m = repair_metrics(ds.dirty, result.repaired, ds.clean)
        assert m.precision >= 0.85 and m.recall >= 0.5

    def test_rule_subsets_run(self):
        ds = generate_tpch(size=60, master_size=40, n_cfds=20, n_mds=3)
        result = run_uniclean(ds, UniCleanConfig(eta=1.0))
        assert result.clean
