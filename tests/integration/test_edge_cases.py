"""Failure injection and degenerate inputs through the whole pipeline."""

import pytest

from repro.constraints import CFD, MD
from repro.core import UniClean, UniCleanConfig, crepair, erepair, hrepair, is_clean
from repro.relational import NULL, Relation, Schema, from_csv_string, to_csv_string


@pytest.fixture()
def schema():
    return Schema("R", ["K", "V"])


class TestDegenerateInputs:
    def test_empty_relation(self, schema):
        cleaner = UniClean(cfds=[CFD(schema, ["K"], ["V"])])
        result = cleaner.clean(Relation(schema))
        assert result.clean and len(result.fix_log) == 0

    def test_single_tuple(self, schema):
        cleaner = UniClean(cfds=[CFD(schema, ["K"], ["V"])])
        relation = Relation.from_dicts(schema, [{"K": "k", "V": "v"}])
        result = cleaner.clean(relation)
        assert result.clean and result.cost == 0.0

    def test_all_null_relation(self, schema):
        cleaner = UniClean(
            cfds=[
                CFD(schema, ["K"], ["V"]),
                CFD(schema, ["K"], ["V"], {"K": "k", "V": "x"}),
            ]
        )
        relation = Relation.from_dicts(schema, [{"K": NULL, "V": NULL}] * 3)
        result = cleaner.clean(relation)
        # Nulls never match patterns: nothing to do, trivially clean.
        assert result.clean and len(result.fix_log) == 0

    def test_no_rules(self, schema):
        cleaner = UniClean(cfds=[], mds=[])
        relation = Relation.from_dicts(schema, [{"K": "a", "V": "b"}])
        result = cleaner.clean(relation)
        assert result.clean and result.cost == 0.0

    def test_empty_master(self, schema):
        md = MD(schema, schema, [("K", "K")], [("V", "V")])
        master = Relation(schema)
        relation = Relation.from_dicts(schema, [{"K": "k", "V": "v"}])
        cleaner = UniClean(cfds=[], mds=[md], master=master)
        result = cleaner.clean(relation)
        assert result.clean  # no master tuples → no MD obligations

    def test_already_clean_input(self, schema):
        cfd = CFD(schema, ["K"], ["V"])
        relation = Relation.from_dicts(
            schema, [{"K": "k", "V": "v"}, {"K": "k", "V": "v"}]
        )
        for phase in (crepair, erepair):
            assert len(phase(relation, [cfd]).fix_log) == 0
        assert len(hrepair(relation, [cfd]).fix_log) == 0


class TestAdversarialConfidences:
    def test_all_asserted_conflicting(self, schema):
        """Everything confidence-1 but inconsistent: cRepair must not
        touch anything; hRepair still reaches (null-tolerant)
        consistency without changing asserted... note: only cells that
        cRepair *fixed* are protected, so hRepair may edit the rest."""
        cfd = CFD(schema, ["K"], ["V"])
        relation = Relation.from_dicts(
            schema,
            [{"K": "k", "V": "a"}, {"K": "k", "V": "b"}],
            [{"K": 1.0, "V": 1.0}, {"K": 1.0, "V": 1.0}],
        )
        c = crepair(relation, [cfd], eta=0.8)
        assert c.deterministic_fixes == 0
        result = UniClean(cfds=[cfd], config=UniCleanConfig(eta=0.8)).clean(relation)
        assert result.clean

    def test_confidence_none_everywhere(self, schema):
        cfd = CFD(schema, ["K"], ["V"], {"K": "k", "V": "x"})
        relation = Relation.from_dicts(schema, [{"K": "k", "V": "bad"}])
        result = UniClean(cfds=[cfd], config=UniCleanConfig(eta=0.8)).clean(relation)
        assert result.repaired.by_tid(0)["V"] == "x"
        assert result.clean


class TestCsvPipelineRoundTrip:
    def test_clean_csv_loaded_relation(self, schema):
        """Data loaded from CSV (values + confidences) cleans identically
        to the in-memory original."""
        cfd = CFD(schema, ["K"], ["V"], {"K": "k", "V": "good"})
        relation = Relation.from_dicts(
            schema,
            [{"K": "k", "V": "bad"}, {"K": "o", "V": NULL}],
            [{"K": 1.0, "V": 0.0}, {"K": 0.5, "V": None}],
        )
        loaded = from_csv_string(schema, to_csv_string(relation))
        cleaner = UniClean(cfds=[cfd], config=UniCleanConfig(eta=0.8))
        a = cleaner.clean(relation)
        b = cleaner.clean(loaded)
        assert [t.as_dict() for t in a.repaired] == [t.as_dict() for t in b.repaired]


class TestScaleSmoke:
    def test_wide_schema_many_rules(self):
        """A 58-attribute TPC-H instance with the full rule set runs the
        whole pipeline within sane bounds."""
        from repro.datasets import generate_tpch
        from repro.evaluation import run_uniclean
        ds = generate_tpch(size=60, master_size=40, noise_rate=0.1)
        result = run_uniclean(ds, UniCleanConfig(eta=1.0))
        assert result.clean
        assert result.total_time < 30.0
