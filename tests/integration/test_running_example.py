"""End-to-end reproduction of the paper's running example (Example 1.1).

The bank's fraud scenario: transactions t3 (UK) and t4 (USA) at the same
time look unrelated in the dirty data — "t3 and t4 are quite different in
their FN, city, St, post and Phn attributes.  No rule allows us to
identify the two tuples directly."  A sequence of interleaved matching
and repairing operations (steps (a)–(d)) makes them agree on every
personal attribute, exposing the fraud.
"""

import pytest

from repro.core import FixKind, UniClean, UniCleanConfig
from repro.matching import MDMatcher
from repro.constraints import embed_negative, satisfies_all


@pytest.fixture()
def result(paper_rules, master_card, dirty_tran):
    cleaner = UniClean(
        cfds=paper_rules.cfds,
        mds=paper_rules.mds,
        negative_mds=paper_rules.negative_mds,
        master=master_card,
        config=UniCleanConfig(eta=0.8),
    )
    return cleaner.clean(dirty_tran)


class TestStepByStep:
    def test_step_a_repair_t3_city_and_fn(self, result):
        """(a) t3[city] = Ldn via φ2 and t3[FN] = Robert via φ4."""
        t3 = result.repaired.by_tid(2)
        assert t3["city"] == "Ldn"
        assert t3["FN"] == "Robert"

    def test_step_b_c_match_t3_with_s2_and_fix_phn(self, result, master_card, paper_rules):
        """(b)+(c) t3 matches master s2; its phone is corrected from
        s2[tel]."""
        t3 = result.repaired.by_tid(2)
        s2 = master_card.by_tid(1)
        assert t3["phn"] == s2["tel"] == "3887644"
        mds = embed_negative(paper_rules.mds, paper_rules.negative_mds)
        assert any(md.premise_holds(t3, s2) for md in mds)

    def test_step_d_enrich_t4_from_t3(self, result):
        """(d) t4[St] enriched and t4[post] fixed from t3 via φ3."""
        t4 = result.repaired.by_tid(3)
        assert t4["St"] == "5 Wren St"
        assert t4["post"] == "WC1H 9SE"

    def test_fraud_exposed(self, result):
        """t3 and t4 agree on every personal attribute — same person,
        purchases in the UK and the US at about the same time."""
        t3, t4 = result.repaired.by_tid(2), result.repaired.by_tid(3)
        personal = ["FN", "LN", "St", "city", "AC", "post", "phn", "gd"]
        assert all(t3[a] == t4[a] for a in personal)


class TestOutcome:
    def test_repair_consistent(self, result, paper_rules):
        assert result.clean
        assert satisfies_all(result.repaired, paper_rules.cfds)

    def test_t1_t2_identified_with_s1(self, result, master_card, paper_rules):
        """t1 and t2 both describe Mark Smith (master s1) after cleaning."""
        mds = embed_negative(paper_rules.mds, paper_rules.negative_mds)
        matches = MDMatcher(mds, master_card).match(result.repaired)
        assert (0, 0) in matches.pairs
        assert (1, 0) in matches.pairs

    def test_deterministic_fixes_match_example_5_2(self, result):
        det = result.fix_log.marked_cells(FixKind.DETERMINISTIC)
        # Example 5.2: t1.city, t1.phn, t2.St (and the post/AC parts of φ3),
        # t3.city are deterministic.
        assert (0, "city") in det
        assert (0, "phn") in det
        assert (1, "St") in det
        assert (2, "city") in det

    def test_no_spurious_changes(self, result, dirty_tran):
        """Attributes with no applicable rule stay untouched."""
        for tid in dirty_tran.tids():
            assert result.repaired.by_tid(tid)["LN"] == dirty_tran.by_tid(tid)["LN"]
            assert result.repaired.by_tid(tid)["gd"] == dirty_tran.by_tid(tid)["gd"]
