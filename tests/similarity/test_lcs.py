"""Tests for longest-common-substring utilities and the blocking bound."""

import pytest

from repro.similarity import (
    common_prefix_length,
    edit_distance,
    lcs_blocking_bound,
    lcs_similarity,
    longest_common_substring,
    longest_common_substring_length,
    passes_lcs_filter,
    split_bound_pieces,
)


class TestLCSLength:
    @pytest.mark.parametrize(
        "a,b,expected",
        [
            ("", "", 0),
            ("abc", "", 0),
            ("abc", "abc", 3),
            ("robert", "bob", 2),
            ("abcdef", "zabcy", 3),
            ("xyz", "abc", 0),
            ("banana", "anan", 4),
        ],
    )
    def test_known(self, a, b, expected):
        assert longest_common_substring_length(a, b) == expected

    def test_symmetry(self):
        assert longest_common_substring_length("abcde", "cdexy") == \
            longest_common_substring_length("cdexy", "abcde")


class TestLCSString:
    def test_returns_actual_substring(self):
        out = longest_common_substring("abcdef", "zabcy")
        assert out == "abc"

    def test_substring_of_both(self):
        a, b = "interaction", "matching"
        out = longest_common_substring(a, b)
        assert out in a and out in b
        assert len(out) == longest_common_substring_length(a, b)

    def test_empty(self):
        assert longest_common_substring("", "x") == ""


class TestBlockingBound:
    def test_formula(self):
        assert lcs_blocking_bound(10, 8, 4) == pytest.approx(1.2)
        assert lcs_blocking_bound(1, 0, 1) == 0.0

    def test_negative_k(self):
        with pytest.raises(ValueError):
            lcs_blocking_bound(5, 5, -1)

    def test_filter_never_drops_true_matches(self):
        # Section 5.2 soundness: edit_distance <= k implies the LCS bound.
        pairs = [
            ("robert", "robbert"),
            ("hospital", "hspital"),
            ("abcdefgh", "abcdxfgh"),
            ("mark", "marc"),
        ]
        for a, b in pairs:
            k = edit_distance(a, b)
            assert passes_lcs_filter(a, b, k), (a, b, k)

    def test_filter_prunes_distant_pairs(self):
        assert not passes_lcs_filter("aaaaaaaa", "bbbbbbbb", 1)


class TestLCSSimilarity:
    def test_identical(self):
        assert lcs_similarity("abc", "abc") == 1.0

    def test_empty_pair(self):
        assert lcs_similarity("", "") == 1.0

    def test_bounds(self):
        assert 0.0 <= lcs_similarity("robert", "bob") <= 1.0


class TestHelpers:
    def test_common_prefix_length(self):
        assert common_prefix_length("abcd", "abxy") == 2
        assert common_prefix_length("", "x") == 0

    def test_split_bound_pieces_cover_string(self):
        s = "abcdefghij"
        pieces = split_bound_pieces(s, 3)
        assert "".join(pieces) == s
        assert len(pieces) == 4

    def test_split_bound_pieces_negative_k(self):
        with pytest.raises(ValueError):
            split_bound_pieces("abc", -1)

    def test_pigeonhole_intuition(self):
        # At most k edits leave at least one of the k+1 pieces untouched.
        s = "abcdefghijkl"
        k = 2
        corrupted = "Xbcdefghijkl"  # one substitution
        pieces = split_bound_pieces(s, k)
        assert any(p in corrupted for p in pieces)
