"""Tests for q-grams and Jaccard similarity."""

import pytest

from repro.similarity import (
    jaccard_similarity,
    overlap_coefficient,
    qgram_set,
    qgram_similarity,
    qgrams,
    token_jaccard,
)


class TestQgrams:
    def test_padded_bigrams(self):
        grams = qgrams("ab", q=2)
        assert grams == {"#a": 1, "ab": 1, "b#": 1}

    def test_unpadded(self):
        grams = qgrams("abc", q=2, pad=False)
        assert grams == {"ab": 1, "bc": 1}

    def test_multiplicities_counted(self):
        grams = qgrams("aaa", q=2, pad=False)
        assert grams["aa"] == 2

    def test_q1_is_characters(self):
        assert qgrams("aba", q=1) == {"a": 2, "b": 1}

    def test_short_string_unpadded(self):
        assert qgrams("a", q=3, pad=False) == {"a": 1}

    def test_empty_string(self):
        assert qgrams("", q=2, pad=False) == {}

    def test_invalid_q(self):
        with pytest.raises(ValueError):
            qgrams("abc", q=0)

    def test_qgram_set_drops_counts(self):
        assert qgram_set("aaa", q=2, pad=False) == frozenset({"aa"})


class TestJaccard:
    def test_identical_sets(self):
        assert jaccard_similarity({1, 2}, {1, 2}) == 1.0

    def test_disjoint(self):
        assert jaccard_similarity({1}, {2}) == 0.0

    def test_both_empty(self):
        assert jaccard_similarity(set(), set()) == 1.0

    def test_partial(self):
        assert jaccard_similarity({1, 2, 3}, {2, 3, 4}) == 0.5


class TestQgramSimilarity:
    def test_identical(self):
        assert qgram_similarity("abc", "abc") == 1.0

    def test_disjoint(self):
        assert qgram_similarity("abc", "xyz") == 0.0

    def test_symmetry(self):
        assert qgram_similarity("night", "nacht") == qgram_similarity("nacht", "night")

    def test_in_bounds(self):
        assert 0.0 < qgram_similarity("night", "nacht") < 1.0


class TestTokenJaccard:
    def test_shared_tokens(self):
        assert token_jaccard("data cleaning rules", "cleaning data") == pytest.approx(2 / 3)

    def test_identical(self):
        assert token_jaccard("a b", "b a") == 1.0


class TestOverlap:
    def test_subset_is_one(self):
        assert overlap_coefficient({1, 2}, {1, 2, 3}) == 1.0

    def test_empty_one_side(self):
        assert overlap_coefficient(set(), {1}) == 0.0

    def test_both_empty(self):
        assert overlap_coefficient(set(), set()) == 1.0
