"""Tests for Hamming distance."""

import pytest

from repro.exceptions import DataError
from repro.similarity import hamming_distance, hamming_similarity, within_hamming_distance


class TestHammingDistance:
    @pytest.mark.parametrize(
        "a,b,expected",
        [
            ("", "", 0),
            ("abc", "abc", 0),
            ("karolin", "kathrin", 3),
            ("1011101", "1001001", 2),
            ("abc", "xyz", 3),
        ],
    )
    def test_known(self, a, b, expected):
        assert hamming_distance(a, b) == expected

    def test_unequal_lengths_raise(self):
        with pytest.raises(DataError):
            hamming_distance("ab", "abc")


class TestHammingSimilarity:
    def test_identical(self):
        assert hamming_similarity("abc", "abc") == 1.0

    def test_empty(self):
        assert hamming_similarity("", "") == 1.0

    def test_half(self):
        assert hamming_similarity("ab", "ax") == 0.5


class TestWithinHamming:
    def test_within(self):
        assert within_hamming_distance("karolin", "kathrin", 3)

    def test_not_within(self):
        assert not within_hamming_distance("karolin", "kathrin", 2)

    def test_length_mismatch_is_false_not_error(self):
        assert not within_hamming_distance("ab", "abc", 10)

    def test_negative_budget(self):
        assert not within_hamming_distance("a", "a", -1)

    def test_early_exit_correctness(self):
        assert within_hamming_distance("aaaa", "aaab", 1)
        assert not within_hamming_distance("aaxx", "aayy", 1)
