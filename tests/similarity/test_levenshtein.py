"""Tests for edit distance and edit similarity."""

import pytest

from repro.similarity import edit_distance, edit_similarity, within_edit_distance


class TestEditDistance:
    @pytest.mark.parametrize(
        "a,b,expected",
        [
            ("", "", 0),
            ("a", "", 1),
            ("", "abc", 3),
            ("abc", "abc", 0),
            ("kitten", "sitting", 3),
            ("flaw", "lawn", 2),
            ("Bob", "Robert", 4),
            ("Mark", "Marc", 1),
            ("M.", "Mark", 3),
            ("intention", "execution", 5),
            ("abcdef", "abXdef", 1),  # exercises prefix/suffix stripping
            ("aaaa", "aaa", 1),
            ("xy", "yx", 2),
        ],
    )
    def test_known_distances(self, a, b, expected):
        assert edit_distance(a, b) == expected

    def test_symmetry(self):
        assert edit_distance("sunday", "saturday") == edit_distance("saturday", "sunday")

    def test_max_distance_early_exit_over(self):
        # Result only needs to exceed the bound, not be exact.
        assert edit_distance("aaaaaaaa", "bbbbbbbb", max_distance=2) > 2

    def test_max_distance_exact_when_within(self):
        assert edit_distance("kitten", "sitting", max_distance=5) == 3

    def test_max_distance_length_gap(self):
        assert edit_distance("a", "abcdefgh", max_distance=3) == 4  # bound + 1


class TestWithinEditDistance:
    def test_true_at_bound(self):
        assert within_edit_distance("kitten", "sitting", 3)

    def test_false_below_bound(self):
        assert not within_edit_distance("kitten", "sitting", 2)

    def test_negative_bound(self):
        assert not within_edit_distance("a", "a", -1)

    def test_zero_bound_equal(self):
        assert within_edit_distance("same", "same", 0)


class TestEditSimilarity:
    def test_identical(self):
        assert edit_similarity("abc", "abc") == 1.0

    def test_disjoint(self):
        assert edit_similarity("abc", "xyz") == 0.0

    def test_empty_pair(self):
        assert edit_similarity("", "") == 1.0

    def test_normalization_by_longer_string(self):
        # One edit in a long string is closer than one edit in a short one
        # (the paper's normalization rationale, Section 3.1).
        assert edit_similarity("abcdefghij", "abcdefghiX") > edit_similarity("ab", "aX")

    def test_bounds(self):
        assert 0.0 <= edit_similarity("hello", "help") <= 1.0


class TestBandedAgainstClassicDP:
    """ISSUE 3: adversarial coverage for the banded thresholded DP.

    The contract: ``edit_distance(a, b, max_distance=k)`` equals the
    true distance when it is ≤ k, and exactly ``k + 1`` otherwise.
    Fuzzed against the textbook full-matrix DP over small alphabets
    (including unicode), lengths 0–8 and bounds 0–4.
    """

    @staticmethod
    def classic(a: str, b: str) -> int:
        rows = len(a) + 1
        cols = len(b) + 1
        dp = [[0] * cols for _ in range(rows)]
        for i in range(rows):
            dp[i][0] = i
        for j in range(cols):
            dp[0][j] = j
        for i in range(1, rows):
            for j in range(1, cols):
                cost = 0 if a[i - 1] == b[j - 1] else 1
                dp[i][j] = min(
                    dp[i - 1][j] + 1,
                    dp[i][j - 1] + 1,
                    dp[i - 1][j - 1] + cost,
                )
        return dp[-1][-1]

    def check(self, a: str, b: str, k: int) -> None:
        true_distance = self.classic(a, b)
        banded = edit_distance(a, b, max_distance=k)
        expected = true_distance if true_distance <= k else k + 1
        assert banded == expected, (a, b, k, banded, expected)
        assert within_edit_distance(a, b, k) == (true_distance <= k)

    def test_property_small_alphabet(self):
        from hypothesis import given, settings
        from hypothesis import strategies as st

        @settings(max_examples=400, deadline=None)
        @given(
            a=st.text(alphabet="ab", max_size=8),
            b=st.text(alphabet="ab", max_size=8),
            k=st.integers(min_value=0, max_value=4),
        )
        def run(a, b, k):
            self.check(a, b, k)

        run()

    def test_property_three_letters(self):
        from hypothesis import given, settings
        from hypothesis import strategies as st

        @settings(max_examples=300, deadline=None)
        @given(
            a=st.text(alphabet="abc", max_size=7),
            b=st.text(alphabet="abc", max_size=7),
            k=st.integers(min_value=0, max_value=3),
        )
        def run(a, b, k):
            self.check(a, b, k)

        run()

    def test_property_unicode(self):
        from hypothesis import given, settings
        from hypothesis import strategies as st

        @settings(max_examples=200, deadline=None)
        @given(
            a=st.text(alphabet="αβñ", max_size=6),
            b=st.text(alphabet="αβñ", max_size=6),
            k=st.integers(min_value=0, max_value=4),
        )
        def run(a, b, k):
            self.check(a, b, k)

        run()

    @pytest.mark.parametrize("k", range(5))
    @pytest.mark.parametrize(
        "a,b",
        [
            ("", ""),
            ("", "abcd"),
            ("abcd", ""),
            ("aaaa", "aaab"),
            ("ñandú", "nandu"),
            ("αβγ", "αγβ"),
        ],
    )
    def test_edges(self, a, b, k):
        self.check(a, b, k)
