"""Tests for edit distance and edit similarity."""

import pytest

from repro.similarity import edit_distance, edit_similarity, within_edit_distance


class TestEditDistance:
    @pytest.mark.parametrize(
        "a,b,expected",
        [
            ("", "", 0),
            ("a", "", 1),
            ("", "abc", 3),
            ("abc", "abc", 0),
            ("kitten", "sitting", 3),
            ("flaw", "lawn", 2),
            ("Bob", "Robert", 4),
            ("Mark", "Marc", 1),
            ("M.", "Mark", 3),
            ("intention", "execution", 5),
            ("abcdef", "abXdef", 1),  # exercises prefix/suffix stripping
            ("aaaa", "aaa", 1),
            ("xy", "yx", 2),
        ],
    )
    def test_known_distances(self, a, b, expected):
        assert edit_distance(a, b) == expected

    def test_symmetry(self):
        assert edit_distance("sunday", "saturday") == edit_distance("saturday", "sunday")

    def test_max_distance_early_exit_over(self):
        # Result only needs to exceed the bound, not be exact.
        assert edit_distance("aaaaaaaa", "bbbbbbbb", max_distance=2) > 2

    def test_max_distance_exact_when_within(self):
        assert edit_distance("kitten", "sitting", max_distance=5) == 3

    def test_max_distance_length_gap(self):
        assert edit_distance("a", "abcdefgh", max_distance=3) == 4  # bound + 1


class TestWithinEditDistance:
    def test_true_at_bound(self):
        assert within_edit_distance("kitten", "sitting", 3)

    def test_false_below_bound(self):
        assert not within_edit_distance("kitten", "sitting", 2)

    def test_negative_bound(self):
        assert not within_edit_distance("a", "a", -1)

    def test_zero_bound_equal(self):
        assert within_edit_distance("same", "same", 0)


class TestEditSimilarity:
    def test_identical(self):
        assert edit_similarity("abc", "abc") == 1.0

    def test_disjoint(self):
        assert edit_similarity("abc", "xyz") == 0.0

    def test_empty_pair(self):
        assert edit_similarity("", "") == 1.0

    def test_normalization_by_longer_string(self):
        # One edit in a long string is closer than one edit in a short one
        # (the paper's normalization rationale, Section 3.1).
        assert edit_similarity("abcdefghij", "abcdefghiX") > edit_similarity("ab", "aX")

    def test_bounds(self):
        assert 0.0 <= edit_similarity("hello", "help") <= 1.0
