"""Tests for similarity predicates and the registry."""

import pytest

from repro.exceptions import ConstraintError
from repro.relational import NULL
from repro.similarity import (
    DEFAULT_REGISTRY,
    EQ,
    EQ_NORMALIZED,
    PredicateRegistry,
    edit_sim_at_least,
    edit_within,
    jaro_winkler_at_least,
    qgram_jaccard_at_least,
)


class TestEquality:
    def test_eq(self):
        assert EQ("a", "a")
        assert not EQ("a", "b")

    def test_eq_is_equality_flag(self):
        assert EQ.is_equality
        assert not edit_within(1).is_equality

    def test_null_never_matches(self):
        assert not EQ(NULL, NULL)
        assert not EQ("x", NULL)
        assert not edit_within(5)(NULL, "x")

    def test_eq_normalized(self):
        assert EQ_NORMALIZED("  Hello ", "hello")
        assert not EQ_NORMALIZED("hello", "world")


class TestParametricPredicates:
    def test_edit_within(self):
        p = edit_within(2)
        assert p("mark", "marc")
        assert not p("mark", "robert")
        assert p.edit_budget == 2

    def test_edit_within_rejects_negative(self):
        with pytest.raises(ConstraintError):
            edit_within(-1)

    def test_edit_sim_at_least(self):
        p = edit_sim_at_least(0.75)
        assert p("abcd", "abcx")
        assert not p("abcd", "wxyz")

    def test_threshold_validation(self):
        with pytest.raises(ConstraintError):
            edit_sim_at_least(1.5)
        with pytest.raises(ConstraintError):
            jaro_winkler_at_least(-0.1)
        with pytest.raises(ConstraintError):
            qgram_jaccard_at_least(2.0)

    def test_jaro_winkler_at_least(self):
        p = jaro_winkler_at_least(0.9)
        assert p("MARTHA", "MARHTA")
        assert not p("abc", "xyz")

    def test_qgram_jaccard_at_least(self):
        p = qgram_jaccard_at_least(0.99)
        assert p("same", "same")
        assert not p("same", "different")

    def test_non_string_values_coerced(self):
        assert edit_within(0)(42, 42)
        assert edit_within(1)(42, 43)


class TestRegistry:
    def test_default_has_eq(self):
        assert DEFAULT_REGISTRY.get("eq") is EQ

    def test_parses_parametric_names(self):
        p = DEFAULT_REGISTRY.get("edit<=3")
        assert p.edit_budget == 3
        assert DEFAULT_REGISTRY.get("jw>=0.8")("MARTHA", "MARHTA")
        assert DEFAULT_REGISTRY.get("editsim>=0.5")("abcd", "abxd")
        assert DEFAULT_REGISTRY.get("qgram2>=0.3")("night", "nighty")

    def test_parametric_names_cached(self):
        first = DEFAULT_REGISTRY.get("edit<=7")
        assert DEFAULT_REGISTRY.get("edit<=7") is first

    def test_unknown_name(self):
        with pytest.raises(ConstraintError):
            DEFAULT_REGISTRY.get("no-such-predicate")

    def test_malformed_parametric(self):
        with pytest.raises(ConstraintError):
            DEFAULT_REGISTRY.get("edit<=abc")

    def test_custom_registration(self):
        registry = PredicateRegistry()
        registry.register(EQ)
        assert registry.get("eq") is EQ
        assert "eq" in registry.names()
