"""Tests for Jaro and Jaro–Winkler similarities."""

import pytest

from repro.similarity import jaro_similarity, jaro_winkler_similarity


class TestJaro:
    def test_classic_martha(self):
        assert jaro_similarity("MARTHA", "MARHTA") == pytest.approx(0.9444, abs=1e-4)

    def test_classic_dixon(self):
        assert jaro_similarity("DIXON", "DICKSONX") == pytest.approx(0.7667, abs=1e-4)

    def test_identical(self):
        assert jaro_similarity("same", "same") == 1.0

    def test_both_empty(self):
        assert jaro_similarity("", "") == 1.0

    def test_one_empty(self):
        assert jaro_similarity("abc", "") == 0.0

    def test_no_common_characters(self):
        assert jaro_similarity("abc", "xyz") == 0.0

    def test_symmetry(self):
        assert jaro_similarity("crate", "trace") == jaro_similarity("trace", "crate")

    def test_bounds(self):
        assert 0.0 <= jaro_similarity("jellyfish", "smellyfish") <= 1.0


class TestJaroWinkler:
    def test_classic_martha(self):
        assert jaro_winkler_similarity("MARTHA", "MARHTA") == pytest.approx(0.9611, abs=1e-4)

    def test_prefix_bonus_raises_score(self):
        plain = jaro_similarity("prefixed", "prefixes")
        boosted = jaro_winkler_similarity("prefixed", "prefixes")
        assert boosted > plain

    def test_no_common_prefix_equals_jaro(self):
        assert jaro_winkler_similarity("xabc", "yabc") == jaro_similarity("xabc", "yabc")

    def test_prefix_capped_at_four(self):
        # Two strings sharing a 10-char prefix get the same bonus as a
        # 4-char shared prefix with the same Jaro score.
        a = jaro_winkler_similarity("abcdefghij", "abcdefghix")
        assert a <= 1.0

    def test_invalid_scale_rejected(self):
        with pytest.raises(ValueError):
            jaro_winkler_similarity("a", "b", prefix_scale=0.5)

    def test_identical(self):
        assert jaro_winkler_similarity("x", "x") == 1.0
