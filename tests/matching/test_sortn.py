"""Tests for the sorted-neighborhood baseline."""

import pytest

from repro.constraints import MD
from repro.matching import MDMatcher, SortedNeighborhood, default_key
from repro.relational import NULL, Relation, Schema
from repro.similarity import edit_within


@pytest.fixture()
def schema():
    return Schema("R", ["name", "zip", "phone"])


@pytest.fixture()
def master(schema):
    return Relation.from_dicts(
        schema,
        [
            {"name": "alpha clinic", "zip": "111", "phone": "p1"},
            {"name": "beta clinic", "zip": "222", "phone": "p2"},
            {"name": "gamma ward", "zip": "333", "phone": "p3"},
        ],
    )


@pytest.fixture()
def md(schema):
    return MD(
        schema, schema,
        [("name", "name", edit_within(2)), ("zip", "zip")],
        [("phone", "phone")],
    )


class TestDefaultKey:
    def test_data_side_key(self, schema, md):
        t = Relation.from_dicts(schema, [{"name": "Alpha", "zip": "1", "phone": "x"}]).by_tid(0)
        assert default_key(md, master_side=False)(t) == "alpha|1"

    def test_null_maps_to_empty(self, schema, md):
        t = Relation.from_dicts(schema, [{"name": NULL, "zip": "1", "phone": "x"}]).by_tid(0)
        assert default_key(md, master_side=False)(t) == "|1"


class TestSortN:
    def test_finds_adjacent_match(self, schema, master, md):
        data = Relation.from_dicts(
            schema, [{"name": "alpha clinik", "zip": "111", "phone": "x"}]
        )
        result = SortedNeighborhood([md], master, window=4).match(data)
        assert result.pairs == {(0, 0)}

    def test_window_too_small_misses(self, schema, md):
        """Keys that sort far apart are invisible to a small window —
        the classic SortN failure mode that full MD matching avoids."""
        master = Relation.from_dicts(
            schema,
            [{"name": f"clinic {i:03d}", "zip": "1", "phone": f"p{i}"} for i in range(40)],
        )
        # A typo in the *first* character destroys sort adjacency.
        data = Relation.from_dicts(
            schema, [{"name": "zlinic 000", "zip": "1", "phone": "x"}]
        )
        md_typo = MD(schema, schema, [("name", "name", edit_within(1))], [("phone", "phone")])
        sortn = SortedNeighborhood([md_typo], master, window=3).match(data)
        full = MDMatcher([md_typo], master, use_suffix_tree=False).match(data)
        assert full.pairs and not sortn.pairs

    def test_recall_grows_with_window(self, schema, md):
        master = Relation.from_dicts(
            schema,
            [{"name": f"clinic {chr(97 + i)}", "zip": str(i), "phone": f"p{i}"} for i in range(20)],
        )
        data = Relation.from_dicts(
            schema,
            [{"name": f"clinic {chr(97 + i)}x", "zip": str(i), "phone": "q"} for i in range(20)],
        )
        small = SortedNeighborhood([md], master, window=2).match(data)
        large = SortedNeighborhood([md], master, window=12).match(data)
        assert len(small.pairs) <= len(large.pairs)

    def test_window_validation(self, schema, master, md):
        with pytest.raises(ValueError):
            SortedNeighborhood([md], master, window=1)

    def test_key_function_count_validated(self, schema, master, md):
        with pytest.raises(ValueError):
            SortedNeighborhood([md], master, key_functions=[])

    def test_only_cross_source_pairs(self, schema, master, md):
        """SortN must not report data-data or master-master pairs."""
        data = Relation.from_dicts(
            schema,
            [
                {"name": "alpha clinic", "zip": "111", "phone": "x"},
                {"name": "alpha clinic", "zip": "111", "phone": "y"},
            ],
        )
        result = SortedNeighborhood([md], master, window=6).match(data)
        for tid, sid in result.pairs:
            assert tid in {0, 1} and sid in {0, 1, 2}
