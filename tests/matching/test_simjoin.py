"""Unit tests for the set-based similarity-join engine."""

import pytest

from repro.constraints import MD
from repro.indexing import MDBlockingIndex, build_md_indexes
from repro.matching.simjoin import ProfileCache, QGramIndex
from repro.relational import NULL, Relation, Schema
from repro.relational.columns import (
    GLOBAL_TABLE,
    match_engine,
    set_match_engine,
    using_backend,
    using_match_engine,
)
from repro.similarity import (
    EQ,
    edit_within,
    jaro_winkler_at_least,
    join_filter_for,
    qgram_jaccard_at_least,
)
from repro.similarity.predicates import JoinFilterSpec


@pytest.fixture()
def schema() -> Schema:
    return Schema("R", ["name", "city", "phone"])


@pytest.fixture()
def master(schema) -> Relation:
    return Relation.from_dicts(
        schema,
        [
            {"name": "edinburgh royal", "city": "edinburgh", "phone": "101"},
            {"name": "london general", "city": "london", "phone": "202"},
            {"name": "glasgow central", "city": "glasgow", "phone": "303"},
            {"name": "edinburgh royal", "city": "leith", "phone": "404"},
            {"name": NULL, "city": "dundee", "phone": "505"},
        ],
    )


def _probe(schema, name):
    return Relation.from_dicts(
        schema, [{"name": name, "city": "x", "phone": "y"}]
    ).by_tid(0)


class TestJoinFilterSpec:
    def test_edit_predicate_maps_to_edit_spec(self):
        spec = join_filter_for(edit_within(2))
        assert spec == JoinFilterSpec(kind="edit", q=2, edit_budget=2)

    def test_qgram_predicate_maps_to_jaccard_spec(self):
        spec = join_filter_for(qgram_jaccard_at_least(0.7, q=3))
        assert spec == JoinFilterSpec(kind="jaccard", q=3, threshold=0.7)

    def test_equality_and_unboundable_predicates_map_to_none(self):
        assert join_filter_for(EQ) is None
        assert join_filter_for(jaro_winkler_at_least(0.9)) is None
        # J >= 0 admits every pair: no filter is possible (or needed).
        assert join_filter_for(qgram_jaccard_at_least(0.0)) is None

    def test_clause_join_filter_delegates(self, schema):
        md = MD(
            schema, schema, [("name", "name", edit_within(1))], [("phone", "phone")]
        )
        assert md.premise[0].join_filter().kind == "edit"


class TestQGramIndex:
    def _index(self, master, predicate):
        clause_spec = join_filter_for(predicate)
        return QGramIndex(master, "name", clause_spec, predicate)

    def test_duplicate_master_values_share_a_group(self, master):
        index = self._index(master, edit_within(2))
        strings = [g.string for g in index.groups]
        assert strings.count("edinburgh royal") == 1
        (group,) = [g for g in index.groups if g.string == "edinburgh royal"]
        assert sorted(s.tid for s in group.tuples) == [0, 3]

    def test_null_master_values_are_not_indexed(self, master):
        index = self._index(master, edit_within(2))
        assert all(s.tid != 4 for g in index.groups for s in g.tuples)

    def test_probe_is_superset_of_verified(self, master):
        index = self._index(master, edit_within(2))
        probed = {g.string for g in index.probe_groups("edinburh royal")}
        verified = {g.string for g in index.verified_groups("edinburh royal")}
        assert verified <= probed
        assert verified == {"edinburgh royal"}

    def test_foreign_probe_finds_nothing(self, master):
        index = self._index(master, edit_within(1))
        assert index.verified_groups("zzzzzzzzzzzzzzz") == []

    def test_jaccard_verification_matches_predicate(self, master):
        predicate = qgram_jaccard_at_least(0.5)
        index = self._index(master, predicate)
        for value in ("edinburgh royal", "edinburh royal", "london", "zzz"):
            expected = {
                g.string
                for g in index.groups
                if predicate(value, g.value)
            }
            observed = {g.string for g in index.verified_groups(value)}
            assert observed == expected

    def test_stats_counters_advance(self, master):
        index = self._index(master, edit_within(2))
        index.verified_groups("edinburh royal")
        assert index.stats["probes"] == 1
        assert index.stats["verify_calls"] >= index.stats["verify_matches"] >= 1
        assert index.stats["count_checks"] >= index.stats["filter_survivors"]


class TestProfileCache:
    def test_build_tokenizes_once_per_distinct_value(self, master):
        index = QGramIndex(
            master, "name", join_filter_for(edit_within(2)), edit_within(2)
        )
        # Four non-null rows, three distinct values — the duplicate
        # "edinburgh royal" must not re-tokenize.
        assert index.profiles.misses == 3
        assert len(index.groups) == 3

    def test_probe_of_known_value_is_a_cache_hit(self, master):
        index = QGramIndex(
            master, "name", join_filter_for(edit_within(2)), edit_within(2)
        )
        misses = index.profiles.misses
        index.probe_groups("edinburgh royal")  # master value: interned
        assert index.profiles.hits >= 1
        assert index.profiles.misses == misses

    def test_repeated_foreign_probe_hits_after_first_miss(self, master):
        index = QGramIndex(
            master, "name", join_filter_for(edit_within(2)), edit_within(2)
        )
        index.probe_groups("brand new value")
        misses = index.profiles.misses
        hits = index.profiles.hits
        index.probe_groups("brand new value")
        assert index.profiles.misses == misses
        assert index.profiles.hits == hits + 1

    def test_uninterned_strings_fall_back_to_str_keying(self):
        cache = ProfileCache(lambda s: (s,))
        probe = "simjoin-test-never-interned-☃"
        assert GLOBAL_TABLE.find_canon(probe) is None
        assert cache.profile(probe) == (probe,)
        assert cache.profile(probe) == (probe,)
        assert (cache.hits, cache.misses) == (1, 1)

    def test_non_string_values_key_by_str_form(self):
        cache = ProfileCache(lambda s: (s,))
        assert cache.profile(0) == ("0",)
        assert cache.profile(0.0) == ("0.0",)  # distinct str forms
        assert cache.misses == 2


class TestMatchEngineFlag:
    def test_set_match_engine_rejects_unknown(self):
        with pytest.raises(ValueError):
            set_match_engine("turbo")

    def test_using_match_engine_restores(self):
        before = match_engine()
        with using_match_engine("reference"):
            assert match_engine() == "reference"
        assert match_engine() == before

    def test_default_is_join(self):
        # The exact engine is the default; reference is the escape hatch.
        assert match_engine() in ("join", "reference")

    def test_constructor_override_beats_flag(self, master, schema):
        md = MD(
            schema, schema, [("name", "name", edit_within(1))], [("phone", "phone")]
        )
        with using_match_engine("join"):
            index = MDBlockingIndex(md, master, engine="reference")
            assert index.engine == "reference"
            assert index.join_index is None
        with using_match_engine("reference"):
            index = MDBlockingIndex(md, master, engine="join")
            assert index.engine == "join"
            assert index.join_index is not None

    def test_build_md_indexes_threads_engine(self, master, schema):
        md = MD(
            schema, schema, [("name", "name", edit_within(1))], [("phone", "phone")]
        )
        indexes = build_md_indexes([md], master, engine="reference")
        assert all(ix.engine == "reference" for ix in indexes.values())


class TestEngineEquivalence:
    @pytest.fixture(params=[True, False], ids=["columnar", "dict"])
    def backed_master(self, request, schema):
        with using_backend(request.param):
            yield Relation.from_dicts(
                schema,
                [
                    {"name": "edinburgh royal", "city": "edinburgh", "phone": "101"},
                    {"name": "london general", "city": "london", "phone": "202"},
                    {"name": "edinburgh royal", "city": "leith", "phone": "404"},
                    {"name": "edinburh royal", "city": "glasgow", "phone": "303"},
                ],
            )

    def test_matches_identical_to_full_scan(self, schema, backed_master):
        md = MD(
            schema, schema, [("name", "name", edit_within(2))], [("phone", "phone")]
        )
        join = MDBlockingIndex(md, backed_master, engine="join")
        scan = MDBlockingIndex(
            md, backed_master, use_suffix_tree=False, engine="reference"
        )
        for name in ("edinburgh royal", "edinburh royal", "nowhere at all"):
            probe = _probe(schema, name)
            expected = [s.tid for s in scan.matches(probe)]
            assert [s.tid for s in join.matches(probe)] == expected
            got = join.find_match(probe)
            want = scan.find_match(probe)
            assert (got.tid if got else None) == (want.tid if want else None)

    def test_candidates_superset_of_scan_matches(self, schema, backed_master):
        md = MD(
            schema, schema, [("name", "name", edit_within(2))], [("phone", "phone")]
        )
        join = MDBlockingIndex(md, backed_master, engine="join")
        scan = MDBlockingIndex(
            md, backed_master, use_suffix_tree=False, engine="reference"
        )
        probe = _probe(schema, "edinburgh royal")
        candidates = {s.tid for s in join.candidates(probe)}
        assert candidates >= {s.tid for s in scan.matches(probe)}
