"""Tests for MD-based matching."""

import pytest

from repro.constraints import MD, embed_negative
from repro.core import UniClean, UniCleanConfig
from repro.matching import MDMatcher, match_after_cleaning
from repro.relational import Relation, Schema
from repro.similarity import edit_within


@pytest.fixture()
def schema():
    return Schema("R", ["name", "zip", "phone"])


@pytest.fixture()
def master(schema):
    return Relation.from_dicts(
        schema,
        [
            {"name": "alpha clinic", "zip": "111", "phone": "p1"},
            {"name": "beta clinic", "zip": "222", "phone": "p2"},
        ],
    )


@pytest.fixture()
def md(schema):
    return MD(
        schema, schema,
        [("zip", "zip"), ("name", "name", edit_within(2))],
        [("phone", "phone")],
    )


class TestMDMatcher:
    def test_finds_similar_pair(self, schema, master, md):
        data = Relation.from_dicts(
            schema, [{"name": "alpha clinik", "zip": "111", "phone": "x"}]
        )
        result = MDMatcher([md], master).match(data)
        assert result.pairs == {(0, 0)}

    def test_no_match_when_premise_fails(self, schema, master, md):
        data = Relation.from_dicts(
            schema, [{"name": "totally different", "zip": "111", "phone": "x"}]
        )
        result = MDMatcher([md], master).match(data)
        assert result.pairs == set()

    def test_multiple_mds_union(self, schema, master, md):
        md2 = MD(schema, schema, [("phone", "phone")], [("zip", "zip")])
        data = Relation.from_dicts(
            schema, [{"name": "zzz", "zip": "999", "phone": "p2"}]
        )
        result = MDMatcher([md, md2], master).match(data)
        assert result.pairs == {(0, 1)}

    def test_matched_tids(self, schema, master, md):
        data = Relation.from_dicts(
            schema,
            [
                {"name": "alpha clinic", "zip": "111", "phone": "x"},
                {"name": "nope", "zip": "000", "phone": "y"},
            ],
        )
        result = MDMatcher([md], master).match(data)
        assert result.matched_tids() == {0}

    def test_comparisons_counted(self, schema, master, md):
        data = Relation.from_dicts(
            schema, [{"name": "alpha clinic", "zip": "111", "phone": "x"}]
        )
        result = MDMatcher([md], master).match(data)
        assert result.comparisons >= 1


class TestRepairingHelpsMatching:
    def test_match_found_only_after_cleaning(self, paper_rules, dirty_tran, master_card):
        """The Exp-2 mechanism: t3 matches s2 only after repairing fixes
        its city and FN."""
        mds = embed_negative(paper_rules.mds, paper_rules.negative_mds)
        before = MDMatcher(mds, master_card).match(dirty_tran)
        assert (2, 1) not in before.pairs  # t3 does not match s2 yet
        cleaner = UniClean(
            paper_rules.cfds,
            paper_rules.mds,
            paper_rules.negative_mds,
            master_card,
            UniCleanConfig(eta=0.8),
        )
        repaired = cleaner.clean(dirty_tran).repaired
        after = match_after_cleaning(repaired, mds, master_card)
        assert (2, 1) in after.pairs
        assert before.pairs <= after.pairs
