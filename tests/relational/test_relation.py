"""Tests for relation instances."""

import pytest

from repro.exceptions import DataError
from repro.relational import CTuple, NULL, Relation, Schema


@pytest.fixture()
def schema() -> Schema:
    return Schema("R", ["A", "B"])


@pytest.fixture()
def rel(schema) -> Relation:
    return Relation.from_dicts(
        schema,
        [{"A": "a1", "B": "b1"}, {"A": "a1", "B": "b2"}, {"A": "a2", "B": "b1"}],
    )


class TestConstruction:
    def test_len(self, rel):
        assert len(rel) == 3

    def test_tids_sequential(self, rel):
        assert rel.tids() == (0, 1, 2)

    def test_from_dicts_with_confidences(self, schema):
        r = Relation.from_dicts(schema, [{"A": 1}], [{"A": 0.7}])
        assert r.by_tid(0).conf("A") == 0.7

    def test_from_dicts_length_mismatch(self, schema):
        with pytest.raises(DataError):
            Relation.from_dicts(schema, [{"A": 1}], [])

    def test_add_assigns_fresh_tid_on_conflict(self, rel, schema):
        t = CTuple(schema, {"A": "x"}, tid=0)
        rel.add(t)
        assert t.tid == 3

    def test_add_wrong_schema(self, rel):
        other = Schema("S", ["A", "B"])
        with pytest.raises(DataError):
            rel.add(CTuple(other, {}))

    def test_add_row(self, rel):
        t = rel.add_row({"A": "new"}, {"A": 1.0})
        assert rel.by_tid(t.tid)["A"] == "new"


class TestAccess:
    def test_by_tid(self, rel):
        assert rel.by_tid(1)["B"] == "b2"

    def test_by_tid_missing(self, rel):
        with pytest.raises(DataError):
            rel.by_tid(99)

    def test_contains_tracks_identity(self, rel):
        t = rel.by_tid(0)
        assert t in rel
        assert t.clone() not in rel


class TestAlgebra:
    def test_select(self, rel):
        out = rel.select(lambda t: t["A"] == "a1")
        assert [t.tid for t in out] == [0, 1]

    def test_project(self, rel):
        assert rel.project(["A"]) == {("a1",), ("a2",)}

    def test_group_by(self, rel):
        groups = rel.group_by(["A"])
        assert {k: len(v) for k, v in groups.items()} == {("a1",): 2, ("a2",): 1}

    def test_active_domain(self, rel):
        assert rel.active_domain("B") == {"b1", "b2"}


class TestCloneDiff:
    def test_clone_preserves_tids(self, rel):
        twin = rel.clone()
        assert twin.tids() == rel.tids()

    def test_clone_independent(self, rel):
        twin = rel.clone()
        twin.by_tid(0)["A"] = "mutated"
        assert rel.by_tid(0)["A"] == "a1"

    def test_diff_empty_for_clone(self, rel):
        assert rel.diff(rel.clone()) == []

    def test_diff_reports_cells(self, rel):
        twin = rel.clone()
        twin.by_tid(2)["B"] = "zz"
        assert rel.diff(twin) == [(2, "B", "b1", "zz")]

    def test_diff_schema_mismatch(self, rel):
        other = Relation(Schema("S", ["A", "B"]))
        with pytest.raises(DataError):
            rel.diff(other)


class TestToText:
    def test_renders_header_and_rows(self, rel):
        text = rel.to_text()
        assert "A" in text and "a2" in text

    def test_limit(self, rel):
        text = rel.to_text(limit=1)
        assert "more rows" in text

    def test_null_rendering(self, schema):
        r = Relation.from_dicts(schema, [{"A": NULL, "B": "x"}])
        assert "NULL" in r.to_text()


class TestTidRetirement:
    """Removed tids are never reused — ISSUE 3 regression (tid aliasing)."""

    def test_explicit_readd_of_removed_tid_gets_fresh_tid(self, rel, schema):
        rel.remove(1)
        ghost = CTuple(schema, {"A": "ghost"}, tid=1)
        rel.add(ghost)
        assert ghost.tid == 3  # not 1: the dead tid must not alias
        assert not rel.has_tid(1)
        assert rel.tid_retired(1)

    def test_gap_tids_are_honoured(self, schema):
        relation = Relation(schema)
        relation.add(CTuple(schema, {"A": "late"}, tid=5))
        early = CTuple(schema, {"A": "early"}, tid=2)
        relation.add(early)
        assert early.tid == 2  # never assigned, never retired: legal
        assert relation._next_tid >= 6  # monotonic: gap adds never lower it

    def test_retirement_survives_clone_and_restrict(self, rel):
        rel.remove(0)
        assert rel.clone().tid_retired(0)
        assert rel.restrict([1]).tid_retired(0)

    def test_retirement_survives_pickle(self, rel):
        import pickle

        rel.remove(2)
        twin = pickle.loads(pickle.dumps(rel))
        assert twin.tid_retired(2)
        assert twin.tids() == rel.tids()
        assert twin._next_tid == rel._next_tid


class TestPickling:
    def test_round_trip_preserves_values_and_confidences(self, rel):
        import pickle

        rel.by_tid(0).set_conf("A", 0.5)
        twin = pickle.loads(pickle.dumps(rel))
        assert twin.tids() == rel.tids()
        assert twin.by_tid(0)["A"] == "a1"
        assert twin.by_tid(0).conf("A") == 0.5

    def test_observers_are_dropped(self, rel):
        import pickle

        rel.add_observer(lambda t, a, o, n: None)
        twin = pickle.loads(pickle.dumps(rel))
        assert twin._observers == []
        assert twin._insert_observers == []
        assert twin._delete_observers == []


class TestSnapshotRoundTrip:
    """Seed-state gap coverage (ISSUE 5): the snapshot codec must carry
    the full tid bookkeeping — retired tids included — and deliver a
    relation whose observer machinery is live again, not just a bag of
    tuples.  (The pickling tests above only established that observers
    are *dropped*.)"""

    @staticmethod
    def roundtrip(relation):
        from repro.pipeline import payload

        table = payload.ValueTable()
        blob = payload.encode_relation(relation, table)
        return payload.decode_relation(blob, table.values)

    def test_retired_tids_survive_and_stay_dead(self, rel, schema):
        rel.remove(1)
        twin = self.roundtrip(rel)
        assert twin.tid_retired(1)
        assert twin._retired == rel._retired
        assert twin._next_tid == rel._next_tid
        # The retirement contract holds post-restore: re-adding the dead
        # tid explicitly cannot alias it — a fresh tid is assigned.
        zombie = twin.add(CTuple(schema, {"A": "zz"}, tid=1))
        assert zombie.tid != 1
        assert zombie.tid >= rel._next_tid

    def test_restored_observers_start_clean_and_reattach(self, rel):
        rel.add_observer(lambda t, a, o, n: None)
        rel.add_insert_observer(lambda t: None)
        rel.add_delete_observer(lambda t: None)
        twin = self.roundtrip(rel)
        assert twin._observers == []
        assert twin._insert_observers == []
        assert twin._delete_observers == []

        events = []
        twin.add_observer(lambda t, a, o, n: events.append(("set", t.tid, a, o, n)))
        twin.add_insert_observer(lambda t: events.append(("ins", t.tid)))
        twin.add_delete_observer(lambda t: events.append(("del", t.tid)))
        twin.set_value(twin.by_tid(0), "A", "a9")
        inserted = twin.add_row({"A": "a3", "B": "b3"})
        twin.remove(inserted.tid)
        assert events == [
            ("set", 0, "A", "a1", "a9"),
            ("ins", inserted.tid),
            ("del", inserted.tid),
        ]

    def test_values_confidences_and_order_survive(self, rel):
        rel.by_tid(0).set_conf("A", 0.25)
        rel.by_tid(2).set_conf("B", None)
        twin = self.roundtrip(rel)
        assert twin.tids() == rel.tids()  # insertion order preserved
        for t in rel:
            mate = twin.by_tid(t.tid)
            for attr in rel.schema.names:
                assert mate[attr] == t[attr]
                assert mate.conf(attr) == t.conf(attr)


class TestSharedViewRemoval:
    """Satellite (b) regression: removing from a zero-copy
    ``restrict(copy=False)`` view must not tombstone rows in the parent's
    shared columns."""

    def _columnar(self, schema):
        from repro.relational.columns import using_backend

        with using_backend(True):
            return Relation.from_dicts(
                schema,
                [
                    {"A": "a1", "B": "b1"},
                    {"A": "a1", "B": "b2"},
                    {"A": "a2", "B": "b1"},
                ],
            )

    def test_view_remove_leaves_parent_columns_alive(self, schema):
        parent = self._columnar(schema)
        store = parent.column_store
        view = parent.restrict(list(parent.tids()), copy=False)
        assert store.shared and view.column_store is store

        removed = view.remove(0)
        # The view forgot the tuple; the parent (and its columns) did not.
        assert not view.has_tid(0) and view.tid_retired(0)
        assert parent.has_tid(0)
        assert store.n_dead == 0 and not store.dead.get(0)
        assert store.row_tids[0] == 0  # no -1-tid tombstone
        assert parent.by_tid(0)["A"] == "a1"
        assert removed["A"] == "a1"  # popped handle still readable

    def test_parent_remove_also_spares_shared_columns(self, schema):
        parent = self._columnar(schema)
        store = parent.column_store
        view = parent.restrict([1], copy=False)
        parent.remove(2)  # view doesn't hold 2, but the columns are shared
        assert store.n_dead == 0
        assert view.by_tid(1)["B"] == "b2"

    def test_copy_view_remove_still_tombstones_its_own_store(self, schema):
        parent = self._columnar(schema)
        view = parent.restrict(list(parent.tids()), copy=True)
        view.remove(0)
        assert view.column_store is not parent.column_store
        assert view.column_store.n_dead == 1
        assert parent.column_store.n_dead == 0
