"""Tests for relation instances."""

import pytest

from repro.exceptions import DataError
from repro.relational import CTuple, NULL, Relation, Schema


@pytest.fixture()
def schema() -> Schema:
    return Schema("R", ["A", "B"])


@pytest.fixture()
def rel(schema) -> Relation:
    return Relation.from_dicts(
        schema,
        [{"A": "a1", "B": "b1"}, {"A": "a1", "B": "b2"}, {"A": "a2", "B": "b1"}],
    )


class TestConstruction:
    def test_len(self, rel):
        assert len(rel) == 3

    def test_tids_sequential(self, rel):
        assert rel.tids() == (0, 1, 2)

    def test_from_dicts_with_confidences(self, schema):
        r = Relation.from_dicts(schema, [{"A": 1}], [{"A": 0.7}])
        assert r.by_tid(0).conf("A") == 0.7

    def test_from_dicts_length_mismatch(self, schema):
        with pytest.raises(DataError):
            Relation.from_dicts(schema, [{"A": 1}], [])

    def test_add_assigns_fresh_tid_on_conflict(self, rel, schema):
        t = CTuple(schema, {"A": "x"}, tid=0)
        rel.add(t)
        assert t.tid == 3

    def test_add_wrong_schema(self, rel):
        other = Schema("S", ["A", "B"])
        with pytest.raises(DataError):
            rel.add(CTuple(other, {}))

    def test_add_row(self, rel):
        t = rel.add_row({"A": "new"}, {"A": 1.0})
        assert rel.by_tid(t.tid)["A"] == "new"


class TestAccess:
    def test_by_tid(self, rel):
        assert rel.by_tid(1)["B"] == "b2"

    def test_by_tid_missing(self, rel):
        with pytest.raises(DataError):
            rel.by_tid(99)

    def test_contains_tracks_identity(self, rel):
        t = rel.by_tid(0)
        assert t in rel
        assert t.clone() not in rel


class TestAlgebra:
    def test_select(self, rel):
        out = rel.select(lambda t: t["A"] == "a1")
        assert [t.tid for t in out] == [0, 1]

    def test_project(self, rel):
        assert rel.project(["A"]) == {("a1",), ("a2",)}

    def test_group_by(self, rel):
        groups = rel.group_by(["A"])
        assert {k: len(v) for k, v in groups.items()} == {("a1",): 2, ("a2",): 1}

    def test_active_domain(self, rel):
        assert rel.active_domain("B") == {"b1", "b2"}


class TestCloneDiff:
    def test_clone_preserves_tids(self, rel):
        twin = rel.clone()
        assert twin.tids() == rel.tids()

    def test_clone_independent(self, rel):
        twin = rel.clone()
        twin.by_tid(0)["A"] = "mutated"
        assert rel.by_tid(0)["A"] == "a1"

    def test_diff_empty_for_clone(self, rel):
        assert rel.diff(rel.clone()) == []

    def test_diff_reports_cells(self, rel):
        twin = rel.clone()
        twin.by_tid(2)["B"] = "zz"
        assert rel.diff(twin) == [(2, "B", "b1", "zz")]

    def test_diff_schema_mismatch(self, rel):
        other = Relation(Schema("S", ["A", "B"]))
        with pytest.raises(DataError):
            rel.diff(other)


class TestToText:
    def test_renders_header_and_rows(self, rel):
        text = rel.to_text()
        assert "A" in text and "a2" in text

    def test_limit(self, rel):
        text = rel.to_text(limit=1)
        assert "more rows" in text

    def test_null_rendering(self, schema):
        r = Relation.from_dicts(schema, [{"A": NULL, "B": "x"}])
        assert "NULL" in r.to_text()
