"""Tests for relation schemas."""

import pytest

from repro.exceptions import SchemaError
from repro.relational import Attribute, Domain, Schema


@pytest.fixture()
def schema() -> Schema:
    return Schema("R", ["A", "B", "C"])


class TestConstruction:
    def test_names_preserve_order(self, schema):
        assert schema.names == ("A", "B", "C")

    def test_accepts_attribute_objects(self):
        s = Schema("R", [Attribute("A", Domain.finite({1, 2}))])
        assert s.domain("A").is_finite

    def test_rejects_duplicates(self):
        with pytest.raises(SchemaError):
            Schema("R", ["A", "A"])

    def test_rejects_empty_schema(self):
        with pytest.raises(SchemaError):
            Schema("R", [])

    def test_rejects_empty_name(self):
        with pytest.raises(SchemaError):
            Schema("", ["A"])


class TestLookup:
    def test_attribute(self, schema):
        assert schema.attribute("B").name == "B"

    def test_attribute_missing(self, schema):
        with pytest.raises(SchemaError, match="no attribute"):
            schema.attribute("Z")

    def test_index_of(self, schema):
        assert schema.index_of("C") == 2

    def test_index_of_missing(self, schema):
        with pytest.raises(SchemaError):
            schema.index_of("Z")

    def test_contains(self, schema):
        assert "A" in schema and "Z" not in schema

    def test_check_attrs_ok(self, schema):
        assert schema.check_attrs(["A", "C"]) == ("A", "C")

    def test_check_attrs_fails(self, schema):
        with pytest.raises(SchemaError):
            schema.check_attrs(["A", "Z"])


class TestProtocols:
    def test_len(self, schema):
        assert len(schema) == 3

    def test_iter(self, schema):
        assert [a.name for a in schema] == ["A", "B", "C"]

    def test_equality(self, schema):
        assert schema == Schema("R", ["A", "B", "C"])
        assert schema != Schema("R", ["A", "B"])
        assert schema != Schema("S", ["A", "B", "C"])

    def test_hashable(self, schema):
        assert hash(schema) == hash(Schema("R", ["A", "B", "C"]))
