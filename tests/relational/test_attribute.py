"""Tests for attributes, domains and the NULL singleton."""

import copy

import pytest

from repro.exceptions import SchemaError
from repro.relational import BOOL, NULL, STRING, Attribute, Domain, NullType, is_null


class TestNull:
    def test_singleton(self):
        assert NullType() is NULL

    def test_repr(self):
        assert repr(NULL) == "NULL"

    def test_falsy(self):
        assert not NULL

    def test_is_null(self):
        assert is_null(NULL)
        assert not is_null(None)
        assert not is_null("")
        assert not is_null(0)

    def test_equality_is_identity(self):
        assert NULL == NULL
        assert NULL != ""

    def test_hashable_and_stable(self):
        assert hash(NULL) == hash(NullType())
        assert len({NULL, NullType()}) == 1

    def test_deepcopy_preserves_identity(self):
        assert copy.deepcopy(NULL) is NULL
        assert copy.copy(NULL) is NULL


class TestDomain:
    def test_infinite_contains_everything(self):
        assert "anything" in STRING
        assert 42 in STRING

    def test_finite_membership(self):
        d = Domain.finite({"a", "b"})
        assert "a" in d and "c" not in d

    def test_is_finite(self):
        assert Domain.finite({1}).is_finite
        assert not STRING.is_finite

    def test_bool_domain(self):
        assert True in BOOL and False in BOOL
        assert "x" not in BOOL

    def test_fresh_value_infinite(self):
        fresh = STRING.fresh_value({"a", "b"})
        assert fresh not in {"a", "b"}

    def test_fresh_value_finite(self):
        d = Domain.finite({"a", "b", "c"})
        fresh = d.fresh_value({"a", "b"})
        assert fresh == "c"

    def test_fresh_value_exhausted_finite(self):
        d = Domain.finite({"a"})
        assert d.fresh_value({"a"}) is None

    def test_fresh_value_avoids_collisions(self):
        used = {STRING.fresh_value(set())}
        second = STRING.fresh_value(used)
        assert second not in used


class TestAttribute:
    def test_defaults_to_string_domain(self):
        assert Attribute("x").domain is STRING

    def test_rejects_empty_name(self):
        with pytest.raises(SchemaError):
            Attribute("")

    def test_rejects_non_string_name(self):
        with pytest.raises(SchemaError):
            Attribute(123)  # type: ignore[arg-type]

    def test_value_equality(self):
        assert Attribute("x") == Attribute("x")
        assert Attribute("x") != Attribute("y")

    def test_str(self):
        assert str(Attribute("zip")) == "zip"
