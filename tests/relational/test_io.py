"""Tests for CSV round-tripping."""

import pytest

from repro.exceptions import DataError
from repro.relational import (
    NULL,
    Relation,
    Schema,
    from_csv_string,
    read_csv,
    to_csv_string,
    write_csv,
)


@pytest.fixture()
def schema() -> Schema:
    return Schema("R", ["A", "B"])


@pytest.fixture()
def rel(schema) -> Relation:
    return Relation.from_dicts(
        schema,
        [{"A": "hello, world", "B": NULL}, {"A": "x", "B": "y"}],
        [{"A": 0.75, "B": None}, {"A": None, "B": 1.0}],
    )


class TestRoundTrip:
    def test_values_survive(self, schema, rel):
        again = from_csv_string(schema, to_csv_string(rel))
        assert [t.as_dict() for t in again] == [t.as_dict() for t in rel]

    def test_confidences_survive(self, schema, rel):
        again = from_csv_string(schema, to_csv_string(rel))
        assert again.by_tid(0).conf("A") == 0.75
        assert again.by_tid(0).conf("B") is None
        assert again.by_tid(1).conf("B") == 1.0

    def test_null_round_trips(self, schema, rel):
        again = from_csv_string(schema, to_csv_string(rel))
        assert again.by_tid(0)["B"] is NULL

    def test_without_confidence_columns(self, schema, rel):
        text = to_csv_string(rel, include_confidence=False)
        assert ".cf" not in text
        again = from_csv_string(schema, text)
        assert again.by_tid(1)["B"] == "y"
        assert again.by_tid(1).conf("B") is None

    def test_file_round_trip(self, tmp_path, schema, rel):
        path = tmp_path / "rel.csv"
        write_csv(rel, path)
        again = read_csv(schema, path)
        assert len(again) == 2
        assert again.by_tid(0)["A"] == "hello, world"


class TestErrors:
    def test_empty_source(self, schema):
        with pytest.raises(DataError, match="empty"):
            from_csv_string(schema, "")

    def test_unknown_column(self, schema):
        with pytest.raises(DataError, match="not in schema"):
            from_csv_string(schema, "A,Z\n1,2\n")

    def test_unknown_confidence_column(self, schema):
        with pytest.raises(DataError, match="unknown attribute"):
            from_csv_string(schema, "A,B,Z.cf\n1,2,0.5\n")

    def test_missing_column(self, schema):
        with pytest.raises(DataError, match="missing"):
            from_csv_string(schema, "A\n1\n")
