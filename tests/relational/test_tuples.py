"""Tests for confidence-carrying tuples."""

import pytest

from repro.exceptions import DataError, SchemaError
from repro.relational import CTuple, NULL, Schema


@pytest.fixture()
def schema() -> Schema:
    return Schema("R", ["A", "B", "C"])


@pytest.fixture()
def t(schema) -> CTuple:
    return CTuple(schema, {"A": "a", "B": "b"}, {"A": 0.9, "B": 0.4})


class TestValues:
    def test_getitem(self, t):
        assert t["A"] == "a"

    def test_missing_attributes_default_to_null(self, t):
        assert t["C"] is NULL

    def test_setitem(self, t):
        t["A"] = "z"
        assert t["A"] == "z"

    def test_unknown_attribute_get(self, t):
        with pytest.raises(SchemaError):
            t["Z"]

    def test_unknown_attribute_set(self, t):
        with pytest.raises(SchemaError):
            t["Z"] = 1

    def test_unknown_attribute_in_values(self, schema):
        with pytest.raises(SchemaError):
            CTuple(schema, {"Z": 1})

    def test_get_with_default(self, t):
        assert t.get("A") == "a"
        assert t.get("Z", "dflt") == "dflt"


class TestConfidence:
    def test_conf(self, t):
        assert t.conf("A") == 0.9
        assert t.conf("C") is None

    def test_set_conf(self, t):
        t.set_conf("C", 0.5)
        assert t.conf("C") == 0.5

    def test_conf_range_validated(self, t):
        with pytest.raises(DataError):
            t.set_conf("A", 1.5)
        with pytest.raises(DataError):
            CTuple(t.schema, {}, {"A": -0.1})

    def test_set_value_and_conf(self, t):
        t.set("B", "bb", 0.8)
        assert t["B"] == "bb" and t.conf("B") == 0.8

    def test_has_conf_at_least(self, t):
        assert t.has_conf_at_least("A", 0.9)
        assert not t.has_conf_at_least("B", 0.8)
        assert not t.has_conf_at_least("C", 0.0)  # None is below everything

    def test_min_conf_fuzzy(self, t):
        assert t.min_conf(["A", "B"]) == 0.4

    def test_min_conf_none_absorbs(self, t):
        assert t.min_conf(["A", "C"]) is None

    def test_min_conf_empty(self, t):
        assert t.min_conf([]) is None


class TestProjections:
    def test_project(self, t):
        assert t.project(["B", "A"]) == ("b", "a")

    def test_project_conf(self, t):
        assert t.project_conf(["A", "C"]) == (0.9, None)

    def test_has_null(self, t):
        assert t.has_null(["A", "C"])
        assert not t.has_null(["A", "B"])


class TestCopyCompare:
    def test_clone_independent(self, t):
        twin = t.clone()
        twin["A"] = "other"
        twin.set_conf("B", 0.1)
        assert t["A"] == "a" and t.conf("B") == 0.4

    def test_equality_ignores_confidence(self, schema):
        t1 = CTuple(schema, {"A": 1}, {"A": 0.1})
        t2 = CTuple(schema, {"A": 1}, {"A": 0.9})
        assert t1 == t2

    def test_hash_consistent_with_eq(self, schema):
        t1 = CTuple(schema, {"A": 1})
        t2 = CTuple(schema, {"A": 1})
        assert hash(t1) == hash(t2)

    def test_diff(self, schema):
        t1 = CTuple(schema, {"A": 1, "B": 2})
        t2 = CTuple(schema, {"A": 1, "B": 3})
        assert t1.diff(t2) == ("B",)

    def test_diff_schema_mismatch(self, schema):
        other = Schema("S", ["A", "B", "C"])
        with pytest.raises(DataError):
            CTuple(schema, {}).diff(CTuple(other, {}))

    def test_values_equal_subset(self, schema):
        t1 = CTuple(schema, {"A": 1, "B": 2})
        t2 = CTuple(schema, {"A": 1, "B": 9})
        assert t1.values_equal(t2, ["A"])
        assert not t1.values_equal(t2)

    def test_iteration_order(self, t):
        assert list(t) == ["a", "b", NULL]

    def test_as_dict_is_copy(self, t):
        d = t.as_dict()
        d["A"] = "mutated"
        assert t["A"] == "a"
