"""Unit tests for the columnar resident backing store.

Covers the interning table (canon semantics), the typed-column and
bitmap primitives, the per-relation :class:`ColumnStore` bookkeeping
(append / tombstone / adopt), the :class:`ColumnTuple` row-view API
against the dict-backed :class:`CTuple` reference, and the bulk
ref-level accessors on :class:`Relation`.
"""

import pickle

import pytest

from repro.exceptions import DataError, SchemaError
from repro.relational import CTuple, NULL, Relation, Schema
from repro.relational.columns import (
    Bitmap,
    ColumnStore,
    ColumnTuple,
    GLOBAL_TABLE,
    IntColumn,
    ValueTable,
    materializations,
    set_check_engine,
    using_backend,
    using_engine,
)


@pytest.fixture()
def schema() -> Schema:
    return Schema("R", ["A", "B", "C"])


@pytest.fixture()
def rel(schema) -> Relation:
    # Force the columnar backend so the suite tests it even when the
    # ambient REPRO_COLUMNAR flag selects the dict backend.
    with using_backend(True):
        return Relation.from_dicts(
            schema,
            [
                {"A": "a1", "B": "b1", "C": 1},
                {"A": "a1", "B": "b2", "C": 2},
                {"A": "a2", "B": "b1", "C": 1},
            ],
            [{"A": 0.9}, {}, {"C": 0.5}],
        )


class TestValueTable:
    def test_dedup_by_type_and_value(self):
        table = ValueTable()
        assert table.ref("x") == table.ref("x")
        assert table.ref(0) != table.ref(0.0)
        assert table.ref(0) != table.ref(False)

    def test_canon_unifies_equal_values_across_types(self):
        table = ValueTable()
        r_int, r_float, r_bool = table.ref(0), table.ref(0.0), table.ref(False)
        # 0 == 0.0 == False in Python, so all three share one canon ref.
        assert table.canon[r_int] == table.canon[r_float] == table.canon[r_bool]
        assert table.canon[r_int] != table.canon[table.ref(1)]

    def test_null_interned_first(self):
        table = ValueTable()
        assert table.values[table.null_ref] is NULL
        assert table.canon[table.null_ref] == table.null_canon

    def test_canon_ref_is_value_equality(self):
        table = ValueTable()
        assert table.canon_ref("x") == table.canon_ref("x")
        assert table.canon_ref("x") != table.canon_ref("y")
        assert table.canon_ref(2) == table.canon_ref(2.0)

    def test_find_canon_never_interns(self):
        table = ValueTable()
        size = len(table)
        assert table.find_canon("missing") is None
        assert len(table) == size
        ref = table.ref("present")
        assert table.find_canon("present") == table.canon[ref]
        assert len(table) == size + 1

    def test_find_canon_unhashable_raises(self):
        table = ValueTable()
        with pytest.raises(TypeError):
            table.find_canon(["un", "hashable"])

    def test_unhashable_values_get_own_refs(self):
        table = ValueTable()
        a = table.ref(["x"])
        b = table.ref(["x"])
        assert a != b  # no dedup possible
        assert table.canon[a] == a and table.canon[b] == b
        assert table.values[a] == ["x"]

    def test_intern_tuple_returns_table_residents(self):
        table = ValueTable()
        first = table.intern_tuple(("k", 1))
        second = table.intern_tuple(("k", 1))
        assert first == ("k", 1)
        assert first[0] is second[0] and first[1] is second[1]


class TestIntColumn:
    def test_starts_narrow(self):
        col = IntColumn()
        assert col.typecode == "B"

    def test_widens_through_all_tiers(self):
        col = IntColumn()
        col.append(200)
        assert col.typecode == "B"
        col.append(1 << 8)
        assert col.typecode == "H"
        col.append(1 << 16)
        assert col.typecode == "I"
        col.append(1 << 32)
        assert col.typecode == "Q"
        assert list(col) == [200, 1 << 8, 1 << 16, 1 << 32]

    def test_setitem_widens_preserving_data(self):
        col = IntColumn()
        col.append(1)
        col.append(2)
        col[0] = 70000
        assert col.typecode == "I"
        assert list(col) == [70000, 2]

    def test_copy_is_independent(self):
        col = IntColumn()
        col.append(5)
        twin = col.copy()
        twin.append(6)
        assert list(col) == [5] and list(twin) == [5, 6]

    def test_nbytes_tracks_width(self):
        col = IntColumn()
        for i in range(4):
            col.append(i)
        assert col.nbytes() == 4  # 4 entries × 1 byte
        col.append(1 << 16)
        assert col.nbytes() == 5 * 4  # widened to "I"


class TestBitmap:
    def test_append_get_set(self):
        bm = Bitmap()
        for i in range(12):
            bm.append(i % 3 == 0)
        assert len(bm) == 12
        assert [bm.get(i) for i in range(12)] == [i % 3 == 0 for i in range(12)]
        bm.set(1, True)
        bm.set(0, False)
        assert bm.get(1) and not bm.get(0)

    def test_count(self):
        bm = Bitmap()
        for flag in (True, False, True, True, False):
            bm.append(flag)
        assert bm.count() == 3

    def test_copy_is_independent(self):
        bm = Bitmap()
        bm.append(True)
        twin = bm.copy()
        twin.set(0, False)
        assert bm.get(0) and not twin.get(0)


class TestColumnStore:
    def test_append_values_and_cell_access(self, schema):
        store = ColumnStore(schema)
        row = store.append_values(0, ["x", NULL, 3], [0.5, None, None])
        assert row == 0
        assert store.value_at(0, 0) == "x"
        assert store.value_at(0, 1) is NULL
        assert store.conf_at(0, 0) == 0.5
        assert store.nulls[1].get(0) and not store.nulls[0].get(0)

    def test_set_value_at_updates_null_bitmap(self, schema):
        store = ColumnStore(schema)
        store.append_values(0, ["x", "y", "z"], [None] * 3)
        store.set_value_at(0, 0, NULL)
        assert store.nulls[0].get(0)
        store.set_value_at(0, 0, "w")
        assert not store.nulls[0].get(0)

    def test_kill_tombstones_but_keeps_values(self, schema):
        store = ColumnStore(schema)
        store.append_values(7, ["x", "y", "z"], [None] * 3)
        store.kill(7)
        assert store.row_tids[0] == -8  # -1 - tid
        assert store.dead.get(0)
        assert store.n_dead == 1 and store.live_rows() == 0
        assert store.row_of[7] == 0  # tid→row survives
        assert store.value_at(0, 0) == "x"  # values stay readable
        store.kill(7)  # idempotent
        assert store.n_dead == 1

    def test_adopt_row_shares_refs_on_shared_table(self, schema):
        source = ColumnStore(schema)
        source.append_values(0, ["x", "y", "z"], [0.1, None, None])
        twin = ColumnStore(schema, source.table)
        twin.adopt_row(0, source, 0)
        assert twin.values[0].data[0] == source.values[0].data[0]
        assert twin.conf_at(0, 0) == 0.1

    def test_adopt_row_reinterns_across_tables(self, schema):
        source = ColumnStore(schema, ValueTable())
        source.append_values(0, ["x", "y", "z"], [None] * 3)
        target = ColumnStore(schema, ValueTable())
        target.adopt_row(0, source, 0)
        assert [target.value_at(0, i) for i in range(3)] == ["x", "y", "z"]

    def test_nbytes_counts_columns_and_bitmaps(self, schema):
        store = ColumnStore(schema)
        assert store.nbytes() == 0
        store.append_values(0, ["x", "y", "z"], [None] * 3)
        assert store.nbytes() > 0


class TestColumnTuple:
    """The row-view honours the full CTuple contract."""

    def test_resident_tuples_are_row_views(self, rel):
        t = rel.by_tid(0)
        assert isinstance(t, ColumnTuple)

    def test_direct_construction_rejected(self, schema):
        with pytest.raises(TypeError):
            ColumnTuple(schema, {"A": "x"})

    def test_value_access_matches_ctuple(self, schema, rel):
        reference = CTuple(schema, {"A": "a1", "B": "b1", "C": 1}, {"A": 0.9})
        t = rel.by_tid(0)
        for attr in schema.names:
            assert t[attr] == reference[attr]
            assert t.conf(attr) == reference.conf(attr)
            assert t.get(attr) == reference.get(attr)
        assert t.get("missing", 42) == 42
        assert list(t) == list(reference)
        assert t.as_dict() == reference.as_dict()
        assert t.conf_dict() == reference.conf_dict()
        assert len(t) == 3

    def test_unknown_attribute_errors(self, rel):
        t = rel.by_tid(0)
        with pytest.raises(SchemaError):
            t["missing"]
        with pytest.raises(SchemaError):
            t["missing"] = 1
        with pytest.raises(SchemaError):
            t.conf("missing")
        with pytest.raises(SchemaError):
            t.set_conf("missing", 0.5)
        with pytest.raises(SchemaError):
            t.project(["A", "missing"])

    def test_mutation_through_view(self, rel):
        t = rel.by_tid(1)
        t["A"] = "patched"
        t.set_conf("A", 0.25)
        assert rel.by_tid(1)["A"] == "patched"
        assert rel.by_tid(1).conf("A") == 0.25
        with pytest.raises(DataError):
            t.set_conf("A", 1.5)

    def test_set_null_tracks_bitmap(self, rel):
        t = rel.by_tid(0)
        assert not t.has_null(["A"])
        t["A"] = NULL
        assert t.has_null(["A"])
        assert t.has_null(["A", "B"]) and not t.has_null(["B", "C"])

    def test_projections(self, rel):
        t = rel.by_tid(0)
        assert t.project(["B", "A"]) == ("b1", "a1")
        assert t.project_conf(["A", "B"]) == (0.9, None)
        refs = t.project_refs(["A", "B"])
        assert all(isinstance(r, int) for r in refs)
        table = rel.value_table
        assert tuple(table.values[r] for r in refs) == ("a1", "b1")

    def test_has_conf_at_least(self, rel):
        t = rel.by_tid(0)
        assert t.has_conf_at_least("A", 0.9)
        assert not t.has_conf_at_least("A", 0.95)
        assert not t.has_conf_at_least("B", 0.0)  # None = unavailable

    def test_equality_same_store_and_cross_backend(self, schema, rel):
        with using_backend(True):
            twin = Relation.from_dicts(schema, [{"A": "a1", "B": "b1", "C": 1}])
        assert rel.by_tid(0) == twin.by_tid(0)  # canon fast path
        assert rel.by_tid(0) != rel.by_tid(1)
        plain = CTuple(schema, {"A": "a1", "B": "b1", "C": 1})
        assert rel.by_tid(0) == plain and plain == rel.by_tid(0)
        assert hash(rel.by_tid(0)) == hash(plain)

    def test_equality_mixed_int_float(self, schema):
        with using_backend(True):
            a = Relation.from_dicts(schema, [{"A": "x", "B": "y", "C": 1}])
            b = Relation.from_dicts(schema, [{"A": "x", "B": "y", "C": 1.0}])
        assert a.by_tid(0) == b.by_tid(0)  # 1 == 1.0 through canon refs

    def test_clone_detaches(self, rel):
        t = rel.by_tid(0)
        clone = t.clone()
        assert type(clone) is CTuple and clone == t
        clone["A"] = "detached"
        assert rel.by_tid(0)["A"] == "a1"

    def test_pickle_detaches(self, rel):
        t = rel.by_tid(0)
        back = pickle.loads(pickle.dumps(t))
        assert type(back) is CTuple
        assert back == t and back.tid == t.tid
        assert back.conf("A") == 0.9

    def test_values_conf_properties_count_materializations(self, rel):
        t = rel.by_tid(0)
        before = materializations()
        values = t._values
        confs = t._conf
        assert materializations() == before + 2
        assert values == {"A": "a1", "B": "b1", "C": 1}
        assert confs == {"A": 0.9, "B": None, "C": None}

    def test_diff_and_values_equal_inherited(self, rel):
        a, b = rel.by_tid(0), rel.by_tid(1)
        assert a.diff(b) == ("B", "C")
        assert a.values_equal(b, ["A"]) and not a.values_equal(b)


class TestRelationColumnarBackend:
    def test_backend_toggle(self, schema):
        with using_backend(False):
            assert Relation(schema).column_store is None
        with using_backend(True):
            assert Relation(schema).column_store is not None
        assert Relation(schema, columnar=False).column_store is None

    def test_value_table_is_process_wide(self, rel):
        assert rel.value_table is GLOBAL_TABLE

    def test_add_adopts_foreign_ctuple(self, schema, rel):
        t = CTuple(schema, {"A": "new"}, {"A": 1.0})
        resident = rel.add(t)
        assert isinstance(resident, ColumnTuple)
        assert resident.tid == t.tid
        assert rel.by_tid(resident.tid)["A"] == "new"
        assert rel.by_tid(resident.tid).conf("A") == 1.0

    def test_remove_keeps_values_readable(self, rel):
        removed = rel.remove(1)
        assert removed["B"] == "b2"  # delete-observer contract
        assert rel.tid_retired(1) and not rel.has_tid(1)
        with pytest.raises(DataError):
            rel.by_tid(1)

    def test_retired_tids_stay_dead_after_reinsert(self, rel):
        rel.remove(0)
        t = rel.add_row({"A": "fresh"})
        assert t.tid == 3  # never reuses tid 0
        assert rel.tid_retired(0)
        store = rel.column_store
        assert store.dead.get(store.row_of[0])
        assert not rel.has_tid(0)

    def test_pickle_roundtrip_preserves_state(self, rel):
        rel.remove(1)
        rel.add_row({"A": "late", "C": 9}, {"C": 0.3})
        # Unpickling rebuilds under the ambient backend (refs are
        # process-local); pin it so the roundtrip lands columnar.
        with using_backend(True):
            back = pickle.loads(pickle.dumps(rel))
        assert back.column_store is not None
        assert back.tids() == rel.tids()
        assert back._next_tid == rel._next_tid
        assert back.tid_retired(1)
        for tid in rel.tids():
            mine, theirs = rel.by_tid(tid), back.by_tid(tid)
            assert mine == theirs
            for attr in rel.schema.names:
                assert mine.conf(attr) == theirs.conf(attr)

    def test_clone_compacts_tombstones(self, rel):
        rel.remove(1)
        twin = rel.clone()
        store = twin.column_store
        assert store.n_dead == 0
        assert len(store.row_tids) == len(rel)
        assert twin.tids() == rel.tids()
        # clones are independent
        twin.by_tid(0)["A"] = "mutated"
        assert rel.by_tid(0)["A"] == "a1"

    def test_restrict_copy_false_shares_columns(self, rel):
        view = rel.restrict([0, 2], copy=False)
        assert view.column_store is rel.column_store
        assert view.by_tid(0) is rel.by_tid(0)
        view.by_tid(0)["A"] = "shared-write"
        assert rel.by_tid(0)["A"] == "shared-write"

    def test_restrict_copy_true_is_independent(self, rel):
        shard = rel.restrict([0, 2])
        assert shard.column_store is not rel.column_store
        assert shard.column_store.table is rel.column_store.table
        shard.by_tid(0)["A"] = "shard-write"
        assert rel.by_tid(0)["A"] == "a1"


class TestBulkAccessors:
    def test_column_aligned_with_tids(self, rel):
        refs = rel.column("A")
        table = rel.value_table
        assert [table.values[r] for r in refs] == [t["A"] for t in rel]

    def test_column_survives_tombstones(self, rel):
        rel.remove(1)
        refs = rel.column("A")
        assert len(refs) == 2
        table = rel.value_table
        assert [table.values[r] for r in refs] == ["a1", "a2"]

    def test_project_refs(self, rel):
        table = rel.value_table
        ref_rows = rel.project_refs(["A", "C"])
        assert [
            tuple(table.values[r] for r in refs) for refs in ref_rows
        ] == [t.project(["A", "C"]) for t in rel]

    def test_rows_where_matches_select(self, rel):
        assert rel.rows_where("A", "a1") == rel.select(lambda t: t["A"] == "a1")
        assert rel.rows_where("A", "nowhere") == []
        # == semantics across types, exactly like the per-tuple scan
        assert rel.rows_where("C", 1.0) == rel.select(lambda t: t["C"] == 1.0)

    def test_rows_where_unhashable_probe_falls_back(self, rel):
        assert rel.rows_where("A", ["un", "hashable"]) == []

    def test_group_rows_by_matches_group_by(self, rel):
        by_tid = rel.group_rows_by(["A"])
        by_tuple = {
            key: [t.tid for t in members]
            for key, members in rel.group_by(["A"]).items()
        }
        assert by_tid == by_tuple
        assert list(by_tid) == list(by_tuple)  # first-encounter order

    def test_bulk_accessors_require_columns(self, schema):
        with using_backend(True):
            columnar = Relation.from_dicts(schema, [{"A": "x"}])
        flat_dict = Relation(schema, columnar=False)
        flat_dict.add_row({"A": "x"})
        with pytest.raises(DataError):
            flat_dict.column("A")
        with pytest.raises(DataError):
            flat_dict.project_refs(["A"])
        assert columnar.column("A")

    def test_algebra_matches_dict_backend(self, schema):
        rows = [
            {"A": "a1", "B": "b1", "C": 1},
            {"A": "a1", "B": NULL, "C": 1.0},
            {"A": "a2", "B": "b1", "C": 2},
            {"A": "a1", "B": "b1", "C": 1},
        ]
        with using_backend(True):
            columnar = Relation.from_dicts(schema, rows)
        with using_backend(False):
            flat = Relation.from_dicts(schema, rows)
        for attrs in (["A"], ["A", "B"], ["C"], ["A", "B", "C"]):
            assert columnar.project(attrs) == flat.project(attrs)
            col_groups = {
                k: [t.tid for t in v]
                for k, v in columnar.group_by(attrs).items()
            }
            flat_groups = {
                k: [t.tid for t in v] for k, v in flat.group_by(attrs).items()
            }
            assert col_groups == flat_groups
            assert list(col_groups) == list(flat_groups)
        for attr in schema.names:
            assert columnar.active_domain(attr) == flat.active_domain(attr)


class TestEngineSwitches:
    def test_set_check_engine_rejects_unknown(self):
        with pytest.raises(ValueError):
            set_check_engine("turbo")

    def test_using_engine_restores(self):
        from repro.relational.columns import check_engine

        before = check_engine()
        with using_engine("reference"):
            assert check_engine() == "reference"
        assert check_engine() == before


class TestCompaction:
    """Satellite (a): ``ColumnStore.compact`` reclaims tombstoned rows
    without disturbing tids, values, confidences or iteration order."""

    def _columnar(self, schema, n):
        with using_backend(True):
            relation = Relation(schema)
        for i in range(n):
            relation.add_row(
                {"A": f"a{i}", "B": f"b{i % 3}", "C": i}, {"A": 0.5}
            )
        return relation

    def test_manual_compact_reclaims_dead_rows(self, schema):
        relation = self._columnar(schema, 10)
        for tid in (1, 3, 5):
            relation.remove(tid)
        store = relation.column_store
        assert store.n_dead == 3 and len(store.row_tids) == 10
        assert relation.compact(force=True)
        assert store.n_dead == 0 and len(store.row_tids) == 7
        assert store.live_rows() == 7

    def test_tids_and_cells_stable_across_compaction(self, schema):
        relation = self._columnar(schema, 12)
        before = {
            t.tid: tuple((t[a], t.conf(a)) for a in schema.names)
            for t in relation
        }
        order = list(relation.tids())
        for tid in (0, 2, 4, 6, 8):
            relation.remove(tid)
            del before[tid]
            order.remove(tid)
        assert relation.compact(force=True)
        after = {
            t.tid: tuple((t[a], t.conf(a)) for a in schema.names)
            for t in relation
        }
        assert after == before
        assert list(relation.tids()) == order  # iteration order preserved
        for tid in (0, 2, 4, 6, 8):
            assert relation.tid_retired(tid) and not relation.has_tid(tid)

    def test_auto_trigger_on_live_ratio(self, schema):
        from repro.relational.columns import COMPACT_MIN_ROWS

        relation = self._columnar(schema, COMPACT_MIN_ROWS)
        store = relation.column_store
        # Kill exactly half: live == n/2 is not *below* the ratio yet.
        doomed = list(relation.tids())[: COMPACT_MIN_ROWS // 2 + 1]
        for tid in doomed[:-1]:
            relation.remove(tid)
        assert len(store.row_tids) == COMPACT_MIN_ROWS
        assert not store.should_compact()
        # One more drop crosses the live-ratio threshold and compacts
        # inside remove() itself.
        relation.remove(doomed[-1])
        assert store.n_dead == 0
        assert len(store.row_tids) == COMPACT_MIN_ROWS // 2 - 1
        assert list(relation.tids()) == [t.tid for t in relation]

    def test_below_min_rows_never_auto_compacts(self, schema):
        relation = self._columnar(schema, 8)
        for tid in list(relation.tids())[:7]:
            relation.remove(tid)
        store = relation.column_store
        assert store.n_dead == 7  # tombstones stay: fuzz suites rely on it
        assert not relation.compact()  # thresholds not met without force

    def test_removed_handle_survives_auto_compaction(self, schema):
        from repro.relational.columns import COMPACT_MIN_ROWS

        relation = self._columnar(schema, COMPACT_MIN_ROWS)
        doomed = list(relation.tids())[: COMPACT_MIN_ROWS // 2 + 1]
        removed = [relation.remove(tid) for tid in doomed]
        # The popped views were detached onto private stores before the
        # auto-compaction moved rows; their cells stay readable.
        for i, t in zip(doomed, removed):
            assert t[schema.names[0]] == f"a{i}"
            assert t.conf("A") == 0.5

    def test_no_tid_reuse_after_compaction(self, schema):
        relation = self._columnar(schema, 6)
        relation.remove(2)
        relation.compact(force=True)
        fresh = relation.add_row({"A": "new", "B": "b", "C": 99})
        assert fresh.tid == 6  # monotonic, not the reclaimed slot's tid
        assert relation.tid_retired(2)

    def test_shared_store_refuses_compaction(self, schema):
        relation = self._columnar(schema, 6)
        view = relation.restrict(list(relation.tids())[:3], copy=False)
        store = relation.column_store
        assert store.shared
        assert not relation.compact(force=True)
        with pytest.raises(ValueError):
            store.compact()
        assert list(view.tids()) == list(relation.tids())[:3]

    def test_group_store_coherent_across_compaction(self, schema):
        from repro.constraints import CFD
        from repro.indexing.group_store import GroupStoreRegistry

        relation = self._columnar(schema, 16)
        registry = GroupStoreRegistry(relation)
        registry.cfd_store(CFD(schema, ["B"], ["A"], name="fd_ba"))
        for tid in (0, 3, 6, 9):
            relation.remove(tid)
        assert relation.compact(force=True)
        registry.check_consistency()

    def test_compact_noop_for_dict_backend(self, schema):
        relation = Relation(schema, columnar=False)
        relation.add_row({"A": "x", "B": "y", "C": 1})
        relation.remove(list(relation.tids())[0])
        assert not relation.compact(force=True)
