"""Unit tests for the Changeset delta API and its observer propagation."""

import pytest

from repro.exceptions import DataError
from repro.pipeline import Changeset, KEEP
from repro.relational import NULL, Relation, Schema


@pytest.fixture()
def schema() -> Schema:
    return Schema("R", ["K", "A", "B"])


@pytest.fixture()
def relation(schema) -> Relation:
    return Relation.from_dicts(
        schema,
        [
            {"K": "k1", "A": "a1", "B": "b1"},
            {"K": "k1", "A": "a2", "B": "b2"},
            {"K": "k2", "A": "a3", "B": "b3"},
        ],
    )


class TestBuilder:
    def test_fluent_and_len(self):
        cs = Changeset().edit(0, "A", "x").insert({"K": "k"}).delete(1)
        assert len(cs) == 3
        assert bool(cs)
        assert not Changeset()

    def test_edit_requires_value_or_conf(self):
        with pytest.raises(DataError):
            Changeset().edit(0, "A")

    def test_repr_counts(self):
        cs = Changeset().edit(0, "A", "x").edit(1, "B", "y").delete(2)
        assert "2 edits" in repr(cs) and "1 deletes" in repr(cs)


class TestApplyTo:
    def test_edit_value_and_conf(self, relation):
        cs = Changeset().edit(0, "A", "zz", conf=0.9).edit(1, "B", conf=0.5)
        applied = cs.apply_to(relation)
        t0, t1 = relation.by_tid(0), relation.by_tid(1)
        assert t0["A"] == "zz" and t0.conf("A") == 0.9
        assert t1["B"] == "b2" and t1.conf("B") == 0.5  # value kept
        assert applied.edited_cells == [(0, "A"), (1, "B")]

    def test_insert_assigns_tid_and_defaults_null(self, relation):
        applied = Changeset().insert({"K": "k9"}).apply_to(relation)
        (tid,) = applied.inserted_tids
        t = relation.by_tid(tid)
        assert t["K"] == "k9" and t["A"] is NULL

    def test_delete_removes_tuple(self, relation):
        applied = Changeset().delete(1).apply_to(relation)
        assert applied.deleted_tids == [1]
        assert not relation.has_tid(1)
        with pytest.raises(DataError):
            relation.by_tid(1)

    def test_unknown_tid_raises(self, relation):
        with pytest.raises(DataError):
            Changeset().edit(99, "A", "x").apply_to(relation)

    def test_touched_tids_excludes_deleted(self, relation):
        cs = Changeset().edit(0, "A", "x").edit(1, "B", "y").delete(1)
        applied = cs.apply_to(relation)
        assert applied.touched_tids() == [0]

    def test_observers_see_every_operation(self, relation):
        events = []
        relation.add_observer(lambda t, attr, old, new: events.append(("set", t.tid, attr)))
        relation.add_insert_observer(lambda t: events.append(("ins", t.tid)))
        relation.add_delete_observer(lambda t: events.append(("del", t.tid)))
        applied = (
            Changeset()
            .edit(0, "A", "x")
            .insert({"K": "k9"})
            .delete(2)
            .apply_to(relation)
        )
        new_tid = applied.inserted_tids[0]
        assert events == [("set", 0, "A"), ("ins", new_tid), ("del", 2)]

    def test_noop_edit_does_not_notify(self, relation):
        events = []
        relation.add_observer(lambda t, attr, old, new: events.append((t.tid, attr)))
        Changeset().edit(0, "A", "a1").apply_to(relation)  # same value
        assert events == []

    def test_keep_sentinel_is_singleton(self):
        assert KEEP is type(KEEP)()
