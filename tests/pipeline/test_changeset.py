"""Unit tests for the Changeset delta API and its observer propagation."""

import pytest

from repro.exceptions import DataError
from repro.pipeline import Changeset, KEEP
from repro.relational import NULL, Relation, Schema


@pytest.fixture()
def schema() -> Schema:
    return Schema("R", ["K", "A", "B"])


@pytest.fixture()
def relation(schema) -> Relation:
    return Relation.from_dicts(
        schema,
        [
            {"K": "k1", "A": "a1", "B": "b1"},
            {"K": "k1", "A": "a2", "B": "b2"},
            {"K": "k2", "A": "a3", "B": "b3"},
        ],
    )


class TestBuilder:
    def test_fluent_and_len(self):
        cs = Changeset().edit(0, "A", "x").insert({"K": "k"}).delete(1)
        assert len(cs) == 3
        assert bool(cs)
        assert not Changeset()

    def test_edit_requires_value_or_conf(self):
        with pytest.raises(DataError):
            Changeset().edit(0, "A")

    def test_repr_counts(self):
        cs = Changeset().edit(0, "A", "x").edit(1, "B", "y").delete(2)
        assert "2 edits" in repr(cs) and "1 deletes" in repr(cs)


class TestApplyTo:
    def test_edit_value_and_conf(self, relation):
        cs = Changeset().edit(0, "A", "zz", conf=0.9).edit(1, "B", conf=0.5)
        applied = cs.apply_to(relation)
        t0, t1 = relation.by_tid(0), relation.by_tid(1)
        assert t0["A"] == "zz" and t0.conf("A") == 0.9
        assert t1["B"] == "b2" and t1.conf("B") == 0.5  # value kept
        assert applied.edited_cells == [(0, "A"), (1, "B")]

    def test_insert_assigns_tid_and_defaults_null(self, relation):
        applied = Changeset().insert({"K": "k9"}).apply_to(relation)
        (tid,) = applied.inserted_tids
        t = relation.by_tid(tid)
        assert t["K"] == "k9" and t["A"] is NULL

    def test_delete_removes_tuple(self, relation):
        applied = Changeset().delete(1).apply_to(relation)
        assert applied.deleted_tids == [1]
        assert not relation.has_tid(1)
        with pytest.raises(DataError):
            relation.by_tid(1)

    def test_unknown_tid_raises(self, relation):
        with pytest.raises(DataError):
            Changeset().edit(99, "A", "x").apply_to(relation)

    def test_touched_tids_excludes_deleted(self, relation):
        cs = Changeset().edit(0, "A", "x").edit(1, "B", "y").delete(1)
        applied = cs.apply_to(relation)
        assert applied.touched_tids() == [0]

    def test_observers_see_every_operation(self, relation):
        events = []
        relation.add_observer(lambda t, attr, old, new: events.append(("set", t.tid, attr)))
        relation.add_insert_observer(lambda t: events.append(("ins", t.tid)))
        relation.add_delete_observer(lambda t: events.append(("del", t.tid)))
        applied = (
            Changeset()
            .edit(0, "A", "x")
            .insert({"K": "k9"})
            .delete(2)
            .apply_to(relation)
        )
        new_tid = applied.inserted_tids[0]
        assert events == [("set", 0, "A"), ("ins", new_tid), ("del", 2)]

    def test_noop_edit_does_not_notify(self, relation):
        events = []
        relation.add_observer(lambda t, attr, old, new: events.append((t.tid, attr)))
        Changeset().edit(0, "A", "a1").apply_to(relation)  # same value
        assert events == []

    def test_keep_sentinel_is_singleton(self):
        assert KEEP is type(KEEP)()


class TestAtomicity:
    """ISSUE 3: apply_to validates everything before mutating anything."""

    def snapshot(self, relation):
        return {
            t.tid: {a: (t[a], t.conf(a)) for a in relation.schema.names}
            for t in relation
        }

    def test_failing_changeset_leaves_relation_untouched(self, relation):
        before = self.snapshot(relation)
        cs = (
            Changeset()
            .edit(0, "A", "poked")
            .insert({"K": "k9"})
            .delete(1)
            .edit(99, "B", "missing")  # fails: unknown tid
        )
        with pytest.raises(DataError):
            cs.apply_to(relation)
        assert self.snapshot(relation) == before
        assert len(relation) == 3  # no insert leaked through

    def test_failing_changeset_leaves_group_stores_untouched(self, relation):
        from repro.constraints import CFD
        from repro.indexing.group_store import GroupStoreRegistry

        registry = GroupStoreRegistry(relation)
        store = registry.cfd_store(CFD(relation.schema, ["K"], ["A"], name="fd"))
        keys_before = {key: set(g.tids) for key, g in store.groups.items()}
        cs = Changeset().edit(0, "K", "k9").delete(77)  # second op fails
        with pytest.raises(DataError):
            cs.apply_to(relation)
        assert {key: set(g.tids) for key, g in store.groups.items()} == keys_before
        registry.detach()

    def test_out_of_range_confidence_rejected_upfront(self, relation):
        cs = Changeset().edit(0, "A", "v").edit(1, "A", conf=3.5)
        with pytest.raises(DataError):
            cs.apply_to(relation)
        assert relation.by_tid(0)["A"] == "a1"

    def test_edit_after_same_changeset_delete_fails_upfront(self, relation):
        before = self.snapshot(relation)
        cs = Changeset().delete(0).edit(0, "A", "zombie")
        with pytest.raises(DataError):
            cs.apply_to(relation)
        assert self.snapshot(relation) == before


class TestTidAliasingThroughSession:
    """Regression: remove → re-add with the same explicit tid must not
    alias dead per-cell session state (cost map, fix log)."""

    def test_session_state_never_keyed_by_dead_tid(self):
        from repro.constraints import CFD
        from repro.core import UniCleanConfig
        from repro.pipeline import CleaningSession
        from repro.relational import CTuple

        schema = Schema("S", ["K", "A"])
        cfds = [CFD(schema, ["K"], ["A"], {"K": "k1", "A": "good"}, name="c")]
        relation = Relation.from_dicts(
            schema,
            [{"K": "k1", "A": "bad"}, {"K": "k2", "A": "x"}],
        )
        session = CleaningSession(cfds=cfds, config=UniCleanConfig(eta=1.0))
        result = session.clean(relation)
        assert (0, "A") in {f.cell for f in result.fix_log}
        out = session.apply(Changeset().delete(0))
        assert all(f.tid != 0 for f in out.fix_log)
        assert all(cell[0] != 0 for cell in session._cell_costs)
        # Re-adding tid 0 explicitly to the session's base must yield a
        # fresh tid: the old fix-log/cost history cannot re-attach.
        ghost = CTuple(schema, {"K": "k1", "A": "bad"}, tid=0)
        session.base.add(ghost)
        assert ghost.tid != 0 and session.base.tid_retired(0)

    def test_out_of_range_insert_confidence_rejected_upfront(self, relation):
        before = {t.tid: t["A"] for t in relation}
        cs = (
            Changeset()
            .edit(0, "A", "poked")
            .insert({"K": "k9"}, confidences={"K": 5.0})
        )
        with pytest.raises(DataError):
            cs.apply_to(relation)
        assert {t.tid: t["A"] for t in relation} == before
        assert len(relation) == 3

    def test_non_numeric_confidence_rejected_upfront(self, relation):
        before = {t.tid: t["A"] for t in relation}
        cs = Changeset().edit(0, "A", "poked").edit(1, "A", conf="0.9")
        with pytest.raises(DataError):
            cs.apply_to(relation)
        assert {t.tid: t["A"] for t in relation} == before
