"""Durable session snapshots: round trips, crash consistency, versioning.

Covers the ISSUE 5 snapshot subsystem (``repro/pipeline/snapshot.py``):

* save/restore round trips for :class:`CleaningSession` and
  :class:`ShardedCleaningSession`, with byte-identical post-restore
  apply observables (the fuzzed trajectory version lives in
  ``tests/properties/test_property_snapshot.py``);
* crash consistency — any bit flip or truncation raises
  :class:`SnapshotCorrupt` before state is decoded, and a failed write
  never clobbers the previous snapshot (temp-file + rename atomicity);
* the version-compatibility scaffold — a committed golden fixture that
  current code must keep restoring, and an explicit unsupported-version
  refusal, so format changes must bump the version byte consciously.
"""

import hashlib
import json
import os
import pickle
import random
import subprocess
import sys
from pathlib import Path

import pytest

import repro
from repro.constraints import CFD, MD
from repro.core import UniCleanConfig
from repro.exceptions import DataError, SnapshotCorrupt, SnapshotError
from repro.pipeline import Changeset, CleaningSession, ShardedCleaningSession
from repro.pipeline import snapshot
from repro.relational import Relation, Schema
from repro.similarity.predicates import edit_within

SCHEMA = Schema("R", ["blk", "K", "A", "B", "nm"])
MASTER_SCHEMA = Schema("Rm", ["blk", "nm", "A"])

CFDS = [
    CFD(SCHEMA, ["blk", "K"], ["A"], name="fd_ka"),
    CFD(SCHEMA, ["K"], ["B"], name="fd_kb"),
    CFD(SCHEMA, ["K"], ["B"], {"K": "k1", "B": "b1"}, name="const_kb"),
]
MDS = [
    MD(SCHEMA, MASTER_SCHEMA,
       [("blk", "blk"), ("nm", "nm", edit_within(1))],
       [("A", "A")], name="md_a"),
]
MASTER = Relation.from_dicts(
    MASTER_SCHEMA,
    [
        {"blk": "x", "nm": "nm1", "A": "aX"},
        {"blk": "y", "nm": "nm2", "A": "aY"},
    ],
)
CONFIG = UniCleanConfig(eta=1.0)

ROWS = [
    ("x", "k1", "a1", "b2", "nm1"),
    ("x", "k1", "a2", "b1", "nm1"),
    ("y", "k2", "a1", "b2", "nm2"),
    ("y", "k2", "a2", "b2", "nm2"),
    ("x", "k3", "a1", "b1", "nm8"),
    # k4, not k3: fd_kb couples rows sharing K across blocks, and the
    # reuse tests need the x/y components to stay shard-local.
    ("y", "k4", "a2", "b1", "nm8"),
]


def build_relation() -> Relation:
    relation = Relation(SCHEMA)
    for blk, k, a, b, nm in ROWS:
        relation.add_row(
            {"blk": blk, "K": k, "A": a, "B": b, "nm": nm},
            {"K": 1.0, "A": 0.0, "B": 0.0, "blk": 1.0, "nm": 0.0},
        )
    return relation


def make_session(**kwargs) -> CleaningSession:
    return CleaningSession(
        cfds=CFDS, mds=MDS, master=MASTER, config=CONFIG, **kwargs
    )


def make_sharded(**kwargs) -> ShardedCleaningSession:
    kwargs.setdefault("n_workers", 1)
    kwargs.setdefault("n_shards", 2)
    return ShardedCleaningSession(
        cfds=CFDS, mds=MDS, master=MASTER, config=CONFIG, **kwargs
    )


def full_state(relation):
    return {
        t.tid: tuple((repr(t[a]), t.conf(a)) for a in relation.schema.names)
        for t in relation
    }


def fingerprint(log):
    return [
        (f.kind.value, f.rule_name, f.tid, f.attr, repr(f.old_value),
         repr(f.new_value), repr(f.source))
        for f in log
    ]


def assert_same(one, two):
    assert full_state(one.repaired) == full_state(two.repaired)
    assert fingerprint(one.fix_log) == fingerprint(two.fix_log)
    assert abs(one.cost - two.cost) < 1e-12
    assert one.clean == two.clean


# ----------------------------------------------------------------------
# Framing
# ----------------------------------------------------------------------
class TestFraming:
    def test_pack_unpack_round_trip(self):
        sections = {"alpha": b"abc", "beta": b"", "gamma": b"\x00" * 100}
        blob = snapshot.pack_snapshot("demo", sections)
        kind, out = snapshot.unpack_snapshot(blob)
        assert kind == "demo"
        assert out == sections

    def test_kind_mismatch_is_corruption(self):
        blob = snapshot.pack_snapshot("demo", {"s": b"x"})
        with pytest.raises(SnapshotCorrupt, match="kind"):
            snapshot.unpack_snapshot(blob, expect_kind="other")

    def test_unsupported_version_is_refused(self):
        blob = bytearray(snapshot.pack_snapshot("demo", {"s": b"x"}))
        blob[len(snapshot.SNAPSHOT_MAGIC)] = snapshot.SNAPSHOT_VERSION + 1
        # Re-sign so the version byte (not the checksum) is what trips.
        body = bytes(blob[:-32])
        resigned = body + hashlib.sha256(body).digest()
        with pytest.raises(SnapshotCorrupt, match="version"):
            snapshot.unpack_snapshot(resigned)

    def test_bad_magic(self):
        with pytest.raises(SnapshotCorrupt, match="magic"):
            snapshot.unpack_snapshot(b"NOPE" + b"\x00" * 64)

    def test_too_short(self):
        with pytest.raises(SnapshotCorrupt):
            snapshot.unpack_snapshot(b"UC")


# ----------------------------------------------------------------------
# Unsharded sessions
# ----------------------------------------------------------------------
class TestSessionSnapshot:
    def test_round_trip_preserves_session_state(self, tmp_path):
        live = make_session()
        live.clean(build_relation())
        live.apply(Changeset().edit(0, "A", "a2").edit(4, "B", "b2"))
        path = tmp_path / "session.snap"
        size = live.save(path)
        assert size == path.stat().st_size > 0

        twin = CleaningSession.restore(path)
        assert full_state(twin.base) == full_state(live.base)
        assert full_state(twin.working) == full_state(live.working)
        assert fingerprint(twin.fix_log) == fingerprint(live.fix_log)
        assert twin._cell_costs == live._cell_costs
        assert list(twin._cell_costs) == list(live._cell_costs)  # order too
        assert twin._last_clean == live._last_clean
        assert twin.base._next_tid == live.base._next_tid
        assert twin.base._retired == live.base._retired

    def test_match_cache_is_rewarmed(self, tmp_path):
        live = make_session()
        live.clean(build_relation())
        cached = {
            name: dict(index._match_cache)
            for name, index in live.md_indexes.items()
        }
        assert any(cached.values()), "workload should exercise the MD cache"
        path = tmp_path / "session.snap"
        live.save(path)
        twin = CleaningSession.restore(path)
        for name, entries in cached.items():
            twin_cache = twin.md_indexes[name]._match_cache
            assert list(twin_cache) == list(entries)
            for key, matched in entries.items():
                assert [s.tid for s in twin_cache[key]] == [
                    s.tid for s in matched
                ]

    def test_post_restore_applies_are_byte_identical(self, tmp_path):
        live = make_session()
        twin_source = make_session()
        relation = build_relation()
        live.clean(relation)
        twin_source.clean(relation)
        first = Changeset().edit(1, "B", "b2")
        live.apply(Changeset(list(first.ops)))
        twin_source.apply(Changeset(list(first.ops)))
        path = tmp_path / "session.snap"
        twin_source.save(path)
        twin = CleaningSession.restore(path)

        batches = [
            Changeset().edit(2, "B", "b1").edit(0, "nm", "nm2"),
            Changeset().insert(
                {"blk": "x", "K": "k1", "A": "a1", "B": "b2", "nm": "nm1"}
            ),
            Changeset().delete(3).edit(5, "A", "a1"),
        ]
        for changeset in batches:
            one = live.apply(Changeset(list(changeset.ops)))
            two = twin.apply(Changeset(list(changeset.ops)))
            assert_same(one, two)
        assert live.is_clean() == twin.is_clean()

    def test_ever_group_keys_survive(self, tmp_path):
        live = make_session(collect_traces=True)
        live.clean(build_relation())
        # Force a transient group key that no longer exists on the data.
        live.apply(Changeset().edit(0, "K", "k9"))
        live.apply(Changeset().edit(0, "K", "k1"))
        assert any(live.ever_group_keys.values())
        path = tmp_path / "session.snap"
        live.save(path)
        twin = CleaningSession.restore(path)
        assert twin.collect_traces
        assert twin.ever_group_keys == live.ever_group_keys

    @pytest.mark.parametrize(
        "config",
        [
            UniCleanConfig(eta=1.0),  # cfd-only, no master data
            UniCleanConfig(eta=1.0, use_violation_index=False),  # legacy
        ],
        ids=["no-master", "legacy-engine"],
    )
    def test_round_trip_without_mds_and_on_legacy_engine(
        self, tmp_path, config
    ):
        cfd_schema = Schema("S", ["K", "A", "B"])
        cfds = [
            CFD(cfd_schema, ["K"], ["A"], name="fd_ka"),
            CFD(cfd_schema, ["A"], ["B"], name="fd_ab"),
        ]
        relation = Relation(cfd_schema)
        for k, a, b, conf in [
            ("k1", "a1", "b1", 1.0),
            ("k1", "a2", "b2", 0.0),
            ("k2", "a1", "b2", 0.0),
        ]:
            relation.add_row(
                {"K": k, "A": a, "B": b}, {"K": conf, "A": conf, "B": 0.0}
            )
        live = CleaningSession(cfds=cfds, config=config)
        twin_source = CleaningSession(cfds=cfds, config=config)
        live.clean(relation)
        twin_source.clean(relation)
        path = tmp_path / "session.snap"
        twin_source.save(path)
        twin = CleaningSession.restore(path)
        changeset = Changeset().edit(2, "A", "a2").insert(
            {"K": "k2", "A": "a1", "B": "b2"}
        )
        assert_same(
            live.apply(Changeset(list(changeset.ops))),
            twin.apply(Changeset(list(changeset.ops))),
        )

    def test_save_requires_clean(self, tmp_path):
        with pytest.raises(DataError, match="clean"):
            make_session().save(tmp_path / "nope.snap")

    def test_restore_missing_file(self, tmp_path):
        with pytest.raises(SnapshotError, match="no snapshot"):
            CleaningSession.restore(tmp_path / "absent.snap")


# ----------------------------------------------------------------------
# Crash consistency
# ----------------------------------------------------------------------
class TestCrashConsistency:
    @pytest.fixture()
    def saved(self, tmp_path):
        session = make_session()
        session.clean(build_relation())
        path = tmp_path / "session.snap"
        session.save(path)
        return path

    def test_bit_flips_raise_snapshot_corrupt(self, saved):
        blob = saved.read_bytes()
        rng = random.Random(0xC0FFEE)
        for _ in range(64):
            corrupted = bytearray(blob)
            offset = rng.randrange(len(corrupted))
            corrupted[offset] ^= rng.randrange(1, 256)
            saved.write_bytes(bytes(corrupted))
            with pytest.raises(SnapshotCorrupt):
                CleaningSession.restore(saved)

    def test_truncations_raise_snapshot_corrupt(self, saved):
        blob = saved.read_bytes()
        rng = random.Random(0xBEEF)
        cuts = {0, 1, len(blob) - 1} | {
            rng.randrange(len(blob)) for _ in range(32)
        }
        for cut in sorted(cuts):
            saved.write_bytes(blob[:cut])
            with pytest.raises(SnapshotCorrupt):
                CleaningSession.restore(saved)

    def test_failed_write_keeps_previous_snapshot(self, tmp_path, monkeypatch):
        session = make_session()
        session.clean(build_relation())
        path = tmp_path / "session.snap"
        session.save(path)
        original = path.read_bytes()

        session.apply(Changeset().edit(0, "A", "a2"))

        def boom(_src, _dst):
            raise OSError("simulated crash before rename")

        monkeypatch.setattr(snapshot.os, "replace", boom)
        with pytest.raises(OSError, match="simulated crash"):
            session.save(path)
        monkeypatch.undo()

        # Target untouched, temp file cleaned up, old snapshot restores.
        assert path.read_bytes() == original
        assert [p.name for p in tmp_path.iterdir()] == [path.name]
        CleaningSession.restore(path)

        # And a retry after the "crash" succeeds with the new state.
        session.save(path)
        twin = CleaningSession.restore(path)
        assert full_state(twin.working) == full_state(session.working)


# ----------------------------------------------------------------------
# Sharded sessions
# ----------------------------------------------------------------------
class TestShardedSnapshot:
    def test_round_trip_and_byte_identical_applies(self, tmp_path):
        relation = build_relation()
        live = make_sharded()
        twin_source = make_sharded()
        live.clean(relation)
        twin_source.clean(relation)
        first = Changeset().edit(1, "B", "b2")
        live.apply(Changeset(list(first.ops)))
        twin_source.apply(Changeset(list(first.ops)))

        path = tmp_path / "sharded"
        twin_source.save(path)
        twin_source.close()
        twin = ShardedCleaningSession.restore(path)
        assert full_state(twin.working) == full_state(live.working)
        assert fingerprint(twin.fix_log) == fingerprint(live.fix_log)
        assert twin.plan.ids == live.plan.ids
        assert twin.plan.shards == live.plan.shards

        batches = [
            Changeset().edit(2, "B", "b1"),
            Changeset().insert(
                {"blk": "y", "K": "k2", "A": "a9", "B": "b2", "nm": "nm2"}
            ),
            Changeset().edit(0, "K", "k3"),  # premise edit: re-plan path
        ]
        for changeset in batches:
            one = live.apply(Changeset(list(changeset.ops)))
            two = twin.apply(Changeset(list(changeset.ops)))
            assert_same(one, two)
        assert live.is_clean() == twin.is_clean()
        live.close()
        twin.close()

    def test_restored_shards_are_reused_by_sticky_replan(self, tmp_path):
        live = make_sharded()
        live.clean(build_relation())
        path = tmp_path / "sharded"
        live.save(path)
        live.close()
        twin = ShardedCleaningSession.restore(path)
        before = dict(twin.stats)
        # An insert into block y re-plans; the x-shard is untouched and
        # must be reused straight from its restored worker session.
        twin.apply(
            Changeset().insert(
                {"blk": "y", "K": "k2", "A": "a9", "B": "b2", "nm": "nm2"}
            )
        )
        reused = twin.stats["shards_reused"] - before["shards_reused"]
        recleaned = twin.stats["shards_recleaned"] - before["shards_recleaned"]
        assert reused >= 1, "restored shard must be reused, not re-cleaned"
        assert recleaned < twin.plan.n_shards + reused
        twin.close()

    def test_logical_stats_continue_across_restore(self, tmp_path):
        live = make_sharded()
        live.clean(build_relation())
        live.apply(Changeset().edit(2, "B", "b1"))
        path = tmp_path / "sharded"
        live.save(path)
        stats = dict(live.stats)
        live.close()
        twin = ShardedCleaningSession.restore(path)
        for counter in ("plans", "collision_retries", "scoped_applies",
                        "full_applies", "shards_recleaned", "shards_reused"):
            assert twin.stats[counter] == stats[counter]
        twin.close()

    def test_save_with_buffered_changesets_raises(self, tmp_path):
        live = make_sharded()
        live.clean(build_relation())
        live.buffer(Changeset().edit(0, "A", "a2"))
        with pytest.raises(DataError, match="flush"):
            live.save(tmp_path / "sharded")
        live.flush()
        live.save(tmp_path / "sharded")
        live.close()

    def test_shard_file_tamper_is_detected(self, tmp_path):
        live = make_sharded()
        live.clean(build_relation())
        path = tmp_path / "sharded"
        live.save(path)
        live.close()
        shard_file = sorted(path.glob("shard-*.snap"))[0]
        blob = bytearray(shard_file.read_bytes())
        blob[len(blob) // 2] ^= 0xFF
        shard_file.write_bytes(bytes(blob))
        with pytest.raises(SnapshotCorrupt, match="manifest digest"):
            ShardedCleaningSession.restore(path)

    def test_missing_shard_file_is_detected(self, tmp_path):
        live = make_sharded()
        live.clean(build_relation())
        path = tmp_path / "sharded"
        live.save(path)
        live.close()
        sorted(path.glob("shard-*.snap"))[0].unlink()
        with pytest.raises(SnapshotCorrupt, match="missing shard file"):
            ShardedCleaningSession.restore(path)

    def test_crashed_resave_leaves_previous_snapshot_restorable(
        self, tmp_path, monkeypatch
    ):
        """Shard files are content-addressed, so a re-save that dies
        after writing shard files but before the manifest rename never
        overwrites anything the installed manifest references."""
        live = make_sharded()
        live.clean(build_relation())
        path = tmp_path / "sharded"
        live.save(path)
        saved_state = full_state(live.working)
        saved_log = fingerprint(live.fix_log)

        # Evolve the session state without changing any tid set (the
        # shard content ids — and hence the old naming scheme's file
        # names — stay identical).
        live.apply(Changeset().edit(2, "B", "b1"))

        real_write = snapshot.write_snapshot_file

        def crash_on_manifest(target, blob):
            if Path(target).name == snapshot.MANIFEST_NAME:
                raise OSError("simulated crash before the manifest rename")
            return real_write(target, blob)

        monkeypatch.setattr(snapshot, "write_snapshot_file", crash_on_manifest)
        with pytest.raises(OSError, match="simulated crash"):
            live.save(path)
        monkeypatch.undo()
        live.close()

        twin = ShardedCleaningSession.restore(path)
        assert full_state(twin.working) == saved_state
        assert fingerprint(twin.fix_log) == saved_log
        twin.close()

    def test_resave_prunes_stale_shard_files(self, tmp_path):
        live = make_sharded()
        live.clean(build_relation())
        path = tmp_path / "sharded"
        live.save(path)
        # A premise edit re-shards: new content ids, new shard files.
        live.apply(Changeset().edit(0, "K", "k2"))
        live.save(path)
        manifest_kind, sections = snapshot.read_snapshot_file(
            path / snapshot.MANIFEST_NAME, expect_kind="sharded"
        )
        meta = pickle.loads(sections["meta"])
        named = {file_name for _sid, file_name, _d in meta["shard_files"]}
        on_disk = {p.name for p in path.glob("shard-*.snap")}
        assert on_disk == named
        ShardedCleaningSession.restore(path).close()
        live.close()

    def test_worker_count_override(self, tmp_path):
        live = make_sharded(n_workers=1, n_shards=2)
        live.clean(build_relation())
        reference = live.apply(Changeset().edit(2, "B", "b1"))
        path = tmp_path / "sharded"
        live.close()  # closed sessions cannot save
        with pytest.raises(DataError):
            live.save(path)

        live = make_sharded(n_workers=1, n_shards=2)
        live.clean(build_relation())
        live.save(path)
        live.close()
        twin = ShardedCleaningSession.restore(path, n_workers=2)
        assert twin.n_workers == 2
        out = twin.apply(Changeset().edit(2, "B", "b1"))
        assert_same(reference, out)
        twin.close()


# ----------------------------------------------------------------------
# Fresh-process restore
# ----------------------------------------------------------------------
class TestFreshProcessRestore:
    def test_sharded_restore_in_fresh_process(self, tmp_path):
        relation = build_relation()
        live = make_sharded()
        live.clean(relation)
        path = tmp_path / "sharded"
        live.save(path)

        changeset_ops = [(2, "B", "b1"), (0, "A", "a2")]
        changeset = Changeset()
        for tid, attr, value in changeset_ops:
            changeset.edit(tid, attr, value)
        expected = live.apply(changeset)
        expected_blob = {
            "state": {
                str(tid): list(cells)
                for tid, cells in full_state(expected.repaired).items()
            },
            "log": fingerprint(expected.fix_log),
            "cost": expected.cost,
            "clean": expected.clean,
        }
        live.close()

        script = (
            "import json, sys\n"
            "from repro.pipeline import Changeset, ShardedCleaningSession\n"
            "session = ShardedCleaningSession.restore(sys.argv[1])\n"
            "changeset = Changeset()\n"
            "for tid, attr, value in json.loads(sys.argv[2]):\n"
            "    changeset.edit(tid, attr, value)\n"
            "out = session.apply(changeset)\n"
            "names = out.repaired.schema.names\n"
            "state = {str(t.tid): [[repr(t[a]), t.conf(a)] for a in names]\n"
            "         for t in out.repaired}\n"
            "log = [[f.kind.value, f.rule_name, f.tid, f.attr,\n"
            "        repr(f.old_value), repr(f.new_value), repr(f.source)]\n"
            "       for f in out.fix_log]\n"
            "print(json.dumps({'state': state, 'log': log,\n"
            "                  'cost': out.cost, 'clean': out.clean}))\n"
            "session.close()\n"
        )
        src = str(Path(repro.__file__).resolve().parent.parent)
        env = dict(os.environ)
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.run(
            [sys.executable, "-c", script, str(path), json.dumps(changeset_ops)],
            capture_output=True, text=True, env=env, timeout=240,
        )
        assert proc.returncode == 0, proc.stderr
        got = json.loads(proc.stdout)
        assert got["state"] == {
            tid: [list(cell) for cell in cells]
            for tid, cells in expected_blob["state"].items()
        }
        assert [tuple(row) for row in got["log"]] == expected_blob["log"]
        assert abs(got["cost"] - expected_blob["cost"]) < 1e-12
        assert got["clean"] == expected_blob["clean"]


# ----------------------------------------------------------------------
# Version compatibility (golden fixture)
# ----------------------------------------------------------------------
FIXTURES = Path(__file__).parent / "fixtures"
GOLDEN_SNAP = FIXTURES / "golden_session_v1.snap"
GOLDEN_JSON = FIXTURES / "golden_session_v1.json"


def build_golden_session() -> CleaningSession:
    """The deterministic session behind the committed golden fixture.

    Regenerate the fixture (only together with a conscious
    SNAPSHOT_VERSION bump) via::

        PYTHONPATH=src:tests python -c \
          "from pipeline.test_snapshot import write_golden; write_golden()"
    """
    session = make_session(collect_traces=True)
    session.clean(build_relation())
    session.apply(Changeset().edit(0, "A", "a2").edit(2, "B", "b1"))
    return session


def golden_expectation(session: CleaningSession) -> dict:
    return {
        "snapshot_version": snapshot.SNAPSHOT_VERSION,
        "working": {
            str(tid): [list(cell) for cell in cells]
            for tid, cells in full_state(session.working).items()
        },
        "base": {
            str(tid): [list(cell) for cell in cells]
            for tid, cells in full_state(session.base).items()
        },
        "log": [list(row) for row in fingerprint(session.fix_log)],
        "cost": sum(session._cell_costs.values()),
        "last_clean": session._last_clean,
    }


def write_golden() -> None:  # pragma: no cover - fixture regeneration tool
    FIXTURES.mkdir(exist_ok=True)
    session = build_golden_session()
    session.save(GOLDEN_SNAP)
    GOLDEN_JSON.write_text(
        json.dumps(golden_expectation(session), indent=2) + "\n"
    )


class TestGoldenFixture:
    def test_current_code_restores_v1_fixture(self):
        """The committed version-1 snapshot must keep restoring: a format
        change that breaks this test must bump SNAPSHOT_VERSION (and add
        a new fixture) instead of silently reinterpreting old bytes."""
        expected = json.loads(GOLDEN_JSON.read_text())
        assert expected["snapshot_version"] == snapshot.SNAPSHOT_VERSION, (
            "SNAPSHOT_VERSION changed: commit a new golden fixture for the "
            "new version (write_golden) and keep a restore path or a "
            "documented migration for version-1 snapshots"
        )
        session = CleaningSession.restore(GOLDEN_SNAP)
        got = golden_expectation(session)
        assert got == expected

    def test_restored_fixture_session_still_cleans(self):
        session = CleaningSession.restore(GOLDEN_SNAP)
        out = session.apply(Changeset().edit(1, "B", "b2"))
        assert out.fix_log is session.fix_log
        assert session.is_clean() == out.clean


# ----------------------------------------------------------------------
# Retained checkpoints
# ----------------------------------------------------------------------
class TestCheckpointRetention:
    """The checkpoint store under a directory: monotone sequence numbers,
    bounded retention, and newest-restorable fallback."""

    def _checkpointed(self, root, n=5):
        session = make_sharded()
        session.clean(build_relation())
        snapshot.save_checkpoint(session, root, retain=n)
        trail = [
            (full_state(session.working), fingerprint(session.fix_log.fixes()))
        ]
        for i in range(1, n):
            session.apply(Changeset().edit(1, "B", f"b-ck-{i}"))
            snapshot.save_checkpoint(session, root, retain=n)
            trail.append(
                (full_state(session.working),
                 fingerprint(session.fix_log.fixes()))
            )
        session.close()
        return trail

    def test_keeps_only_the_newest_k(self, tmp_path):
        root = tmp_path / "ck"
        session = make_sharded()
        session.clean(build_relation())
        for i in range(5):
            snapshot.save_checkpoint(session, root, retain=2)
            session.apply(Changeset().edit(1, "B", f"b-{i}"))
        session.close()
        kept = snapshot.list_checkpoints(root)
        # Sequence numbers keep counting up even as old ones are pruned.
        assert [p.name for p in kept] == [
            "checkpoint-000004", "checkpoint-000005"
        ]

    def test_restores_the_newest(self, tmp_path):
        root = tmp_path / "ck"
        trail = self._checkpointed(root)
        restored = snapshot.restore_latest_checkpoint(root)
        got = (full_state(restored.working),
               fingerprint(restored.fix_log.fixes()))
        assert got == trail[-1]
        restored.close()

    def test_corrupt_newest_falls_back_to_previous(self, tmp_path):
        root = tmp_path / "ck"
        trail = self._checkpointed(root)
        newest = snapshot.list_checkpoints(root)[-1]
        manifest = newest / "manifest.snap"
        blob = bytearray(manifest.read_bytes())
        blob[len(blob) // 2] ^= 0xFF
        manifest.write_bytes(bytes(blob))
        restored = snapshot.restore_latest_checkpoint(root)
        got = (full_state(restored.working),
               fingerprint(restored.fix_log.fixes()))
        assert got == trail[-2]
        restored.close()

    def test_half_written_newest_falls_back(self, tmp_path):
        """A crash mid-save leaves shard files without a valid manifest
        (the manifest is written last): that checkpoint is skipped."""
        root = tmp_path / "ck"
        trail = self._checkpointed(root)
        torn = root / "checkpoint-000009"
        torn.mkdir()
        (torn / "shard-0.snap").write_bytes(b"half-written")
        restored = snapshot.restore_latest_checkpoint(root)
        got = (full_state(restored.working),
               fingerprint(restored.fix_log.fixes()))
        assert got == trail[-1]
        restored.close()

    def test_raises_when_nothing_restorable(self, tmp_path):
        with pytest.raises(SnapshotError, match="no checkpoints"):
            snapshot.restore_latest_checkpoint(tmp_path)
        bad = tmp_path / "checkpoint-000001"
        bad.mkdir()
        (bad / "manifest.snap").write_bytes(b"garbage")
        with pytest.raises(SnapshotError, match="no restorable"):
            snapshot.restore_latest_checkpoint(tmp_path)

    def test_non_checkpoint_entries_are_ignored(self, tmp_path):
        root = tmp_path / "ck"
        self._checkpointed(root, n=2)
        (root / "checkpoint-notanumber").mkdir()
        (root / "unrelated.txt").write_text("x")
        names = [p.name for p in snapshot.list_checkpoints(root)]
        assert names == ["checkpoint-000001", "checkpoint-000002"]
