"""The online cleaning service: queueing, batching, isolation, recovery.

The load-bearing invariant throughout: whatever the interleaving of
concurrent writers, coalescing, backpressure and mid-stream recovery,
the service's final state is **byte-identical** to a serial replay of
the acknowledged changesets in acknowledgment order on a fresh session
— the service may batch and recover, never reorder or lose.
"""

import threading
import time
from pathlib import Path

import pytest

from repro.datasets import generate_partitioned
from repro.exceptions import (
    DataError,
    ServiceClosed,
    ServiceError,
    ServiceOverloaded,
    UnknownTenant,
)
from repro.pipeline import (
    Changeset,
    CleaningService,
    CleaningSession,
    FaultInjector,
    FaultSpec,
    FlushPolicy,
    SessionRegistry,
    ShardedCleaningSession,
    SupervisionPolicy,
)
from repro.pipeline import snapshot
from repro.pipeline.faults import injected

SIZE = 48
N_BLOCKS = 6
SEED = 13

_DATA = generate_partitioned(size=SIZE, n_blocks=N_BLOCKS, seed=SEED)
_TIDS = sorted(_DATA.dirty.tids())

FAST = SupervisionPolicy(
    timeout=60.0, max_retries=2, backoff_base=0.01, backoff_max=0.05
)
#: No retries, no fallback: the injected fault escapes and poisons.
POISON = SupervisionPolicy(timeout=60.0, max_retries=0, serial_fallback=False)


def make_session(**kwargs):
    kwargs.setdefault("n_workers", 1)
    kwargs.setdefault("n_shards", 4)
    kwargs.setdefault("supervision", FAST)
    return ShardedCleaningSession(
        cfds=_DATA.cfds, mds=_DATA.mds, master=_DATA.master, **kwargs
    )


def cleaned_session(**kwargs):
    session = make_session(**kwargs)
    session.clean(_DATA.dirty.clone())
    return session


def edit(i, value):
    # "score" is outside every rule's scope and conf=1.0 marks a user
    # assertion, so the re-clean keeps the write instead of repairing it
    # back to the master value — distinct writes stay distinguishable in
    # the final state.
    return Changeset().edit(_TIDS[i % len(_TIDS)], "score", value, conf=1.0)


def state(relation):
    names = relation.schema.names
    return [
        (t.tid, tuple(repr(t[a]) for a in names),
         tuple(t.conf(a) for a in names))
        for t in relation
    ]


def serial_replay(changesets):
    """State of a fresh session after replaying *changesets* in order."""
    session = cleaned_session()
    for changeset in changesets:
        if changeset.ops:
            session.apply(changeset)
    result = state(session.working)
    session.close()
    return result


def _worker_pids(session):
    runner = session._runner
    if runner is None or not hasattr(runner, "_slots"):
        return []
    pids = []
    for slot in runner._slots:
        executor = slot._executor
        if executor is not None and executor._processes:
            pids.extend(executor._processes.keys())
    return pids


def _assert_dead(pids):
    import os

    deadline = time.monotonic() + 10
    while time.monotonic() < deadline:
        alive = []
        for pid in pids:
            try:
                os.kill(pid, 0)
            except OSError:
                continue
            alive.append(pid)
        if not alive:
            return
        time.sleep(0.05)
    raise AssertionError(f"worker processes leaked: {alive}")


# ----------------------------------------------------------------------
# Flush policy and registry
# ----------------------------------------------------------------------
class TestFlushPolicy:
    def test_validates_bounds(self):
        with pytest.raises(ValueError):
            FlushPolicy(max_batch=0)
        with pytest.raises(ValueError):
            FlushPolicy(max_linger=-1.0)

    def test_defaults(self):
        policy = FlushPolicy()
        assert policy.max_batch >= 1 and policy.max_linger >= 0


class TestRegistry:
    def test_unknown_tenant(self):
        registry = SessionRegistry()
        with pytest.raises(UnknownTenant):
            registry.get("nope")

    def test_duplicate_register_refused(self):
        session = cleaned_session()
        try:
            registry = SessionRegistry()
            registry.register("a", session)
            with pytest.raises(ValueError, match="already registered"):
                registry.register("a", session)
            assert "a" in registry and len(registry) == 1
        finally:
            session.close()

    def test_uncleaned_session_refused(self):
        session = make_session()
        try:
            with pytest.raises(DataError, match="initial clean"):
                SessionRegistry().register("a", session)
        finally:
            session.close()

    def test_service_submit_unknown_tenant(self):
        with CleaningService() as service:
            with pytest.raises(UnknownTenant):
                service.submit("ghost", edit(0, "x"))
            with pytest.raises(UnknownTenant):
                service.read("ghost")


# ----------------------------------------------------------------------
# Writes: acknowledgment, coalescing, equivalence
# ----------------------------------------------------------------------
class TestWrites:
    def test_single_writer_equivalence_and_ack_order(self):
        session = cleaned_session()
        service = CleaningService(
            flush_policy=FlushPolicy(max_batch=4, max_linger=0.01)
        )
        service.register("t", session)
        tickets = [service.submit("t", edit(i, f"v{i}")) for i in range(8)]
        results = [t.result(timeout=60) for t in tickets]
        assert all(r is not None for r in results)
        assert [t.ack_seq for t in tickets] == list(range(8))
        assert all(t.latency is not None and t.latency >= 0 for t in tickets)
        final = state(service.read("t"))
        service.close()
        assert final == serial_replay([t.changeset for t in tickets])

    def test_coalescing_batches_fewer_than_submits(self):
        session = cleaned_session()
        service = CleaningService(
            flush_policy=FlushPolicy(max_batch=8, max_linger=0.2)
        )
        service.register("t", session)
        tickets = [service.submit("t", edit(i, f"v{i}")) for i in range(8)]
        for ticket in tickets:
            ticket.result(timeout=60)
        stats = service.stats("t")
        service.close()
        # 8 writes, linger long enough to coalesce: strictly fewer batches
        # than submits, so strictly fewer re-plans than serial applies.
        assert stats["acked"] == 8
        assert 1 <= stats["batches"] < 8

    def test_empty_changeset_acks_with_none(self):
        session = cleaned_session()
        with CleaningService() as service:
            service.register("t", session)
            ticket = service.submit("t", Changeset())
            assert ticket.result(timeout=60) is None
            assert ticket.ack_seq == 0
            # an op-less write commits nothing: no batch, no version bump
            assert service.stats("t")["batches"] == 0

    def test_concurrent_writers_linearize(self):
        session = cleaned_session()
        service = CleaningService(
            flush_policy=FlushPolicy(max_batch=4, max_linger=0.005)
        )
        service.register("t", session)
        per_writer = 6
        all_tickets = []
        lock = threading.Lock()

        def writer(w):
            for i in range(per_writer):
                # Writers contend on the same tids: final value depends
                # on acknowledgment order, which the replay must honour.
                ticket = service.submit("t", edit(i, f"w{w}-{i}"))
                with lock:
                    all_tickets.append(ticket)

        threads = [
            threading.Thread(target=writer, args=(w,)) for w in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        for ticket in all_tickets:
            assert ticket.result(timeout=60) is not None
        acks = sorted(t.ack_seq for t in all_tickets)
        assert acks == list(range(4 * per_writer))  # dense, no gaps
        final = state(service.read("t"))
        service.close()
        ordered = sorted(all_tickets, key=lambda t: t.ack_seq)
        assert final == serial_replay([t.changeset for t in ordered])

    def test_plain_cleaning_session_tenant(self):
        session = CleaningSession(
            cfds=_DATA.cfds, mds=_DATA.mds, master=_DATA.master
        )
        session.clean(_DATA.dirty.clone())
        with CleaningService() as service:
            service.register("t", session)
            ticket = service.submit("t", edit(0, "plain"))
            assert ticket.result(timeout=60) is not None
            assert state(service.read("t")) == serial_replay(
                [ticket.changeset]
            )

    def test_invalid_changeset_isolated_from_batch_mates(self):
        session = cleaned_session()
        service = CleaningService(
            flush_policy=FlushPolicy(max_batch=8, max_linger=0.2)
        )
        service.register("t", session)
        good1 = service.submit("t", edit(0, "good-one"))
        bad = service.submit(
            "t", Changeset().edit(999_999, "name", "ghost-tid")
        )
        good2 = service.submit("t", edit(1, "good-two"))
        assert good1.result(timeout=60) is not None
        assert good2.result(timeout=60) is not None
        with pytest.raises(DataError):
            bad.result(timeout=60)
        final = state(service.read("t"))
        stats = service.stats("t")
        service.close()
        # only the offending ticket failed; the survivors applied in order
        assert stats["failed"] == 1 and stats["acked"] == 2
        assert final == serial_replay([good1.changeset, good2.changeset])


# ----------------------------------------------------------------------
# Reads: snapshot isolation
# ----------------------------------------------------------------------
class TestReads:
    def test_read_is_detached_and_cached_per_commit(self):
        session = cleaned_session()
        with CleaningService() as service:
            service.register("t", session)
            before = service.read("t")
            assert before is service.read("t")  # cached between commits
            assert before is not session.working
            baseline = state(before)
            service.submit("t", edit(0, "after-read")).result(timeout=60)
            after = service.read("t")
            assert after is not before
            # the old snapshot never mutated under the reader
            assert state(before) == baseline
            assert state(after) != baseline

    def test_readers_never_see_half_applied_batches(self):
        session = cleaned_session()
        service = CleaningService(
            flush_policy=FlushPolicy(max_batch=2, max_linger=0.005)
        )
        service.register("t", session)
        service.read("t")  # warm the snapshot cache
        stop = threading.Event()
        versions = []

        def reader():
            while not stop.is_set():
                versions.append(state(service.read("t")))

        thread = threading.Thread(target=reader)
        thread.start()
        tickets = [service.submit("t", edit(i, f"r{i}")) for i in range(10)]
        for ticket in tickets:
            ticket.result(timeout=60)
        stop.set()
        thread.join()
        service.close()
        # every observed state is some committed prefix's serial replay
        prefixes = {tuple(serial_replay([]))}
        ordered = sorted(tickets, key=lambda t: t.ack_seq)
        for cut in range(1, len(ordered) + 1):
            prefixes.add(
                tuple(serial_replay([t.changeset for t in ordered[:cut]]))
            )
        for observed in versions:
            assert tuple(observed) in prefixes

    def test_query_helper(self):
        session = cleaned_session()
        with CleaningService() as service:
            service.register("t", session)
            count = service.query("t", lambda r: sum(1 for _ in r))
            assert count == SIZE


# ----------------------------------------------------------------------
# Backpressure
# ----------------------------------------------------------------------
class TestBackpressure:
    def test_nonblocking_overload_raises(self):
        session = cleaned_session()
        # Max linger keeps the consumer from draining while we overfill.
        service = CleaningService(
            flush_policy=FlushPolicy(max_batch=64, max_linger=30.0)
        )
        service.register("t", session, high_water=3)
        tickets = [
            service.submit("t", edit(i, f"b{i}"), block=False)
            for i in range(3)
        ]
        with pytest.raises(ServiceOverloaded):
            service.submit("t", edit(3, "overflow"), block=False)
        assert service.stats("t")["overloads"] == 1
        service.close()  # drains the queued three
        for ticket in tickets:
            assert ticket.result(timeout=60) is not None

    def test_blocking_timeout_expires(self):
        session = cleaned_session()
        service = CleaningService(
            flush_policy=FlushPolicy(max_batch=64, max_linger=30.0)
        )
        service.register("t", session, high_water=1)
        service.submit("t", edit(0, "head"))
        start = time.monotonic()
        with pytest.raises(ServiceOverloaded):
            service.submit("t", edit(1, "tail"), timeout=0.2)
        assert time.monotonic() - start >= 0.15
        service.close()

    def test_blocked_producer_resumes_when_drained(self):
        session = cleaned_session()
        service = CleaningService(
            flush_policy=FlushPolicy(max_batch=1, max_linger=30.0)
        )
        service.register("t", session, high_water=1)
        # max_batch=1 flushes the head immediately, freeing the slot, so
        # a blocked second submit must eventually get through.
        first = service.submit("t", edit(0, "first"))
        second = service.submit("t", edit(1, "second"), timeout=60)
        assert first.result(timeout=60) is not None
        assert second.result(timeout=60) is not None
        assert second.ack_seq == first.ack_seq + 1
        service.close()


# ----------------------------------------------------------------------
# Multi-tenancy
# ----------------------------------------------------------------------
class TestMultiTenant:
    def test_tenants_are_independent(self):
        a, b = cleaned_session(), cleaned_session()
        service = CleaningService(
            flush_policy=FlushPolicy(max_batch=4, max_linger=0.005)
        )
        service.register("a", a)
        service.register("b", b)
        ta = [service.submit("a", edit(i, f"a{i}")) for i in range(5)]
        tb = [service.submit("b", edit(i, f"b{i}")) for i in range(5)]
        for ticket in ta + tb:
            ticket.result(timeout=60)
        fa, fb = state(service.read("a")), state(service.read("b"))
        service.close()
        assert fa == serial_replay([t.changeset for t in ta])
        assert fb == serial_replay([t.changeset for t in tb])
        assert fa != fb

    def test_poisoned_tenant_leaves_neighbour_alive(self):
        sick = cleaned_session(n_workers=2, supervision=POISON)
        healthy = cleaned_session()
        service = CleaningService(
            flush_policy=FlushPolicy(max_batch=2, max_linger=0.005)
        )
        service.register("sick", sick)  # no checkpoint_dir: unrecoverable
        service.register("healthy", healthy)
        injector = FaultInjector(
            [FaultSpec(point="dispatch", kind="error",
                       method="apply_shard", times=1)]
        )
        with injected(injector):
            doomed = service.submit("sick", edit(0, "doomed"))
            with pytest.raises(Exception):
                doomed.result(timeout=60)
        # the poisoned tenant refuses new writes, cause chained
        with pytest.raises(ServiceError) as info:
            service.submit("sick", edit(1, "after"))
        assert info.value.__cause__ is not None
        # the neighbour is untouched
        ok = service.submit("healthy", edit(0, "fine"))
        assert ok.result(timeout=60) is not None
        assert state(service.read("healthy")) == serial_replay(
            [ok.changeset]
        )
        service.close()


# ----------------------------------------------------------------------
# Recovery
# ----------------------------------------------------------------------
class TestRecovery:
    def test_mid_stream_poison_recovers_and_converges(self, tmp_path):
        session = cleaned_session(n_workers=2, supervision=POISON)
        service = CleaningService(
            flush_policy=FlushPolicy(max_batch=2, max_linger=0.005)
        )
        # checkpoint_every=2 leaves acknowledged batches between the
        # newest checkpoint and the failure — the ledger replay path.
        service.register(
            "t", session, checkpoint_dir=tmp_path,
            checkpoint_every=2, max_recoveries=2,
        )
        injector = FaultInjector(
            [FaultSpec(point="dispatch", kind="error",
                       method="apply_shard", after=2, times=1)]
        )
        with injected(injector):
            tickets = [service.submit("t", edit(i, f"v{i}"))
                       for i in range(10)]
            for ticket in tickets:
                assert ticket.result(timeout=120) is not None
        stats = service.stats("t")
        final = state(service.read("t"))
        service.close()
        assert stats["recoveries"] == 1
        assert stats["acked"] == 10 and stats["failed"] == 0
        ordered = sorted(tickets, key=lambda t: t.ack_seq)
        assert final == serial_replay([t.changeset for t in ordered])

    def test_register_writes_initial_checkpoint(self, tmp_path):
        session = cleaned_session(n_workers=2, supervision=POISON)
        with CleaningService() as service:
            service.register("t", session, checkpoint_dir=tmp_path)
            assert len(snapshot.list_checkpoints(tmp_path)) == 1

    def test_recovery_exhaustion_poisons(self, tmp_path):
        session = cleaned_session(n_workers=2, supervision=POISON)
        service = CleaningService(
            flush_policy=FlushPolicy(max_batch=8, max_linger=0.2)
        )
        service.register(
            "t", session, checkpoint_dir=tmp_path,
            checkpoint_every=1, max_recoveries=0,
        )
        injector = FaultInjector(
            [FaultSpec(point="dispatch", kind="error",
                       method="apply_shard", times=1)]
        )
        with injected(injector):
            doomed = service.submit("t", edit(0, "doomed"))
            with pytest.raises(Exception):
                doomed.result(timeout=60)
        with pytest.raises(ServiceError):
            service.submit("t", edit(1, "after"))
        assert service.stats("t")["recoveries"] == 0
        service.close()


# ----------------------------------------------------------------------
# Lifecycle
# ----------------------------------------------------------------------
class TestLifecycle:
    def test_close_drains_then_kills_workers(self):
        session = cleaned_session(n_workers=2)
        service = CleaningService(
            flush_policy=FlushPolicy(max_batch=64, max_linger=30.0)
        )
        service.register("t", session)
        tickets = [service.submit("t", edit(i, f"d{i}")) for i in range(4)]
        pids = _worker_pids(session)
        assert pids
        service.close()  # drain=True despite the 30s linger
        for ticket in tickets:
            assert ticket.result(timeout=1) is not None
        _assert_dead(pids)

    def test_close_without_drain_fails_pending(self):
        session = cleaned_session()
        service = CleaningService(
            flush_policy=FlushPolicy(max_batch=64, max_linger=30.0)
        )
        service.register("t", session)
        tickets = [service.submit("t", edit(i, f"x{i}")) for i in range(4)]
        service.close(drain=False)
        failed = 0
        for ticket in tickets:
            try:
                ticket.result(timeout=5)
            except ServiceClosed:
                failed += 1
        # the consumer may have batched a prefix before close() landed,
        # but nothing is left un-resolved and the tail is failed closed
        assert all(t.done() for t in tickets)
        assert failed >= 1

    def test_submit_after_close_raises(self):
        session = cleaned_session()
        service = CleaningService()
        service.register("t", session)
        service.close()
        with pytest.raises(ServiceClosed):
            service.submit("t", edit(0, "late"))

    def test_close_is_idempotent(self):
        session = cleaned_session()
        service = CleaningService()
        service.register("t", session)
        service.close()
        service.close()
        service.close(drain=False)

    def test_context_manager(self):
        session = cleaned_session(n_workers=2)
        with CleaningService() as service:
            service.register("t", session)
            service.submit("t", edit(0, "ctx")).result(timeout=60)
            pids = _worker_pids(session)
        _assert_dead(pids)
