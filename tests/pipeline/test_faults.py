"""Fault-tolerant sharded execution: supervision, injection, recovery.

Every failure mode the supervision layer handles is driven here through
the deterministic fault-injection harness of
:mod:`repro.pipeline.faults`: worker crashes (respawn + exact rebuild),
hangs (per-dispatch timeout), torn request/response frames (soft resend
vs hard recovery — exactly-once), transient errors, escalation to the
in-process serial fallback, typed failures that poison the session
instead of exposing half-merged state, the auto-checkpoint policy, and
the coordinator SIGKILL crash-recovery drill.

The invariant under test throughout: a recovered session's observables
(repaired relation with confidences, ordered fix log, cost, verdict)
are **byte-identical** to a never-faulted twin's — recovery may change
shard topology and stats, never results.
"""

import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

import repro
from repro.datasets import generate_partitioned
from repro.exceptions import (
    DataError,
    RetriesExhausted,
    ShardTimeout,
    SnapshotError,
    WorkerFailure,
)
from repro.pipeline import (
    Changeset,
    FaultInjector,
    FaultSpec,
    ShardedCleaningSession,
    SupervisionPolicy,
)
from repro.pipeline import snapshot
from repro.pipeline.faults import DispatchFaults, injected

SIZE = 48
N_BLOCKS = 6
SEED = 13

_DATA = generate_partitioned(size=SIZE, n_blocks=N_BLOCKS, seed=SEED)

FAST = SupervisionPolicy(
    timeout=60.0, max_retries=2, backoff_base=0.01, backoff_max=0.05
)


def make_session(**kwargs):
    kwargs.setdefault("n_workers", 2)
    kwargs.setdefault("n_shards", 4)
    kwargs.setdefault("supervision", FAST)
    return ShardedCleaningSession(
        cfds=_DATA.cfds, mds=_DATA.mds, master=_DATA.master, **kwargs
    )


def dirty():
    return _DATA.dirty.clone()


def deltas(n=3):
    tids = sorted(_DATA.dirty.tids())
    return [
        Changeset().edit(tids[i], "name", f"edited-{i}") for i in range(n)
    ]


def observables(session):
    names = session.working.schema.names
    return (
        [
            (t.tid, tuple(repr(t[a]) for a in names),
             tuple(t.conf(a) for a in names))
            for t in session.working
        ],
        [
            (f.kind.value, f.rule_name, f.tid, f.attr, repr(f.old_value),
             repr(f.new_value), repr(f.source))
            for f in session.fix_log.fixes()
        ],
        session._last_clean,
    )


@pytest.fixture(scope="module")
def reference():
    """Observables of a never-faulted run: clean + three applies."""
    session = make_session()
    session.clean(dirty())
    trail = [observables(session)]
    for delta in deltas():
        session.apply(delta)
        trail.append(observables(session))
    final = observables(session)
    session.close()
    return {"trail": trail, "final": final}


def run_faulted(injector, *, check_against=None, **kwargs):
    """Clean + three applies under *injector*; return (session, obs)."""
    session = make_session(**kwargs)
    with injected(injector):
        session.clean(dirty())
        for delta in deltas():
            session.apply(delta)
    result = observables(session)
    if check_against is not None:
        assert result == check_against
    return session, result


# ----------------------------------------------------------------------
# The injector itself
# ----------------------------------------------------------------------
class TestFaultInjector:
    def test_schedule_arms_on_the_nth_matching_hit(self):
        injector = FaultInjector(
            [FaultSpec(point="dispatch", kind="crash", after=2, times=2)]
        )
        plans = [
            injector.plan_dispatch("clean_shard", f"s{i}") for i in range(6)
        ]
        assert [bool(p) for p in plans] == [
            False, False, True, True, False, False
        ]
        assert [kind for _p, kind, _ctx in injector.log] == ["crash", "crash"]

    def test_method_and_target_filters(self):
        injector = FaultInjector(
            [
                FaultSpec(point="dispatch", kind="error",
                          method="apply_shard"),
                FaultSpec(point="dispatch", kind="torn_request",
                          match="beef"),
            ]
        )
        assert not injector.plan_dispatch("clean_shard", "0000")
        plan = injector.plan_dispatch("apply_shard", "dead")
        assert plan.directive == ("error", None) and not plan.torn_request
        plan = injector.plan_dispatch("clean_shard", "beef00")
        assert plan.torn_request and plan.directive is None

    def test_fuzz_is_seed_deterministic(self):
        a = FaultInjector.fuzz(seed=42, n_faults=3)
        b = FaultInjector.fuzz(seed=42, n_faults=3)
        assert [vars(s) for s in a.specs] == [vars(s) for s in b.specs]
        c = FaultInjector.fuzz(seed=43, n_faults=3)
        assert [vars(s) for s in a.specs] != [vars(s) for s in c.specs]

    def test_corrupt_only_fires_at_its_point(self):
        injector = FaultInjector(
            [FaultSpec(point="snapshot.read", kind="corrupt")]
        )
        data = b"payload-bytes"
        assert injector.mangle_at("payload.unframe", data) == data
        assert injector.mangle_at("snapshot.read", data) != data

    def test_dispatch_faults_truthiness(self):
        assert not DispatchFaults()
        assert DispatchFaults(kill=True)
        assert DispatchFaults(directive=("delay", None))


# ----------------------------------------------------------------------
# Worker-side faults: crash, hang, delay, transient error
# ----------------------------------------------------------------------
class TestWorkerFaults:
    def test_crash_respawns_and_recovers_byte_identically(self, reference):
        injector = FaultInjector(
            [FaultSpec(point="dispatch", kind="crash", method="clean_shard")]
        )
        session, _ = run_faulted(
            injector, check_against=reference["final"]
        )
        assert session.stats["worker_respawns"] >= 1
        assert session.stats["dispatch_retries"] >= 1
        assert session.stats["serial_fallbacks"] == 0
        assert injector.log and injector.log[0][1] == "crash"
        session.close()

    def test_crash_during_apply_recovers_byte_identically(self, reference):
        injector = FaultInjector(
            [FaultSpec(point="dispatch", kind="crash", method="apply_shard")]
        )
        session, _ = run_faulted(injector, check_against=reference["final"])
        assert session.stats["worker_respawns"] >= 1
        session.close()

    def test_hung_worker_times_out_with_typed_error(self):
        """Satellite regression: the bare ``future.result()`` calls are
        gone — a hung worker surfaces as ShardTimeout within the
        configured per-dispatch timeout, never a forever-block."""
        injector = FaultInjector(
            [FaultSpec(point="dispatch", kind="hang",
                       method="clean_shard", seconds=30.0)]
        )
        session = make_session(
            supervision=SupervisionPolicy(
                timeout=0.5, max_retries=0, serial_fallback=False
            )
        )
        started = time.perf_counter()
        with injected(injector):
            with pytest.raises(ShardTimeout):
                session.clean(dirty())
        assert time.perf_counter() - started < 15.0
        assert session.stats["dispatch_timeouts"] == 0  # synced below
        session._sync_io_stats()
        assert session.stats["dispatch_timeouts"] >= 1
        session.close()

    def test_hang_recovers_through_retry(self, reference):
        injector = FaultInjector(
            [FaultSpec(point="dispatch", kind="hang",
                       method="apply_shard", seconds=30.0)]
        )
        session, _ = run_faulted(
            injector,
            check_against=reference["final"],
            supervision=SupervisionPolicy(
                timeout=0.5, max_retries=2,
                backoff_base=0.01, backoff_max=0.05,
            ),
        )
        session._sync_io_stats()
        assert session.stats["dispatch_timeouts"] >= 1
        assert session.stats["worker_respawns"] >= 1
        session.close()

    def test_delay_is_harmless(self, reference):
        injector = FaultInjector(
            [FaultSpec(point="dispatch", kind="delay", times=5,
                       seconds=0.01)]
        )
        session, _ = run_faulted(injector, check_against=reference["final"])
        assert session.stats["worker_respawns"] == 0
        session.close()

    def test_transient_error_is_soft_retried(self, reference):
        injector = FaultInjector(
            [FaultSpec(point="dispatch", kind="error",
                       method="apply_shard", times=2)]
        )
        session, _ = run_faulted(injector, check_against=reference["final"])
        assert session.stats["dispatch_retries"] >= 1
        assert session.stats["worker_respawns"] == 0  # pre-execution: soft
        session.close()


# ----------------------------------------------------------------------
# Torn frames: soft resend vs hard exactly-once recovery
# ----------------------------------------------------------------------
class TestTornFrames:
    def test_torn_request_is_resent_without_respawn(self, reference):
        injector = FaultInjector(
            [FaultSpec(point="dispatch", kind="torn_request",
                       method="apply_shard")]
        )
        session, _ = run_faulted(injector, check_against=reference["final"])
        assert session.stats["dispatch_retries"] >= 1
        assert session.stats["worker_respawns"] == 0
        session.close()

    def test_torn_response_takes_hard_recovery(self, reference):
        """The worker executed the call but the reply frame was torn:
        naive re-send would double-apply, so the slot is rebuilt and the
        batch re-run — and the observables stay byte-identical."""
        injector = FaultInjector(
            [FaultSpec(point="dispatch", kind="torn_response",
                       method="apply_shard")]
        )
        session, _ = run_faulted(injector, check_against=reference["final"])
        assert session.stats["worker_respawns"] >= 1
        session.close()

    def test_torn_response_on_clean_recovers(self, reference):
        injector = FaultInjector(
            [FaultSpec(point="dispatch", kind="torn_response",
                       method="clean_shard")]
        )
        session, _ = run_faulted(injector, check_against=reference["final"])
        session.close()


# ----------------------------------------------------------------------
# Budget exhaustion: escalation or typed failure — never silence
# ----------------------------------------------------------------------
class TestEscalation:
    def test_persistent_crash_escalates_to_serial_fallback(self, reference):
        injector = FaultInjector(
            [FaultSpec(point="dispatch", kind="crash", times=1000)]
        )
        session, _ = run_faulted(
            injector,
            check_against=reference["final"],
            supervision=SupervisionPolicy(
                timeout=60.0, max_retries=1,
                backoff_base=0.01, backoff_max=0.05,
            ),
        )
        assert session.stats["serial_fallbacks"] >= 1
        # The escalated session keeps answering (now in-process).
        out = session.apply(Changeset().edit(sorted(dirty().tids())[5],
                                             "name", "post-escalation"))
        assert out.repaired is session.working
        session.close()

    def test_retries_exhausted_without_fallback(self):
        injector = FaultInjector(
            [FaultSpec(point="dispatch", kind="crash", times=1000)]
        )
        session = make_session(
            supervision=SupervisionPolicy(
                timeout=60.0, max_retries=1, serial_fallback=False,
                backoff_base=0.01, backoff_max=0.05,
            )
        )
        with injected(injector):
            with pytest.raises(RetriesExhausted) as err:
                session.clean(dirty())
        assert isinstance(err.value.__cause__, WorkerFailure)
        session.close()

    def test_max_retries_zero_raises_the_direct_error(self):
        injector = FaultInjector(
            [FaultSpec(point="dispatch", kind="crash",
                       method="clean_shard")]
        )
        session = make_session(
            supervision=SupervisionPolicy(
                timeout=60.0, max_retries=0, serial_fallback=False
            )
        )
        with injected(injector):
            with pytest.raises(WorkerFailure):
                session.clean(dirty())
        session.close()

    def test_typed_failure_poisons_session_until_next_clean(self):
        injector = FaultInjector(
            [FaultSpec(point="dispatch", kind="crash",
                       method="apply_shard")]
        )
        session = make_session(
            supervision=SupervisionPolicy(
                timeout=60.0, max_retries=0, serial_fallback=False
            )
        )
        session.clean(dirty())
        with injected(injector):
            with pytest.raises(WorkerFailure):
                session.apply(deltas(1)[0])
        # Never half-merged: every stateful entry point refuses.
        with pytest.raises(DataError, match="failed state"):
            session.apply(deltas(1)[0])
        with pytest.raises(DataError, match="failed state"):
            session.is_clean()
        with pytest.raises(DataError, match="failed state"):
            session.save("/nonexistent-never-written")
        # A fresh clean() clears the poisoning and is exact again.
        session.clean(dirty())
        reference = make_session(n_workers=1)
        reference.clean(dirty())
        assert observables(session) == observables(reference)
        reference.close()
        session.close()


# ----------------------------------------------------------------------
# Executor lifecycle: no leaked or blocking worker processes
# ----------------------------------------------------------------------
def _worker_pids(session):
    runner = session._runner
    pids = []
    for slot in runner._slots:
        executor = slot._executor
        if executor is not None and executor._processes:
            pids.extend(executor._processes.keys())
    return pids


def _assert_dead(pids, budget=10.0):
    deadline = time.monotonic() + budget
    remaining = set(pids)
    while remaining and time.monotonic() < deadline:
        for pid in list(remaining):
            try:
                os.kill(pid, 0)
            except ProcessLookupError:
                remaining.discard(pid)
        if remaining:
            time.sleep(0.05)
    assert not remaining, f"leaked worker processes: {sorted(remaining)}"


class TestExecutorLifecycle:
    def test_context_manager_reaps_workers(self):
        with make_session() as session:
            session.clean(dirty())
            pids = _worker_pids(session)
            assert pids
        _assert_dead(pids)

    def test_close_does_not_block_on_hung_worker(self):
        """Satellite regression: close() force-kills instead of joining a
        worker that will never return."""
        injector = FaultInjector(
            [FaultSpec(point="dispatch", kind="hang",
                       method="apply_shard", seconds=120.0)]
        )
        session = make_session(
            supervision=SupervisionPolicy(
                timeout=0.5, max_retries=0, serial_fallback=False
            )
        )
        session.clean(dirty())
        pids = _worker_pids(session)
        started = time.perf_counter()
        with injected(injector):
            with pytest.raises(ShardTimeout):
                session.apply(deltas(1)[0])
        session.close()
        assert time.perf_counter() - started < 30.0
        _assert_dead(pids)

    def test_respawned_worker_does_not_replay_faults(self, reference):
        """Fault scheduling lives in the coordinator: a respawned worker
        never re-fires its predecessor's directive, so a times=1 crash
        cannot loop forever."""
        injector = FaultInjector(
            [FaultSpec(point="dispatch", kind="crash",
                       method="clean_shard", times=1)]
        )
        session, _ = run_faulted(injector, check_against=reference["final"])
        assert session.stats["worker_respawns"] == 1
        assert len([e for e in injector.log if e[1] == "crash"]) == 1
        session.close()


# ----------------------------------------------------------------------
# Auto-checkpoint policy
# ----------------------------------------------------------------------
class TestCheckpointPolicy:
    def test_checkpoint_every_n_with_retention(self, tmp_path, reference):
        root = tmp_path / "ck"
        session = make_session(
            checkpoint_dir=root, checkpoint_every=1, checkpoint_retain=2
        )
        session.clean(dirty())
        for delta in deltas():
            session.apply(delta)
        # clean + 3 applies = 4 written, 2 retained (newest).
        assert session.stats["checkpoints_written"] == 4
        kept = snapshot.list_checkpoints(root)
        assert [p.name for p in kept] == [
            "checkpoint-000003", "checkpoint-000004"
        ]
        session.close()

        restored = ShardedCleaningSession.restore_latest(root, n_workers=2)
        assert observables(restored) == reference["final"]
        restored.close()

    def test_checkpoint_every_two_counts_operations(self, tmp_path):
        session = make_session(
            checkpoint_dir=tmp_path / "ck2", checkpoint_every=2
        )
        session.clean(dirty())           # op 1
        assert session.stats["checkpoints_written"] == 0
        session.apply(deltas(1)[0])      # op 2 -> checkpoint
        assert session.stats["checkpoints_written"] == 1
        session.close()

    def test_no_checkpointing_without_dir(self, tmp_path):
        session = make_session(checkpoint_every=1)
        session.clean(dirty())
        assert session.stats["checkpoints_written"] == 0
        session.close()

    def test_restore_latest_skips_corrupt_newest(self, tmp_path, reference):
        root = tmp_path / "ck3"
        session = make_session(
            checkpoint_dir=root, checkpoint_every=1, checkpoint_retain=3
        )
        session.clean(dirty())
        for delta in deltas():
            session.apply(delta)
        session.close()
        newest = snapshot.list_checkpoints(root)[-1]
        manifest = newest / "manifest.snap"
        blob = bytearray(manifest.read_bytes())
        blob[len(blob) // 2] ^= 0xFF
        manifest.write_bytes(bytes(blob))

        restored = ShardedCleaningSession.restore_latest(root, n_workers=2)
        # The newest *restorable* checkpoint is one apply behind.
        assert observables(restored) == reference["trail"][-2]
        restored.close()

    def test_restore_latest_raises_when_nothing_validates(self, tmp_path):
        with pytest.raises(SnapshotError):
            ShardedCleaningSession.restore_latest(tmp_path / "empty")

    def test_injected_snapshot_corruption_detected(self, tmp_path):
        session = make_session(n_workers=1)
        session.clean(dirty())
        session.save(tmp_path / "snap")
        session.close()
        injector = FaultInjector(
            [FaultSpec(point="snapshot.read", kind="corrupt",
                       match="manifest")]
        )
        from repro.exceptions import SnapshotCorrupt

        with injected(injector):
            with pytest.raises(SnapshotCorrupt):
                ShardedCleaningSession.restore(tmp_path / "snap")


# ----------------------------------------------------------------------
# The coordinator crash-recovery drill
# ----------------------------------------------------------------------
_DRILL_SCRIPT = """
import json, sys
from repro.datasets import generate_partitioned
from repro.pipeline import (Changeset, FaultInjector, FaultSpec,
                            ShardedCleaningSession)
from repro.pipeline.faults import injected

size, n_blocks, seed, ck_dir, kill_after = (
    int(sys.argv[1]), int(sys.argv[2]), int(sys.argv[3]), sys.argv[4],
    int(sys.argv[5]),
)
data = generate_partitioned(size=size, n_blocks=n_blocks, seed=seed)
session = ShardedCleaningSession(
    cfds=data.cfds, mds=data.mds, master=data.master,
    n_workers=1, n_shards=4,
    checkpoint_dir=ck_dir, checkpoint_every=1, checkpoint_retain=3,
)
tids = sorted(data.dirty.tids())
injector = FaultInjector([FaultSpec(
    point="dispatch", kind="kill", method="apply_shard", after=kill_after,
)])
with injected(injector):
    session.clean(data.dirty.clone())
    for i in range(6):
        session.apply(Changeset().edit(tids[i], "name", f"edited-{i}"))
print("SURVIVED", file=sys.stderr)  # must never be reached
"""


class TestCoordinatorCrashDrill:
    def test_sigkill_mid_batch_restores_byte_identically(self, tmp_path):
        """The acceptance drill: SIGKILL the coordinator mid-batch,
        restore the newest checkpoint, replay the remaining deltas, and
        compare byte-identically against a never-faulted twin."""
        ck_dir = tmp_path / "drill"
        kill_after = 3  # die on the 4th apply_shard dispatch
        src = str(Path(repro.__file__).resolve().parent.parent)
        env = dict(os.environ)
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.run(
            [sys.executable, "-c", _DRILL_SCRIPT, str(SIZE), str(N_BLOCKS),
             str(SEED), str(ck_dir), str(kill_after)],
            capture_output=True, text=True, env=env, timeout=240,
        )
        # SIGKILLed mid-batch, not a clean exit.
        assert proc.returncode == -signal.SIGKILL, (
            proc.returncode, proc.stderr
        )
        assert "SURVIVED" not in proc.stderr

        checkpoints = snapshot.list_checkpoints(ck_dir)
        assert checkpoints, "the drill died before its first checkpoint"
        # checkpoint-<n> is written after the clean (n=1) and after each
        # apply (n=k+1): the newest one tells how many applies committed.
        committed = int(checkpoints[-1].name.split("-")[1]) - 1
        assert 0 <= committed < 6

        restored = ShardedCleaningSession.restore_latest(
            ck_dir, n_workers=2
        )
        tids = sorted(_DATA.dirty.tids())
        for i in range(committed, 6):
            restored.apply(Changeset().edit(tids[i], "name", f"edited-{i}"))

        twin = make_session()
        twin.clean(dirty())
        for i in range(6):
            twin.apply(Changeset().edit(tids[i], "name", f"edited-{i}"))

        assert observables(restored) == observables(twin)
        restored.close()
        twin.close()


# ----------------------------------------------------------------------
# Faults never reach workers' own scheduling state
# ----------------------------------------------------------------------
class TestSerialRunnerFaults:
    def test_serial_runner_ignores_worker_kinds(self, reference):
        """n_workers=1 has no worker process to crash or hang: worker
        directives are no-ops there, and results stay exact."""
        injector = FaultInjector(
            [FaultSpec(point="dispatch", kind="crash", times=1000)]
        )
        session = make_session(n_workers=1)
        with injected(injector):
            session.clean(dirty())
            for delta in deltas():
                session.apply(delta)
        assert observables(session) == reference["final"]
        session.close()


# ----------------------------------------------------------------------
# Cleanup-failure chaining and close-after-poison (PR 10 satellites)
# ----------------------------------------------------------------------
class TestCleanupFailureChaining:
    """``SupervisedSlot.kill`` must never swallow evidence: on the
    failure path a cleanup error is re-raised as a ``WorkerFailure``
    whose ``__cause__`` is the primary worker failure; on the shutdown
    path (no primary) a dead pool stays a silent no-op."""

    def _broken_slot(self):
        from repro.pipeline.supervision import SupervisedSlot

        class _BrokenExecutor:
            _processes = {}

            def shutdown(self, wait=False, cancel_futures=False):
                raise RuntimeError("management thread already dead")

        slot = SupervisedSlot(0, factory=lambda: None)
        slot._executor = _BrokenExecutor()
        return slot

    def test_failure_path_chains_primary_as_cause(self):
        slot = self._broken_slot()
        primary = WorkerFailure("worker process of slot 0 died")
        with pytest.raises(WorkerFailure) as err:
            slot.kill(primary=primary)
        assert err.value is not primary
        assert err.value.__cause__ is primary  # never swallowed
        assert isinstance(err.value.cleanup_error, RuntimeError)
        assert "management thread already dead" in str(err.value)

    def test_respawn_chains_exactly_like_kill(self):
        slot = self._broken_slot()
        primary = ShardTimeout("slot 0 exceeded the per-dispatch timeout")
        with pytest.raises(WorkerFailure) as err:
            slot.respawn(primary=primary)
        assert err.value.__cause__ is primary

    def test_shutdown_path_stays_a_silent_noop(self):
        slot = self._broken_slot()
        slot.kill()  # no primary: cleanup failure suppressed
        assert slot._executor is None
        slot.kill()  # and an already-torn-down slot is a no-op

    def test_injected_failure_chain_reaches_the_caller(self):
        """End to end: the caller's exception chain bottoms out at the
        typed worker failure — and is **acyclic**.  Regression for the
        ``max_retries=0`` path, which used to ``raise x from x`` and
        knot ``__cause__`` into a self-cycle."""
        injector = FaultInjector(
            [FaultSpec(point="dispatch", kind="crash",
                       method="apply_shard", times=1)]
        )
        session = make_session(
            supervision=SupervisionPolicy(
                timeout=60.0, max_retries=0, serial_fallback=False
            )
        )
        session.clean(dirty())
        with injected(injector):
            with pytest.raises(WorkerFailure) as err:
                session.apply(deltas(1)[0])
        chain, exc = [], err.value
        while exc is not None:
            assert exc not in chain, "__cause__ chain has a cycle"
            chain.append(exc)
            exc = exc.__cause__
        assert any(isinstance(e, WorkerFailure) for e in chain)
        session.close()

    def test_retries_exhausted_chains_the_last_failure(self):
        """With retries enabled the ``RetriesExhausted`` wrapper carries
        the last underlying failure as ``__cause__``."""
        injector = FaultInjector(
            [FaultSpec(point="dispatch", kind="crash",
                       method="apply_shard", times=1000)]
        )
        session = make_session(
            supervision=SupervisionPolicy(
                timeout=60.0, max_retries=1, backoff_base=0.01,
                serial_fallback=False,
            )
        )
        session.clean(dirty())
        with injected(injector):
            with pytest.raises(RetriesExhausted) as err:
                session.apply(deltas(1)[0])
        assert isinstance(err.value.__cause__, WorkerFailure)
        assert err.value.__cause__ is not err.value
        session.close()


class TestCloseAfterPoison:
    def test_close_after_poison_is_a_safe_noop(self):
        """Double-close and close-after-poison never raise from an
        already-dead pool, and leak no worker processes."""
        injector = FaultInjector(
            [FaultSpec(point="dispatch", kind="crash",
                       method="apply_shard")]
        )
        session = make_session(
            supervision=SupervisionPolicy(
                timeout=60.0, max_retries=0, serial_fallback=False
            )
        )
        session.clean(dirty())
        pids = _worker_pids(session)
        assert pids
        with injected(injector):
            with pytest.raises(WorkerFailure):
                session.apply(deltas(1)[0])
        session.close()  # poisoned session: close still succeeds
        session.close()  # ... and a second close is a no-op
        _assert_dead(pids)

    def test_close_after_hung_worker_poison_is_safe(self):
        injector = FaultInjector(
            [FaultSpec(point="dispatch", kind="hang",
                       method="apply_shard", seconds=120.0)]
        )
        session = make_session(
            supervision=SupervisionPolicy(
                timeout=0.5, max_retries=0, serial_fallback=False
            )
        )
        session.clean(dirty())
        pids = _worker_pids(session)
        with injected(injector):
            with pytest.raises(ShardTimeout):
                session.apply(deltas(1)[0])
        session.close()
        session.close()
        _assert_dead(pids)
