"""Unit tests for the shard planner and the sharded cleaning session."""

import pytest

from repro.constraints import CFD, MD
from repro.core import UniCleanConfig
from repro.core.fixes import Fix, FixKind
from repro.core.trace import (
    RoundTrace,
    WorklistTrace,
    merge_round_fixes,
    merge_worklist_fixes,
)
from repro.datasets import generate_partitioned
from repro.exceptions import DataError
from repro.pipeline import (
    Changeset,
    CleaningSession,
    ShardPlanner,
    ShardedCleaningSession,
)
from repro.relational import Relation, Schema
from repro.similarity.predicates import edit_within

SCHEMA = Schema("R", ["blk", "key", "a", "b"])


def fingerprint(log):
    return [
        (f.kind.value, f.rule_name, f.tid, f.attr, repr(f.old_value),
         repr(f.new_value), repr(f.source))
        for f in log
    ]


def full_state(relation):
    return {
        t.tid: tuple((repr(t[a]), t.conf(a)) for a in relation.schema.names)
        for t in relation
    }


def make_fix(tid, attr="a", kind=FixKind.RELIABLE):
    return Fix(
        kind=kind, rule_name="r", tid=tid, attr=attr, old_value="x",
        new_value="y", old_conf=None, new_conf=None, source="s",
    )


class TestShardPlanner:
    def relation(self, rows):
        return Relation.from_dicts(SCHEMA, rows)

    def test_blocks_become_components(self):
        cfds = [CFD(SCHEMA, ["blk", "key"], ["a"], name="fd")]
        rel = self.relation(
            [{"blk": f"B{i % 4}", "key": "k", "a": str(i)} for i in range(12)]
        )
        plan = ShardPlanner(cfds).plan(rel, 4)
        assert plan.n_shards == 4
        assert plan.n_components == 4
        assert sorted(tid for shard in plan.shards for tid in shard) == list(
            range(12)
        )
        # No variable-CFD group straddles shards.
        for t in rel:
            mates = [
                s.tid for s in rel
                if (s["blk"], s["key"]) == (t["blk"], t["key"])
            ]
            shard = plan.shard_of[t.tid]
            assert all(plan.shard_of[m] == shard for m in mates)

    def test_single_component_degenerates(self):
        # key chains every tuple: one component -> documented fallback.
        cfds = [CFD(SCHEMA, ["key"], ["a"], name="fd")]
        rel = self.relation([{"blk": str(i), "key": "k", "a": "v"} for i in range(6)])
        plan = ShardPlanner(cfds).plan(rel, 4)
        assert plan.degenerate
        assert plan.n_shards == 1
        assert "incompatible" in plan.reason

    def test_md_blocking_groups_are_affinity(self):
        mds = [
            MD(SCHEMA, SCHEMA, [("blk", "blk"), ("key", "key")],
               [("a", "a")], name="md")
        ]
        rel = self.relation(
            [{"blk": f"B{i % 3}", "key": "k", "a": str(i)} for i in range(9)]
        )
        with_md = ShardPlanner([], mds).plan(rel, 3)
        assert with_md.n_components == 3
        without = ShardPlanner([], mds, include_md_affinity=False).plan(rel, 3)
        assert without.n_components == 9  # per-tuple: no coupling at all

    def test_n_shards_one_is_degenerate(self):
        plan = ShardPlanner([]).plan(self.relation([{"blk": "B"}]), 1)
        assert plan.degenerate and plan.n_shards == 1

    def test_partition_attrs_are_variable_lhs_only(self):
        cfds = [
            CFD(SCHEMA, ["blk", "key"], ["a"], name="var"),
            CFD(SCHEMA, ["b"], ["a"], {"b": "x", "a": "y"}, name="const"),
        ]
        assert ShardPlanner(cfds).partition_attrs() == {"blk", "key"}


class TestTraceMergers:
    def test_round_merge_interleaves_by_token(self):
        a = [make_fix(0), make_fix(4)]
        b = [make_fix(1), make_fix(3)]
        ta = RoundTrace(tokens=[(1, 0, (0,)), (1, 0, (4,))])
        tb = RoundTrace(tokens=[(1, 0, (1,)), (1, 0, (3,))])
        merged = merge_round_fixes([(a, ta), (b, tb)])
        assert [f.tid for f in merged] == [0, 1, 3, 4]

    def test_round_merge_rejects_mismatched_trace(self):
        with pytest.raises(ValueError):
            merge_round_fixes([([make_fix(0)], RoundTrace(tokens=[]))])

    def test_worklist_merge_replays_bfs(self):
        # Shard A: roots r0 (1 child, 1 fix) -> child (0, 1 fix).
        # Shard B: root r1 (0 children, 1 fix).  Global FIFO order:
        # r0, r1, then r0's child.
        a = [make_fix(0), make_fix(2)]
        b = [make_fix(1)]
        ta = WorklistTrace(root_ranks=[(0, 0, 0, 0)], pops=[(1, 1), (0, 1)])
        tb = WorklistTrace(root_ranks=[(0, 0, 1, 0)], pops=[(0, 1)])
        merged = merge_worklist_fixes([(a, ta), (b, tb)])
        assert [f.tid for f in merged] == [0, 1, 2]

    def test_worklist_merge_rejects_inconsistent_counts(self):
        bad = WorklistTrace(root_ranks=[(0,)], pops=[(1, 0)])  # 2 pushes, 1 pop
        with pytest.raises(ValueError):
            merge_worklist_fixes([([], bad)])


class TestShardedCleaningSession:
    @pytest.fixture(scope="class")
    def dataset(self):
        return generate_partitioned(size=160, n_blocks=8, seed=5)

    def make_pair(self, ds, **kwargs):
        config = UniCleanConfig(eta=1.0)
        reference = CleaningSession(
            cfds=ds.cfds, mds=ds.mds, master=ds.master, config=config
        )
        sharded = ShardedCleaningSession(
            cfds=ds.cfds, mds=ds.mds, master=ds.master, config=config, **kwargs
        )
        return reference, sharded

    def test_requires_violation_index(self):
        with pytest.raises(ValueError):
            ShardedCleaningSession(config=UniCleanConfig(use_violation_index=False))

    def test_apply_requires_clean(self, dataset):
        _, sharded = self.make_pair(dataset, n_shards=2)
        with pytest.raises(DataError):
            sharded.apply(Changeset().edit(0, "name", "x"))

    def test_clean_is_byte_identical(self, dataset):
        reference, sharded = self.make_pair(dataset, n_workers=1, n_shards=4)
        r1 = reference.clean(dataset.dirty)
        r2 = sharded.clean(dataset.dirty)
        assert not sharded.plan.degenerate and sharded.plan.n_shards == 4
        assert full_state(r1.repaired) == full_state(r2.repaired)
        assert fingerprint(r1.fix_log) == fingerprint(r2.fix_log)
        assert r1.cost == pytest.approx(r2.cost)
        assert r1.clean == r2.clean
        assert sharded.is_clean() == r2.clean

    def test_apply_paths_stay_identical(self, dataset):
        reference, sharded = self.make_pair(dataset, n_workers=1, n_shards=4)
        reference.clean(dataset.dirty)
        sharded.clean(dataset.dirty)
        tids = list(reference.base.tids())
        batches = [
            # Rule-free attribute edits: provably local, the scoped path.
            Changeset().edit(tids[3], "score", "77").edit(tids[40], "score", "8"),
            # Catalog-style target edits (mode chosen by the session).
            Changeset().edit(tids[9], "cat", "alpha").edit(tids[25], "src", "X"),
            # A variable-CFD premise edit: the re-plan path.
            Changeset().edit(tids[7], "site", "S99999"),
            # Inserts and deletes.
            Changeset()
            .insert({"block": "B0001", "site": "S11111",
                     "name": "Aa Bb", "city": "Cc City", "zip": "11111",
                     "grp": "G00", "cat": "alpha", "score": "10", "src": "GEN"})
            .delete(tids[11]),
        ]
        for changeset in batches:
            o1 = reference.apply(Changeset(list(changeset.ops)))
            o2 = sharded.apply(Changeset(list(changeset.ops)))
            assert full_state(o1.repaired) == full_state(o2.repaired)
            assert fingerprint(o1.fix_log) == fingerprint(o2.fix_log)
            assert o1.cost == pytest.approx(o2.cost)
            assert o1.clean == o2.clean
            assert o1.full_reclean == o2.full_reclean
        assert sharded.stats["scoped_applies"] >= 1
        assert sharded.stats["full_applies"] >= 2

    def test_scoped_apply_is_incremental(self, dataset):
        """A rule-free edit must take the scoped path, not a re-clean."""
        reference, sharded = self.make_pair(dataset, n_workers=1, n_shards=4)
        reference.clean(dataset.dirty)
        sharded.clean(dataset.dirty)
        tid = list(reference.base.tids())[0]
        o1 = reference.apply(Changeset().edit(tid, "score", "55"))
        o2 = sharded.apply(Changeset().edit(tid, "score", "55"))
        assert not o1.full_reclean and not o2.full_reclean
        assert o2.affected == o1.affected == 1
        assert fingerprint(o1.fix_log) == fingerprint(o2.fix_log)
        assert full_state(o1.repaired) == full_state(o2.repaired)

    def test_collision_is_detected_and_exact(self):
        schema = Schema("C", ["A", "K", "B", "name"])
        cfds = [
            CFD(schema, ["A"], ["K"], name="fd_ak"),
            CFD(schema, ["K"], ["B"], name="fd_kb"),
        ]
        # Similarity-only premise: no blocking key, no plan constraint —
        # but the MD writes a master K into component 1, materializing
        # component 2's K-group there mid-run.
        mds = [
            MD(schema, schema, [("name", "name", edit_within(1))],
               [("K", "K")], name="md_k")
        ]
        rel = Relation.from_dicts(schema, [
            {"A": "a1", "K": "k1", "B": "b1", "name": "nm1"},
            {"A": "a1", "K": "k1", "B": "b1", "name": "zz1"},
            {"A": "a2", "K": "k9", "B": "b9", "name": "zz2"},
            {"A": "a2", "K": "k9", "B": "b9", "name": "zz3"},
        ])
        for t in rel:
            for attr in schema.names:
                t.set_conf(attr, 0.0)
        master = Relation.from_dicts(schema, [
            {"A": "aM", "K": "k9", "B": "bM", "name": "nm1"},
        ])
        config = UniCleanConfig(eta=1.0)
        reference = CleaningSession(
            cfds=cfds, mds=mds, master=master, config=config
        ).clean(rel)
        sharded = ShardedCleaningSession(
            cfds=cfds, mds=mds, master=master, config=config, n_shards=2
        )
        result = sharded.clean(rel)
        assert sharded.stats["collision_retries"] >= 1
        assert full_state(reference.repaired) == full_state(result.repaired)
        assert fingerprint(reference.fix_log) == fingerprint(result.fix_log)

    def test_process_pool_matches_serial(self, dataset):
        reference, sharded = self.make_pair(dataset, n_workers=2, n_shards=4)
        r1 = reference.clean(dataset.dirty)
        with sharded:
            r2 = sharded.clean(dataset.dirty)
            assert full_state(r1.repaired) == full_state(r2.repaired)
            assert fingerprint(r1.fix_log) == fingerprint(r2.fix_log)
            tids = list(reference.base.tids())
            changeset = Changeset().edit(tids[5], "cat", "beta")
            o1 = reference.apply(Changeset(list(changeset.ops)))
            o2 = sharded.apply(Changeset(list(changeset.ops)))
            assert full_state(o1.repaired) == full_state(o2.repaired)
            assert fingerprint(o1.fix_log) == fingerprint(o2.fix_log)


class TestIncrementalReplan:
    """ISSUE 4: component-stable shard ids, session reuse, batching."""

    def make_pair(self, ds, **kwargs):
        config = UniCleanConfig(eta=1.0)
        reference = CleaningSession(
            cfds=ds.cfds, mds=ds.mds, master=ds.master, config=config
        )
        sharded = ShardedCleaningSession(
            cfds=ds.cfds, mds=ds.mds, master=ds.master, config=config, **kwargs
        )
        return reference, sharded

    def test_insert_recleans_only_touched_component(self):
        """An insert joining one block's component must re-clean exactly
        that component's shard and reuse every other session."""
        ds = generate_partitioned(size=160, n_blocks=8, seed=5)
        reference, sharded = self.make_pair(ds, n_workers=1, n_shards=4)
        reference.clean(ds.dirty)
        sharded.clean(ds.dirty)
        assert sharded.stats["shards_recleaned"] == 4
        assert sharded.stats["shards_reused"] == 0

        donor = reference.base.by_tid(list(reference.base.tids())[10])
        changeset = Changeset().insert(donor.as_dict())
        before = dict(sharded.stats)
        o1 = reference.apply(Changeset(list(changeset.ops)))
        o2 = sharded.apply(Changeset(list(changeset.ops)))
        assert sharded.stats["collision_retries"] == 0
        assert sharded.stats["shards_recleaned"] - before["shards_recleaned"] == 1
        assert sharded.stats["shards_reused"] - before["shards_reused"] == 3
        assert full_state(o1.repaired) == full_state(o2.repaired)
        assert fingerprint(o1.fix_log) == fingerprint(o2.fix_log)
        assert o1.cost == pytest.approx(o2.cost)
        assert o1.clean == o2.clean

    def test_shard_ids_are_stable_across_replans(self):
        ds = generate_partitioned(size=160, n_blocks=8, seed=5)
        _reference, sharded = self.make_pair(ds, n_workers=1, n_shards=4)
        sharded.clean(ds.dirty)
        ids_before = list(sharded.plan.ids)
        donor = sharded.base.by_tid(list(sharded.base.tids())[10])
        sharded.apply(Changeset().insert(donor.as_dict()))
        ids_after = list(sharded.plan.ids)
        # Three of four shards keep their session address.
        assert len(set(ids_before) & set(ids_after)) == 3
        assert len(set(ids_after)) == len(ids_after)

    def test_apply_many_equals_concatenated_apply(self):
        ds = generate_partitioned(size=160, n_blocks=8, seed=5)
        reference, sharded = self.make_pair(ds, n_workers=1, n_shards=4)
        reference.clean(ds.dirty)
        sharded.clean(ds.dirty)
        tids = list(reference.base.tids())
        donor = reference.base.by_tid(tids[10])
        parts = [
            Changeset().edit(tids[3], "cat", "alpha"),
            Changeset().insert(donor.as_dict()),
            Changeset().edit(tids[40], "score", "9").delete(tids[25]),
        ]
        o1 = reference.apply(
            Changeset.concat([Changeset(list(p.ops)) for p in parts])
        )
        o2 = sharded.apply_many([Changeset(list(p.ops)) for p in parts])
        assert full_state(o1.repaired) == full_state(o2.repaired)
        assert fingerprint(o1.fix_log) == fingerprint(o2.fix_log)
        assert o1.cost == pytest.approx(o2.cost)
        assert o1.full_reclean and o2.full_reclean

    def test_buffer_flush_is_one_batch(self):
        ds = generate_partitioned(size=160, n_blocks=8, seed=5)
        reference, sharded = self.make_pair(ds, n_workers=1, n_shards=4)
        reference.clean(ds.dirty)
        sharded.clean(ds.dirty)
        tids = list(reference.base.tids())
        assert sharded.flush() is None
        applies_before = (
            sharded.stats["scoped_applies"] + sharded.stats["full_applies"]
        )
        sharded.buffer(Changeset().edit(tids[5], "score", "42"))
        sharded.buffer(Changeset().edit(tids[6], "score", "43"))
        o2 = sharded.flush()
        o1 = reference.apply(
            Changeset().edit(tids[5], "score", "42").edit(tids[6], "score", "43")
        )
        assert (
            sharded.stats["scoped_applies"] + sharded.stats["full_applies"]
            == applies_before + 1
        )
        assert full_state(o1.repaired) == full_state(o2.repaired)
        assert fingerprint(o1.fix_log) == fingerprint(o2.fix_log)

    def test_reuse_escape_hatch_recleans_everything(self):
        """``reuse_sessions=False`` is the documented full re-plan
        fallback: every re-plan rebuilds every shard (PR 3 behaviour),
        and the result stays byte-identical."""
        ds = generate_partitioned(size=160, n_blocks=8, seed=5)
        reference, sharded = self.make_pair(
            ds, n_workers=1, n_shards=4, reuse_sessions=False
        )
        reference.clean(ds.dirty)
        sharded.clean(ds.dirty)
        donor = reference.base.by_tid(list(reference.base.tids())[10])
        changeset = Changeset().insert(donor.as_dict())
        before = dict(sharded.stats)
        o1 = reference.apply(Changeset(list(changeset.ops)))
        o2 = sharded.apply(Changeset(list(changeset.ops)))
        assert sharded.stats["shards_reused"] == 0
        assert sharded.stats["shards_recleaned"] - before["shards_recleaned"] == 4
        assert full_state(o1.repaired) == full_state(o2.repaired)
        assert fingerprint(o1.fix_log) == fingerprint(o2.fix_log)

    def test_scoped_apply_then_replan_recleans_stale_shard(self):
        """A shard whose full-form log went stale through a scoped apply
        cannot be reused verbatim by a later re-plan — but its session
        still re-cleans in place (no relation shipped)."""
        ds = generate_partitioned(size=160, n_blocks=8, seed=5)
        reference, sharded = self.make_pair(ds, n_workers=1, n_shards=4)
        reference.clean(ds.dirty)
        sharded.clean(ds.dirty)
        tids = list(reference.base.tids())
        # Scoped edit in some shard: invalidates that shard's full-form.
        scoped = Changeset().edit(tids[0], "score", "77")
        reference.apply(Changeset(list(scoped.ops)))
        sharded.apply(Changeset(list(scoped.ops)))
        stale_shard = sharded.plan.shard_of[tids[0]]
        stale_id = sharded.plan.ids[stale_shard]
        assert not sharded._shard_views[stale_id].fullform
        # Insert into a *different* shard: re-plan must reclean the
        # stale shard too (its stored log is not full-form).
        other_tid = next(
            tid for tid in tids if sharded.plan.shard_of[tid] != stale_shard
        )
        donor = reference.base.by_tid(other_tid)
        changeset = Changeset().insert(donor.as_dict())
        before = dict(sharded.stats)
        o1 = reference.apply(Changeset(list(changeset.ops)))
        o2 = sharded.apply(Changeset(list(changeset.ops)))
        delta = sharded.stats["shards_recleaned"] - before["shards_recleaned"]
        assert delta == 2  # touched shard + stale shard, not all four
        assert full_state(o1.repaired) == full_state(o2.repaired)
        assert fingerprint(o1.fix_log) == fingerprint(o2.fix_log)
        assert sharded._shard_views[stale_id].fullform


class TestRestrict:
    def test_restrict_preserves_tids_and_bookkeeping(self):
        rel = Relation.from_dicts(SCHEMA, [{"blk": str(i)} for i in range(5)])
        rel.remove(1)
        sub = rel.restrict([0, 3])
        assert [t.tid for t in sub] == [0, 3]
        assert sub._next_tid == rel._next_tid
        assert sub.tid_retired(1)

    def test_restrict_unknown_tid_raises(self):
        rel = Relation.from_dicts(SCHEMA, [{"blk": "B"}])
        with pytest.raises(DataError):
            rel.restrict([0, 7])


class TestReviewRegressions:
    """Fixes from the PR 3 review pass."""

    def test_deleted_tids_leave_the_plan(self):
        """A dead tid must vanish from plan.shards too — the collision
        recovery path restricts the base by those lists."""
        ds = generate_partitioned(size=80, n_blocks=4, seed=9)
        sharded = ShardedCleaningSession(
            cfds=ds.cfds, mds=ds.mds, master=ds.master,
            config=UniCleanConfig(eta=1.0), n_shards=4,
        )
        sharded.clean(ds.dirty)
        victim = sharded.plan.shards[0][0]
        sharded.apply(Changeset().delete(victim))
        assert all(victim not in shard for shard in sharded.plan.shards)
        assert victim not in sharded.plan.shard_of
        # Every shard list must still restrict cleanly (what a re-plan
        # or collision recovery does).
        for tids in sharded.plan.shards:
            sharded.base.restrict(tids)

    def test_out_of_order_tids_are_rejected(self):
        from repro.relational import CTuple

        relation = Relation(SCHEMA)
        relation.add(CTuple(SCHEMA, {"blk": "a"}, tid=5))
        relation.add(CTuple(SCHEMA, {"blk": "b"}, tid=2))
        sharded = ShardedCleaningSession(config=UniCleanConfig(eta=1.0))
        with pytest.raises(ValueError):
            sharded.clean(relation)

    def test_empty_batch_is_a_contractual_noop(self):
        """``flush()`` on an empty buffer, ``apply_many([])`` and op-less
        changesets return ``None`` with no dispatch, no plan change and
        no stats mutation — a poller on an idle queue costs nothing."""
        ds = generate_partitioned(size=40, n_blocks=2, seed=9)
        sharded = ShardedCleaningSession(
            cfds=ds.cfds, mds=ds.mds, master=ds.master,
            config=UniCleanConfig(eta=1.0), n_shards=2,
        )
        sharded.clean(ds.dirty)
        plan_before = sharded.plan
        stats_before = dict(sharded.stats)
        checkpoint_tick_before = sharded._ops_since_checkpoint
        assert sharded.flush() is None
        assert sharded.apply_many([]) is None
        assert sharded.apply_many([Changeset(), Changeset()]) is None
        assert sharded.apply(Changeset()) is None
        sharded.buffer(Changeset())
        assert sharded.flush() is None  # buffered op-less set: still a no-op
        assert sharded.plan is plan_before
        assert dict(sharded.stats) == stats_before
        assert sharded._ops_since_checkpoint == checkpoint_tick_before
        sharded.close()

    def test_close_is_idempotent(self):
        ds = generate_partitioned(size=40, n_blocks=2, seed=9)
        sharded = ShardedCleaningSession(
            cfds=ds.cfds, mds=ds.mds, master=ds.master,
            config=UniCleanConfig(eta=1.0), n_shards=2,
        )
        sharded.clean(ds.dirty)
        sharded.close()
        sharded.close()  # second close on a dead session: safe no-op
        sharded.close()

    def test_close_before_clean_is_a_noop(self):
        sharded = ShardedCleaningSession(config=UniCleanConfig(eta=1.0))
        sharded.close()
        sharded.close()

    def test_use_after_close_raises_cleanly(self):
        ds = generate_partitioned(size=40, n_blocks=2, seed=9)
        sharded = ShardedCleaningSession(
            cfds=ds.cfds, mds=ds.mds, master=ds.master,
            config=UniCleanConfig(eta=1.0), n_shards=2,
        )
        sharded.clean(ds.dirty)
        sharded.close()
        with pytest.raises(DataError):
            sharded.apply(Changeset().edit(0, "score", "1"))
        with pytest.raises(DataError):
            sharded.is_clean()
        # A fresh clean() restarts the lifecycle.
        result = sharded.clean(ds.dirty)
        assert sharded.is_clean() == result.clean
        sharded.close()
