"""Unit tests for the columnar coordinator↔worker payload codecs.

Three concerns:

* **Exactness** — every codec round-trips to equal Python values
  (types included: ``0`` vs ``0.0`` vs ``False``, ``NULL``, ``None``
  confidences, KEEP sentinels).
* **Size** — the columnar form of representative PART-testbed payloads
  is at most 50% of the PR 3 pickled form (the ISSUE 4 structural
  assertion; byte counts only, never wall-clock).
* **Serial zero-copy** — the ``n_workers=1`` executor never serializes:
  a full clean/apply/re-plan cycle completes with ``pickle.dumps``
  monkeypatched to raise.
"""

import pickle

import pytest

from repro.core import UniCleanConfig
from repro.core.fixes import Fix, FixKind
from repro.core.trace import RoundTrace, WorklistTrace
from repro.datasets import generate_partitioned, replan_batch
from repro.pipeline import Changeset, CleaningSession, ShardedCleaningSession
from repro.pipeline import payload
from repro.pipeline.changeset import KEEP
from repro.pipeline.sharding import (
    _encode_request,
    _encode_response,
    _decode_request,
    _decode_response,
    _shard_content_id,
    _WorkerState,
    ShardPlanner,
)
from repro.relational import NULL, Relation, Schema

SCHEMA = Schema("R", ["a", "b", "c"])


def normalized_rules(ds):
    cfds = [c for cfd in ds.cfds for c in cfd.normalize()]
    mds = [m for md in ds.mds for m in md.normalize()]
    return cfds, mds


class TestScalarTable:
    def test_type_guard_keeps_numeric_twins_apart(self):
        table = payload.ValueTable()
        refs = [table.ref(v) for v in (0, 0.0, False, 1, 1.0, True, 0)]
        decoded = [table.values[r] for r in refs]
        assert decoded == [0, 0.0, False, 1, 1.0, True, 0]
        assert [type(v) for v in decoded] == [
            int, float, bool, int, float, bool, int,
        ]
        assert refs[0] == refs[-1]  # dedup on equal (type, value)

    def test_pack_ints_picks_narrowest_width(self):
        assert payload.pack_ints([0, 255]).typecode == "B"
        assert payload.pack_ints([0, 256]).typecode == "H"
        assert payload.pack_ints([0, 1 << 20]).typecode == "I"
        assert payload.pack_ints([0, 1 << 40]).typecode == "Q"
        assert payload.pack_ints([-1, 5]).typecode == "i"
        assert payload.pack_ints([-(1 << 40)]).typecode == "q"
        assert list(payload.pack_ints([3, 1, 2])) == [3, 1, 2]


class TestRoundTrips:
    def relation(self):
        rel = Relation(SCHEMA)
        rel.add_row({"a": "x", "b": NULL, "c": 0}, {"a": 1.0, "b": None})
        rel.add_row({"a": "x", "b": "y", "c": 0.0}, {"c": 0.5})
        rel.add_row({"a": "z"})
        rel.remove(1)
        return rel

    def test_relation_roundtrip(self):
        rel = self.relation()
        table = payload.ValueTable()
        blob = payload.encode_relation(rel, table)
        out = payload.decode_relation(blob, table.values)
        assert out.schema.names == rel.schema.names
        assert out.tids() == rel.tids()
        assert out._next_tid == rel._next_tid
        assert out._retired == rel._retired
        for t in rel:
            twin = out.by_tid(t.tid)
            for attr in rel.schema.names:
                assert twin[attr] == t[attr]
                assert type(twin[attr]) is type(t[attr])
                assert twin.conf(attr) == t.conf(attr)
        assert out.by_tid(0)["b"] is NULL

    def test_fixes_roundtrip(self):
        fixes = [
            Fix(FixKind.DETERMINISTIC, "r1", 3, "a", "old", "new", None, 1.0, "m7"),
            Fix(FixKind.POSSIBLE, "r2", 9, "b", NULL, 0, 0.5, None, 4),
        ]
        table = payload.ValueTable()
        blob = payload.encode_fixes(fixes, table)
        assert payload.decode_fixes(blob, table.values) == fixes

    def test_costs_cells_rows_roundtrip(self):
        table = payload.ValueTable()
        costs = {(1, "a"): 0.5, (7, "b"): 2.0}
        assert payload.decode_costs(
            payload.encode_costs(costs, table), table.values
        ) == costs
        cells = [(1, "a"), (2, "c")]
        assert payload.decode_cells(
            payload.encode_cells(cells, table), table.values
        ) == cells
        rows = {4: (["x", NULL, 0], [1.0, None, 0.5])}
        assert payload.decode_rows(
            payload.encode_rows(rows, table), table.values
        ) == rows
        assert payload.decode_rows(
            payload.encode_rows({}, table), table.values
        ) == {}

    def test_ever_keys_roundtrip(self):
        table = payload.ValueTable()
        ever = {
            ("cfd", "R", ("a", "b"), (), "c"): {("x", "y"), ("x", NULL)},
            ("cfd", "R", ("a",), (), "b"): set(),
        }
        blob = payload.encode_ever_keys(ever, table)
        assert payload.decode_ever_keys(blob, table.values) == ever

    def test_traces_roundtrip(self):
        table = payload.ValueTable()
        worklist = WorklistTrace(
            root_ranks=[(0, 7, 20, 0), (1, 3, 0, 0)],
            pops=[(2, 1), (0, 0), (0, 1)],
        )
        out = payload.decode_trace(
            payload.encode_trace(worklist, table), table.values
        )
        assert out.root_ranks == worklist.root_ranks
        assert out.pops == worklist.pops
        # Irregular ranks (floats/strings) take the node path.
        mixed = WorklistTrace(root_ranks=[(0, "x"), (1.5, "y", 2)], pops=[(0, 0), (0, 0)])
        out = payload.decode_trace(
            payload.encode_trace(mixed, table), table.values
        )
        assert out.root_ranks == mixed.root_ranks
        rounds = RoundTrace(
            tokens=[(1, 0, (1419,)), (1, 3, (0.25, (("str", "'B1'"),)))]
        )
        out = payload.decode_trace(
            payload.encode_trace(rounds, table), table.values
        )
        assert out.tokens == rounds.tokens
        assert payload.decode_trace(
            payload.encode_trace(None, table), table.values
        ) is None

    def test_ops_roundtrip(self):
        ops = (
            Changeset()
            .edit(3, "a", "v")
            .edit(4, "b", NULL, conf=0.5)
            .edit(5, "c", conf=None)
            .insert({"a": "x", "b": 0}, {"a": 1.0, "b": None})
            .insert({"c": "y"})
            .delete(9)
        ).ops
        table = payload.ValueTable()
        out = payload.decode_ops(payload.encode_ops(ops, table), table.values)
        assert out == list(ops)
        assert out[2].value is KEEP
        assert out[0].conf is KEEP


class TestWireFraming:
    @pytest.fixture(scope="class")
    def outcome(self):
        ds = generate_partitioned(size=800, n_blocks=8, seed=11)
        cfds, mds = normalized_rules(ds)
        plan = ShardPlanner(cfds, mds).plan(ds.dirty, 4)
        state = _WorkerState(cfds, mds, ds.master, UniCleanConfig(eta=1.0))
        shard = plan.shards[0]
        sid = _shard_content_id(shard)
        outcome = state.clean_shard(sid, ds.dirty.restrict(shard))
        return ds, state, shard, sid, outcome

    def test_request_roundtrip_and_size(self, outcome):
        ds, state, shard, sid, _outcome = outcome
        relation = ds.dirty.restrict(shard)
        blob = _encode_request(sid, "clean_shard", (relation,))
        rid, method, args = _decode_request(blob, state)
        assert (rid, method) == (sid, "clean_shard")
        decoded = args[0]
        assert decoded.tids() == relation.tids()
        for t in relation:
            twin = decoded.by_tid(t.tid)
            for attr in relation.schema.names:
                assert twin[attr] == t[attr] and twin.conf(attr) == t.conf(attr)
        legacy = len(pickle.dumps((sid, "clean_shard", (relation,)),
                                  pickle.HIGHEST_PROTOCOL))
        # The ISSUE 4 structural bound: columnar ≤ 50% of the PR 3 pickle.
        assert len(blob) <= 0.5 * legacy

    def test_response_roundtrip_and_size(self, outcome):
        _ds, _state, _shard, _sid, clean_outcome = outcome
        blob = _encode_response(clean_outcome, track_legacy_bytes=True)
        decoded, legacy = _decode_response(blob)
        assert legacy == len(pickle.dumps(clean_outcome, pickle.HIGHEST_PROTOCOL))
        assert len(blob) <= 0.5 * legacy
        assert decoded.shard_id == clean_outcome.shard_id
        assert decoded.clean == clean_outcome.clean
        assert decoded.costs == clean_outcome.costs
        assert decoded.ever_keys == clean_outcome.ever_keys
        assert decoded.segments == clean_outcome.segments
        for phase, trace in clean_outcome.traces.items():
            twin = decoded.traces[phase]
            if trace is None:
                assert twin is None
            elif isinstance(trace, WorklistTrace):
                assert twin.root_ranks == trace.root_ranks
                assert twin.pops == trace.pops
            else:
                assert twin.tokens == trace.tokens
        assert {t.tid: t.as_dict() for t in decoded.repaired} == {
            t.tid: t.as_dict() for t in clean_outcome.repaired
        }


class TestSerialZeroCopy:
    def test_serial_executor_never_pickles(self, monkeypatch):
        """The n_workers=1 path must stay zero-copy in-process: no
        ``pickle.dumps`` call for clean, scoped apply, or re-plan."""
        ds = generate_partitioned(size=160, n_blocks=8, seed=5)
        session = ShardedCleaningSession(
            cfds=ds.cfds, mds=ds.mds, master=ds.master,
            config=UniCleanConfig(eta=1.0), n_workers=1, n_shards=4,
        )

        def boom(*_args, **_kwargs):
            raise AssertionError("serial executor must not pickle")

        monkeypatch.setattr(pickle, "dumps", boom)
        monkeypatch.setattr(pickle, "dump", boom)
        monkeypatch.setattr(pickle, "Pickler", boom)
        session.clean(ds.dirty)
        tids = list(session.base.tids())
        out = session.apply(Changeset().edit(tids[0], "score", "55"))
        assert not out.full_reclean
        donor = session.base.by_tid(tids[10])
        out = session.apply(Changeset().insert(donor.as_dict()))
        assert out.full_reclean  # the re-plan path, still unpickled
        assert session.is_clean() in (True, False)
        assert session.stats["bytes_to_workers"] == 0
        assert session.stats["bytes_from_workers"] == 0

    def test_serial_restriction_is_zero_copy(self):
        """The serial clean path hands workers a no-clone restriction
        (the worker session clones for itself)."""
        rel = Relation.from_dicts(SCHEMA, [{"a": str(i)} for i in range(4)])
        view = rel.restrict([0, 2], copy=False)
        assert view.by_tid(0) is rel.by_tid(0)
        clone = rel.restrict([0, 2])
        assert clone.by_tid(0) is not rel.by_tid(0)


class TestProcessEquivalence:
    def test_reference_matches_process_pool_with_byte_tracking(self):
        ds = generate_partitioned(size=320, n_blocks=8, seed=7)
        config = UniCleanConfig(eta=1.0)
        reference = CleaningSession(
            cfds=ds.cfds, mds=ds.mds, master=ds.master, config=config
        )
        sharded = ShardedCleaningSession(
            cfds=ds.cfds, mds=ds.mds, master=ds.master, config=config,
            n_workers=2, n_shards=4, track_legacy_bytes=True,
        )
        with sharded:
            r1 = reference.clean(ds.dirty)
            r2 = sharded.clean(ds.dirty)
            assert r1.clean == r2.clean

            import random

            rng = random.Random(3)
            batch = replan_batch(reference.base, rng, inserts=1, edits=2)
            o1 = reference.apply_many(
                [Changeset(list(cs.ops)) for cs in batch]
            )
            o2 = sharded.apply_many([Changeset(list(cs.ops)) for cs in batch])
            state = lambda rel: {
                t.tid: tuple((repr(t[a]), t.conf(a)) for a in rel.schema.names)
                for t in rel
            }
            assert state(o1.repaired) == state(o2.repaired)
            stats = sharded.stats
            assert stats["bytes_to_workers"] > 0
            assert stats["bytes_from_workers"] > 0
            # The live coordinator traffic must also meet the 2× bound.
            columnar = stats["bytes_to_workers"] + stats["bytes_from_workers"]
            legacy = (
                stats["legacy_bytes_to_workers"]
                + stats["legacy_bytes_from_workers"]
            )
            assert columnar <= 0.5 * legacy
