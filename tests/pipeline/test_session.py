"""CleaningSession: persistent state, delta-driven re-cleaning, wrappers."""

import pytest

from repro.constraints import CFD, MD
from repro.core import UniClean, UniCleanConfig
from repro.exceptions import DataError
from repro.pipeline import Changeset, CleaningSession
from repro.relational import Relation, Schema

SCHEMA = Schema("R", ["K", "A", "B"])
MASTER_SCHEMA = Schema("Rm", ["K", "B"])

CFDS = [
    CFD(SCHEMA, ["K"], ["A"], name="fd_ka"),
    CFD(SCHEMA, ["A"], ["B"], name="fd_ab"),
    CFD(SCHEMA, ["K"], ["B"], {"K": "k1", "B": "b1"}, name="const_kb"),
]
MDS = [MD(SCHEMA, MASTER_SCHEMA, [("K", "K")], [("B", "B")], name="md_kb")]


def build_relation(rows) -> Relation:
    relation = Relation(SCHEMA)
    for k, a, b, ck, ca, cb in rows:
        relation.add_row({"K": k, "A": a, "B": b}, {"K": ck, "A": ca, "B": cb})
    return relation


def build_master() -> Relation:
    return Relation.from_dicts(
        MASTER_SCHEMA, [{"K": "k1", "B": "b1"}, {"K": "k2", "B": "b2"}]
    )


DIRTY = [
    ("k1", "a1", "b2", 1.0, 1.0, 0.0),
    ("k1", "a2", "b1", 1.0, 0.0, 0.5),
    ("k2", "a2", "b2", 1.0, 1.0, 0.0),
    ("k2", "a3", "b2", 0.0, 0.5, 0.0),
    ("k3", "a3", "b3", 0.5, 0.0, 0.0),
]


def state(relation: Relation):
    return {t.tid: {a: t[a] for a in relation.schema.names} for t in relation}


def scratch_state(base: Relation, config: UniCleanConfig):
    cleaner = UniClean(cfds=CFDS, mds=MDS, master=build_master(), config=config)
    return state(cleaner.clean(base).repaired)


@pytest.fixture()
def session() -> CleaningSession:
    return CleaningSession(
        cfds=CFDS, mds=MDS, master=build_master(), config=UniCleanConfig(eta=0.8)
    )


class TestClean:
    def test_matches_uniclean(self, session):
        dirty = build_relation(DIRTY)
        result = session.clean(dirty)
        reference = UniClean(
            cfds=CFDS, mds=MDS, master=build_master(), config=UniCleanConfig(eta=0.8)
        ).clean(dirty)
        assert state(result.repaired) == state(reference.repaired)
        assert result.clean == reference.clean
        assert [f.cell for f in result.fix_log] == [f.cell for f in reference.fix_log]

    def test_input_never_modified(self, session):
        dirty = build_relation(DIRTY)
        before = state(dirty)
        session.clean(dirty)
        assert state(dirty) == before

    def test_session_owns_private_base(self, session):
        dirty = build_relation(DIRTY)
        session.clean(dirty)
        session.apply(Changeset().edit(0, "B", "zzz"))
        assert dirty.by_tid(0)["B"] == "b2"  # caller's relation untouched


class TestApply:
    def test_requires_clean_first(self, session):
        with pytest.raises(DataError):
            session.apply(Changeset().edit(0, "A", "x"))

    def test_invalid_changeset_is_all_or_nothing(self, session):
        """A bad op must not leave the base half-mutated: the session
        validates the whole changeset before touching anything."""
        session.clean(build_relation(DIRTY))
        before = state(session.base)
        with pytest.raises(DataError):
            session.apply(Changeset().edit(0, "B", "zzz").delete(999))
        assert state(session.base) == before  # the edit did not land
        # The session is still consistent: a later valid apply is exact.
        out = session.apply(Changeset().edit(0, "B", "zzz"))
        assert state(out.repaired) == scratch_state(session.base, session.config)

    def test_edit_matches_scratch(self, session):
        session.clean(build_relation(DIRTY))
        out = session.apply(Changeset().edit(3, "K", "k1"))
        assert state(out.repaired) == scratch_state(session.base, session.config)
        assert out.clean

    def test_insert_matches_scratch(self, session):
        session.clean(build_relation(DIRTY))
        out = session.apply(
            Changeset().insert({"K": "k1", "A": "a9", "B": "b9"}, {"K": 1.0})
        )
        assert state(out.repaired) == scratch_state(session.base, session.config)

    def test_delete_matches_scratch(self, session):
        session.clean(build_relation(DIRTY))
        out = session.apply(Changeset().delete(1))
        assert not out.repaired.has_tid(1)
        assert state(out.repaired) == scratch_state(session.base, session.config)
        assert all(fix.tid != 1 for fix in out.fix_log)

    def test_sequential_batches_match_scratch(self, session):
        session.clean(build_relation(DIRTY))
        batches = [
            Changeset().edit(0, "B", "b9", conf=1.0),
            Changeset().edit(4, "K", "k1").insert({"K": "k3", "A": "a3", "B": "b4"}),
            Changeset().delete(2).edit(1, "A", "a1"),
        ]
        for batch in batches:
            out = session.apply(batch)
            assert state(out.repaired) == scratch_state(session.base, session.config)

    def test_empty_changeset_is_noop(self, session):
        result = session.clean(build_relation(DIRTY))
        before = state(result.repaired)
        out = session.apply(Changeset())
        assert state(out.repaired) == before
        assert out.affected == 0 and out.replays == 0

    def test_affected_is_a_fraction_on_disjoint_edit(self):
        # Two blocks with disjoint value spaces: an edit in one block must
        # not drag the other into the replay scope.
        rows = []
        for i in range(10):
            rows.append((f"x{i % 3}", f"xa{i % 3}", f"xb{i % 2}", 0.0, 0.0, 0.0))
        for i in range(10):
            rows.append((f"y{i % 3}", f"ya{i % 3}", f"yb{i % 2}", 0.0, 0.0, 0.0))
        session = CleaningSession(cfds=CFDS, config=UniCleanConfig(eta=0.8))
        session.clean(build_relation(rows))
        out = session.apply(Changeset().edit(0, "B", "xb9"))
        # Only x-block tuples can be in scope (no shared groups with y).
        assert 0 < out.affected <= 10
        assert state(out.repaired) == {
            t.tid: {a: t[a] for a in SCHEMA.names}
            for t in UniClean(cfds=CFDS, config=UniCleanConfig(eta=0.8))
            .clean(session.base)
            .repaired
        }

    def test_legacy_engine_falls_back_to_full_reclean(self):
        config = UniCleanConfig(eta=0.8, use_violation_index=False)
        session = CleaningSession(
            cfds=CFDS, mds=MDS, master=build_master(), config=config
        )
        session.clean(build_relation(DIRTY))
        out = session.apply(Changeset().edit(0, "B", "b9"))
        assert out.full_reclean
        assert state(out.repaired) == scratch_state(session.base, config)

    def test_summary_renders(self, session):
        session.clean(build_relation(DIRTY))
        text = session.apply(Changeset().edit(0, "B", "b9")).summary()
        assert "affected" in text and "clean=" in text


class TestApplyManyContract:
    """The empty-batch no-op contract: nothing in, nothing happens."""

    def test_empty_list_returns_none(self, session):
        session.clean(build_relation(DIRTY))
        before = state(session.working)
        assert session.apply_many([]) is None
        assert state(session.working) == before

    def test_opless_changesets_return_none(self, session):
        session.clean(build_relation(DIRTY))
        before = state(session.working)
        assert session.apply_many([Changeset(), Changeset()]) is None
        assert state(session.working) == before

    def test_requires_clean_first_even_when_empty(self, session):
        with pytest.raises(DataError):
            session.apply_many([])

    def test_nonempty_batch_still_applies(self, session):
        session.clean(build_relation(DIRTY))
        out = session.apply_many(
            [Changeset(), Changeset().edit(0, "B", "b9"), Changeset()]
        )
        assert out is not None
        assert state(out.repaired) == scratch_state(session.base, session.config)


class TestSharedState:
    def test_md_indexes_persist_across_cleans(self, session):
        session.clean(build_relation(DIRTY))
        first = dict(session.md_indexes)
        session.clean(build_relation(DIRTY))
        assert dict(session.md_indexes) == first  # same objects, not rebuilt

    def test_registry_shared_by_check_index(self, session):
        session.clean(build_relation(DIRTY))
        # The satisfaction-check index reads the registry's live stores.
        store = session.registry.cfd_store(CFDS[0])
        assert any(part is store for part in session._check_index._cfd_parts.values())

    def test_close_detaches_observers(self, session):
        session.clean(build_relation(DIRTY))
        working = session.working
        session.close()
        assert working._observers == []
        assert working._insert_observers == []
        assert working._delete_observers == []


class TestUniCleanWrapper:
    def test_clean_twice_reuses_md_indexes(self):
        cleaner = UniClean(
            cfds=CFDS, mds=MDS, master=build_master(), config=UniCleanConfig(eta=0.8)
        )
        first = cleaner.clean(build_relation(DIRTY))
        cached = dict(cleaner._md_indexes)
        second = cleaner.clean(build_relation(DIRTY))
        assert dict(cleaner._md_indexes) == cached
        assert [f.cell for f in first.fix_log] == [f.cell for f in second.fix_log]
