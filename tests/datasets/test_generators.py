"""Tests for the synthetic dataset generators."""

import random

import pytest

from repro.constraints import satisfies_all
from repro.datasets import (
    DirtyDataset,
    assign_confidences,
    corrupt_cell,
    generate_dblp,
    generate_hosp,
    generate_tpch,
    inject_noise,
    split_rows,
    typo,
)
from repro.exceptions import DataError
from repro.relational import Relation, Schema


class TestNoiseOperators:
    def test_typo_always_differs(self):
        rng = random.Random(1)
        for value in ["a", "hello", "12345", ""]:
            assert typo(value, rng) != value

    def test_corrupt_cell_differs(self):
        rng = random.Random(2)
        out = corrupt_cell("value", ["value", "other"], rng)
        assert out != "value"

    def test_corrupt_cell_semantic_uses_pool(self):
        rng = random.Random(3)
        swaps = 0
        for _ in range(100):
            out = corrupt_cell("a", ["a", "b"], rng, typo_share=0.0)
            if out == "b":
                swaps += 1
        assert swaps == 100  # typo_share 0 → always a pool swap

    def test_inject_noise_rate(self):
        schema = Schema("R", ["A", "B"])
        clean = Relation.from_dicts(schema, [{"A": f"aaaa{i}", "B": f"bbbb{i}"} for i in range(100)])
        dirty, errors = inject_noise(clean, 0.10, random.Random(4))
        assert len(errors) == pytest.approx(20, abs=2)
        for tid, attr in errors:
            assert dirty.by_tid(tid)[attr] != clean.by_tid(tid)[attr]

    def test_inject_noise_zero(self):
        schema = Schema("R", ["A"])
        clean = Relation.from_dicts(schema, [{"A": "x"}])
        dirty, errors = inject_noise(clean, 0.0, random.Random(5))
        assert errors == set()

    def test_inject_noise_validates_rate(self):
        schema = Schema("R", ["A"])
        clean = Relation.from_dicts(schema, [{"A": "x"}])
        with pytest.raises(DataError):
            inject_noise(clean, 1.5, random.Random(6))

    def test_typo_only_attrs_mostly_invalid_codes(self):
        """Typo-only corruption yields non-code strings almost always (a
        1-char typo can occasionally coincide with another valid code —
        e.g. C0001 → C0002 — which is realistic and acceptable)."""
        schema = Schema("R", ["code"])
        clean = Relation.from_dicts(schema, [{"code": f"C{i:04d}"} for i in range(50)])
        codes = {t["code"] for t in clean}
        dirty, errors = inject_noise(
            clean, 0.5, random.Random(7), typo_only_attrs=("code",)
        )
        invalid = sum(
            1 for tid, attr in errors if dirty.by_tid(tid)[attr] not in codes
        )
        assert invalid >= 0.8 * len(errors)


class TestConfidences:
    def test_asserted_cells_are_correct(self):
        schema = Schema("R", ["A"])
        clean = Relation.from_dicts(schema, [{"A": f"val{i}"} for i in range(50)])
        dirty, _ = inject_noise(clean, 0.2, random.Random(8))
        assign_confidences(dirty, clean, 0.4, random.Random(9))
        for tid in dirty.tids():
            t = dirty.by_tid(tid)
            if t.conf("A") == 1.0:
                assert t["A"] == clean.by_tid(tid)["A"]

    def test_rate_respected(self):
        schema = Schema("R", ["A"])
        clean = Relation.from_dicts(schema, [{"A": str(i)} for i in range(100)])
        dirty = clean.clone()
        assign_confidences(dirty, clean, 0.3, random.Random(10))
        asserted = sum(1 for t in dirty if t.conf("A") == 1.0)
        assert asserted == 30

    def test_split_rows(self):
        assert split_rows(10, 0.4) == (4, 6)
        assert split_rows(10, 0.0) == (0, 10)
        with pytest.raises(DataError):
            split_rows(10, 1.2)


@pytest.mark.parametrize(
    "generator,n_cfds,n_mds,n_attrs",
    [
        (generate_hosp, 23, 3, 19),
        (generate_dblp, 7, 3, 12),
        (generate_tpch, 55, 10, 58),
    ],
    ids=["hosp", "dblp", "tpch"],
)
class TestGeneratorContracts:
    @pytest.fixture()
    def ds(self, generator, n_cfds, n_mds, n_attrs) -> DirtyDataset:
        return generator(size=80, master_size=50, noise_rate=0.06)

    def test_rule_counts_match_paper(self, ds, generator, n_cfds, n_mds, n_attrs):
        assert len(ds.cfds) == n_cfds
        assert len(ds.mds) == n_mds

    def test_schema_width(self, ds, generator, n_cfds, n_mds, n_attrs):
        assert len(ds.schema) == n_attrs

    def test_sizes(self, ds, generator, n_cfds, n_mds, n_attrs):
        assert len(ds.dirty) == 80
        assert len(ds.clean) == 80
        assert len(ds.master) >= 50

    def test_clean_satisfies_cfds(self, ds, generator, n_cfds, n_mds, n_attrs):
        assert satisfies_all(ds.clean, ds.cfds)

    def test_errors_recorded_accurately(self, ds, generator, n_cfds, n_mds, n_attrs):
        diff_cells = {(tid, attr) for tid, attr, _, _ in ds.clean.diff(ds.dirty)}
        assert diff_cells == ds.errors

    def test_true_matches_reference_valid_tids(self, ds, generator, n_cfds, n_mds, n_attrs):
        data_tids = set(ds.dirty.tids())
        master_tids = set(ds.master.tids())
        for tid, sid in ds.true_matches:
            assert tid in data_tids and sid in master_tids

    def test_deterministic_given_seed(self, generator, n_cfds, n_mds, n_attrs):
        a = generator(size=40, master_size=25, seed=99)
        b = generator(size=40, master_size=25, seed=99)
        assert [t.as_dict() for t in a.dirty] == [t.as_dict() for t in b.dirty]
        assert a.errors == b.errors and a.true_matches == b.true_matches

    def test_different_seeds_differ(self, generator, n_cfds, n_mds, n_attrs):
        a = generator(size=40, master_size=25, seed=1)
        b = generator(size=40, master_size=25, seed=2)
        assert [t.as_dict() for t in a.dirty] != [t.as_dict() for t in b.dirty]

    def test_error_rate_near_target(self, generator, n_cfds, n_mds, n_attrs):
        ds = generator(size=100, master_size=50, noise_rate=0.08)
        assert ds.error_rate() == pytest.approx(0.08, abs=0.02)


class TestDuplicateRate:
    def test_zero_duplicates(self):
        ds = generate_hosp(size=60, master_size=40, duplicate_rate=0.0)
        assert ds.true_matches == set()

    def test_duplicate_rate_scales_matches(self):
        low = generate_hosp(size=60, master_size=40, duplicate_rate=0.2)
        high = generate_hosp(size=60, master_size=40, duplicate_rate=0.8)
        assert len({tid for tid, _ in low.true_matches}) < len(
            {tid for tid, _ in high.true_matches}
        )


class TestTpchRuleSubsets:
    def test_rule_subsetting(self):
        ds = generate_tpch(size=40, master_size=25, n_cfds=20, n_mds=4)
        assert len(ds.cfds) == 20 and len(ds.mds) == 4


class TestDeriveRng:
    def test_stable_across_calls(self):
        from repro.datasets import derive_rng, derive_seed

        assert derive_seed(7, "block", 3) == derive_seed(7, "block", 3)
        assert derive_seed(7, "block", 3) != derive_seed(7, "block", 4)
        assert derive_rng(7, "x").random() == derive_rng(7, "x").random()

    def test_process_stable(self):
        """The derivation must not depend on the per-process hash seed."""
        import pathlib
        import subprocess
        import sys

        import repro

        src = str(pathlib.Path(repro.__file__).resolve().parent.parent)
        script = (
            "from repro.datasets import derive_seed;"
            "print(derive_seed(7, 'block', 3))"
        )
        outs = {
            subprocess.run(
                [sys.executable, "-c", script],
                capture_output=True, text=True, check=True,
                env={"PYTHONPATH": src, "PYTHONHASHSEED": hash_seed},
            ).stdout.strip()
            for hash_seed in ("0", "12345")
        }
        assert len(outs) == 1


class TestPartitionedTestbed:
    def full_state(self, relation):
        return {
            t.tid: tuple((repr(t[a]), t.conf(a)) for a in relation.schema.names)
            for t in relation
        }

    def test_deterministic(self):
        from repro.datasets import generate_partitioned

        a = generate_partitioned(size=120, n_blocks=6, seed=3)
        b = generate_partitioned(size=120, n_blocks=6, seed=3)
        assert self.full_state(a.dirty) == self.full_state(b.dirty)
        assert self.full_state(a.master) == self.full_state(b.master)
        assert a.errors == b.errors and a.true_matches == b.true_matches

    def test_block_subset_is_byte_identical_restriction(self):
        from repro.datasets import generate_partitioned

        full = generate_partitioned(size=120, n_blocks=6, seed=3)
        sub = generate_partitioned(size=120, n_blocks=6, seed=3, block_ids=[1, 4])
        full_dirty = self.full_state(full.dirty)
        sub_dirty = self.full_state(sub.dirty)
        assert sub_dirty and all(
            full_dirty[tid] == row for tid, row in sub_dirty.items()
        )
        sub_tids = set(sub_dirty)
        assert sub.errors == {e for e in full.errors if e[0] in sub_tids}
        assert sub.true_matches == {
            m for m in full.true_matches if m[0] in sub_tids
        }
        sub_master = self.full_state(sub.master)
        full_master = self.full_state(full.master)
        assert all(full_master[tid] == row for tid, row in sub_master.items())

    def test_clean_data_satisfies_cfds(self):
        from repro.datasets import generate_partitioned

        ds = generate_partitioned(size=120, n_blocks=6, seed=3)
        assert satisfies_all(ds.clean, ds.cfds)

    def test_rules_are_block_keyed(self):
        from repro.datasets import generate_partitioned

        ds = generate_partitioned(size=60, n_blocks=4, seed=3)
        for cfd in ds.cfds:
            for normalized in cfd.normalize():
                if normalized.is_variable:
                    assert "block" in normalized.key_attrs()
        for md in ds.mds:
            assert "block" in md.blocking_key_attrs()

    def test_invalid_params_raise(self):
        from repro.datasets import generate_partitioned

        with pytest.raises(DataError):
            generate_partitioned(size=4, n_blocks=8)
        with pytest.raises(DataError):
            generate_partitioned(size=20, n_blocks=2, block_ids=[5])
