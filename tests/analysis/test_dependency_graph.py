"""Tests for the rule dependency graph and ordering — Section 6.2, Ex. 6.1."""

import pytest

from repro.analysis import (
    build_dependency_graph,
    degree_ratios,
    order_rules,
    strongly_connected_components,
)
from repro.constraints import derive_rules, embed_negative


@pytest.fixture()
def paper_normalized_rules(paper_rules):
    mds = embed_negative(paper_rules.mds, paper_rules.negative_mds)
    return derive_rules(paper_rules.cfds, mds)


class TestGraph:
    def test_edges_follow_rhs_lhs_overlap(self, paper_normalized_rules):
        rules = paper_normalized_rules
        graph = build_dependency_graph(rules)
        by_name = {rule.name: i for i, rule in enumerate(rules)}
        # φ1 writes city; ψ (both parts) read city → edges φ1 → ψ#0+, ψ#1+.
        phi1 = by_name["phi1"]
        psi0 = by_name["psi#0+"]
        assert psi0 in graph[phi1]

    def test_no_self_edges(self, paper_normalized_rules):
        graph = build_dependency_graph(paper_normalized_rules)
        for u, succs in graph.items():
            assert u not in succs

    def test_empty_rules(self):
        assert order_rules([]) == []


class TestSCC:
    def test_cycle_detected(self):
        graph = {0: {1}, 1: {2}, 2: {0}, 3: set()}
        components = strongly_connected_components(graph)
        sizes = sorted(len(c) for c in components)
        assert sizes == [1, 3]

    def test_dag_all_singletons(self):
        graph = {0: {1}, 1: {2}, 2: set()}
        components = strongly_connected_components(graph)
        assert all(len(c) == 1 for c in components)
        # Reverse topological order: sinks first.
        flat = [c[0] for c in components]
        assert flat.index(2) < flat.index(0)


class TestOrdering:
    def test_example_6_1_order(self, paper_normalized_rules):
        """Example 6.1: the order is φ1 > φ2 > φ3 > φ4 > ψ (by out/in
        ratio inside the SCC).  We check the coarse shape on normalized
        rules: both constant city rules precede the ψ rules."""
        ordered = [r.name for r in order_rules(paper_normalized_rules)]
        assert ordered.index("phi1") < ordered.index("psi#1+")
        assert ordered.index("phi2") < ordered.index("psi#1+")

    def test_order_is_permutation(self, paper_normalized_rules):
        ordered = order_rules(paper_normalized_rules)
        assert sorted(r.name for r in ordered) == sorted(
            r.name for r in paper_normalized_rules
        )

    def test_order_deterministic(self, paper_normalized_rules):
        first = [r.name for r in order_rules(paper_normalized_rules)]
        second = [r.name for r in order_rules(paper_normalized_rules)]
        assert first == second

    def test_upstream_scc_first(self, tran_schema):
        """A rule feeding another (no cycle) must come first."""
        from repro.constraints import CFD

        upstream = CFD(tran_schema, ["AC"], ["city"], {"AC": "1", "city": "E"}, name="up")
        downstream = CFD(tran_schema, ["city"], ["post"], name="down")
        rules = derive_rules([downstream, upstream])
        ordered = [r.name for r in order_rules(rules)]
        assert ordered.index("up") < ordered.index("down")

    def test_degree_ratios_exposed(self, paper_normalized_rules):
        ratios = degree_ratios(paper_normalized_rules)
        assert set(ratios) == {r.name for r in paper_normalized_rules}
        assert all(
            isinstance(out, int) and isinstance(inn, int)
            for out, inn in ratios.values()
        )
