"""Tests for the implication analysis (Theorem 4.2)."""

import pytest

from repro.analysis import implies, redundant_rules
from repro.constraints import CFD, MD
from repro.relational import Attribute, Domain, Relation, Schema


@pytest.fixture()
def schema() -> Schema:
    return Schema("R", ["A", "B", "C"])


class TestCFDImplication:
    def test_fd_transitivity(self, schema):
        """A→B and B→C imply A→C (classical Armstrong inference)."""
        sigma = [CFD(schema, ["A"], ["B"]), CFD(schema, ["B"], ["C"])]
        target = CFD(schema, ["A"], ["C"])
        assert implies(schema, sigma, [], target)

    def test_fd_not_implied(self, schema):
        sigma = [CFD(schema, ["A"], ["B"])]
        target = CFD(schema, ["A"], ["C"])
        assert not implies(schema, sigma, [], target)

    def test_reflexive_trivially_implied(self, schema):
        target = CFD(schema, ["A", "B"], ["A"])
        assert implies(schema, [], [], target)

    def test_constant_cfd_implied_by_stronger(self, schema):
        sigma = [CFD(schema, [], ["B"], rhs_pattern={"B": "x"})]
        target = CFD(schema, ["A"], ["B"], {"A": "1", "B": "x"})
        assert implies(schema, sigma, [], target)

    def test_constant_cfd_not_implied(self, schema):
        sigma = [CFD(schema, ["A"], ["B"], {"A": "1", "B": "x"})]
        target = CFD(schema, ["A"], ["B"], {"A": "2", "B": "x"})
        assert not implies(schema, sigma, [], target)

    def test_multi_rhs_target_normalized(self, schema):
        sigma = [CFD(schema, ["A"], ["B"]), CFD(schema, ["A"], ["C"])]
        target = CFD(schema, ["A"], ["B", "C"])
        assert implies(schema, sigma, [], target)


class TestMDImplication:
    @pytest.fixture()
    def small_schema(self):
        dom = Domain.finite({"u", "v"})
        return Schema("S", [Attribute("K", Domain.finite({"k"})), Attribute("V", dom)])

    def test_md_implied_by_itself(self, small_schema):
        master = Relation.from_dicts(small_schema, [{"K": "k", "V": "u"}])
        md = MD(small_schema, small_schema, [("K", "K")], [("V", "V")])
        assert implies(small_schema, [], [md], md, master)

    def test_md_not_implied_by_nothing(self, small_schema):
        master = Relation.from_dicts(small_schema, [{"K": "k", "V": "u"}])
        md = MD(small_schema, small_schema, [("K", "K")], [("V", "V")])
        assert not implies(small_schema, [], [], md, master)

    def test_md_implied_via_cfd(self, small_schema):
        """∅→V=u (CFD) makes the MD K=K → V⇌V hold whenever master V is
        u."""
        master = Relation.from_dicts(small_schema, [{"K": "k", "V": "u"}])
        sigma = [CFD(small_schema, [], ["V"], rhs_pattern={"V": "u"})]
        md = MD(small_schema, small_schema, [("K", "K")], [("V", "V")])
        assert implies(small_schema, sigma, [], md, master)

    def test_md_target_requires_master(self, small_schema):
        md = MD(small_schema, small_schema, [("K", "K")], [("V", "V")])
        with pytest.raises(ValueError):
            implies(small_schema, [], [], md, master=None)


class TestRedundantRules:
    def test_finds_transitive_redundancy(self, schema):
        sigma = [
            CFD(schema, ["A"], ["B"]),
            CFD(schema, ["B"], ["C"]),
            CFD(schema, ["A"], ["C"]),  # implied by the other two
        ]
        redundant = redundant_rules(schema, sigma)
        assert sigma[2] in redundant

    def test_no_false_positives(self, schema):
        sigma = [CFD(schema, ["A"], ["B"]), CFD(schema, ["B"], ["C"])]
        assert redundant_rules(schema, sigma) == []
