"""Tests for the bounded termination/determinism explorer (Thms 4.7/4.8)."""

import pytest

from repro.analysis import explore, snapshot
from repro.constraints import CFD, MD, derive_rules
from repro.relational import Relation, Schema


@pytest.fixture()
def schema() -> Schema:
    return Schema("tran", ["AC", "post", "city"])


class TestExample46:
    def test_ping_pong_does_not_terminate(self, schema):
        """Example 4.6: φ1 = (AC=131 → city=Edi) and φ5 = (post=EH8 9AB →
        city=Ldn) flip t2[city] back and forth forever."""
        phi1 = CFD(schema, ["AC"], ["city"], {"AC": "131", "city": "Edi"})
        phi5 = CFD(schema, ["post"], ["city"], {"post": "EH8 9AB", "city": "Ldn"})
        d = Relation.from_dicts(schema, [{"AC": "131", "post": "EH8 9AB", "city": "Edi"}])
        result = explore(d, derive_rules([phi1, phi5]))
        assert result.terminates is False
        assert result.deterministic is False

    def test_removing_one_rule_terminates(self, schema):
        phi1 = CFD(schema, ["AC"], ["city"], {"AC": "131", "city": "Edi"})
        d = Relation.from_dicts(schema, [{"AC": "131", "post": "p", "city": "Ldn"}])
        result = explore(d, derive_rules([phi1]))
        assert result.terminates is True
        assert result.deterministic is True
        assert len(result.fixpoints) == 1


class TestDeterminism:
    def test_conflicting_variable_cfd_is_nondeterministic(self, schema):
        """Two tuples agreeing on AC with different cities: either can be
        applied to the other → two distinct fixpoints."""
        fd = CFD(schema, ["AC"], ["city"])
        d = Relation.from_dicts(
            schema,
            [
                {"AC": "1", "post": "p", "city": "Edi"},
                {"AC": "1", "post": "q", "city": "Ldn"},
            ],
        )
        result = explore(d, derive_rules([fd]))
        assert result.terminates is True
        assert result.deterministic is False
        assert len(result.fixpoints) == 2

    def test_md_application_deterministic(self, schema):
        master = Relation.from_dicts(
            schema, [{"AC": "131", "post": "z", "city": "Edi"}]
        )
        md = MD(schema, schema, [("AC", "AC")], [("city", "city")])
        d = Relation.from_dicts(schema, [{"AC": "131", "post": "p", "city": "Ldn"}])
        result = explore(d, derive_rules([], [md]), master=master)
        assert result.terminates is True
        assert result.deterministic is True
        (fixpoint,) = result.fixpoints
        assert fixpoint[0][schema.index_of("city")] == "Edi"


class TestBudget:
    def test_exhaustion_reported(self, schema):
        phi1 = CFD(schema, ["AC"], ["city"], {"AC": "131", "city": "Edi"})
        phi5 = CFD(schema, ["post"], ["city"], {"post": "EH8 9AB", "city": "Ldn"})
        d = Relation.from_dicts(schema, [{"AC": "131", "post": "EH8 9AB", "city": "x"}])
        result = explore(d, derive_rules([phi1, phi5]), max_states=1)
        assert result.exhausted
        assert result.terminates is None
        assert result.deterministic is None

    def test_input_not_modified(self, schema):
        phi1 = CFD(schema, ["AC"], ["city"], {"AC": "131", "city": "Edi"})
        d = Relation.from_dicts(schema, [{"AC": "131", "post": "p", "city": "Ldn"}])
        before = snapshot(d)
        explore(d, derive_rules([phi1]))
        assert snapshot(d) == before


class TestSnapshot:
    def test_snapshot_order_by_tid(self, schema):
        d = Relation.from_dicts(
            schema,
            [{"AC": "1", "post": "p", "city": "c1"}, {"AC": "2", "post": "q", "city": "c2"}],
        )
        state = snapshot(d)
        assert state[0][schema.index_of("AC")] == "1"
        assert state[1][schema.index_of("AC")] == "2"
