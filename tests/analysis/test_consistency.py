"""Tests for the consistency analysis (Theorem 4.1)."""

import pytest

from repro.analysis import active_domains, assert_consistent, find_witness, is_consistent
from repro.constraints import CFD, MD
from repro.exceptions import InconsistentRulesError
from repro.relational import Attribute, Domain, Relation, Schema


@pytest.fixture()
def schema() -> Schema:
    return Schema("R", ["A", "B"])


class TestConsistentSets:
    def test_empty_rules_consistent(self, schema):
        assert is_consistent(schema, [])

    def test_simple_constant_cfds(self, schema):
        cfds = [CFD(schema, ["A"], ["B"], {"A": "1", "B": "x"})]
        assert is_consistent(schema, cfds)

    def test_witness_satisfies_rules(self, schema):
        cfds = [
            CFD(schema, ["A"], ["B"], {"A": "1", "B": "x"}),
            CFD(schema, ["A"], ["B"], {"A": "2", "B": "y"}),
        ]
        witness = find_witness(schema, cfds)
        assert witness is not None
        relation = Relation(schema)
        relation.add(witness)
        assert all(c.satisfied_by(relation) for c in cfds)

    def test_mds_alone_always_consistent(self, schema):
        """Fan et al. 2011 (recalled Section 4.1): any set of MDs is
        consistent."""
        master = Relation.from_dicts(schema, [{"A": "a", "B": "b"}])
        mds = [MD(schema, schema, [("A", "A")], [("B", "B")])]
        assert is_consistent(schema, [], mds, master)


class TestInconsistentSets:
    def test_classic_finite_domain_conflict(self):
        """A ≠ value forced from both sides on a finite domain: with
        dom(B) = {x} the rules A=1→B=x and (B=x → A=2 via A's side)…
        build the standard inconsistent pair: ∅→B=x and ∅→B=y."""
        schema = Schema("R", ["A", "B"])
        cfds = [
            CFD(schema, [], ["B"], rhs_pattern={"B": "x"}),
            CFD(schema, [], ["B"], rhs_pattern={"B": "y"}),
        ]
        assert not is_consistent(schema, cfds)

    def test_finite_domain_ping_pong(self):
        """Over a Boolean-like domain: A=t→A... the paper's canonical
        inconsistent CFDs: ([A]→[B], (true ‖ x)), ([A]→[B], (false ‖ y)),
        plus B constants that force A both ways."""
        dom = Domain.finite({"0", "1"})
        schema = Schema("R", [Attribute("A", dom), Attribute("B", dom)])
        cfds = [
            CFD(schema, ["A"], ["A"], lhs_pattern={"A": "0"}, rhs_pattern={"A": "1"}),
            CFD(schema, ["A"], ["A"], lhs_pattern={"A": "1"}, rhs_pattern={"A": "0"}),
        ]
        # Every value of the finite domain violates one of the rules.
        assert not is_consistent(schema, cfds)

    def test_assert_consistent_raises(self):
        schema = Schema("R", ["A", "B"])
        cfds = [
            CFD(schema, [], ["B"], rhs_pattern={"B": "x"}),
            CFD(schema, [], ["B"], rhs_pattern={"B": "y"}),
        ]
        with pytest.raises(InconsistentRulesError):
            assert_consistent(schema, cfds)

    def test_assert_consistent_passes(self, schema):
        assert_consistent(schema, [CFD(schema, ["A"], ["B"])])


class TestMDInteraction:
    def test_md_plus_cfd_conflict(self):
        """An MD forcing B to a master value conflicting with a constant
        CFD over a finite domain is detected."""
        dom = Domain.finite({"m", "c"})
        schema = Schema("R", [Attribute("A", Domain.finite({"k"})), Attribute("B", dom)])
        master = Relation.from_dicts(schema, [{"A": "k", "B": "m"}])
        mds = [MD(schema, schema, [("A", "A")], [("B", "B")])]
        cfds = [CFD(schema, [], ["B"], rhs_pattern={"B": "c"})]
        # Single tuple must have A='k' (only domain value) → MD forces
        # B='m', CFD forces B='c' → inconsistent.
        assert not is_consistent(schema, cfds, mds, master)

    def test_md_consistent_when_agreeing(self):
        dom = Domain.finite({"m", "c"})
        schema = Schema("R", [Attribute("A", Domain.finite({"k"})), Attribute("B", dom)])
        master = Relation.from_dicts(schema, [{"A": "k", "B": "m"}])
        mds = [MD(schema, schema, [("A", "A")], [("B", "B")])]
        cfds = [CFD(schema, [], ["B"], rhs_pattern={"B": "m"})]
        assert is_consistent(schema, cfds, mds, master)


class TestActiveDomains:
    def test_collects_cfd_constants(self, schema):
        cfds = [CFD(schema, ["A"], ["B"], {"A": "1", "B": "x"})]
        domains = active_domains(schema, cfds, [], None)
        assert "1" in domains["A"] and "x" in domains["B"]

    def test_includes_fresh_value(self, schema):
        domains = active_domains(schema, [], [], None)
        assert len(domains["A"]) >= 1

    def test_collects_master_values_via_mds(self, schema):
        master = Relation.from_dicts(schema, [{"A": "ma", "B": "mb"}])
        mds = [MD(schema, schema, [("A", "A")], [("B", "B")])]
        domains = active_domains(schema, [], mds, master)
        assert "ma" in domains["A"] and "mb" in domains["B"]

    def test_finite_domain_no_fresh_beyond(self):
        dom = Domain.finite({"0", "1"})
        schema = Schema("R", [Attribute("A", dom)])
        cfds = [CFD(schema, [], ["A"], rhs_pattern={"A": "0"}),
                CFD(schema, [], ["A"], rhs_pattern={"A": "1"})]
        domains = active_domains(schema, cfds, [], None)
        assert set(domains["A"]) == {"0", "1"}


class TestIndexedViolationAlignment:
    def test_duplicate_default_names_align_by_cfd_not_name(self, schema):
        """Two unnamed CFDs over the same attributes share the default
        name; a supplied violation index must map each expected rule to
        its own partitions (regression: name-keyed mapping collapsed
        them onto one position)."""
        from repro.analysis.consistency import relation_violations
        from repro.constraints.rules import derive_rules
        from repro.indexing import ViolationIndex

        cfd_a0 = CFD(schema, ["A"], ["B"], {"A": "a0", "B": "b0"})
        cfd_a1 = CFD(schema, ["A"], ["B"], {"A": "a1", "B": "b1"})
        assert cfd_a0.name == cfd_a1.name  # the colliding default
        relation = Relation.from_dicts(
            schema,
            [{"A": "a0", "B": "WRONG"}, {"A": "a1", "B": "b1"}],
        )
        rules = [r for cfd in (cfd_a0, cfd_a1) for r in derive_rules([cfd])]
        index = ViolationIndex(relation, rules, attach=False)
        plain = relation_violations(relation, [cfd_a0, cfd_a1])
        routed = relation_violations(relation, [cfd_a0, cfd_a1], index)
        assert [(v.tids, v.attr) for v in plain] == [((0,), "B")]
        assert [(v.tids, v.attr) for v in routed] == [((0,), "B")]
