"""Tests for the quaid baseline and Uni(CFD)."""

import pytest

from repro.baselines import quaid, uni_cfd
from repro.core import FixKind, is_clean
from repro.relational import Relation, Schema
from repro.constraints import CFD


@pytest.fixture()
def schema():
    return Schema("R", ["K", "V", "W"])


@pytest.fixture()
def cfds(schema):
    return [
        CFD(schema, ["K"], ["V"], {"K": "k", "V": "x"}, name="c"),
        CFD(schema, ["K"], ["W"], name="fd"),
    ]


@pytest.fixture()
def relation(schema):
    return Relation.from_dicts(
        schema,
        [
            {"K": "k", "V": "bad", "W": "w1"},
            {"K": "k", "V": "x", "W": "w2"},
        ],
    )


class TestQuaid:
    def test_produces_consistent_repair(self, relation, cfds):
        result = quaid(relation, cfds)
        assert is_clean(result.repaired, cfds)

    def test_all_fixes_possible(self, relation, cfds):
        result = quaid(relation, cfds)
        assert result.possible_fixes > 0
        assert all(f.kind is FixKind.POSSIBLE for f in result.fix_log)

    def test_input_unchanged(self, relation, cfds):
        before = {t.tid: t.as_dict() for t in relation}
        quaid(relation, cfds)
        assert {t.tid: t.as_dict() for t in relation} == before


class TestUniCFD:
    def test_no_master_no_mds(self, cfds):
        cleaner = uni_cfd(cfds)
        assert cleaner.mds == [] and cleaner.master is None

    def test_cleans_with_all_three_phases(self, relation, cfds):
        result = uni_cfd(cfds).clean(relation)
        assert is_clean(result.repaired, cfds)
        assert result.crepair_result is not None
        assert result.erepair_result is not None
        assert result.hrepair_result is not None
