"""Tests for eRepair — Section 6, Example 6.2."""

import pytest

from repro.constraints import CFD, MD
from repro.core import FixKind, erepair
from repro.relational import Relation, Schema


@pytest.fixture()
def schema():
    return Schema("R", ["A", "B", "C", "E", "F", "H"])


@pytest.fixture()
def example_relation(schema):
    rows = [
        ("a1", "b1", "c1", "e1", "f1", "h1"),
        ("a1", "b1", "c1", "e1", "f2", "h2"),
        ("a1", "b1", "c1", "e1", "f3", "h3"),
        ("a1", "b1", "c1", "e2", "f1", "h3"),
        ("a2", "b2", "c2", "e1", "f2", "h4"),
        ("a2", "b2", "c2", "e2", "f1", "h4"),
        ("a2", "b2", "c3", "e3", "f3", "h5"),
        ("a2", "b2", "c4", "e3", "f3", "h6"),
    ]
    return Relation.from_dicts(schema, [dict(zip("ABCEFH", r)) for r in rows])


@pytest.fixture()
def phi(schema):
    return CFD(schema, ["A", "B", "C"], ["E"], name="phi")


class TestExample62:
    def test_only_low_entropy_group_fixed(self, example_relation, phi):
        """Example 6.2: eRepair changes t4[E] to e1 (H ≈ 0.81 < δ2) but
        leaves the uniform (a2,b2,c2) group (H = 1) alone."""
        result = erepair(example_relation, [phi], delta2=0.9)
        assert result.relation.by_tid(3)["E"] == "e1"
        assert result.fix_log.mark_of(3, "E") is FixKind.RELIABLE
        # (a2,b2,c2): entropy 1 — untouched.
        assert result.relation.by_tid(4)["E"] == "e1"
        assert result.relation.by_tid(5)["E"] == "e2"
        assert result.reliable_fixes == 1

    def test_threshold_blocks_fix(self, example_relation, phi):
        result = erepair(example_relation, [phi], delta2=0.5)
        assert result.relation.by_tid(3)["E"] == "e2"
        assert result.reliable_fixes == 0

    def test_zero_entropy_groups_untouched(self, example_relation, phi):
        result = erepair(example_relation, [phi], delta2=0.99)
        assert result.relation.by_tid(6)["E"] == "e3"
        assert result.relation.by_tid(7)["E"] == "e3"


class TestThresholds:
    def test_protected_cells_never_changed(self, example_relation, phi):
        result = erepair(
            example_relation, [phi], delta2=0.9, protected={(3, "E")}
        )
        assert result.relation.by_tid(3)["E"] == "e2"

    def test_delta1_caps_oscillation(self):
        """Example 4.6's φ1/φ5 ping-pong terminates under δ1."""
        schema = Schema("tran", ["AC", "post", "city"])
        phi1 = CFD(schema, ["AC"], ["city"], {"AC": "131", "city": "Edi"})
        phi5 = CFD(schema, ["post"], ["city"], {"post": "EH8 9AB", "city": "Ldn"})
        relation = Relation.from_dicts(
            schema, [{"AC": "131", "post": "EH8 9AB", "city": "x"}]
        )
        result = erepair(relation, [phi1, phi5], delta1=3)
        changes = [f for f in result.fix_log if f.cell == (0, "city")]
        assert len(changes) <= 3
        assert result.rounds < 10  # terminated


class TestRuleKinds:
    def test_constant_cfd_applied(self):
        schema = Schema("R", ["K", "V"])
        cfd = CFD(schema, ["K"], ["V"], {"K": "k", "V": "good"})
        relation = Relation.from_dicts(schema, [{"K": "k", "V": "bad"}])
        result = erepair(relation, [cfd])
        assert result.relation.by_tid(0)["V"] == "good"
        assert result.fix_log.mark_of(0, "V") is FixKind.RELIABLE

    def test_md_applied(self):
        schema = Schema("R", ["K", "V"])
        md = MD(schema, schema, [("K", "K")], [("V", "V")])
        master = Relation.from_dicts(schema, [{"K": "k", "V": "master"}])
        relation = Relation.from_dicts(schema, [{"K": "k", "V": "dirty"}])
        result = erepair(relation, [], [md], master=master)
        assert result.relation.by_tid(0)["V"] == "master"

    def test_md_requires_master(self):
        schema = Schema("R", ["K", "V"])
        md = MD(schema, schema, [("K", "K")], [("V", "V")])
        relation = Relation.from_dicts(schema, [{"K": "k", "V": "x"}])
        with pytest.raises(ValueError):
            erepair(relation, [], [md])

    def test_interaction_md_enables_cfd(self):
        """An MD fix changes a group key, after which the variable CFD's
        entropy resolution fires — rules interleave across rounds."""
        schema = Schema("R", ["K", "G", "V"])
        md = MD(schema, schema, [("K", "K")], [("G", "G")])
        master = Relation.from_dicts(schema, [{"K": "k", "G": "g", "V": "m"}])
        fd = CFD(schema, ["G"], ["V"])
        relation = Relation.from_dicts(
            schema,
            [
                {"K": "k", "G": "WRONG", "V": "odd"},
                {"K": "x1", "G": "g", "V": "v"},
                {"K": "x2", "G": "g", "V": "v"},
                {"K": "x3", "G": "g", "V": "v"},
                {"K": "x4", "G": "g", "V": "v"},
            ],
        )
        result = erepair(relation, [fd], [md], master=master, delta2=0.9)
        t0 = result.relation.by_tid(0)
        assert t0["G"] == "g"      # MD fix
        assert t0["V"] == "v"      # then entropy fix in the merged group
        assert result.rounds >= 2

    def test_input_not_modified_by_default(self, example_relation, phi):
        before = {t.tid: t.as_dict() for t in example_relation}
        erepair(example_relation, [phi], delta2=0.9)
        assert {t.tid: t.as_dict() for t in example_relation} == before

    def test_in_place(self, example_relation, phi):
        result = erepair(example_relation, [phi], delta2=0.9, in_place=True)
        assert result.relation is example_relation
