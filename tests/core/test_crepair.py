"""Tests for cRepair — Section 5, Example 5.2."""

import pytest

from repro.constraints import CFD, MD, embed_negative
from repro.core import FixKind, crepair
from repro.relational import CTuple, Relation, Schema
from repro.similarity import edit_within


class TestExample52:
    """The paper's worked example: deterministic fixes for t1–t4."""

    @pytest.fixture()
    def result(self, dirty_tran, master_card, paper_rules):
        mds = embed_negative(paper_rules.mds, paper_rules.negative_mds)
        return crepair(
            dirty_tran, paper_rules.cfds, mds, master=master_card, eta=0.8
        )

    def test_t1_city_fixed_via_phi1(self, result):
        assert result.relation.by_tid(0)["city"] == "Edi"
        assert result.fix_log.mark_of(0, "city") is FixKind.DETERMINISTIC

    def test_t1_city_confidence_upgraded(self, result):
        """Example 5.2 step (3): 'It also upgrades t1[city].cf to 0.8.'"""
        assert result.relation.by_tid(0).conf("city") == 0.8

    def test_t1_phn_fixed_via_psi(self, result):
        """Step (4): t1[phn] := s1[tel] with cf 0.8."""
        assert result.relation.by_tid(0)["phn"] == "3256778"
        assert result.relation.by_tid(0).conf("phn") == 0.8

    def test_t2_st_fixed_via_phi3(self, result):
        """Step (5): t2[St] := t1[St] = 10 Oak St."""
        assert result.relation.by_tid(1)["St"] == "10 Oak St"

    def test_t3_city_fixed_via_phi2(self, result):
        """Step (6): t3[city] := Ldn with cf 0.8."""
        assert result.relation.by_tid(2)["city"] == "Ldn"
        assert result.relation.by_tid(2).conf("city") == 0.8

    def test_t3_fn_not_fixed_deterministically(self, result):
        """t3[FN] = Bob has cf 0.6 < η: φ4's premise is not asserted, so
        cRepair leaves it (it is fixed later, Example 7.2)."""
        assert result.relation.by_tid(2)["FN"] == "Bob"

    def test_all_fixes_marked_deterministic(self, result):
        for fix in result.fix_log:
            assert fix.kind is FixKind.DETERMINISTIC

    def test_input_not_modified(self, dirty_tran, master_card, paper_rules):
        mds = embed_negative(paper_rules.mds, paper_rules.negative_mds)
        before = {t.tid: t.as_dict() for t in dirty_tran}
        crepair(dirty_tran, paper_rules.cfds, mds, master=master_card, eta=0.8)
        assert {t.tid: t.as_dict() for t in dirty_tran} == before


class TestSemantics:
    @pytest.fixture()
    def schema(self):
        return Schema("R", ["K", "V", "W"])

    def test_asserted_targets_never_overwritten(self, schema):
        cfd = CFD(schema, ["K"], ["V"], {"K": "k", "V": "right"})
        relation = Relation.from_dicts(
            schema, [{"K": "k", "V": "wrong", "W": "w"}], [{"K": 1.0, "V": 1.0, "W": 0.0}]
        )
        result = crepair(relation, [cfd], eta=0.8)
        # V is asserted (cf 1.0): even though it violates the rule it is
        # not touched — conflicts among asserted values go to later phases.
        assert result.relation.by_tid(0)["V"] == "wrong"
        assert result.deterministic_fixes == 0

    def test_unasserted_premise_blocks_rule(self, schema):
        cfd = CFD(schema, ["K"], ["V"], {"K": "k", "V": "right"})
        relation = Relation.from_dicts(
            schema, [{"K": "k", "V": "wrong", "W": "w"}], [{"K": 0.5, "V": 0.0, "W": 0.0}]
        )
        result = crepair(relation, [cfd], eta=0.8)
        assert result.relation.by_tid(0)["V"] == "wrong"

    def test_confirmation_upgrades_confidence_without_fix(self, schema):
        cfd = CFD(schema, ["K"], ["V"], {"K": "k", "V": "right"})
        relation = Relation.from_dicts(
            schema, [{"K": "k", "V": "right", "W": "w"}], [{"K": 1.0, "V": 0.0, "W": 0.0}]
        )
        result = crepair(relation, [cfd], eta=0.8)
        assert result.deterministic_fixes == 0
        assert result.confirmed_cells == 1
        assert result.relation.by_tid(0).conf("V") == 0.8

    def test_recursive_propagation(self, schema):
        """A fix by one rule asserts the premise of the next (the process
        is recursive, Section 5.1)."""
        rule1 = CFD(schema, ["K"], ["V"], {"K": "k", "V": "v"})
        rule2 = CFD(schema, ["V"], ["W"], {"V": "v", "W": "w"})
        relation = Relation.from_dicts(
            schema, [{"K": "k", "V": "bad", "W": "bad"}],
            [{"K": 1.0, "V": 0.0, "W": 0.0}],
        )
        result = crepair(relation, [rule1, rule2], eta=0.8)
        t = result.relation.by_tid(0)
        assert t["V"] == "v" and t["W"] == "w"
        assert result.deterministic_fixes == 2

    def test_variable_cfd_unique_asserted_donor(self, schema):
        fd = CFD(schema, ["K"], ["V"])
        relation = Relation.from_dicts(
            schema,
            [
                {"K": "k", "V": "good", "W": "w"},
                {"K": "k", "V": "bad", "W": "w"},
            ],
            [{"K": 1.0, "V": 1.0, "W": 0.0}, {"K": 1.0, "V": 0.0, "W": 0.0}],
        )
        result = crepair(relation, [fd], eta=0.8)
        assert result.relation.by_tid(1)["V"] == "good"
        assert result.fix_log.mark_of(1, "V") is FixKind.DETERMINISTIC

    def test_variable_cfd_no_asserted_donor_no_fix(self, schema):
        fd = CFD(schema, ["K"], ["V"])
        relation = Relation.from_dicts(
            schema,
            [
                {"K": "k", "V": "a", "W": "w"},
                {"K": "k", "V": "b", "W": "w"},
            ],
            [{"K": 1.0, "V": 0.0, "W": 0.0}, {"K": 1.0, "V": 0.0, "W": 0.0}],
        )
        result = crepair(relation, [fd], eta=0.8)
        assert result.deterministic_fixes == 0

    def test_variable_cfd_donor_arrives_late(self, schema):
        """A tuple waits in Hφ's list until another rule asserts a donor;
        exercises the P[t] re-arming path of procedure update."""
        constant = CFD(schema, ["K"], ["V"], {"K": "k", "V": "good"})
        fd = CFD(schema, ["W"], ["V"])
        relation = Relation.from_dicts(
            schema,
            [
                # Donor: V will be fixed to 'good' by the constant rule
                # (premise K asserted), thereby asserting V.
                {"K": "k", "V": "meh", "W": "w"},
                # Waiter: premise W asserted, V unasserted.
                {"K": "other", "V": "bad", "W": "w"},
            ],
            [{"K": 1.0, "V": 0.0, "W": 1.0}, {"K": 0.0, "V": 0.0, "W": 1.0}],
        )
        result = crepair(relation, [constant, fd], eta=0.8)
        assert result.relation.by_tid(0)["V"] == "good"
        assert result.relation.by_tid(1)["V"] == "good"

    def test_md_requires_master(self, schema):
        md = MD(schema, schema, [("K", "K")], [("V", "V")])
        relation = Relation.from_dicts(schema, [{"K": "k", "V": "x", "W": "w"}])
        with pytest.raises(ValueError):
            crepair(relation, [], [md], master=None)

    def test_md_fix_from_master(self, schema):
        md = MD(schema, schema, [("K", "K"), ("W", "W", edit_within(1))], [("V", "V")])
        master = Relation.from_dicts(schema, [{"K": "k", "V": "master", "W": "www"}])
        relation = Relation.from_dicts(
            schema, [{"K": "k", "V": "dirty", "W": "www"}],
            [{"K": 1.0, "V": 0.0, "W": 1.0}],
        )
        result = crepair(relation, [], [md], master=master, eta=0.8)
        assert result.relation.by_tid(0)["V"] == "master"

    def test_in_place_mode(self, schema):
        cfd = CFD(schema, ["K"], ["V"], {"K": "k", "V": "v"})
        relation = Relation.from_dicts(
            schema, [{"K": "k", "V": "x", "W": "w"}], [{"K": 1.0, "V": 0.0, "W": 0.0}]
        )
        result = crepair(relation, [cfd], eta=0.8, in_place=True)
        assert result.relation is relation
        assert relation.by_tid(0)["V"] == "v"

    def test_empty_lhs_constant_rule(self, schema):
        cfd = CFD(schema, [], ["W"], rhs_pattern={"W": "std"})
        relation = Relation.from_dicts(
            schema, [{"K": "k", "V": "v", "W": "odd"}], [{"K": 0.0, "V": 0.0, "W": 0.0}]
        )
        result = crepair(relation, [cfd], eta=0.8)
        assert result.relation.by_tid(0)["W"] == "std"

    def test_each_cell_fixed_at_most_once(self, schema):
        """Correctness argument of Section 5.2: each attribute value is
        updated at most once."""
        rule1 = CFD(schema, ["K"], ["V"], {"K": "k", "V": "v1"})
        rule2 = CFD(schema, ["W"], ["V"], {"W": "w", "V": "v2"})
        relation = Relation.from_dicts(
            schema, [{"K": "k", "V": "x", "W": "w"}], [{"K": 1.0, "V": 0.0, "W": 1.0}]
        )
        result = crepair(relation, [rule1, rule2], eta=0.8)
        fixes_per_cell = {}
        for fix in result.fix_log:
            fixes_per_cell[fix.cell] = fixes_per_cell.get(fix.cell, 0) + 1
        assert all(count == 1 for count in fixes_per_cell.values())
