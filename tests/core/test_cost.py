"""Tests for the cost model of Section 3.1."""

import pytest

from repro.core import DEFAULT_CONFIDENCE, cell_cost, repair_cost, value_distance
from repro.exceptions import DataError
from repro.relational import NULL, Relation, Schema


class TestValueDistance:
    def test_equal_is_zero(self):
        assert value_distance("x", "x") == 0.0

    def test_null_pair_is_zero(self):
        assert value_distance(NULL, NULL) == 0.0

    def test_null_to_value_is_one(self):
        assert value_distance(NULL, "x") == 1.0
        assert value_distance("x", NULL) == 1.0

    def test_string_normalized_edit(self):
        # dis("abcd","abcx") = 1, max length 4 → 0.25.
        assert value_distance("abcd", "abcx") == 0.25

    def test_longer_strings_closer(self):
        """The paper's rationale: longer strings with a 1-char difference
        are closer than shorter strings with a 1-char difference."""
        assert value_distance("abcdefghij", "abcdefghiX") < value_distance("ab", "aX")

    def test_non_string_discrete(self):
        assert value_distance(1, 2) == 1.0
        assert value_distance(1, 1) == 0.0

    def test_bounds(self):
        assert 0.0 <= value_distance("hello", "help") <= 1.0


class TestCellCost:
    def test_uses_confidence(self):
        assert cell_cost("abcd", "abcx", 1.0) == 0.25
        assert cell_cost("abcd", "abcx", 0.5) == 0.125

    def test_none_confidence_uses_default(self):
        assert cell_cost("abcd", "abcx", None) == DEFAULT_CONFIDENCE * 0.25

    def test_zero_confidence_free(self):
        assert cell_cost("abcd", "zzzz", 0.0) == 0.0


class TestRepairCost:
    @pytest.fixture()
    def schema(self):
        return Schema("R", ["A", "B"])

    def test_identity_repair_costs_nothing(self, schema):
        r = Relation.from_dicts(schema, [{"A": "x", "B": "y"}])
        assert repair_cost(r.clone(), r) == 0.0

    def test_sums_weighted_distances(self, schema):
        original = Relation.from_dicts(
            schema, [{"A": "abcd", "B": "y"}], [{"A": 1.0, "B": 0.5}]
        )
        repaired = original.clone()
        repaired.by_tid(0)["A"] = "abcx"  # cost 1.0 * 0.25
        repaired.by_tid(0)["B"] = "z"     # cost 0.5 * 1.0
        assert repair_cost(repaired, original) == pytest.approx(0.75)

    def test_higher_confidence_costs_more(self, schema):
        low = Relation.from_dicts(schema, [{"A": "abcd", "B": "y"}], [{"A": 0.1, "B": 0.0}])
        high = Relation.from_dicts(schema, [{"A": "abcd", "B": "y"}], [{"A": 0.9, "B": 0.0}])
        fixed_low, fixed_high = low.clone(), high.clone()
        fixed_low.by_tid(0)["A"] = "zzzz"
        fixed_high.by_tid(0)["A"] = "zzzz"
        assert repair_cost(fixed_high, high) > repair_cost(fixed_low, low)

    def test_schema_mismatch(self, schema):
        other = Relation(Schema("S", ["A", "B"]))
        r = Relation.from_dicts(schema, [{"A": "x", "B": "y"}])
        with pytest.raises(DataError):
            repair_cost(other, r)

    def test_tid_mismatch(self, schema):
        original = Relation.from_dicts(schema, [{"A": "x", "B": "y"}])
        repaired = Relation.from_dicts(schema, [{"A": "x", "B": "y"}, {"A": "q", "B": "r"}])
        with pytest.raises(DataError):
            repair_cost(repaired, original)
