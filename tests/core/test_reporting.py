"""Tests for the fix-report utilities and hRepair's union-find."""

import pytest

from repro.core import FixKind, UniClean, UniCleanConfig, format_fix_report, rule_statistics
from repro.core.fixes import Fix, FixLog
from repro.core.hrepair import _UnionFind


def make_fix(kind, rule, tid=0, attr="A"):
    return Fix(kind, rule, tid, attr, "o", "n", None, None, "x")


class TestRuleStatistics:
    def test_empty_log(self):
        assert rule_statistics(FixLog()) == {}

    def test_counts_per_rule_and_kind(self):
        log = FixLog()
        log.record(make_fix(FixKind.DETERMINISTIC, "r1"))
        log.record(make_fix(FixKind.DETERMINISTIC, "r1", tid=1))
        log.record(make_fix(FixKind.POSSIBLE, "r2"))
        stats = rule_statistics(log)
        assert stats["r1"]["deterministic"] == 2 and stats["r1"]["total"] == 2
        assert stats["r2"]["possible"] == 1

    def test_report_renders(self):
        log = FixLog()
        log.record(make_fix(FixKind.RELIABLE, "rule_x"))
        text = format_fix_report(log, limit=5)
        assert "rule_x" in text and "reliable" in text

    def test_report_limit_truncates(self):
        log = FixLog()
        for i in range(10):
            log.record(make_fix(FixKind.POSSIBLE, "r", tid=i))
        text = format_fix_report(log, limit=3)
        assert "7 more" in text

    def test_report_on_real_run(self, paper_rules, master_card, dirty_tran):
        cleaner = UniClean(
            paper_rules.cfds,
            paper_rules.mds,
            paper_rules.negative_mds,
            master_card,
            UniCleanConfig(eta=0.8),
        )
        result = cleaner.clean(dirty_tran)
        text = format_fix_report(result.fix_log, limit=20)
        assert "phi1" in text  # the city rule fired in the running example
        stats = rule_statistics(result.fix_log)
        assert sum(r["total"] for r in stats.values()) == len(result.fix_log)


class TestUnionFind:
    def test_singletons(self):
        uf = _UnionFind()
        assert uf.find((0, "A")) == (0, "A")
        assert uf.members((0, "A")) == [(0, "A")]

    def test_union_merges_members(self):
        uf = _UnionFind()
        root = uf.union((0, "A"), (1, "A"))
        assert set(uf.members((0, "A"))) == {(0, "A"), (1, "A")}
        assert uf.find((1, "A")) == root

    def test_union_idempotent(self):
        uf = _UnionFind()
        uf.union((0, "A"), (1, "A"))
        before = set(uf.members((0, "A")))
        uf.union((1, "A"), (0, "A"))
        assert set(uf.members((0, "A"))) == before

    def test_transitive_union(self):
        uf = _UnionFind()
        uf.union((0, "A"), (1, "A"))
        uf.union((1, "A"), (2, "A"))
        assert uf.find((0, "A")) == uf.find((2, "A"))
        assert len(uf.members((2, "A"))) == 3

    def test_path_compression_preserves_roots(self):
        uf = _UnionFind()
        cells = [(i, "A") for i in range(20)]
        for cell in cells[1:]:
            uf.union(cells[0], cell)
        root = uf.find(cells[0])
        assert all(uf.find(c) == root for c in cells)
        assert len(uf.members(root)) == 20
