"""Tests for hRepair — Section 7, Example 7.2 and Corollary 7.1."""

import pytest

from repro.constraints import CFD, MD, embed_negative
from repro.core import (
    FixKind,
    cfd_satisfied_with_nulls,
    crepair,
    hrepair,
    is_clean,
    md_satisfied_with_nulls,
)
from repro.relational import NULL, Relation, Schema


class TestExample72:
    """Possible fixes completing the running example."""

    @pytest.fixture()
    def pipeline(self, dirty_tran, master_card, paper_rules):
        mds = embed_negative(paper_rules.mds, paper_rules.negative_mds)
        c_result = crepair(dirty_tran, paper_rules.cfds, mds, master=master_card, eta=0.8)
        protected = c_result.fix_log.deterministic_cells()
        h_result = hrepair(
            c_result.relation,
            paper_rules.cfds,
            mds,
            master=master_card,
            protected=protected,
            fix_log=c_result.fix_log,
        )
        return c_result, h_result

    def test_t3_fn_normalized(self, pipeline):
        """(a) t3[FN] := Robert via φ4."""
        _, h = pipeline
        assert h.relation.by_tid(2)["FN"] == "Robert"

    def test_t3_phn_from_master(self, pipeline):
        """(b) t3[phn] := 3887644 by matching s2 via ψ."""
        _, h = pipeline
        assert h.relation.by_tid(2)["phn"] == "3887644"

    def test_t4_enriched_from_t3(self, pipeline):
        """(c) t4[St, post] := t3[St, post] via φ3."""
        _, h = pipeline
        t4 = h.relation.by_tid(3)
        assert t4["St"] == "5 Wren St"
        assert t4["post"] == "WC1H 9SE"

    def test_repair_is_clean(self, pipeline, paper_rules, master_card):
        _, h = pipeline
        mds = embed_negative(paper_rules.mds, paper_rules.negative_mds)
        assert is_clean(h.relation, paper_rules.cfds, mds, master_card)

    def test_deterministic_fixes_preserved(self, pipeline):
        """Corollary 7.1: hRepair keeps every deterministic fix."""
        c, h = pipeline
        for cell in c.fix_log.deterministic_cells():
            tid, attr = cell
            assert h.fix_log.mark_of(tid, attr) is FixKind.DETERMINISTIC


class TestGuarantees:
    @pytest.fixture()
    def schema(self):
        return Schema("R", ["K", "V", "W"])

    def test_always_produces_consistent_repair(self, schema):
        cfds = [
            CFD(schema, ["K"], ["V"], {"K": "k", "V": "x"}, name="c1"),
            CFD(schema, ["W"], ["V"], name="fd"),
        ]
        relation = Relation.from_dicts(
            schema,
            [
                {"K": "k", "V": "wrong", "W": "w"},
                {"K": "o", "V": "a", "W": "g"},
                {"K": "o", "V": "b", "W": "g"},
            ],
        )
        result = hrepair(relation, cfds)
        assert is_clean(result.relation, cfds)

    def test_conflicting_constants_tombstone_to_null(self, schema):
        cfds = [
            CFD(schema, ["K"], ["V"], {"K": "k", "V": "x"}, name="c1"),
            CFD(schema, ["W"], ["V"], {"W": "w", "V": "y"}, name="c2"),
        ]
        relation = Relation.from_dicts(schema, [{"K": "k", "V": "z", "W": "w"}])
        result = hrepair(relation, cfds)
        assert result.relation.by_tid(0)["V"] is NULL
        assert is_clean(result.relation, cfds)

    def test_frozen_conflict_breaks_premise(self, schema):
        """A deterministic cell conflicting with a constant rule forces
        the premise to be dissolved with a null, not the cell changed."""
        cfd = CFD(schema, ["K"], ["V"], {"K": "k", "V": "x"})
        relation = Relation.from_dicts(schema, [{"K": "k", "V": "det", "W": "w"}])
        result = hrepair(relation, [cfd], protected={(0, "V")})
        assert result.relation.by_tid(0)["V"] == "det"   # preserved
        assert result.relation.by_tid(0)["K"] is NULL     # premise broken
        assert is_clean(result.relation, [cfd])

    def test_variable_cfd_cost_based_direction(self, schema):
        """With no asserted values, the merged class takes the value of
        minimum repair cost — the high-confidence cell wins."""
        fd = CFD(schema, ["K"], ["V"])
        relation = Relation.from_dicts(
            schema,
            [
                {"K": "k", "V": "cheap", "W": "w"},
                {"K": "k", "V": "pricey", "W": "w"},
            ],
            [{"K": 1.0, "V": 0.1, "W": 0.0}, {"K": 1.0, "V": 0.9, "W": 0.0}],
        )
        result = hrepair(relation, [fd])
        # Changing the 0.1-confidence cell is cheaper → both become pricey.
        assert result.relation.by_tid(0)["V"] == "pricey"
        assert result.relation.by_tid(1)["V"] == "pricey"

    def test_null_enrichment(self, schema):
        fd = CFD(schema, ["K"], ["V"])
        relation = Relation.from_dicts(
            schema,
            [{"K": "k", "V": "value", "W": "w"}, {"K": "k", "V": NULL, "W": "w"}],
        )
        result = hrepair(relation, [fd])
        assert result.relation.by_tid(1)["V"] == "value"

    def test_md_conflicting_masters_null(self, schema):
        md = MD(schema, schema, [("K", "K")], [("V", "V")])
        master = Relation.from_dicts(
            schema, [{"K": "k", "V": "m1", "W": "w"}, {"K": "k", "V": "m2", "W": "w"}]
        )
        relation = Relation.from_dicts(schema, [{"K": "k", "V": "x", "W": "w"}])
        result = hrepair(relation, [], [md], master=master)
        assert result.relation.by_tid(0)["V"] is NULL
        assert md_satisfied_with_nulls(result.relation, master, md)

    def test_md_requires_master(self, schema):
        md = MD(schema, schema, [("K", "K")], [("V", "V")])
        relation = Relation.from_dicts(schema, [{"K": "k", "V": "x", "W": "w"}])
        with pytest.raises(ValueError):
            hrepair(relation, [], [md])

    def test_terminates_on_adversarial_rules(self, schema):
        """The φ1/φ5-style ping-pong terminates via the target lattice."""
        c1 = CFD(schema, ["K"], ["V"], {"K": "k", "V": "a"})
        c2 = CFD(schema, ["W"], ["V"], {"W": "w", "V": "b"})
        relation = Relation.from_dicts(schema, [{"K": "k", "V": "z", "W": "w"}])
        result = hrepair(relation, [c1, c2])
        assert result.rounds < 100
        assert is_clean(result.relation, [c1, c2])


class TestNullSemantics:
    @pytest.fixture()
    def schema(self):
        return Schema("R", ["K", "V"])

    def test_null_lhs_means_no_violation(self, schema):
        cfd = CFD(schema, ["K"], ["V"], {"K": "k", "V": "x"})
        relation = Relation.from_dicts(schema, [{"K": NULL, "V": "bad"}])
        assert cfd_satisfied_with_nulls(relation, cfd)

    def test_null_rhs_means_no_violation(self, schema):
        cfd = CFD(schema, ["K"], ["V"], {"K": "k", "V": "x"})
        relation = Relation.from_dicts(schema, [{"K": "k", "V": NULL}])
        assert cfd_satisfied_with_nulls(relation, cfd)

    def test_variable_cfd_nulls_dont_conflict(self, schema):
        fd = CFD(schema, ["K"], ["V"])
        relation = Relation.from_dicts(
            schema, [{"K": "k", "V": "a"}, {"K": "k", "V": NULL}]
        )
        assert cfd_satisfied_with_nulls(relation, fd)

    def test_real_violation_detected(self, schema):
        fd = CFD(schema, ["K"], ["V"])
        relation = Relation.from_dicts(
            schema, [{"K": "k", "V": "a"}, {"K": "k", "V": "b"}]
        )
        assert not cfd_satisfied_with_nulls(relation, fd)

    def test_md_null_counts_as_identified(self, schema):
        md = MD(schema, schema, [("K", "K")], [("V", "V")])
        master = Relation.from_dicts(schema, [{"K": "k", "V": "m"}])
        relation = Relation.from_dicts(schema, [{"K": "k", "V": NULL}])
        assert md_satisfied_with_nulls(relation, master, md)
