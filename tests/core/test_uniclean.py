"""Tests for the UniClean pipeline (Section 3.2)."""

import pytest

from repro.constraints import CFD
from repro.core import FixKind, UniClean, UniCleanConfig, is_clean
from repro.exceptions import InconsistentRulesError
from repro.relational import Relation, Schema


class TestPipeline:
    @pytest.fixture()
    def cleaner(self, paper_rules, master_card):
        return UniClean(
            cfds=paper_rules.cfds,
            mds=paper_rules.mds,
            negative_mds=paper_rules.negative_mds,
            master=master_card,
            config=UniCleanConfig(eta=0.8),
        )

    def test_full_run_clean(self, cleaner, dirty_tran, paper_rules, master_card):
        result = cleaner.clean(dirty_tran)
        assert result.clean
        assert is_clean(result.repaired, cleaner.cfds, cleaner.mds, master_card)

    def test_input_unchanged(self, cleaner, dirty_tran):
        before = {t.tid: t.as_dict() for t in dirty_tran}
        cleaner.clean(dirty_tran)
        assert {t.tid: t.as_dict() for t in dirty_tran} == before

    def test_all_three_fix_kinds_produced(self, cleaner, dirty_tran):
        result = cleaner.clean(dirty_tran)
        counts = result.fix_counts()
        assert counts[FixKind.DETERMINISTIC] > 0
        assert counts[FixKind.RELIABLE] > 0
        assert counts[FixKind.POSSIBLE] > 0

    def test_timings_recorded(self, cleaner, dirty_tran):
        result = cleaner.clean(dirty_tran)
        # Phase timings always present; "setup" records the shared group
        # store build of the indexed engine (session bookkeeping).
        assert {"crepair", "erepair", "hrepair"} <= set(result.timings)
        assert set(result.timings) <= {"setup", "crepair", "erepair", "hrepair"}
        assert result.total_time >= 0.0

    def test_cost_positive(self, cleaner, dirty_tran):
        result = cleaner.clean(dirty_tran)
        assert result.cost > 0.0

    def test_summary_renders(self, cleaner, dirty_tran):
        text = cleaner.clean(dirty_tran).summary()
        assert "UniClean" in text and "cost=" in text

    def test_fraud_detected(self, cleaner, dirty_tran):
        """The headline of Example 1.1: after cleaning, t3 and t4 agree on
        every personal attribute — the same card in the UK and the US."""
        result = cleaner.clean(dirty_tran)
        t3 = result.repaired.by_tid(2)
        t4 = result.repaired.by_tid(3)
        for attr in ["FN", "LN", "St", "city", "AC", "post", "phn"]:
            assert t3[attr] == t4[attr], attr


class TestPhaseSwitches:
    @pytest.fixture()
    def base(self, paper_rules, master_card):
        def build(**overrides):
            config = UniCleanConfig(eta=0.8, **overrides)
            return UniClean(
                cfds=paper_rules.cfds,
                mds=paper_rules.mds,
                negative_mds=paper_rules.negative_mds,
                master=master_card,
                config=config,
            )

        return build

    def test_crepair_only(self, base, dirty_tran):
        result = base(run_erepair=False, run_hrepair=False).clean(dirty_tran)
        assert result.erepair_result is None and result.hrepair_result is None
        assert all(f.kind is FixKind.DETERMINISTIC for f in result.fix_log)

    def test_ce_only(self, base, dirty_tran):
        result = base(run_hrepair=False).clean(dirty_tran)
        assert result.hrepair_result is None
        kinds = {f.kind for f in result.fix_log}
        assert FixKind.POSSIBLE not in kinds

    def test_recall_monotone_in_phases(self, base, dirty_tran):
        """More phases → at least as many cells fixed."""
        c = base(run_erepair=False, run_hrepair=False).clean(dirty_tran)
        ce = base(run_hrepair=False).clean(dirty_tran)
        full = base().clean(dirty_tran)
        assert len(c.fix_log.marked_cells()) <= len(ce.fix_log.marked_cells())
        assert len(ce.fix_log.marked_cells()) <= len(full.fix_log.marked_cells())


class TestConstruction:
    def test_mds_require_master(self, paper_rules):
        with pytest.raises(ValueError):
            UniClean(cfds=paper_rules.cfds, mds=paper_rules.mds, master=None)

    def test_negative_mds_embedded(self, paper_rules, master_card):
        cleaner = UniClean(
            cfds=paper_rules.cfds,
            mds=paper_rules.mds,
            negative_mds=paper_rules.negative_mds,
            master=master_card,
        )
        for md in cleaner.mds:
            assert ("gd", "gd") in {
                (c.attr, c.master_attr) for c in md.premise if c.is_equality
            }

    def test_consistency_check_rejects_bad_rules(self):
        schema = Schema("R", ["A", "B"])
        bad = [
            CFD(schema, [], ["B"], rhs_pattern={"B": "x"}),
            CFD(schema, [], ["B"], rhs_pattern={"B": "y"}),
        ]
        with pytest.raises(InconsistentRulesError):
            UniClean(cfds=bad, config=UniCleanConfig(check_consistency=True))

    def test_consistency_check_accepts_good_rules(self, paper_rules, master_card):
        UniClean(
            cfds=paper_rules.cfds,
            mds=paper_rules.mds,
            master=master_card,
            config=UniCleanConfig(check_consistency=True),
        )

    def test_cfd_only_pipeline(self, paper_rules, dirty_tran):
        cleaner = UniClean(cfds=paper_rules.cfds)
        result = cleaner.clean(dirty_tran)
        assert is_clean(result.repaired, cleaner.cfds)


class TestIndexedEngineEquivalence:
    """The violation index must not change pipeline behaviour, only speed."""

    @staticmethod
    def _fingerprint(log):
        return [
            (f.kind.value, f.rule_name, f.tid, f.attr, repr(f.old_value),
             repr(f.new_value), repr(f.source))
            for f in log
        ]

    def test_full_pipeline_logs_identical_on_paper_example(
        self, paper_rules, master_card, dirty_tran
    ):
        results = []
        for flag in (True, False):
            cleaner = UniClean(
                cfds=paper_rules.cfds,
                mds=paper_rules.mds,
                negative_mds=paper_rules.negative_mds,
                master=master_card,
                config=UniCleanConfig(eta=1.0, use_violation_index=flag),
            )
            results.append(cleaner.clean(dirty_tran))
        indexed, legacy = results
        assert self._fingerprint(indexed.fix_log) == self._fingerprint(legacy.fix_log)
        assert not indexed.repaired.diff(legacy.repaired)
        assert indexed.clean == legacy.clean

    def test_full_pipeline_logs_identical_on_generated_workload(self):
        from repro.evaluation import generate, run_uniclean

        ds = generate("hosp", size=90, master_size=45, noise_rate=0.08)
        indexed = run_uniclean(ds, UniCleanConfig(eta=1.0, use_violation_index=True))
        legacy = run_uniclean(ds, UniCleanConfig(eta=1.0, use_violation_index=False))
        assert self._fingerprint(indexed.fix_log) == self._fingerprint(legacy.fix_log)
        assert not indexed.repaired.diff(legacy.repaired)
        assert indexed.clean and legacy.clean


class TestConfigForwardCompat:
    """``UniCleanConfig.__setstate__``: pickles written before a field
    existed keep loading, with the absent fields taking their dataclass
    defaults — the one upgrade hook replacing per-reader getattr shims."""

    def test_pickle_roundtrip_is_identity(self):
        import pickle

        config = UniCleanConfig(eta=1.0, match_engine="join", top_l=7)
        assert pickle.loads(pickle.dumps(config)) == config

    def test_missing_fields_take_defaults(self):
        """Simulate payloads from every prior era: strip one engine flag
        at a time (and then all of them) and restore."""
        import pickle

        defaults = UniCleanConfig()
        flags = [
            "match_engine",        # added with the similarity-join engine
            "use_violation_index", # added with the violation index
            "use_suffix_tree",
            "run_crepair",
            "run_erepair",
            "run_hrepair",
        ]
        for missing in [[f] for f in flags] + [flags]:
            config = UniCleanConfig(eta=1.0, delta1=5)
            for name in missing:
                del config.__dict__[name]  # forge a pre-<field> pickle
            restored = pickle.loads(pickle.dumps(config))
            for name in missing:
                assert getattr(restored, name) == getattr(defaults, name)
            assert restored.eta == 1.0 and restored.delta1 == 5

    def test_setstate_fills_every_field_from_empty(self):
        config = UniCleanConfig.__new__(UniCleanConfig)
        config.__setstate__({})
        assert config == UniCleanConfig()

    def test_unknown_newer_fields_survive(self):
        """A payload written by a *newer* build keeps its extra keys —
        downgrade reads stay lossless on the fields both sides know."""
        config = UniCleanConfig.__new__(UniCleanConfig)
        config.__setstate__({"eta": 0.9, "future_flag": 42})
        assert config.eta == 0.9
        assert config.__dict__["future_flag"] == 42
        assert config.use_violation_index is True
