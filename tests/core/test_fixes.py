"""Tests for fix bookkeeping."""

import pytest

from repro.constraints.rules import RuleApplication
from repro.core import Fix, FixKind, FixLog


def make_fix(kind=FixKind.DETERMINISTIC, tid=0, attr="A", new="v"):
    return Fix(
        kind=kind,
        rule_name="r",
        tid=tid,
        attr=attr,
        old_value="old",
        new_value=new,
        old_conf=0.1,
        new_conf=0.8,
        source="pattern",
    )


class TestFix:
    def test_cell(self):
        assert make_fix(tid=3, attr="B").cell == (3, "B")

    def test_from_application(self):
        app = RuleApplication("r", 1, "A", "o", "n", 0.1, 0.9, "master")
        fix = Fix.from_application(FixKind.RELIABLE, app)
        assert fix.kind is FixKind.RELIABLE
        assert fix.new_value == "n" and fix.source == "master"

    def test_kind_str(self):
        assert str(FixKind.POSSIBLE) == "possible"


class TestFixLog:
    def test_record_and_len(self):
        log = FixLog()
        log.record(make_fix())
        assert len(log) == 1

    def test_iteration_in_order(self):
        log = FixLog()
        log.record(make_fix(tid=0))
        log.record(make_fix(tid=1))
        assert [f.tid for f in log] == [0, 1]

    def test_latest_mark_wins(self):
        log = FixLog()
        log.record(make_fix(kind=FixKind.RELIABLE))
        log.record(make_fix(kind=FixKind.POSSIBLE))
        assert log.mark_of(0, "A") is FixKind.POSSIBLE
        assert log.marked_cells(FixKind.RELIABLE) == set()

    def test_mark_of_unknown_cell(self):
        assert FixLog().mark_of(9, "Z") is None

    def test_fixes_filtered_by_kind(self):
        log = FixLog()
        log.record(make_fix(kind=FixKind.DETERMINISTIC))
        log.record(make_fix(kind=FixKind.POSSIBLE, tid=1))
        assert len(log.fixes(FixKind.DETERMINISTIC)) == 1
        assert len(log.fixes()) == 2

    def test_deterministic_cells(self):
        log = FixLog()
        log.record(make_fix(kind=FixKind.DETERMINISTIC, tid=1, attr="B"))
        log.record(make_fix(kind=FixKind.RELIABLE, tid=2, attr="C"))
        assert log.deterministic_cells() == {(1, "B")}

    def test_counts_by_event_vs_cell(self):
        log = FixLog()
        log.record(make_fix(kind=FixKind.RELIABLE))
        log.record(make_fix(kind=FixKind.RELIABLE))  # same cell twice
        assert log.counts()[FixKind.RELIABLE] == 2
        assert log.cell_counts()[FixKind.RELIABLE] == 1

    def test_record_applications(self):
        log = FixLog()
        apps = [RuleApplication("r", i, "A", "o", "n", None, None, "pattern") for i in range(3)]
        fixes = log.record_applications(FixKind.POSSIBLE, apps)
        assert len(fixes) == 3 and len(log) == 3

    def test_latest_fix(self):
        log = FixLog()
        first = log.record(make_fix(new="v1"))
        second = log.record(make_fix(new="v2"))
        assert log.latest_fix(0, "A") is second

    def test_summary_mentions_counts(self):
        log = FixLog()
        log.record(make_fix())
        assert "deterministic=1" in log.summary()
