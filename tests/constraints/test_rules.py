"""Tests for cleaning rules (Section 3.1) and confidence propagation."""

import pytest

from repro.constraints import (
    CFD,
    MD,
    ConstantCFDRule,
    MDRule,
    VariableCFDRule,
    derive_rules,
    fuzzy_min,
)
from repro.exceptions import ConstraintError
from repro.relational import CTuple, Relation, Schema
from repro.similarity import edit_within


@pytest.fixture()
def schema() -> Schema:
    return Schema("R", ["A", "B", "C"])


@pytest.fixture()
def master_schema() -> Schema:
    return Schema("M", ["X", "Y"])


class TestFuzzyMin:
    def test_minimum(self):
        assert fuzzy_min([0.9, 0.4, 0.7]) == 0.4

    def test_none_absorbs(self):
        assert fuzzy_min([0.9, None]) is None

    def test_empty_is_none(self):
        assert fuzzy_min([]) is None


class TestConstantCFDRule:
    @pytest.fixture()
    def rule(self, schema):
        return ConstantCFDRule(
            CFD(schema, ["A"], ["B"], {"A": "a1", "B": "good"}, name="c")
        )

    def test_rejects_variable_cfd(self, schema):
        with pytest.raises(ConstraintError):
            ConstantCFDRule(CFD(schema, ["A"], ["B"]))

    def test_applies(self, schema, rule):
        t = CTuple(schema, {"A": "a1", "B": "bad"})
        assert rule.applies(t)

    def test_not_applies_when_correct(self, schema, rule):
        t = CTuple(schema, {"A": "a1", "B": "good"})
        assert not rule.applies(t)

    def test_not_applies_when_pattern_misses(self, schema, rule):
        t = CTuple(schema, {"A": "other", "B": "bad"})
        assert not rule.applies(t)

    def test_apply_updates_value_and_confidence(self, schema, rule):
        t = CTuple(schema, {"A": "a1", "B": "bad"}, {"A": 0.7, "B": 0.2}, tid=5)
        records = rule.apply(t)
        assert t["B"] == "good"
        assert t.conf("B") == 0.7  # fuzzy min over LHS
        assert len(records) == 1
        assert records[0].tid == 5 and records[0].source == "pattern"

    def test_apply_noop_when_not_applicable(self, schema, rule):
        t = CTuple(schema, {"A": "zz", "B": "bad"})
        assert rule.apply(t) == []

    def test_empty_lhs_confidence_is_one(self, schema):
        rule = ConstantCFDRule(CFD(schema, [], ["B"], rhs_pattern={"B": "k"}))
        t = CTuple(schema, {"B": "x"})
        assert rule.derived_confidence(t) == 1.0

    def test_metadata(self, rule):
        assert rule.kind == "constant_cfd"
        assert rule.lhs_attrs() == ("A",)
        assert rule.rhs_attr() == "B"


class TestVariableCFDRule:
    @pytest.fixture()
    def rule(self, schema):
        return VariableCFDRule(CFD(schema, ["A"], ["B"], name="v"))

    def test_rejects_constant_cfd(self, schema):
        with pytest.raises(ConstraintError):
            VariableCFDRule(CFD(schema, ["A"], ["B"], {"B": "const"}))

    def test_applies_pair(self, schema, rule):
        t1 = CTuple(schema, {"A": "k", "B": "x"})
        t2 = CTuple(schema, {"A": "k", "B": "y"})
        assert rule.applies(t1, t2)

    def test_not_applies_on_different_groups(self, schema, rule):
        t1 = CTuple(schema, {"A": "k1", "B": "x"})
        t2 = CTuple(schema, {"A": "k2", "B": "y"})
        assert not rule.applies(t1, t2)

    def test_not_applies_when_equal(self, schema, rule):
        t1 = CTuple(schema, {"A": "k", "B": "x"})
        t2 = CTuple(schema, {"A": "k", "B": "x"})
        assert not rule.applies(t1, t2)

    def test_apply_copies_donor_value(self, schema, rule):
        t1 = CTuple(schema, {"A": "k", "B": "x"}, {"A": 0.9, "B": 0.1}, tid=1)
        t2 = CTuple(schema, {"A": "k", "B": "y"}, {"A": 0.8, "B": 0.9}, tid=2)
        records = rule.apply(t1, t2)
        assert t1["B"] == "y"
        # min over t1[Y].cf and t2[Y].cf per Section 3.1.
        assert t1.conf("B") == 0.8
        assert records[0].source == 2

    def test_derived_confidence_none_when_unavailable(self, schema, rule):
        t1 = CTuple(schema, {"A": "k", "B": "x"})
        t2 = CTuple(schema, {"A": "k", "B": "y"}, {"A": 0.5})
        assert rule.derived_confidence(t1, t2) is None


class TestMDRule:
    @pytest.fixture()
    def rule(self, schema, master_schema):
        md = MD(
            schema,
            master_schema,
            [("A", "X"), ("B", "Y", edit_within(2))],
            [("C", "Y")],
            name="m",
        )
        return MDRule(md)

    def test_rejects_unnormalized(self, schema, master_schema):
        md = MD(schema, master_schema, [("A", "X")], [("B", "X"), ("C", "Y")])
        with pytest.raises(ConstraintError):
            MDRule(md)

    def test_applies(self, schema, master_schema, rule):
        t = CTuple(schema, {"A": "x", "B": "near", "C": "wrong"})
        s = CTuple(master_schema, {"X": "x", "Y": "neat"})
        assert rule.applies(t, s)

    def test_not_applies_when_identified(self, schema, master_schema, rule):
        t = CTuple(schema, {"A": "x", "B": "near", "C": "neat"})
        s = CTuple(master_schema, {"X": "x", "Y": "neat"})
        assert not rule.applies(t, s)

    def test_apply_copies_master_value(self, schema, master_schema, rule):
        t = CTuple(schema, {"A": "x", "B": "near", "C": "wrong"},
                   {"A": 0.6, "B": 0.9, "C": 0.1}, tid=3)
        s = CTuple(master_schema, {"X": "x", "Y": "neat"})
        records = rule.apply(t, s)
        assert t["C"] == "neat"
        # Confidence = min over *equality* premise attrs only (A).
        assert t.conf("C") == 0.6
        assert records[0].source == "master"

    def test_apply_rechecks_premise(self, schema, master_schema, rule):
        t = CTuple(schema, {"A": "DIFFERENT", "B": "near", "C": "wrong"})
        s = CTuple(master_schema, {"X": "x", "Y": "neat"})
        assert rule.apply(t, s) == []

    def test_metadata(self, rule):
        assert rule.kind == "md"
        assert rule.lhs_attrs() == ("A", "B")
        assert rule.rhs_attr() == "C"


class TestDeriveRules:
    def test_normalizes_and_classifies(self, schema, master_schema):
        cfds = [
            CFD(schema, ["A"], ["B", "C"], {"A": "k"}),  # splits into 2 variable
            CFD(schema, ["A"], ["B"], {"A": "k", "B": "v"}),  # constant
        ]
        mds = [MD(schema, master_schema, [("A", "X")], [("B", "X"), ("C", "Y")])]
        rules = derive_rules(cfds, mds)
        kinds = [r.kind for r in rules]
        assert kinds == ["variable_cfd", "variable_cfd", "constant_cfd", "md", "md"]

    def test_empty_inputs(self):
        assert derive_rules([], []) == []
