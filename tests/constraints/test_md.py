"""Tests for MDs — Section 2.2, Examples 2.3–2.5 and Proposition 2.6."""

import pytest

from repro.constraints import MD, MDClause, NegativeMD, embed_negative, satisfies_all_mds
from repro.exceptions import ConstraintError
from repro.relational import NULL, Relation, Schema
from repro.similarity import EQ, edit_within


@pytest.fixture()
def tran() -> Schema:
    return Schema("tran", ["FN", "LN", "St", "city", "AC", "post", "phn", "gd"])


@pytest.fixture()
def card() -> Schema:
    return Schema("card", ["FN", "LN", "St", "city", "AC", "zip", "tel", "dob", "gd"])


@pytest.fixture()
def psi(tran, card) -> MD:
    """ψ of Example 1.1 (premise on LN/city/St/post and FN similarity)."""
    return MD(
        tran,
        card,
        [
            ("LN", "LN"),
            ("city", "city"),
            ("St", "St"),
            ("post", "zip"),
            ("FN", "FN", edit_within(3)),
        ],
        [("FN", "FN"), ("phn", "tel")],
        name="psi",
    )


@pytest.fixture()
def master(card) -> Relation:
    return Relation.from_dicts(
        card,
        [
            dict(FN="Mark", LN="Smith", St="10 Oak St", city="Edi", AC="131",
                 zip="EH8 9LE", tel="3256778", dob="d", gd="Male"),
        ],
    )


class TestConstruction:
    def test_premise_tuple_promotion(self, tran, card):
        md = MD(tran, card, [("LN", "LN")], [("FN", "FN")])
        assert md.premise[0].is_equality

    def test_three_tuple_clause(self, tran, card):
        md = MD(tran, card, [("FN", "FN", edit_within(2))], [("phn", "tel")])
        assert not md.premise[0].is_equality

    def test_empty_premise_rejected(self, tran, card):
        with pytest.raises(ConstraintError):
            MD(tran, card, [], [("FN", "FN")])

    def test_empty_rhs_rejected(self, tran, card):
        with pytest.raises(ConstraintError):
            MD(tran, card, [("LN", "LN")], [])

    def test_unknown_attrs_rejected(self, tran, card):
        with pytest.raises(Exception):
            MD(tran, card, [("nope", "LN")], [("FN", "FN")])

    def test_bad_clause_shape(self, tran, card):
        with pytest.raises(ConstraintError):
            MD(tran, card, [("a",)], [("FN", "FN")])


class TestNormalization:
    def test_splits_rhs_pairs(self, psi):
        parts = psi.normalize()
        assert [p.rhs_pair for p in parts] == [("FN", "FN"), ("phn", "tel")]
        assert all(p.premise == psi.premise for p in parts)

    def test_normalized_is_self(self, tran, card):
        md = MD(tran, card, [("LN", "LN")], [("FN", "FN")])
        assert md.normalize() == [md]

    def test_rhs_pair_requires_normalized(self, psi):
        with pytest.raises(ConstraintError):
            psi.rhs_pair


class TestSemantics:
    def test_example_2_3_violation(self, tran, psi, master):
        """t'1 (t1 with city=Ldn→Edi... actually city:=Ldn in the paper's
        D1) matches s1's premise but differs on FN/phn → not satisfied."""
        t1_prime = dict(FN="M.", LN="Smith", St="10 Oak St", city="Edi", AC="131",
                        post="EH8 9LE", phn="9999999", gd="Male")
        d1 = Relation.from_dicts(tran, [t1_prime])
        assert not psi.satisfied_by(d1, master)
        violations = psi.violations(d1, master)
        assert len(violations) == 1
        assert set(violations[0].attrs) == {"FN", "phn"}

    def test_satisfied_after_identification(self, tran, psi, master):
        fixed = dict(FN="Mark", LN="Smith", St="10 Oak St", city="Edi", AC="131",
                     post="EH8 9LE", phn="3256778", gd="Male")
        d = Relation.from_dicts(tran, [fixed])
        assert psi.satisfied_by(d, master)

    def test_premise_fails_on_null(self, tran, psi, master):
        t = dict(FN="Mark", LN="Smith", St=NULL, city="Edi", AC="131",
                 post="EH8 9LE", phn="999", gd="Male")
        d = Relation.from_dicts(tran, [t])
        assert psi.satisfied_by(d, master)  # null premise never matches

    def test_satisfies_all_mds(self, tran, psi, master):
        d = Relation.from_dicts(
            tran,
            [dict(FN="x", LN="y", St="z", city="c", AC="1", post="p", phn="9", gd="M")],
        )
        assert satisfies_all_mds(d, master, [psi])

    def test_equality_premise_attrs(self, psi):
        assert psi.equality_premise_attrs() == ("LN", "city", "St", "post")

    def test_lhs_rhs_attrs(self, psi):
        assert psi.lhs_attrs() == ("LN", "city", "St", "post", "FN")
        assert psi.rhs_attrs() == ("FN", "phn")

    def test_size(self, psi):
        assert psi.size() == 7


class TestNegativeMDs:
    def test_example_2_4_semantics(self, tran, card):
        """A male and a female may not refer to the same person."""
        neg = NegativeMD(tran, card, [("gd", "gd")], [("FN", "FN"), ("phn", "tel")])
        master = Relation.from_dicts(
            card,
            [dict(FN="Mark", LN="S", St="s", city="c", AC="1", zip="z",
                  tel="123", dob="d", gd="Female")],
        )
        # Same FN and phn as the master tuple but different gender →
        # identified despite the premise → ψ⁻ violated.
        bad = Relation.from_dicts(
            tran,
            [dict(FN="Mark", LN="S", St="s", city="c", AC="1", post="z",
                  phn="123", gd="Male")],
        )
        assert not neg.satisfied_by(bad, master)
        ok = Relation.from_dicts(
            tran,
            [dict(FN="Mark", LN="S", St="s", city="c", AC="1", post="z",
                  phn="999", gd="Male")],
        )
        assert neg.satisfied_by(ok, master)

    def test_null_premise_does_not_constrain(self, tran, card):
        neg = NegativeMD(tran, card, [("gd", "gd")], [("FN", "FN")])
        master = Relation.from_dicts(
            card, [dict(FN="Mark", LN="S", St="s", city="c", AC="1", zip="z",
                        tel="1", dob="d", gd="Female")]
        )
        d = Relation.from_dicts(
            tran, [dict(FN="Mark", LN="S", St="s", city="c", AC="1", post="z",
                        phn="9", gd=NULL)]
        )
        assert neg.satisfied_by(d, master)

    def test_validation(self, tran, card):
        with pytest.raises(ConstraintError):
            NegativeMD(tran, card, [], [("FN", "FN")])
        with pytest.raises(ConstraintError):
            NegativeMD(tran, card, [("gd", "gd")], [])


class TestEmbedding:
    def test_example_2_5(self, tran, card, psi):
        """Embedding the gender negative MD adds gd = gd to ψ's premise."""
        neg = NegativeMD(tran, card, [("gd", "gd")], [("FN", "FN"), ("phn", "tel")])
        embedded = embed_negative([psi], [neg])
        assert len(embedded) == 2  # psi normalized into two single-RHS MDs
        for md in embedded:
            clauses = {(c.attr, c.master_attr) for c in md.premise if c.is_equality}
            assert ("gd", "gd") in clauses

    def test_embedding_no_negatives_normalizes(self, psi):
        out = embed_negative([psi], [])
        assert len(out) == 2
        assert all(md.is_normalized for md in out)

    def test_embedded_set_blocks_cross_gender_updates(self, tran, card, psi):
        neg = NegativeMD(tran, card, [("gd", "gd")], [("FN", "FN"), ("phn", "tel")])
        embedded = embed_negative([psi], [neg])
        master = Relation.from_dicts(
            card,
            [dict(FN="Mark", LN="Smith", St="10 Oak St", city="Edi", AC="131",
                  zip="EH8 9LE", tel="3256778", dob="d", gd="Female")],
        )
        # Premise of ψ holds except gender: the embedded MD must not fire.
        d = Relation.from_dicts(
            tran,
            [dict(FN="M.", LN="Smith", St="10 Oak St", city="Edi", AC="131",
                  post="EH8 9LE", phn="999", gd="Male")],
        )
        assert satisfies_all_mds(d, master, embedded)

    def test_no_duplicate_clauses(self, tran, card):
        md = MD(tran, card, [("gd", "gd")], [("FN", "FN")])
        neg = NegativeMD(tran, card, [("gd", "gd")], [("FN", "FN")])
        out = embed_negative([md], [neg])
        assert len(out[0].premise) == 1  # gd = gd not duplicated

    def test_complexity_linear_in_product(self, tran, card, psi):
        negs = [
            NegativeMD(tran, card, [("gd", "gd")], [("FN", "FN")]),
            NegativeMD(tran, card, [("AC", "AC")], [("FN", "FN")]),
        ]
        out = embed_negative([psi], negs)
        for md in out:
            eq_attrs = {c.attr for c in md.premise if c.is_equality}
            assert {"gd", "AC"} <= eq_attrs


class TestMDClause:
    def test_repr_and_equality(self):
        a = MDClause("FN", "FN", EQ)
        b = MDClause("FN", "FN", EQ)
        assert a == b and hash(a) == hash(b)
        assert "FN" in repr(a)

    def test_inequality_on_predicate(self):
        assert MDClause("FN", "FN", EQ) != MDClause("FN", "FN", edit_within(1))
