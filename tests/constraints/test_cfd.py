"""Tests for CFDs — semantics of Section 2.1 and Example 2.2."""

import pytest

from repro.constraints import CFD, WILDCARD, all_violations, is_wildcard, pattern_match, satisfies_all
from repro.exceptions import ConstraintError
from repro.relational import NULL, Relation, Schema


@pytest.fixture()
def schema() -> Schema:
    return Schema("tran", ["FN", "city", "AC", "phn", "St", "post"])


@pytest.fixture()
def phi1(schema) -> CFD:
    """φ1: tran([AC] → [city], (131 ‖ Edi))."""
    return CFD(schema, ["AC"], ["city"], {"AC": "131", "city": "Edi"}, name="phi1")


@pytest.fixture()
def phi3(schema) -> CFD:
    """φ3: tran([city, phn] → [St, AC, post]) — a traditional FD."""
    return CFD(schema, ["city", "phn"], ["St", "AC", "post"], name="phi3")


@pytest.fixture()
def phi4(schema) -> CFD:
    """φ4: tran([FN] → [FN], (Bob ‖ Robert)) — the normalization rule."""
    return CFD(
        schema,
        ["FN"],
        ["FN"],
        lhs_pattern={"FN": "Bob"},
        rhs_pattern={"FN": "Robert"},
        name="phi4",
    )


class TestPatternMatch:
    def test_constant_match(self):
        assert pattern_match("131", "131")
        assert not pattern_match("020", "131")

    def test_wildcard_matches_everything_but_null(self):
        assert pattern_match("x", WILDCARD)
        assert not pattern_match(NULL, WILDCARD)

    def test_null_never_matches_constant(self):
        assert not pattern_match(NULL, "131")

    def test_is_wildcard(self):
        assert is_wildcard(WILDCARD)
        assert not is_wildcard("_")


class TestClassification:
    def test_constant_cfd(self, phi1):
        assert phi1.is_constant and not phi1.is_variable
        assert phi1.rhs_constant == "Edi"

    def test_variable_cfd(self, schema):
        phi = CFD(schema, ["city", "phn"], ["St"])
        assert phi.is_variable and not phi.is_constant

    def test_fd_detection(self, phi3, phi1):
        assert phi3.is_fd
        assert not phi1.is_fd

    def test_two_sided_pattern(self, phi4):
        assert phi4.is_constant
        assert phi4.rhs_constant == "Robert"
        assert phi4.lhs_pattern["FN"] == "Bob"

    def test_rhs_attr_requires_normalized(self, phi3):
        with pytest.raises(ConstraintError):
            phi3.rhs_attr

    def test_rhs_constant_requires_constant(self, phi3):
        norm = phi3.normalize()[0]
        with pytest.raises(ConstraintError):
            norm.rhs_constant


class TestValidation:
    def test_empty_rhs_rejected(self, schema):
        with pytest.raises(ConstraintError):
            CFD(schema, ["AC"], [])

    def test_duplicate_lhs_rejected(self, schema):
        with pytest.raises(ConstraintError):
            CFD(schema, ["AC", "AC"], ["city"])

    def test_pattern_attr_outside_scope_rejected(self, schema):
        with pytest.raises(ConstraintError):
            CFD(schema, ["AC"], ["city"], {"phn": "x"})

    def test_side_pattern_attr_validation(self, schema):
        with pytest.raises(ConstraintError):
            CFD(schema, ["AC"], ["city"], lhs_pattern={"city": "x"})

    def test_empty_lhs_allowed(self, schema):
        cfd = CFD(schema, [], ["city"], rhs_pattern={"city": "Edi"})
        assert cfd.is_constant


class TestNormalization:
    def test_normalized_is_self(self, phi1):
        assert phi1.normalize() == [phi1]

    def test_splits_rhs(self, phi3):
        parts = phi3.normalize()
        assert [p.rhs for p in parts] == [("St",), ("AC",), ("post",)]
        assert all(p.lhs == ("city", "phn") for p in parts)

    def test_normalization_preserves_semantics(self, schema, phi3):
        relation = Relation.from_dicts(
            schema,
            [
                {"FN": "a", "city": "Edi", "phn": "1", "St": "s1", "AC": "131", "post": "p1"},
                {"FN": "b", "city": "Edi", "phn": "1", "St": "s2", "AC": "131", "post": "p1"},
            ],
        )
        assert not phi3.satisfied_by(relation)
        assert not all(p.satisfied_by(relation) for p in phi3.normalize())


class TestSemantics:
    def test_example_2_2_single_tuple_violation(self, schema, phi1):
        # t1 has AC = 131 but city = Ldn: the single tuple violates φ1.
        relation = Relation.from_dicts(
            schema, [{"AC": "131", "city": "Ldn", "FN": "M.", "phn": "9", "St": "s", "post": "p"}]
        )
        assert not phi1.satisfied_by(relation)
        violations = phi1.violations(relation)
        assert len(violations) == 1
        assert violations[0].tids == (0,)
        assert violations[0].attr == "city"

    def test_example_2_2_phi3_satisfied(self, schema, phi3):
        # No two tuples agree on (city, phn) → φ3 holds.
        relation = Relation.from_dicts(
            schema,
            [
                {"city": "Edi", "phn": "1", "St": "a", "AC": "x", "post": "p", "FN": "f"},
                {"city": "Ldn", "phn": "1", "St": "b", "AC": "y", "post": "q", "FN": "g"},
            ],
        )
        assert phi3.satisfied_by(relation)

    def test_pair_violation(self, schema, phi3):
        relation = Relation.from_dicts(
            schema,
            [
                {"city": "Edi", "phn": "1", "St": "a", "AC": "x", "post": "p", "FN": "f"},
                {"city": "Edi", "phn": "1", "St": "b", "AC": "x", "post": "p", "FN": "g"},
            ],
        )
        violations = phi3.violations(relation)
        assert len(violations) == 1
        assert set(violations[0].tids) == {0, 1}
        assert violations[0].attr == "St"

    def test_phi4_fires_on_bob(self, schema, phi4):
        relation = Relation.from_dicts(
            schema, [{"FN": "Bob", "city": "c", "AC": "a", "phn": "p", "St": "s", "post": "z"}]
        )
        assert not phi4.satisfied_by(relation)

    def test_phi4_holds_on_robert(self, schema, phi4):
        relation = Relation.from_dicts(
            schema, [{"FN": "Robert", "city": "c", "AC": "a", "phn": "p", "St": "s", "post": "z"}]
        )
        assert phi4.satisfied_by(relation)

    def test_null_lhs_never_matches(self, schema, phi1):
        relation = Relation.from_dicts(
            schema, [{"AC": NULL, "city": "Ldn", "FN": "f", "phn": "p", "St": "s", "post": "z"}]
        )
        assert phi1.satisfied_by(relation)

    def test_satisfies_all_and_collect(self, schema, phi1, phi3):
        relation = Relation.from_dicts(
            schema,
            [{"AC": "131", "city": "Ldn", "FN": "f", "phn": "p", "St": "s", "post": "z"}],
        )
        assert not satisfies_all(relation, [phi1, phi3])
        assert len(all_violations(relation, [phi1, phi3])) == 1


class TestMetadata:
    def test_attributes_deduplicated(self, phi4):
        assert phi4.attributes() == ("FN",)

    def test_constants_merges_sides(self, phi4):
        assert phi4.constants() == {"FN": ["Bob", "Robert"]}

    def test_size(self, phi3):
        assert phi3.size() == 5

    def test_equality_and_hash(self, schema):
        a = CFD(schema, ["AC"], ["city"], {"AC": "131", "city": "Edi"})
        b = CFD(schema, ["AC"], ["city"], {"AC": "131", "city": "Edi"}, name="other")
        assert a == b  # names are metadata
        assert hash(a) == hash(b)

    def test_inequality_on_pattern(self, schema):
        a = CFD(schema, ["AC"], ["city"], {"AC": "131"})
        b = CFD(schema, ["AC"], ["city"], {"AC": "020"})
        assert a != b
