"""Tests for the textual rule syntax."""

import pytest

from repro import Schema, parse_rules
from repro.constraints import parse_cfd, parse_md, parse_negative_md
from repro.constraints.cfd import is_wildcard
from repro.exceptions import ParseError


@pytest.fixture()
def schemas(tran_schema, card_schema):
    return {"tran": tran_schema, "card": card_schema}


class TestParseCFD:
    def test_constant(self, schemas):
        cfd = parse_cfd("tran: AC='131' -> city='Edi'", schemas)
        assert cfd.is_constant and cfd.rhs_constant == "Edi"
        assert cfd.lhs_pattern["AC"] == "131"

    def test_fd_wildcards(self, schemas):
        cfd = parse_cfd("tran: city, phn -> St, AC, post", schemas)
        assert cfd.is_fd
        assert cfd.lhs == ("city", "phn") and cfd.rhs == ("St", "AC", "post")

    def test_two_sided_pattern(self, schemas):
        cfd = parse_cfd("tran: FN='Bob' -> FN='Robert'", schemas)
        assert cfd.lhs_pattern["FN"] == "Bob"
        assert cfd.rhs_pattern["FN"] == "Robert"

    def test_quoted_constant_with_comma(self, schemas):
        cfd = parse_cfd("tran: St='10, Oak St' -> city='Edi'", schemas)
        assert cfd.lhs_pattern["St"] == "10, Oak St"

    def test_double_quotes(self, schemas):
        cfd = parse_cfd('tran: AC="020" -> city="Ldn"', schemas)
        assert cfd.rhs_constant == "Ldn"

    def test_mixed_constant_and_wildcard(self, schemas):
        cfd = parse_cfd("tran: AC='131', city -> post", schemas)
        assert cfd.lhs_pattern["AC"] == "131"
        assert is_wildcard(cfd.lhs_pattern["city"])

    @pytest.mark.parametrize(
        "bad",
        [
            "tran AC='131' -> city='Edi'",        # missing colon
            "tran: AC='131' city='Edi'",           # missing arrow
            "tran: AC -> city -> post",            # two arrows
            "nosuch: AC -> city",                  # unknown schema
            "tran: nope -> city",                  # unknown attribute
            "tran: , -> city",                     # empty term
        ],
    )
    def test_errors(self, schemas, bad):
        with pytest.raises(Exception):
            parse_cfd(bad, schemas)


class TestParseMD:
    def test_full_md(self, schemas):
        md = parse_md(
            "tran~card: LN=LN, city=city, FN ~edit<=3 FN -> FN=FN, phn=tel",
            schemas,
        )
        assert len(md.premise) == 3
        assert md.rhs == (("FN", "FN"), ("phn", "tel"))
        assert md.premise[2].predicate.edit_budget == 3

    def test_equality_clause(self, schemas):
        md = parse_md("tran~card: LN=LN -> phn=tel", schemas)
        assert md.premise[0].is_equality

    def test_missing_tilde(self, schemas):
        with pytest.raises(ParseError):
            parse_md("tran: LN=LN -> phn=tel", schemas)

    def test_bad_clause(self, schemas):
        with pytest.raises(ParseError):
            parse_md("tran~card: LN~~LN -> phn=tel", schemas)

    def test_bad_rhs(self, schemas):
        with pytest.raises(ParseError):
            parse_md("tran~card: LN=LN -> phn~edit<=1 tel", schemas)


class TestParseNegativeMD:
    def test_basic(self, schemas):
        neg = parse_negative_md("tran~card: gd!=gd -> FN=FN, phn=tel", schemas)
        assert neg.premise == (("gd", "gd"),)
        assert neg.rhs == (("FN", "FN"), ("phn", "tel"))

    def test_requires_neq(self, schemas):
        with pytest.raises(ParseError):
            parse_negative_md("tran~card: gd=gd -> FN=FN", schemas)


class TestParseRules:
    def test_paper_rule_file(self, paper_rules):
        assert len(paper_rules.cfds) == 4
        assert len(paper_rules.mds) == 1
        assert len(paper_rules.negative_mds) == 1
        assert len(paper_rules) == 6

    def test_names_assigned(self, paper_rules):
        assert paper_rules.cfds[0].name == "phi1"
        assert paper_rules.mds[0].name == "psi"
        assert paper_rules.negative_mds[0].name == "psi_neg"

    def test_comments_and_blank_lines_skipped(self, schemas):
        out = parse_rules("# comment\n\ncfd tran: AC='1' -> city='E'\n", schemas)
        assert len(out.cfds) == 1

    def test_unknown_keyword(self, schemas):
        with pytest.raises(ParseError, match="line 1"):
            parse_rules("fd tran: AC -> city", schemas)

    def test_error_reports_line_number(self, schemas):
        text = "cfd tran: AC='1' -> city='E'\ncfd broken"
        with pytest.raises(ParseError, match="line 2"):
            parse_rules(text, schemas)
