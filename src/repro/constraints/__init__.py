"""Data quality rules: CFDs, MDs and the cleaning rules derived from them.

Implements Section 2 (constraint formalisms, normalization, negative-MD
embedding per Proposition 2.6) and Section 3.1 (cleaning rules with
fuzzy-logic confidence propagation) of the paper, plus a concrete textual
syntax for rule files.
"""

from repro.constraints.cfd import (
    CFD,
    Violation,
    WILDCARD,
    Wildcard,
    all_violations,
    is_wildcard,
    pattern_match,
    satisfies_all,
)
from repro.constraints.md import (
    MD,
    MDClause,
    MDViolation,
    NegativeMD,
    embed_negative,
    satisfies_all_mds,
)
from repro.constraints.parser import (
    ParsedRules,
    parse_cfd,
    parse_md,
    parse_negative_md,
    parse_rules,
)
from repro.constraints.rules import (
    AnyRule,
    CleaningRule,
    ConstantCFDRule,
    MDRule,
    RuleApplication,
    VariableCFDRule,
    derive_rules,
    fuzzy_min,
)

__all__ = [
    "AnyRule",
    "CFD",
    "CleaningRule",
    "ConstantCFDRule",
    "MD",
    "MDClause",
    "MDRule",
    "MDViolation",
    "NegativeMD",
    "ParsedRules",
    "RuleApplication",
    "VariableCFDRule",
    "Violation",
    "WILDCARD",
    "Wildcard",
    "all_violations",
    "derive_rules",
    "embed_negative",
    "fuzzy_min",
    "is_wildcard",
    "parse_cfd",
    "parse_md",
    "parse_negative_md",
    "parse_rules",
    "pattern_match",
    "satisfies_all",
    "satisfies_all_mds",
]
