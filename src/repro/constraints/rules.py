"""Cleaning rules derived from CFDs and MDs (Section 3.1).

Constraints detect that data is dirty; *cleaning rules* additionally say
which attribute to update and what value to write.  Three derivations:

1. **From an MD** ``⋀ (R[Aj] ≈j Rm[Bj]) → (R[E] ⇌ Rm[F])``: apply master
   tuple ``s`` to ``t`` when the premise holds; set ``t[E] := s[F]`` and
   ``t[E].cf := min { t[Aj].cf : ≈j is '=' }`` (fuzzy-logic minimum).
2. **From a constant CFD** ``R(X → A, tp)`` with constant ``tp[A]``: when
   ``t[X] ≍ tp[X]`` but ``t[A] ≠ tp[A]``, set ``t[A] := tp[A]`` with the
   minimum confidence over ``X``.
3. **From a variable CFD** ``R(Y → B, tp)``: apply tuple ``t2`` to ``t1``
   when ``t1[Y] = t2[Y] ≍ tp[Y]`` but ``t1[B] ≠ t2[B]``; set
   ``t1[B] := t2[B]`` with confidence ``min over B′∈Y of t1[B′].cf and
   t2[B′].cf``.

Rules expose a uniform interface so UniClean can interleave matching and
repairing without distinguishing the two (Example 3.1).  Applying a rule
mutates the target tuple and returns a :class:`RuleApplication` record; the
cleaning algorithms attribute fix classes (deterministic / reliable /
possible) on top.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, List, Optional, Sequence, Tuple, Union

from repro.exceptions import ConstraintError
from repro.constraints.cfd import CFD
from repro.constraints.md import MD
from repro.relational.tuples import CTuple


@dataclass(frozen=True)
class RuleApplication:
    """Record of one rule application (one cell update).

    Attributes
    ----------
    rule_name:
        Name of the cleaning rule that fired.
    tid:
        Identifier of the updated tuple.
    attr:
        Updated attribute.
    old_value, new_value:
        Cell value before/after.
    old_conf, new_conf:
        Confidence before/after.
    source:
        Where the new value came from: ``"master"`` (MD), ``"pattern"``
        (constant CFD) or a tid (variable CFD donor tuple).
    """

    rule_name: str
    tid: int
    attr: str
    old_value: Any
    new_value: Any
    old_conf: Optional[float]
    new_conf: Optional[float]
    source: Union[str, int]


def fuzzy_min(confidences: Iterable[Optional[float]]) -> Optional[float]:
    """Fuzzy-logic conjunction of confidences: the minimum.

    Section 3.1 argues for min over product because confidence models fuzzy
    set membership, not subjective probability.  ``None`` (unavailable)
    absorbs: if any input is unavailable the result is unavailable.  An
    empty input also yields ``None``.
    """
    values: List[float] = []
    for conf in confidences:
        if conf is None:
            return None
        values.append(conf)
    if not values:
        return None
    return min(values)


class CleaningRule:
    """Common interface of the three rule kinds.

    Subclasses define :attr:`kind`, data-side premise attributes
    (:meth:`lhs_attrs`) and the single updated attribute (:meth:`rhs_attr`)
    — rules are always derived from *normalized* constraints.
    """

    kind: str = "abstract"

    @property
    def name(self) -> str:
        raise NotImplementedError

    def lhs_attrs(self) -> Tuple[str, ...]:
        """Data-side premise attributes (drive the dependency graph)."""
        raise NotImplementedError

    def rhs_attr(self) -> str:
        """The single data-side attribute this rule updates."""
        raise NotImplementedError

    def key_attrs(self) -> Tuple[str, ...]:
        """Partition-key attributes for the violation index.

        CFD rules partition by the LHS pattern key; MD rules by the
        equality blocking key (see the constraint-level ``key_attrs`` /
        ``blocking_key_attrs``).  Defaults to the premise attributes.
        """
        return self.lhs_attrs()

    def scope_attrs(self) -> Tuple[str, ...]:
        """All data attributes whose change can affect this rule.

        Cached per instance — the hot paths of the indexed engine call
        this once per cell event."""
        cached = getattr(self, "_scope_cache", None)
        if cached is None:
            out = dict.fromkeys(self.lhs_attrs())
            out[self.rhs_attr()] = None
            cached = self._scope_cache = tuple(out)
        return cached

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}({self.name})"


class MDRule(CleaningRule):
    """Cleaning rule derived from a normalized positive MD."""

    kind = "md"

    def __init__(self, md: MD):
        normalized = md.normalize()
        if len(normalized) != 1:
            raise ConstraintError(
                f"MDRule requires a normalized MD; got {md.name} with |RHS|={len(md.rhs)}"
            )
        self.md = normalized[0]
        self._lhs = self.md.lhs_attrs()
        self._rhs = self.md.rhs_pair[0]
        self._keys = self.md.blocking_key_attrs()

    @property
    def name(self) -> str:
        return self.md.name

    def lhs_attrs(self) -> Tuple[str, ...]:
        return self._lhs

    def rhs_attr(self) -> str:
        return self._rhs

    def key_attrs(self) -> Tuple[str, ...]:
        return self._keys

    def applies(self, t: CTuple, s: CTuple) -> bool:
        """Whether master tuple *s* can be applied to *t*: premise holds
        and the identification does not (so an update would change ``t``)."""
        return self.md.premise_holds(t, s) and not self.md.identified(t, s)

    def derived_confidence(self, t: CTuple) -> Optional[float]:
        """The fuzzy-min confidence over equality premise attributes.

        Section 3.1: "d is the minimum t[Aj].cf for all j ∈ [1,k] if ≈j is
        '='".  When the premise has no equality conjunct the minimum over
        *all* premise attributes is used as a conservative fallback.
        """
        eq_attrs = self.md.equality_premise_attrs()
        attrs = eq_attrs if eq_attrs else self.md.lhs_attrs()
        return fuzzy_min(t.conf(a) for a in attrs)

    def apply(
        self,
        t: CTuple,
        s: CTuple,
        new_conf: Optional[float] = None,
    ) -> List[RuleApplication]:
        """Apply master tuple *s* to *t*: ``t[E] := s[F]``.

        Parameters
        ----------
        t, s:
            Data tuple and master tuple; the caller must have verified
            :meth:`applies` (it is re-checked defensively).
        new_conf:
            Confidence to assign to the updated cell; defaults to
            :meth:`derived_confidence`.

        Returns the (possibly empty) list of cell updates made.
        """
        if not self.md.premise_holds(t, s):
            return []
        if new_conf is None:
            new_conf = self.derived_confidence(t)
        out: List[RuleApplication] = []
        attr, master_attr = self.md.rhs_pair
        if t[attr] != s[master_attr]:
            record = RuleApplication(
                rule_name=self.name,
                tid=t.tid if t.tid is not None else -1,
                attr=attr,
                old_value=t[attr],
                new_value=s[master_attr],
                old_conf=t.conf(attr),
                new_conf=new_conf,
                source="master",
            )
            t.set(attr, s[master_attr], new_conf)
            out.append(record)
        return out


class ConstantCFDRule(CleaningRule):
    """Cleaning rule derived from a normalized constant CFD."""

    kind = "constant_cfd"

    def __init__(self, cfd: CFD):
        if not cfd.is_constant:
            raise ConstraintError(f"{cfd.name} is not a normalized constant CFD")
        self.cfd = cfd
        self._rhs = cfd.rhs_attr

    @property
    def name(self) -> str:
        return self.cfd.name

    def lhs_attrs(self) -> Tuple[str, ...]:
        return self.cfd.lhs

    def rhs_attr(self) -> str:
        return self._rhs

    def applies(self, t: CTuple) -> bool:
        """Whether ``t[X] ≍ tp[X]`` and ``t[A] ≠ tp[A]``."""
        return self.cfd.lhs_matches(t) and t[self.cfd.rhs_attr] != self.cfd.rhs_constant

    def derived_confidence(self, t: CTuple) -> Optional[float]:
        """Fuzzy-min confidence over the LHS attributes.

        For an empty LHS (a constant CFD with no premise) the value is
        fully trusted — the pattern constant stands on its own — so 1.0.
        """
        if not self.cfd.lhs:
            return 1.0
        return fuzzy_min(t.conf(a) for a in self.cfd.lhs)

    def apply(self, t: CTuple, new_conf: Optional[float] = None) -> List[RuleApplication]:
        """Set ``t[A] := tp[A]`` when the rule applies."""
        if not self.applies(t):
            return []
        if new_conf is None:
            new_conf = self.derived_confidence(t)
        attr = self.cfd.rhs_attr
        record = RuleApplication(
            rule_name=self.name,
            tid=t.tid if t.tid is not None else -1,
            attr=attr,
            old_value=t[attr],
            new_value=self.cfd.rhs_constant,
            old_conf=t.conf(attr),
            new_conf=new_conf,
            source="pattern",
        )
        t.set(attr, self.cfd.rhs_constant, new_conf)
        return [record]


class VariableCFDRule(CleaningRule):
    """Cleaning rule derived from a normalized variable CFD."""

    kind = "variable_cfd"

    def __init__(self, cfd: CFD):
        if not cfd.is_variable:
            raise ConstraintError(f"{cfd.name} is not a normalized variable CFD")
        self.cfd = cfd
        self._rhs = cfd.rhs_attr

    @property
    def name(self) -> str:
        return self.cfd.name

    def lhs_attrs(self) -> Tuple[str, ...]:
        return self.cfd.lhs

    def rhs_attr(self) -> str:
        return self._rhs

    def applies(self, target: CTuple, donor: CTuple) -> bool:
        """Whether *donor* (t2) can be applied to *target* (t1).

        Requires ``t1[Y] = t2[Y] ≍ tp[Y]`` and ``t1[B] ≠ t2[B]``.
        """
        if not (self.cfd.lhs_matches(target) and self.cfd.lhs_matches(donor)):
            return False
        if target.project(self.cfd.lhs) != donor.project(self.cfd.lhs):
            return False
        attr = self.cfd.rhs_attr
        return target[attr] != donor[attr]

    def derived_confidence(self, target: CTuple, donor: CTuple) -> Optional[float]:
        """Min of ``t1[B′].cf`` and ``t2[B′].cf`` over ``B′ ∈ Y`` (§3.1)."""
        confs: List[Optional[float]] = []
        for attr in self.cfd.lhs:
            confs.append(target.conf(attr))
            confs.append(donor.conf(attr))
        return fuzzy_min(confs)

    def apply(
        self,
        target: CTuple,
        donor: CTuple,
        new_conf: Optional[float] = None,
    ) -> List[RuleApplication]:
        """Set ``t1[B] := t2[B]`` when the rule applies."""
        if not self.applies(target, donor):
            return []
        if new_conf is None:
            new_conf = self.derived_confidence(target, donor)
        attr = self.cfd.rhs_attr
        record = RuleApplication(
            rule_name=self.name,
            tid=target.tid if target.tid is not None else -1,
            attr=attr,
            old_value=target[attr],
            new_value=donor[attr],
            old_conf=target.conf(attr),
            new_conf=new_conf,
            source=donor.tid if donor.tid is not None else -1,
        )
        target.set(attr, donor[attr], new_conf)
        return [record]


AnyRule = Union[MDRule, ConstantCFDRule, VariableCFDRule]


def derive_rules(
    cfds: Sequence[CFD] = (),
    mds: Sequence[MD] = (),
) -> List[AnyRule]:
    """Derive cleaning rules from constraint sets ``Σ`` and ``Γ``.

    Constraints are normalized first; each normalized CFD yields a constant
    or variable rule, each normalized MD an :class:`MDRule`.  Order follows
    the input (CFD rules first), but algorithms re-order rules themselves
    (eRepair sorts by the dependency graph).
    """
    rules: List[AnyRule] = []
    for cfd in cfds:
        for normalized in cfd.normalize():
            if normalized.is_constant:
                rules.append(ConstantCFDRule(normalized))
            else:
                rules.append(VariableCFDRule(normalized))
    for md in mds:
        for normalized in md.normalize():
            rules.append(MDRule(normalized))
    return rules
