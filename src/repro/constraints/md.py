"""Matching dependencies (MDs), positive and negative — Section 2.2.

A positive MD across a data schema ``R`` and a master schema ``Rm``::

    ⋀_{j∈[1,k]} (R[Aj] ≈j Rm[Bj])  →  ⋀_{i∈[1,h]} (R[Ei] ⇌ Rm[Fi])

With the refined semantics of the paper (matching a dirty relation against
*clean master data*): ``(D, Dm) ⊨ ψ`` iff for all ``t ∈ D`` and ``s ∈ Dm``,
if ``t[Aj] ≈j s[Bj]`` for every ``j`` then ``t[Ei] = s[Fi]`` for every
``i`` — i.e. no more tuples of ``D`` can be updated with master values.

A negative MD (after Arasu et al. 2009 / Whang et al. 2009)::

    ⋀_j (R[Aj] ≠ Rm[Bj])  →  ⋁_i (R[Ei] ⇎ Rm[Fi])

says tuples disagreeing on all premise attributes may not be identified.
Proposition 2.6 shows negative MDs can be compiled away into the positive
set in ``O(|Γ+||Γ−|)`` time; :func:`embed_negative` implements that
construction.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.exceptions import ConstraintError
from repro.relational.attribute import is_null
from repro.relational.relation import Relation
from repro.relational.schema import Schema
from repro.relational.tuples import CTuple
from repro.similarity.predicates import EQ, JoinFilterSpec, SimilarityPredicate, join_filter_for


class MDClause:
    """One premise conjunct ``R[A] ≈ Rm[B]`` of a positive MD."""

    __slots__ = ("attr", "master_attr", "predicate")

    def __init__(self, attr: str, master_attr: str, predicate: SimilarityPredicate = EQ):
        self.attr = attr
        self.master_attr = master_attr
        self.predicate = predicate

    def holds(self, t: CTuple, s: CTuple) -> bool:
        """Whether ``t[A] ≈ s[B]`` (nulls never match, Section 7)."""
        return self.predicate(t[self.attr], s[self.master_attr])

    @property
    def is_equality(self) -> bool:
        """Whether the predicate is exact equality (drives confidence, §3.1)."""
        return self.predicate.is_equality

    def join_filter(self) -> Optional[JoinFilterSpec]:
        """Filter parameters for the similarity-join engine, or ``None``.

        Maps the clause predicate to a lossless filter family (edit-k ⇒
        q-gram count bound, Jaccard-t ⇒ prefix length); ``None`` when no
        bound family applies and matching must scan.
        """
        return join_filter_for(self.predicate)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, MDClause):
            return NotImplemented
        return (
            self.attr == other.attr
            and self.master_attr == other.master_attr
            and self.predicate.name == other.predicate.name
        )

    def __hash__(self) -> int:
        return hash((self.attr, self.master_attr, self.predicate.name))

    def __repr__(self) -> str:  # pragma: no cover - trivial
        op = "=" if self.is_equality else f"~{self.predicate.name}"
        return f"{self.attr} {op} {self.master_attr}"


class MDViolation:
    """A pair ``(t, s)`` whose premise holds but identification fails."""

    __slots__ = ("md", "tid", "master_tid", "attrs")

    def __init__(self, md: "MD", tid: int, master_tid: int, attrs: Tuple[str, ...]):
        self.md = md
        self.tid = tid
        self.master_tid = master_tid
        self.attrs = attrs

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"MDViolation({self.md.name}, t#{self.tid} vs s#{self.master_tid}, "
            f"attrs={self.attrs})"
        )


class MD:
    """A positive matching dependency on ``(R, Rm)``.

    Parameters
    ----------
    schema, master_schema:
        The data schema ``R`` and master schema ``Rm``.
    premise:
        Iterable of :class:`MDClause` (or ``(attr, master_attr)`` /
        ``(attr, master_attr, predicate)`` tuples, which are promoted).
    rhs:
        Iterable of identification pairs ``(Ei, Fi)``.
    name:
        Optional identifier for reports.
    """

    __slots__ = ("schema", "master_schema", "premise", "rhs", "name", "_eval_order")

    def __init__(
        self,
        schema: Schema,
        master_schema: Schema,
        premise: Iterable,
        rhs: Iterable[Tuple[str, str]],
        name: Optional[str] = None,
    ):
        self.schema = schema
        self.master_schema = master_schema
        clauses: List[MDClause] = []
        for item in premise:
            if isinstance(item, MDClause):
                clause = item
            elif len(item) == 2:
                clause = MDClause(item[0], item[1])
            elif len(item) == 3:
                clause = MDClause(item[0], item[1], item[2])
            else:
                raise ConstraintError(f"bad MD premise clause {item!r}")
            schema.check_attrs([clause.attr])
            master_schema.check_attrs([clause.master_attr])
            clauses.append(clause)
        if not clauses:
            raise ConstraintError("an MD must have a non-empty premise")
        self.premise: Tuple[MDClause, ...] = tuple(clauses)
        pairs: List[Tuple[str, str]] = []
        for attr, master_attr in rhs:
            schema.check_attrs([attr])
            master_schema.check_attrs([master_attr])
            pairs.append((attr, master_attr))
        if not pairs:
            raise ConstraintError("an MD must have at least one RHS pair")
        self.rhs: Tuple[Tuple[str, str], ...] = tuple(pairs)
        self.name = name or (
            f"md({schema.name}~{master_schema.name}:"
            f"{','.join(c.attr for c in self.premise)}->"
            f"{','.join(a for a, _ in self.rhs)})"
        )
        # Premise evaluation order: cheap equality clauses first so
        # expensive similarity predicates run only on surviving pairs.
        self._eval_order: Tuple[MDClause, ...] = tuple(
            sorted(self.premise, key=lambda c: (not c.is_equality,))
        )

    # ------------------------------------------------------------------
    # Classification / normalization
    # ------------------------------------------------------------------
    @property
    def is_normalized(self) -> bool:
        """Whether the RHS is a single attribute pair (Section 2.2)."""
        return len(self.rhs) == 1

    @property
    def rhs_pair(self) -> Tuple[str, str]:
        """The single ``(E, F)`` pair of a normalized MD."""
        if not self.is_normalized:
            raise ConstraintError(f"MD {self.name} is not normalized")
        return self.rhs[0]

    def normalize(self) -> List["MD"]:
        """Split into the equivalent set of single-RHS MDs."""
        if self.is_normalized:
            return [self]
        return [
            MD(
                self.schema,
                self.master_schema,
                self.premise,
                [pair],
                name=f"{self.name}#{i}",
            )
            for i, pair in enumerate(self.rhs)
        ]

    # ------------------------------------------------------------------
    # Semantics
    # ------------------------------------------------------------------
    def premise_holds(self, t: CTuple, s: CTuple) -> bool:
        """Whether every premise conjunct holds on the pair ``(t, s)``.

        Clauses are evaluated equality-first, which prunes most pairs
        before any similarity predicate (e.g. edit distance) runs.
        """
        return all(clause.holds(t, s) for clause in self._eval_order)

    def identified(self, t: CTuple, s: CTuple) -> bool:
        """Whether ``t[Ei] = s[Fi]`` for every RHS pair."""
        return all(t[e] == s[f] for e, f in self.rhs)

    def mismatched_rhs(self, t: CTuple, s: CTuple) -> Tuple[str, ...]:
        """The data-side RHS attributes ``Ei`` with ``t[Ei] ≠ s[Fi]``."""
        return tuple(e for e, f in self.rhs if t[e] != s[f])

    def satisfied_by(self, relation: Relation, master: Relation) -> bool:
        """``(D, Dm) ⊨ ψ``: no more tuples can be matched-and-updated."""
        for t in relation:
            for s in master:
                if self.premise_holds(t, s) and not self.identified(t, s):
                    return False
        return True

    def violations(self, relation: Relation, master: Relation) -> List[MDViolation]:
        """All violating ``(t, s)`` pairs with their mismatched attributes."""
        out: List[MDViolation] = []
        for t in relation:
            for s in master:
                if self.premise_holds(t, s):
                    attrs = self.mismatched_rhs(t, s)
                    if attrs:
                        out.append(MDViolation(self, t.tid, s.tid, attrs))
        return out

    # ------------------------------------------------------------------
    # Metadata
    # ------------------------------------------------------------------
    def lhs_attrs(self) -> Tuple[str, ...]:
        """Data-side premise attributes (used by the dependency graph)."""
        return tuple(dict.fromkeys(c.attr for c in self.premise))

    def rhs_attrs(self) -> Tuple[str, ...]:
        """Data-side RHS attributes ``Ei``."""
        return tuple(dict.fromkeys(e for e, _ in self.rhs))

    def equality_premise_attrs(self) -> Tuple[str, ...]:
        """Premise attributes compared with exact equality (for fuzzy min)."""
        return tuple(dict.fromkeys(c.attr for c in self.premise if c.is_equality))

    def blocking_key_attrs(self) -> Tuple[str, ...]:
        """The data-side blocking-key attributes for inverted indexing.

        Tuples sharing the projection on the *equality* premise attributes
        can only match master tuples from the same exact-index bucket, so
        this projection partitions the data side for incremental violation
        detection (empty when the premise is pure-similarity — then all
        tuples share the single degenerate partition).
        """
        return self.equality_premise_attrs()

    def scope_attrs(self) -> Tuple[str, ...]:
        """All data attributes whose change can affect this MD's
        violations: premise attributes plus the RHS data attributes."""
        return tuple(dict.fromkeys(self.lhs_attrs() + self.rhs_attrs()))

    def size(self) -> int:
        """Length of the MD (attribute count), used in ``size(Θ)``."""
        return len(self.premise) + len(self.rhs)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, MD):
            return NotImplemented
        return (
            self.schema == other.schema
            and self.master_schema == other.master_schema
            and self.premise == other.premise
            and self.rhs == other.rhs
        )

    def __hash__(self) -> int:
        return hash((self.schema.name, self.master_schema.name, self.premise, self.rhs))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        prem = " ∧ ".join(repr(c) for c in self.premise)
        rhs = " ∧ ".join(f"{e}⇌{f}" for e, f in self.rhs)
        return f"MD[{self.name}]({prem} -> {rhs})"


class NegativeMD:
    """A negative MD ``⋀_j (R[Aj] ≠ Rm[Bj]) → ⋁_i (R[Ei] ⇎ Rm[Fi])``.

    ``(D, Dm) ⊨ ψ⁻`` iff for all ``t, s``: if ``t[Aj] ≠ s[Bj]`` for all
    ``j``, then ``t[Ei] ≠ s[Fi]`` for some ``i``.
    """

    __slots__ = ("schema", "master_schema", "premise", "rhs", "name")

    def __init__(
        self,
        schema: Schema,
        master_schema: Schema,
        premise: Iterable[Tuple[str, str]],
        rhs: Iterable[Tuple[str, str]],
        name: Optional[str] = None,
    ):
        self.schema = schema
        self.master_schema = master_schema
        prem: List[Tuple[str, str]] = []
        for attr, master_attr in premise:
            schema.check_attrs([attr])
            master_schema.check_attrs([master_attr])
            prem.append((attr, master_attr))
        if not prem:
            raise ConstraintError("a negative MD must have a non-empty premise")
        self.premise: Tuple[Tuple[str, str], ...] = tuple(prem)
        pairs: List[Tuple[str, str]] = []
        for attr, master_attr in rhs:
            schema.check_attrs([attr])
            master_schema.check_attrs([master_attr])
            pairs.append((attr, master_attr))
        if not pairs:
            raise ConstraintError("a negative MD must have at least one RHS pair")
        self.rhs: Tuple[Tuple[str, str], ...] = tuple(pairs)
        self.name = name or f"nmd({schema.name}~{master_schema.name})"

    def premise_holds(self, t: CTuple, s: CTuple) -> bool:
        """Whether ``t[Aj] ≠ s[Bj]`` for every premise pair.

        Null on either side makes the inequality *hold* vacuously false?
        No: the paper gives no special null semantics for negative MDs; we
        treat null as incomparable, so a premise involving null does not
        hold and the negative MD places no constraint on that pair.
        """
        for attr, master_attr in self.premise:
            left, right = t[attr], s[master_attr]
            if is_null(left) or is_null(right):
                return False
            if left == right:
                return False
        return True

    def satisfied_by(self, relation: Relation, master: Relation) -> bool:
        """``(D, Dm) ⊨ ψ⁻`` per Section 2.2."""
        for t in relation:
            for s in master:
                if self.premise_holds(t, s):
                    if all(t[e] == s[f] for e, f in self.rhs):
                        return False
        return True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        prem = " ∧ ".join(f"{a}≠{b}" for a, b in self.premise)
        rhs = " ∨ ".join(f"{e}⇎{f}" for e, f in self.rhs)
        return f"NegativeMD[{self.name}]({prem} -> {rhs})"


def embed_negative(
    positives: Sequence[MD],
    negatives: Sequence[NegativeMD],
) -> List[MD]:
    """Compile negative MDs into the positive set (Proposition 2.6).

    Follows the constructive proof: every positive MD is first normalized;
    then, for each negative MD, the *equality* counterparts of its premise
    pairs are conjoined to the positive MD's premise.  The result is a set
    of positive MDs equivalent to ``Γ+ ∪ Γ−``, computed in
    ``O(|Γ+|·|Γ−|)`` time.

    Example 2.5 of the paper: embedding the gender negative rule into ψ
    yields ψ′ whose premise additionally requires ``tran[gd] = card[gd]``.
    """
    out: List[MD] = []
    for positive in positives:
        for normalized in positive.normalize():
            clauses: List[MDClause] = list(normalized.premise)
            existing = {(c.attr, c.master_attr, c.predicate.name) for c in clauses}
            for negative in negatives:
                for attr, master_attr in negative.premise:
                    key = (attr, master_attr, EQ.name)
                    if key in existing:
                        continue
                    existing.add(key)
                    clauses.append(MDClause(attr, master_attr, EQ))
            suffix = "+" if negatives else ""
            out.append(
                MD(
                    normalized.schema,
                    normalized.master_schema,
                    clauses,
                    list(normalized.rhs),
                    name=normalized.name + suffix,
                )
            )
    return out


def satisfies_all_mds(relation: Relation, master: Relation, mds: Iterable[MD]) -> bool:
    """``(D, Dm) ⊨ Γ``: satisfaction of a whole positive-MD set."""
    return all(md.satisfied_by(relation, master) for md in mds)
