"""Textual syntax for data quality rules.

Rule files let experiments and examples declare Σ and Γ as text::

    # CFDs: constants bind pattern entries, bare names are wildcards.
    cfd tran: AC='131' -> city='Edi'
    cfd tran: city, phn -> St, AC, post
    cfd tran: FN='Bob' -> FN='Robert'

    # Positive MDs: premise clauses are A=B (equality across schemas) or
    # A ~pred B with a similarity predicate from the registry.
    md tran~card: LN=LN, city=city, St=St, post=zip, FN ~edit<=3 FN -> FN=FN, phn=tel

    # Negative MDs: premise pairs are A!=B; the RHS lists the
    # non-identifiable pairs.
    nmd tran~card: gd!=gd -> FN=FN, phn=tel

Lines starting with ``#`` (or blank lines) are ignored.  Constants may be
single- or double-quoted; quoting is required only when the constant
contains a comma, an arrow or whitespace at its edges.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

from repro.exceptions import ParseError
from repro.constraints.cfd import CFD, WILDCARD
from repro.constraints.md import MD, MDClause, NegativeMD
from repro.relational.schema import Schema
from repro.similarity.predicates import DEFAULT_REGISTRY, EQ, PredicateRegistry


@dataclass
class ParsedRules:
    """The outcome of parsing a rule file: Σ, Γ⁺ and Γ⁻."""

    cfds: List[CFD] = field(default_factory=list)
    mds: List[MD] = field(default_factory=list)
    negative_mds: List[NegativeMD] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.cfds) + len(self.mds) + len(self.negative_mds)


def _split_top_level(text: str, separator: str) -> List[str]:
    """Split on *separator* outside single/double quotes."""
    parts: List[str] = []
    current: List[str] = []
    quote: Optional[str] = None
    i = 0
    while i < len(text):
        ch = text[i]
        if quote is not None:
            current.append(ch)
            if ch == quote:
                quote = None
        elif ch in "'\"":
            quote = ch
            current.append(ch)
        elif text.startswith(separator, i):
            parts.append("".join(current))
            current = []
            i += len(separator)
            continue
        else:
            current.append(ch)
        i += 1
    if quote is not None:
        raise ParseError(f"unbalanced quote in {text!r}")
    parts.append("".join(current))
    return parts


def _unquote(raw: str) -> str:
    raw = raw.strip()
    if len(raw) >= 2 and raw[0] == raw[-1] and raw[0] in "'\"":
        return raw[1:-1]
    return raw


_CFD_TERM = re.compile(r"^\s*(?P<attr>\w+)\s*(?:=\s*(?P<const>.+))?$", re.S)


def _parse_cfd_terms(text: str, schema: Schema) -> Tuple[List[str], Dict[str, object]]:
    attrs: List[str] = []
    pattern: Dict[str, object] = {}
    for term in _split_top_level(text, ","):
        term = term.strip()
        if not term:
            raise ParseError(f"empty term in CFD side {text!r}")
        match = _CFD_TERM.match(term)
        if not match:
            raise ParseError(f"cannot parse CFD term {term!r}")
        attr = match.group("attr")
        schema.check_attrs([attr])
        attrs.append(attr)
        const = match.group("const")
        pattern[attr] = WILDCARD if const is None else _unquote(const)
    return attrs, pattern


def parse_cfd(
    body: str,
    schemas: Mapping[str, Schema],
    name: Optional[str] = None,
) -> CFD:
    """Parse the body of a ``cfd`` line: ``<schema>: <lhs> -> <rhs>``."""
    if ":" not in body:
        raise ParseError(f"cfd line missing ':' — {body!r}")
    schema_name, rest = body.split(":", 1)
    schema_name = schema_name.strip()
    if schema_name not in schemas:
        raise ParseError(f"unknown schema {schema_name!r} in cfd line")
    schema = schemas[schema_name]
    sides = _split_top_level(rest, "->")
    if len(sides) != 2:
        raise ParseError(f"cfd line must contain exactly one '->' — {body!r}")
    lhs_attrs, lhs_pattern = _parse_cfd_terms(sides[0], schema)
    rhs_attrs, rhs_pattern = _parse_cfd_terms(sides[1], schema)
    return CFD(
        schema,
        lhs_attrs,
        rhs_attrs,
        lhs_pattern=lhs_pattern,
        rhs_pattern=rhs_pattern,
        name=name,
    )


_MD_EQ = re.compile(r"^\s*(?P<a>\w+)\s*=\s*(?P<b>\w+)\s*$")
_MD_SIM = re.compile(r"^\s*(?P<a>\w+)\s*~(?P<pred>\S+)\s+(?P<b>\w+)\s*$")
_MD_NEQ = re.compile(r"^\s*(?P<a>\w+)\s*!=\s*(?P<b>\w+)\s*$")


def _parse_md_header(body: str, schemas: Mapping[str, Schema]) -> Tuple[Schema, Schema, str]:
    if ":" not in body:
        raise ParseError(f"md line missing ':' — {body!r}")
    head, rest = body.split(":", 1)
    if "~" not in head:
        raise ParseError(f"md header must be '<schema>~<master>' — {head!r}")
    data_name, master_name = (part.strip() for part in head.split("~", 1))
    for schema_name in (data_name, master_name):
        if schema_name not in schemas:
            raise ParseError(f"unknown schema {schema_name!r} in md line")
    return schemas[data_name], schemas[master_name], rest


def parse_md(
    body: str,
    schemas: Mapping[str, Schema],
    registry: PredicateRegistry = DEFAULT_REGISTRY,
    name: Optional[str] = None,
) -> MD:
    """Parse the body of an ``md`` line.

    Format: ``<schema>~<master>: <clauses> -> <pairs>`` with clauses
    ``A=B`` or ``A ~pred B`` and pairs ``E=F``.
    """
    schema, master_schema, rest = _parse_md_header(body, schemas)
    sides = _split_top_level(rest, "->")
    if len(sides) != 2:
        raise ParseError(f"md line must contain exactly one '->' — {body!r}")
    clauses: List[MDClause] = []
    for term in _split_top_level(sides[0], ","):
        eq = _MD_EQ.match(term)
        if eq:
            clauses.append(MDClause(eq.group("a"), eq.group("b"), EQ))
            continue
        sim = _MD_SIM.match(term)
        if sim:
            predicate = registry.get(sim.group("pred"))
            clauses.append(MDClause(sim.group("a"), sim.group("b"), predicate))
            continue
        raise ParseError(f"cannot parse MD premise clause {term.strip()!r}")
    rhs: List[Tuple[str, str]] = []
    for term in _split_top_level(sides[1], ","):
        eq = _MD_EQ.match(term)
        if not eq:
            raise ParseError(f"cannot parse MD RHS pair {term.strip()!r}")
        rhs.append((eq.group("a"), eq.group("b")))
    return MD(schema, master_schema, clauses, rhs, name=name)


def parse_negative_md(
    body: str,
    schemas: Mapping[str, Schema],
    name: Optional[str] = None,
) -> NegativeMD:
    """Parse the body of an ``nmd`` line: premise pairs use ``!=``."""
    schema, master_schema, rest = _parse_md_header(body, schemas)
    sides = _split_top_level(rest, "->")
    if len(sides) != 2:
        raise ParseError(f"nmd line must contain exactly one '->' — {body!r}")
    premise: List[Tuple[str, str]] = []
    for term in _split_top_level(sides[0], ","):
        neq = _MD_NEQ.match(term)
        if not neq:
            raise ParseError(f"cannot parse negative-MD premise {term.strip()!r}")
        premise.append((neq.group("a"), neq.group("b")))
    rhs: List[Tuple[str, str]] = []
    for term in _split_top_level(sides[1], ","):
        eq = _MD_EQ.match(term)
        if not eq:
            raise ParseError(f"cannot parse negative-MD RHS pair {term.strip()!r}")
        rhs.append((eq.group("a"), eq.group("b")))
    return NegativeMD(schema, master_schema, premise, rhs, name=name)


def parse_rules(
    text: str,
    schemas: Mapping[str, Schema],
    registry: PredicateRegistry = DEFAULT_REGISTRY,
) -> ParsedRules:
    """Parse a whole rule file into :class:`ParsedRules`.

    Each non-blank, non-comment line must start with ``cfd``, ``md`` or
    ``nmd``.  A trailing ``@name`` annotation names the rule::

        cfd tran: AC='131' -> city='Edi' @phi1
    """
    out = ParsedRules()
    for line_number, raw_line in enumerate(text.splitlines(), start=1):
        line = raw_line.strip()
        if not line or line.startswith("#"):
            continue
        name: Optional[str] = None
        if "@" in line:
            line, _, annotation = line.rpartition("@")
            line = line.strip()
            name = annotation.strip() or None
        try:
            keyword, _, body = line.partition(" ")
            if keyword == "cfd":
                out.cfds.append(parse_cfd(body, schemas, name=name))
            elif keyword == "md":
                out.mds.append(parse_md(body, schemas, registry, name=name))
            elif keyword == "nmd":
                out.negative_mds.append(parse_negative_md(body, schemas, name=name))
            else:
                raise ParseError(f"unknown rule keyword {keyword!r}")
        except ParseError as exc:
            raise ParseError(f"line {line_number}: {exc}") from None
    return out
