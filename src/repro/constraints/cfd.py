"""Conditional functional dependencies (CFDs), Section 2.1 of the paper.

A CFD ``φ = R(X → Y, tp)`` pairs an embedded FD ``X → Y`` with a pattern
tuple ``tp`` over ``X ∪ Y`` whose entries are constants or the unnamed
wildcard ``'_'``.  Satisfaction uses the match operator ``≍``: ``v1 ≍ v2``
iff ``v1 = v2`` or one of them is the wildcard.

``D ⊨ φ`` iff for all tuples ``t1, t2`` in ``D``: whenever
``t1[X] = t2[X] ≍ tp[X]`` then ``t1[Y] = t2[Y] ≍ tp[Y]``.  Taking
``t1 = t2`` shows that a *constant* pattern on the RHS constrains single
tuples, which is why normalized CFDs split into constant and variable
classes (Section 3.1).

An attribute may occur on both sides with *different* pattern entries —
the paper's normalization rule φ4 = (FN → FN, Bob ‖ Robert) is exactly
that — so the LHS and RHS pattern entries are stored separately.

Following Section 7, a tuple containing :data:`NULL` in a pattern-matched
attribute never matches: "CFDs only apply to those tuples that precisely
match a pattern tuple, which does not contain null".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple, Union

from repro.exceptions import ConstraintError
from repro.relational.attribute import is_null
from repro.relational.relation import Relation
from repro.relational.schema import Schema
from repro.relational.tuples import CTuple


class Wildcard:
    """Singleton for the unnamed variable ``'_'`` in pattern tuples."""

    _instance: Optional["Wildcard"] = None

    def __new__(cls) -> "Wildcard":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return "_"

    def __hash__(self) -> int:
        return hash("repro.WILDCARD")

    def __deepcopy__(self, memo: dict) -> "Wildcard":
        return self


#: The unnamed wildcard variable appearing in pattern tuples.
WILDCARD = Wildcard()


def is_wildcard(value: Any) -> bool:
    """Whether *value* is the pattern wildcard ``'_'``."""
    return value is WILDCARD


def pattern_match(value: Any, pattern_value: Any) -> bool:
    """The ``≍`` operator on a single attribute.

    ``value ≍ pattern_value`` iff they are equal or the pattern entry is the
    wildcard.  :data:`NULL` never matches a pattern (Section 7), not even a
    wildcard — a null cell carries no evidence that the rule premise holds.
    """
    if is_null(value):
        return False
    if is_wildcard(pattern_value):
        return True
    return value == pattern_value


PatternValue = Union[Any, Wildcard]


@dataclass(frozen=True)
class Violation:
    """A detected CFD violation.

    ``tids`` holds one tid for a single-tuple (constant-pattern) violation
    and two tids for a pair (variable) violation; ``attr`` is the RHS
    attribute on which the violation manifests.
    """

    constraint: "CFD"
    tids: Tuple[int, ...]
    attr: str

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Violation({self.constraint.name}, tids={self.tids}, attr={self.attr!r})"


class CFD:
    """A conditional functional dependency ``R(X → Y, tp)``.

    Parameters
    ----------
    schema:
        The schema ``R`` the CFD is defined on.
    lhs:
        The attribute list ``X``.
    rhs:
        The attribute list ``Y``.  Most algorithms require the *normalized*
        single-attribute form; use :meth:`normalize`.
    pattern:
        Mapping from attribute (in ``X ∪ Y``) to a constant or
        :data:`WILDCARD`, applied to both sides where the attribute
        occurs.  Attributes absent from the mapping default to the
        wildcard, so plain FDs need no explicit pattern.
    lhs_pattern, rhs_pattern:
        Side-specific pattern entries, overriding ``pattern``; required
        when an attribute occurs on both sides with different entries
        (e.g. the normalization rule ``(FN → FN, Bob ‖ Robert)``).
    name:
        Optional identifier used in reports (e.g. ``"phi1"``).

    Examples
    --------
    >>> from repro.relational import Schema
    >>> tran = Schema("tran", ["FN", "AC", "city"])
    >>> phi1 = CFD(tran, ["AC"], ["city"], {"AC": "131", "city": "Edi"}, name="phi1")
    >>> phi1.is_constant
    True
    >>> phi4 = CFD(tran, ["FN"], ["FN"], lhs_pattern={"FN": "Bob"},
    ...            rhs_pattern={"FN": "Robert"}, name="phi4")
    >>> phi4.rhs_constant
    'Robert'
    """

    __slots__ = ("schema", "lhs", "rhs", "lhs_pattern", "rhs_pattern", "name")

    def __init__(
        self,
        schema: Schema,
        lhs: Sequence[str],
        rhs: Sequence[str],
        pattern: Optional[Mapping[str, PatternValue]] = None,
        lhs_pattern: Optional[Mapping[str, PatternValue]] = None,
        rhs_pattern: Optional[Mapping[str, PatternValue]] = None,
        name: Optional[str] = None,
    ):
        self.schema = schema
        self.lhs: Tuple[str, ...] = schema.check_attrs(lhs)
        self.rhs: Tuple[str, ...] = schema.check_attrs(rhs)
        if not self.rhs:
            raise ConstraintError("a CFD must have at least one RHS attribute")
        if len(set(self.lhs)) != len(self.lhs):
            raise ConstraintError(f"duplicate LHS attributes in CFD: {self.lhs}")
        if len(set(self.rhs)) != len(self.rhs):
            raise ConstraintError(f"duplicate RHS attributes in CFD: {self.rhs}")

        def build_side(
            attrs: Tuple[str, ...],
            side: Optional[Mapping[str, PatternValue]],
            side_name: str,
        ) -> Dict[str, PatternValue]:
            out: Dict[str, PatternValue] = {}
            attr_set = set(attrs)
            if side:
                for attr, value in side.items():
                    if attr not in attr_set:
                        raise ConstraintError(
                            f"{side_name} pattern attribute {attr!r} not in the CFD's {side_name}"
                        )
                    out[attr] = value
            if pattern:
                for attr, value in pattern.items():
                    if attr in attr_set:
                        out.setdefault(attr, value)
            for attr in attrs:
                out.setdefault(attr, WILDCARD)
            return out

        if pattern:
            scope = set(self.lhs) | set(self.rhs)
            for attr in pattern:
                if attr not in scope:
                    raise ConstraintError(
                        f"pattern attribute {attr!r} is not in X ∪ Y of the CFD"
                    )
        self.lhs_pattern = build_side(self.lhs, lhs_pattern, "LHS")
        self.rhs_pattern = build_side(self.rhs, rhs_pattern, "RHS")
        self.name = name or f"cfd({schema.name}:{','.join(self.lhs)}->{','.join(self.rhs)})"

    # ------------------------------------------------------------------
    # Classification
    # ------------------------------------------------------------------
    @property
    def is_normalized(self) -> bool:
        """Whether ``|RHS| = 1`` (Section 2.2, "Normalized CFDs and MDs")."""
        return len(self.rhs) == 1

    @property
    def is_constant(self) -> bool:
        """Normalized CFD whose RHS pattern entry is a constant."""
        return self.is_normalized and not is_wildcard(self.rhs_pattern[self.rhs[0]])

    @property
    def is_variable(self) -> bool:
        """Normalized CFD whose RHS pattern entry is the wildcard."""
        return self.is_normalized and is_wildcard(self.rhs_pattern[self.rhs[0]])

    @property
    def is_fd(self) -> bool:
        """Whether every pattern entry is a wildcard (a traditional FD)."""
        return all(is_wildcard(v) for v in self.lhs_pattern.values()) and all(
            is_wildcard(v) for v in self.rhs_pattern.values()
        )

    @property
    def rhs_attr(self) -> str:
        """The single RHS attribute of a normalized CFD."""
        if not self.is_normalized:
            raise ConstraintError(f"CFD {self.name} is not normalized")
        return self.rhs[0]

    @property
    def rhs_constant(self) -> Any:
        """The RHS pattern constant of a constant CFD."""
        if not self.is_constant:
            raise ConstraintError(f"CFD {self.name} is not a constant CFD")
        return self.rhs_pattern[self.rhs[0]]

    def normalize(self) -> List["CFD"]:
        """Split into the equivalent set of single-RHS CFDs.

        "Every CFD ξ can be expressed as an equivalent set Sξ of normalized
        CFDs, such that the cardinality of Sξ is bounded by the size of
        RHS(ξ)" (Section 2.2).
        """
        if self.is_normalized:
            return [self]
        out = []
        for i, attr in enumerate(self.rhs):
            out.append(
                CFD(
                    self.schema,
                    self.lhs,
                    [attr],
                    lhs_pattern=dict(self.lhs_pattern),
                    rhs_pattern={attr: self.rhs_pattern[attr]},
                    name=f"{self.name}#{i}",
                )
            )
        return out

    # ------------------------------------------------------------------
    # Semantics
    # ------------------------------------------------------------------
    def lhs_matches(self, t: CTuple) -> bool:
        """Whether ``t[X] ≍ tp[X]`` (nulls never match)."""
        return all(pattern_match(t[a], self.lhs_pattern[a]) for a in self.lhs)

    def rhs_matches(self, t: CTuple) -> bool:
        """Whether ``t[Y] ≍ tp[Y]``."""
        return all(pattern_match(t[a], self.rhs_pattern[a]) for a in self.rhs)

    def satisfied_by(self, relation: Relation) -> bool:
        """``D ⊨ φ``: the pairwise CFD semantics of Section 2.1."""
        return not self._find_violations(relation, first_only=True)

    def violations(
        self, relation: Relation, violation_index: Optional[Any] = None
    ) -> List[Violation]:
        """All violations of this CFD in *relation*.

        Single-tuple violations are reported for constant-pattern RHS
        attributes; pair violations for wildcard RHS attributes.  Pair
        violations are reported once per (unordered) pair and attribute.

        When *violation_index* is given (a maintained
        :class:`~repro.indexing.violation_index.ViolationIndex` covering
        this CFD's derived rule — e.g. a
        :class:`~repro.pipeline.session.CleaningSession`'s check index),
        the scan is routed through
        :func:`repro.analysis.consistency.relation_violations` over the
        index's LHS partitions instead of rescanning the relation —
        identical output (strict null semantics, same order), without
        the O(|D|) pass per call.  Index-free callers keep the
        brute-force path.
        """
        if violation_index is not None and self.is_normalized:
            from repro.analysis.consistency import relation_violations

            return relation_violations(
                relation, [self], violation_index, null_semantics="strict"
            )
        return self._find_violations(relation, first_only=False)

    def _find_violations(self, relation: Relation, first_only: bool) -> List[Violation]:
        out: List[Violation] = []
        # Single-tuple check (t1 = t2): t[X] ≍ tp[X] requires t[Y] ≍ tp[Y].
        matching: List[CTuple] = []
        for t in relation:
            if not self.lhs_matches(t):
                continue
            matching.append(t)
            for attr in self.rhs:
                if not pattern_match(t[attr], self.rhs_pattern[attr]):
                    out.append(Violation(self, (t.tid,), attr))
                    if first_only:
                        return out
        # Pair check among tuples agreeing on X.
        groups: Dict[Tuple[Any, ...], List[CTuple]] = {}
        for t in matching:
            groups.setdefault(t.project(self.lhs), []).append(t)
        for group in groups.values():
            if len(group) < 2:
                continue
            for attr in self.rhs:
                seen: Dict[Any, CTuple] = {}
                for t in group:
                    value = t[attr]
                    for other_value, witness in seen.items():
                        if other_value != value:
                            out.append(Violation(self, (witness.tid, t.tid), attr))
                            if first_only:
                                return out
                    seen.setdefault(value, t)
        return out

    # ------------------------------------------------------------------
    # Metadata
    # ------------------------------------------------------------------
    def attributes(self) -> Tuple[str, ...]:
        """All attributes mentioned (X then Y, deduplicated, ordered)."""
        seen = dict.fromkeys(self.lhs)
        seen.update(dict.fromkeys(self.rhs))
        return tuple(seen)

    def key_attrs(self) -> Tuple[str, ...]:
        """The partition-key attributes for inverted indexing: the LHS ``X``.

        Tuples agreeing on ``X`` (and matching ``tp[X]``) fall in the same
        partition ``Δ(x̄)``; a violation can only involve tuples of one
        partition, which is what makes incremental violation detection
        sound (see :mod:`repro.indexing.violation_index`).
        """
        return self.lhs

    def scope_attrs(self) -> Tuple[str, ...]:
        """All data attributes whose change can affect this CFD's
        violations: ``X ∪ Y`` (for normalized CFDs, ``X ∪ {B}``)."""
        return self.attributes()

    def constants(self) -> Dict[str, List[Any]]:
        """Constant pattern entries per attribute (LHS and RHS merged)."""
        out: Dict[str, List[Any]] = {}
        for side in (self.lhs_pattern, self.rhs_pattern):
            for attr, value in side.items():
                if not is_wildcard(value):
                    out.setdefault(attr, [])
                    if value not in out[attr]:
                        out[attr].append(value)
        return out

    def size(self) -> int:
        """The length of the CFD (attribute count), used in ``size(Θ)``."""
        return len(self.lhs) + len(self.rhs)

    def _key(self) -> Tuple:
        return (
            self.schema.name,
            self.lhs,
            self.rhs,
            tuple(sorted((a, repr(v)) for a, v in self.lhs_pattern.items())),
            tuple(sorted((a, repr(v)) for a, v in self.rhs_pattern.items())),
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CFD):
            return NotImplemented
        return self.schema == other.schema and self._key() == other._key()

    def __hash__(self) -> int:
        return hash(self._key())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        def fmt(attrs: Iterable[str], side: Mapping[str, PatternValue]) -> str:
            parts = []
            for a in attrs:
                v = side[a]
                parts.append(a if is_wildcard(v) else f"{a}={v!r}")
            return ", ".join(parts)

        return (
            f"CFD[{self.name}]({self.schema.name}: "
            f"{fmt(self.lhs, self.lhs_pattern)} -> {fmt(self.rhs, self.rhs_pattern)})"
        )


def satisfies_all(relation: Relation, cfds: Iterable[CFD]) -> bool:
    """``D ⊨ Σ``: whether *relation* satisfies every CFD in *cfds*."""
    return all(cfd.satisfied_by(relation) for cfd in cfds)


def all_violations(relation: Relation, cfds: Iterable[CFD]) -> List[Violation]:
    """Collect violations of every CFD in *cfds* against *relation*."""
    out: List[Violation] = []
    for cfd in cfds:
        out.extend(cfd.violations(relation))
    return out
