"""Worker supervision for partition-parallel sharded cleaning.

The sharded coordinator (:mod:`repro.pipeline.sharding`) fans every
round-trip out through per-slot single-worker process pools.  Before
this module, one dead or hung worker aborted the whole session — a bare
``future.result()`` with no timeout and no ``BrokenProcessPool``
handling — and lost every cleaned shard with it.  This module supplies
the two building blocks the supervised runner composes:

* :class:`SupervisionPolicy` — the knobs: per-dispatch ``timeout``,
  bounded ``max_retries`` with exponential backoff, and the
  ``serial_fallback`` escape hatch (run the slot's shards in-process —
  graceful degradation instead of failure).
* :class:`SupervisedSlot` — one worker slot: lazily (re)spawns its
  single-worker executor, maps raw pool failures onto the typed
  exceptions of :mod:`repro.exceptions` (``ShardTimeout`` on a
  per-dispatch timeout, ``WorkerFailure`` on a broken pool), and
  guarantees ``kill()`` never blocks on — or leaks — a hung worker
  process.

Recovery is safe because shard cleans are deterministic and
side-effect-free until the coordinator merges: a re-dispatched
``clean_shard`` reproduces the lost outcome bit-for-bit, and a dead
slot's resident sessions are rebuilt from the coordinator's base (plus
the remembered ever-group-keys — see ``merge_ever_keys`` in
``sharding._WorkerState``) before the in-flight batch is re-run.  The
supervised dispatch loop itself lives in ``sharding._ProcessRunner``,
next to the wire framing it supervises; this module stays free of any
sharding import so both layers stay independently testable.
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Any, Callable, Optional

from repro.exceptions import ShardTimeout, WorkerFailure

__all__ = ["SupervisionPolicy", "SupervisedSlot", "SlotFailure"]


@dataclass(frozen=True)
class SupervisionPolicy:
    """Supervision knobs for one sharded session.

    Parameters
    ----------
    timeout:
        Per-dispatch seconds a call may spend at the head of its slot's
        queue before the worker is declared hung, killed and (budget
        permitting) respawned.  ``None`` disables the timeout — the
        pre-supervision behaviour of blocking forever.
    max_retries:
        Bounded retry budget **per slot per coordinator round-trip**.
        ``0`` fails fast on the first fault.
    backoff_base, backoff_factor, backoff_max:
        Exponential backoff between retries:
        ``min(backoff_max, backoff_base * backoff_factor ** attempt)``.
    serial_fallback:
        After the budget is exhausted, host the slot's shards in the
        coordinator process (the ``n_workers=1`` code path) instead of
        raising — graceful degradation, surfaced in
        ``session.stats["serial_fallbacks"]``.  ``False`` raises the
        typed failure instead.
    """

    timeout: Optional[float] = 600.0
    max_retries: int = 2
    backoff_base: float = 0.05
    backoff_factor: float = 2.0
    backoff_max: float = 2.0
    serial_fallback: bool = True

    def backoff(self, attempt: int) -> float:
        """Backoff (seconds) before retry number *attempt* (0-based)."""
        return min(
            self.backoff_max,
            self.backoff_base * self.backoff_factor ** attempt,
        )

    def sleep(self, attempt: int) -> None:
        delay = self.backoff(attempt)
        if delay > 0:
            time.sleep(delay)


class SlotFailure(Exception):
    """Internal control-flow signal of the supervised dispatch loop.

    Wraps the typed failure (*error*) plus whether recovery needs the
    **hard** path (*hard* = the worker is dead or of unknown state: kill
    the slot, respawn, rebuild resident sessions, re-run the slot's
    batch) or the **soft** path (the worker provably never executed the
    call: just re-send it).
    """

    def __init__(self, error: BaseException, hard: bool):
        super().__init__(str(error))
        self.error = error
        self.hard = hard


class SupervisedSlot:
    """One worker slot: a lazily-spawned single-worker executor with
    typed failure mapping and a kill that never blocks or leaks.

    *factory* builds the slot's ``ProcessPoolExecutor`` (the caller
    bakes in the initializer that installs the worker state).
    ``escalated`` marks a slot that degraded to the in-process serial
    fallback; the runner routes around it from then on.
    """

    def __init__(self, index: int, factory: Callable[[], ProcessPoolExecutor]):
        self.index = index
        self._factory = factory
        self._executor: Optional[ProcessPoolExecutor] = None
        self.escalated = False

    @property
    def executor(self) -> ProcessPoolExecutor:
        if self._executor is None:
            self._executor = self._factory()
        return self._executor

    def submit(self, fn: Callable[..., Any], *args: Any):
        try:
            return self.executor.submit(fn, *args)
        except BrokenProcessPool as exc:
            raise WorkerFailure(
                f"worker slot {self.index} is broken: {exc}"
            ) from exc

    def result(self, future, timeout: Optional[float]) -> Any:
        """Await *future*, mapping pool failures onto typed errors."""
        try:
            return future.result(timeout)
        except FutureTimeoutError as exc:
            raise ShardTimeout(
                f"worker slot {self.index} exceeded the per-dispatch "
                f"timeout of {timeout}s"
            ) from exc
        except BrokenProcessPool as exc:
            raise WorkerFailure(
                f"worker process of slot {self.index} died: {exc}"
            ) from exc

    def kill(self, primary: Optional[BaseException] = None) -> None:
        """Tear the slot's executor down without ever blocking on a hung
        worker: grab the worker pids first, shut down without waiting,
        then kill any survivor outright.

        *primary* is the worker failure that triggered the force-kill,
        when there is one.  Cleanup itself can fail (an executor whose
        management thread already crashed, an unkillable process);
        swallowing that silently is fine on the **shutdown** path
        (``close()`` on an already-dead pool must stay a no-op), but on
        the **failure** path it used to lose the evidence entirely.  So:
        with no *primary* (plain shutdown) cleanup errors are suppressed;
        with a *primary* they are re-raised as a
        :class:`~repro.exceptions.WorkerFailure` whose ``__cause__`` is
        the primary failure — the original fault is chained, never
        swallowed — and the cleanup error itself rides along as
        ``cleanup_error``.
        """
        executor = self._executor
        self._executor = None
        if executor is None:
            return
        cleanup_error: Optional[BaseException] = None
        processes = list(getattr(executor, "_processes", {}).values())
        try:
            executor.shutdown(wait=False, cancel_futures=True)
        except Exception as exc:
            cleanup_error = exc
        for process in processes:
            try:
                if process.is_alive():
                    process.kill()
                process.join(timeout=5)
            except Exception as exc:
                if cleanup_error is None:
                    cleanup_error = exc
        if cleanup_error is not None and primary is not None:
            error = WorkerFailure(
                f"worker slot {self.index} failed to shut down cleanly "
                f"while recovering from a worker failure: {cleanup_error}"
            )
            error.cleanup_error = cleanup_error
            raise error from primary

    def respawn(self, primary: Optional[BaseException] = None) -> None:
        """Kill the current executor; the next :meth:`submit` spawns a
        fresh one (whose initializer rebuilds the worker state spec).
        *primary* is chained exactly as in :meth:`kill`."""
        self.kill(primary)
