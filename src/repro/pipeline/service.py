"""The online cleaning service: concurrent clients over live sessions.

:class:`~repro.pipeline.session.CleaningSession` and
:class:`~repro.pipeline.sharding.ShardedCleaningSession` are synchronous
and single-caller: one thread owns the session and calls ``apply()``.
The UniClean workload, though, is inherently a *serving* one — deltas
arrive continuously from many producers and the repaired relation must
stay queryable throughout.  This module wraps sessions behind an
asynchronous request queue, in the shape dynamic query-evaluation work
("Answering FO+MOD queries under updates", PAPERS.md) argues for:
bounded per-update work against maintained state, here stretched to a
multi-tenant process with failure recovery.

Shape
-----
* :class:`CleaningService` owns one **consumer thread**.  Producers call
  :meth:`~CleaningService.submit`, which enqueues a
  :class:`WriteTicket` and returns immediately; the consumer coalesces
  queued changesets per tenant into micro-batches under a
  :class:`FlushPolicy` (flush at ``max_batch`` tickets, or when the
  oldest has lingered ``max_linger`` seconds) and applies each batch via
  the session's ``apply_many`` — one merged delta, **≤ 1 re-plan per
  batch**, exactly the PR 4 ``buffer()``/``flush()`` plumbing driven
  from a queue.
* **Acknowledgment order is the serial order.**  Tickets of one tenant
  are applied strictly in submission (FIFO) order, and
  ``apply_many(batch) ≡ apply(δ₁); …; apply(δₙ)`` (both equal a
  from-scratch clean of the fully edited base), so the service's final
  state is byte-identical to a serial replay of the acknowledged
  changesets in acknowledgment order — the equivalence the
  ``service`` scenario of ``benchmarks/perf_report.py`` asserts.
* **Snapshot-isolated reads**: :meth:`~CleaningService.read` serves a
  detached clone of the working relation taken at the last batch
  commit.  Readers never observe a half-applied batch, and a read
  between commits costs nothing (the clone is cached per commit
  version, cut only when a reader actually asks).
* **Bounded backpressure**: each tenant's queue has a ``high_water``
  mark.  At the mark, :meth:`~CleaningService.submit` blocks (optionally
  with a timeout) or raises
  :class:`~repro.exceptions.ServiceOverloaded` (``block=False``) —
  producers throttle at the edge instead of the queue growing without
  bound.
* **Multi-tenant**: a :class:`SessionRegistry` holds many independent
  dataset/rule-set sessions per process.  The consumer round-robins
  across tenants with due work, so one firehose tenant cannot starve
  the others; a poisoned tenant never affects its neighbours.
* **Recovery** (sharded tenants with a ``checkpoint_dir``): a typed
  worker failure that poisons the session (PR 6 semantics) triggers the
  checkpointed-recovery machinery — the dead session is force-killed,
  the newest validating checkpoint restored
  (:meth:`ShardedCleaningSession.restore_latest` semantics), the
  acknowledged changesets since that checkpoint replayed from the
  service's ledger, and then the failed batch and the unacknowledged
  tail re-applied.  Producers only observe extra latency; the
  acknowledged prefix is never lost and the converged state equals the
  never-faulted serial replay.

``close(drain=True)`` refuses new writes, drains every queued ticket,
then force-kills the sessions (hung workers cannot block shutdown —
``ShardedCleaningSession.close`` semantics); ``drain=False`` fails the
pending tail with :class:`~repro.exceptions.ServiceClosed` instead.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Deque, Dict, List, Optional, Tuple

from repro.exceptions import (
    DataError,
    SchemaError,
    ServiceClosed,
    ServiceError,
    ServiceOverloaded,
    SnapshotError,
    TornFrame,
    UnknownTenant,
    WorkerFailure,
)
from repro.pipeline.changeset import Changeset
from repro.pipeline.faults import InjectedFault
from repro.pipeline.session import ApplyResult
from repro.relational.relation import Relation

__all__ = [
    "CleaningService",
    "FlushPolicy",
    "SessionRegistry",
    "WriteTicket",
]

#: The exception types that poison a session (mirrors
#: ``ShardedCleaningSession._absorb_failure``): after one of these the
#: coordinator refuses further work until a clean() or restore.
_POISONING = (WorkerFailure, TornFrame, InjectedFault)


@dataclass(frozen=True)
class FlushPolicy:
    """When the consumer cuts a tenant's queued tickets into a batch.

    A batch flushes as soon as **either** bound is hit:

    ``max_batch``
        Queue length at which the batch is full (coalescing bound).
    ``max_linger``
        Seconds the *oldest* queued ticket may wait before the batch
        flushes regardless of size (latency bound).  ``0`` flushes every
        ticket immediately — no coalescing, minimum latency.
    """

    max_batch: int = 32
    max_linger: float = 0.05

    def __post_init__(self) -> None:
        if self.max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {self.max_batch}")
        if self.max_linger < 0:
            raise ValueError(
                f"max_linger must be >= 0, got {self.max_linger}"
            )


class WriteTicket:
    """One submitted changeset: a future the producer can wait on.

    ``result()`` blocks until the consumer acknowledged the write and
    returns the batch's :class:`~repro.pipeline.session.ApplyResult`
    (shared by every ticket coalesced into the batch; ``None`` for an
    op-less changeset — the ``apply_many`` empty-batch contract), or
    re-raises the failure that killed it.  ``submitted_at``/``acked_at``
    are ``time.monotonic`` stamps; ``latency`` is their difference —
    what the service benchmark aggregates into p50/p99.
    """

    __slots__ = (
        "tenant", "changeset", "seq", "submitted_at", "acked_at",
        "ack_seq", "_event", "_result", "_error",
    )

    def __init__(self, tenant: str, changeset: Changeset, seq: int):
        self.tenant = tenant
        self.changeset = changeset
        #: Per-tenant submission sequence number (FIFO order).
        self.seq = seq
        self.submitted_at = time.monotonic()
        self.acked_at: Optional[float] = None
        #: Per-tenant acknowledgment index (== serial-replay position).
        self.ack_seq: Optional[int] = None
        self._event = threading.Event()
        self._result: Optional[ApplyResult] = None
        self._error: Optional[BaseException] = None

    def done(self) -> bool:
        """Whether the ticket was acknowledged or failed."""
        return self._event.is_set()

    def result(self, timeout: Optional[float] = None) -> Optional[ApplyResult]:
        """Block until done; return the batch result or re-raise."""
        if not self._event.wait(timeout):
            raise TimeoutError(
                f"ticket #{self.seq} of tenant {self.tenant!r} not "
                f"acknowledged within {timeout}s"
            )
        if self._error is not None:
            raise self._error
        return self._result

    @property
    def latency(self) -> Optional[float]:
        """Submit→ack seconds (``None`` until acknowledged)."""
        if self.acked_at is None:
            return None
        return self.acked_at - self.submitted_at

    # -- consumer side -------------------------------------------------
    def _resolve(self, result: Optional[ApplyResult], ack_seq: int) -> None:
        self._result = result
        self.ack_seq = ack_seq
        self.acked_at = time.monotonic()
        self._event.set()

    def _fail(self, error: BaseException) -> None:
        self._error = error
        self.acked_at = time.monotonic()
        self._event.set()


class _Tenant:
    """Everything the service holds for one registered session."""

    def __init__(
        self,
        name: str,
        session: Any,
        high_water: int,
        checkpoint_dir=None,
        checkpoint_every: int = 0,
        checkpoint_retain: int = 3,
        max_recoveries: int = 1,
    ):
        self.name = name
        self.session = session
        self.high_water = high_water
        self.pending: Deque[WriteTicket] = deque()
        #: Serializes batch application against snapshot cuts.
        self.commit_lock = threading.Lock()
        #: Bumped once per committed batch; the snapshot cache key.
        self.version = 0
        self._snapshot: Optional[Relation] = None
        self._snapshot_version = -1
        self.next_seq = 0
        self.next_ack = 0
        #: Unrecoverable failure: set once, refuses every later submit.
        self.poisoned: Optional[BaseException] = None

        # -- recovery state (sharded tenants with a checkpoint_dir) ----
        from pathlib import Path

        self.checkpoint_dir = (
            Path(checkpoint_dir) if checkpoint_dir is not None else None
        )
        self.checkpoint_every = checkpoint_every
        self.checkpoint_retain = checkpoint_retain
        self.max_recoveries = max_recoveries
        self.recoveries_used = 0
        self._batches_since_checkpoint = 0
        #: Acknowledged changesets since the oldest retained checkpoint,
        #: in acknowledgment order; ``ledger_base`` is the absolute ack
        #: index of ``ledger[0]`` (entries below it were pruned with
        #: their checkpoints).
        self.ledger: List[Changeset] = []
        self.ledger_base = 0
        #: checkpoint seq → absolute ack index it covers (its restore
        #: replays the ledger from there).
        self.checkpoint_marks: Dict[int, int] = {}

        self.stats: Dict[str, int] = {
            "submitted": 0,
            "acked": 0,
            "failed": 0,
            "batches": 0,
            "overloads": 0,
            "recoveries": 0,
            "replayed": 0,
            "checkpoints_written": 0,
            "snapshots_cut": 0,
            "reads": 0,
        }

    @property
    def recovery_enabled(self) -> bool:
        return (
            self.checkpoint_dir is not None
            and hasattr(self.session, "restore_latest")
        )


class SessionRegistry:
    """Thread-safe name → session map for a multi-tenant service.

    Register a session **after** its initial ``clean()`` — the service
    serves reads from the working relation, so there must be one.  Each
    tenant optionally carries its own recovery knobs (``checkpoint_dir``
    + ``checkpoint_every``), honoured only for sessions that expose the
    checkpointed-restore machinery (``ShardedCleaningSession``).
    """

    def __init__(self):
        self._tenants: Dict[str, _Tenant] = {}
        self._lock = threading.Lock()

    def register(
        self,
        name: str,
        session: Any,
        high_water: int = 256,
        checkpoint_dir=None,
        checkpoint_every: int = 0,
        checkpoint_retain: int = 3,
        max_recoveries: int = 1,
    ) -> _Tenant:
        if getattr(session, "working", None) is None:
            raise DataError(
                f"tenant {name!r}: register sessions after their initial "
                "clean() — the service serves reads from the working "
                "relation"
            )
        if high_water < 1:
            raise ValueError(f"high_water must be >= 1, got {high_water}")
        tenant = _Tenant(
            name, session, high_water,
            checkpoint_dir=checkpoint_dir,
            checkpoint_every=checkpoint_every,
            checkpoint_retain=checkpoint_retain,
            max_recoveries=max_recoveries,
        )
        with self._lock:
            if name in self._tenants:
                raise ValueError(f"tenant {name!r} is already registered")
            self._tenants[name] = tenant
        return tenant

    def get(self, name: str) -> _Tenant:
        with self._lock:
            tenant = self._tenants.get(name)
        if tenant is None:
            raise UnknownTenant(f"no tenant {name!r} is registered")
        return tenant

    def names(self) -> List[str]:
        with self._lock:
            return list(self._tenants)

    def __len__(self) -> int:
        with self._lock:
            return len(self._tenants)

    def __contains__(self, name: str) -> bool:
        with self._lock:
            return name in self._tenants


class CleaningService:
    """An asynchronous, multi-tenant front end over cleaning sessions.

    Parameters
    ----------
    registry:
        The tenant map (one is created when omitted); tenants can also
        be registered through :meth:`register`.
    flush_policy:
        Micro-batch bounds (see :class:`FlushPolicy`).

    Examples
    --------
    >>> service = CleaningService()                        # doctest: +SKIP
    >>> service.register("hosp", session)                  # doctest: +SKIP
    >>> ticket = service.submit("hosp", delta)             # doctest: +SKIP
    >>> ticket.result().clean                              # doctest: +SKIP
    True
    >>> service.read("hosp").by_tid(3)["city"]             # doctest: +SKIP
    'Edinburgh'
    >>> service.close()                                    # doctest: +SKIP
    """

    def __init__(
        self,
        registry: Optional[SessionRegistry] = None,
        flush_policy: Optional[FlushPolicy] = None,
    ):
        self.registry = registry if registry is not None else SessionRegistry()
        self.flush_policy = (
            flush_policy if flush_policy is not None else FlushPolicy()
        )
        self._cond = threading.Condition()
        self._accepting = True
        self._stopping = False
        #: Round-robin cursor: index into the sorted tenant names of the
        #: tenant served *last*, so service resumes after it.
        self._rr = -1
        self._consumer = threading.Thread(
            target=self._consume, name="cleaning-service", daemon=True
        )
        self._consumer.start()

    # ------------------------------------------------------------------
    # Producer API
    # ------------------------------------------------------------------
    def register(self, name: str, session: Any, **knobs: Any) -> None:
        """Register *session* (already cleaned) under *name*.

        Keyword knobs are forwarded to :meth:`SessionRegistry.register`
        (``high_water``, ``checkpoint_dir``, ``checkpoint_every``,
        ``checkpoint_retain``, ``max_recoveries``).  When recovery is
        enabled and the checkpoint directory holds no checkpoint yet, an
        initial one is written immediately so ``restore_latest`` always
        has a floor to come back to.
        """
        tenant = self.registry.register(name, session, **knobs)
        if tenant.recovery_enabled:
            from repro.pipeline import snapshot

            if not snapshot.list_checkpoints(tenant.checkpoint_dir):
                self._write_checkpoint(tenant)
        with self._cond:
            self._cond.notify_all()

    def submit(
        self,
        tenant_name: str,
        changeset: Changeset,
        block: bool = True,
        timeout: Optional[float] = None,
    ) -> WriteTicket:
        """Enqueue *changeset* for *tenant_name*; returns a ticket.

        Blocks while the tenant's queue is at its high-water mark
        (bounded backpressure); ``block=False`` — or an expired
        *timeout* — raises
        :class:`~repro.exceptions.ServiceOverloaded` instead.  Raises
        :class:`~repro.exceptions.ServiceClosed` once :meth:`close` has
        begun, and :class:`~repro.exceptions.ServiceError` (with the
        poisoning failure as ``__cause__``) for a tenant that died
        unrecoverably.
        """
        tenant = self.registry.get(tenant_name)
        deadline = (
            time.monotonic() + timeout
            if block and timeout is not None else None
        )
        with self._cond:
            while True:
                if not self._accepting:
                    raise ServiceClosed(
                        f"the cleaning service is "
                        f"{'closing' if self._stopping else 'closed'}"
                    )
                if tenant.poisoned is not None:
                    error = ServiceError(
                        f"tenant {tenant_name!r} is poisoned by an "
                        f"unrecovered failure: {tenant.poisoned}"
                    )
                    error.__cause__ = tenant.poisoned
                    raise error
                if len(tenant.pending) < tenant.high_water:
                    break
                if not block:
                    tenant.stats["overloads"] += 1
                    raise ServiceOverloaded(
                        f"tenant {tenant_name!r} queue is at its "
                        f"high-water mark ({tenant.high_water})"
                    )
                remaining = (
                    None if deadline is None else deadline - time.monotonic()
                )
                if remaining is not None and remaining <= 0:
                    tenant.stats["overloads"] += 1
                    raise ServiceOverloaded(
                        f"tenant {tenant_name!r} queue stayed at its "
                        f"high-water mark ({tenant.high_water}) for "
                        f"{timeout}s"
                    )
                self._cond.wait(remaining)
            ticket = WriteTicket(tenant_name, changeset, tenant.next_seq)
            tenant.next_seq += 1
            tenant.pending.append(ticket)
            tenant.stats["submitted"] += 1
            self._cond.notify_all()
        return ticket

    def read(self, tenant_name: str) -> Relation:
        """A snapshot-isolated view of the tenant's working relation.

        The returned relation is a detached clone cut at the last batch
        commit: it never mutates under the reader, and a batch in flight
        is never visible half-applied.  Consecutive reads between
        commits share one cached clone; a read after a commit waits only
        if a batch is mid-apply at that moment (the clone is cut under
        the tenant's commit lock).
        """
        tenant = self.registry.get(tenant_name)
        tenant.stats["reads"] += 1
        snapshot = tenant._snapshot
        if snapshot is not None and tenant._snapshot_version == tenant.version:
            return snapshot
        with tenant.commit_lock:
            if tenant._snapshot_version != tenant.version:
                working = tenant.session.working
                if working is None:
                    raise DataError(
                        f"tenant {tenant_name!r} has no working relation "
                        "(session closed?)"
                    )
                tenant._snapshot = working.clone()
                tenant._snapshot_version = tenant.version
                tenant.stats["snapshots_cut"] += 1
            return tenant._snapshot

    def query(self, tenant_name: str, fn: Callable[[Relation], Any]) -> Any:
        """Run *fn* against the tenant's snapshot view and return its
        result — convenience for point reads:
        ``service.query("hosp", lambda r: r.by_tid(3)["city"])``."""
        return fn(self.read(tenant_name))

    def stats(self, tenant_name: str) -> Dict[str, int]:
        """A copy of the tenant's counters (submissions, acks, batches,
        overloads, recoveries, replays, checkpoints, reads)."""
        tenant = self.registry.get(tenant_name)
        with self._cond:
            out = dict(tenant.stats)
            out["queue_depth"] = len(tenant.pending)
        return out

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self, drain: bool = True, timeout: Optional[float] = None) -> None:
        """Stop the service: refuse new writes, settle the queue, then
        force-kill every session.

        ``drain=True`` applies every queued ticket first (producers
        blocked in :meth:`submit` are woken with
        :class:`~repro.exceptions.ServiceClosed`); ``drain=False`` fails
        the pending tail with ``ServiceClosed`` immediately.  In both
        cases every tenant session is then ``close()``d — the sharded
        close force-kills worker processes, so a hung worker cannot
        block shutdown.  Idempotent: a second ``close`` is a no-op.

        *timeout* bounds the wait for the consumer thread; on expiry the
        remaining tail is failed with ``ServiceClosed`` and sessions are
        killed anyway.
        """
        with self._cond:
            already = not self._accepting and self._stopping
            self._accepting = False
            self._stopping = True
            if not drain:
                self._fail_pending_locked(ServiceClosed(
                    "the cleaning service was closed without draining"
                ))
            self._cond.notify_all()
        if already and not self._consumer.is_alive():
            return
        self._consumer.join(timeout)
        with self._cond:
            if self._consumer.is_alive():
                # Drain timed out (e.g. a wedged session): abandon the
                # tail so producers are not left waiting forever.
                self._fail_pending_locked(ServiceClosed(
                    f"the cleaning service drain did not finish within "
                    f"{timeout}s"
                ))
        for name in self.registry.names():
            tenant = self.registry.get(name)
            close = getattr(tenant.session, "close", None)
            if close is not None:
                close()

    def __enter__(self) -> "CleaningService":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    def _fail_pending_locked(self, error: BaseException) -> None:
        for name in self.registry.names():
            tenant = self.registry.get(name)
            while tenant.pending:
                ticket = tenant.pending.popleft()
                tenant.stats["failed"] += 1
                ticket._fail(error)

    # ------------------------------------------------------------------
    # Consumer
    # ------------------------------------------------------------------
    def _consume(self) -> None:
        while True:
            with self._cond:
                batch: Optional[Tuple[_Tenant, List[WriteTicket]]] = None
                while batch is None:
                    batch, wait = self._next_batch_locked()
                    if batch is not None:
                        break
                    if self._stopping:
                        return  # nothing pending anywhere: drained
                    self._cond.wait(wait)
            tenant, tickets = batch
            try:
                self._apply_batch(tenant, tickets)
            finally:
                with self._cond:
                    self._cond.notify_all()  # wake backpressured producers

    def _next_batch_locked(
        self,
    ) -> Tuple[Optional[Tuple[_Tenant, List[WriteTicket]]], Optional[float]]:
        """Pick the next due tenant (round-robin) and cut its batch.

        Returns ``(batch, None)`` when a tenant is due, else
        ``(None, wait)`` where *wait* is the seconds until the earliest
        linger deadline (``None`` = nothing queued at all).
        """
        names = sorted(self.registry.names())
        if not names:
            return None, None
        policy = self.flush_policy
        now = time.monotonic()
        wait: Optional[float] = None
        n = len(names)
        start = (self._rr + 1) % n
        for offset in range(n):
            index = (start + offset) % n
            tenant = self.registry.get(names[index])
            if not tenant.pending or tenant.poisoned is not None:
                continue
            age = now - tenant.pending[0].submitted_at
            due = (
                len(tenant.pending) >= policy.max_batch
                or age >= policy.max_linger
                or self._stopping  # draining flushes regardless of linger
            )
            if due:
                self._rr = index
                tickets = [
                    tenant.pending.popleft()
                    for _ in range(min(policy.max_batch, len(tenant.pending)))
                ]
                return (tenant, tickets), None
            remaining = policy.max_linger - age
            wait = remaining if wait is None else min(wait, remaining)
        return None, wait

    # -- batch application ---------------------------------------------
    def _apply_batch(self, tenant: _Tenant, tickets: List[WriteTicket]) -> None:
        changesets = [t.changeset for t in tickets]
        with tenant.commit_lock:
            try:
                result = tenant.session.apply_many(changesets)
            except (DataError, SchemaError):
                # A bad changeset (unknown tid, bad confidence):
                # apply_many validates before mutating, so the session
                # is untouched — isolate the offender per ticket instead
                # of failing innocent writers coalesced into the batch.
                self._apply_individually(tenant, tickets)
                return
            except _POISONING as exc:
                result = self._recover(tenant, tickets, exc)
                if result is _FAILED:
                    return
            self._commit(tenant, tickets, result)

    def _apply_individually(
        self, tenant: _Tenant, tickets: List[WriteTicket]
    ) -> None:
        """Per-ticket fallback after a validation error: apply each
        changeset alone so exactly the invalid ones fail.  Equivalent to
        the coalesced batch (state depends only on the applied deltas),
        at one replay per surviving ticket."""
        for ticket in tickets:
            try:
                result = tenant.session.apply_many([ticket.changeset])
            except (DataError, SchemaError) as exc:
                tenant.stats["failed"] += 1
                ticket._fail(exc)
            except _POISONING as exc:
                result = self._recover(tenant, [ticket], exc)
                if result is not _FAILED:
                    self._commit(tenant, [ticket], result)
            else:
                self._commit(tenant, [ticket], result)

    def _commit(
        self,
        tenant: _Tenant,
        tickets: List[WriteTicket],
        result: Optional[ApplyResult],
    ) -> None:
        """Bookkeeping after a successful apply (still under the commit
        lock): bump the snapshot version, extend the ledger, tick the
        checkpoint policy, acknowledge the tickets."""
        applied = [t for t in tickets if t.changeset.ops]
        if applied:
            tenant.version += 1
            tenant.stats["batches"] += 1
            if tenant.recovery_enabled:
                tenant.ledger.extend(t.changeset for t in applied)
                tenant._batches_since_checkpoint += 1
                if (
                    tenant.checkpoint_every > 0
                    and tenant._batches_since_checkpoint
                    >= tenant.checkpoint_every
                ):
                    self._write_checkpoint(tenant)
        for ticket in tickets:
            tenant.stats["acked"] += 1
            ticket._resolve(result if ticket.changeset.ops else None,
                            tenant.next_ack)
            tenant.next_ack += 1

    # -- checkpoints and recovery --------------------------------------
    def _write_checkpoint(self, tenant: _Tenant) -> None:
        """Checkpoint the tenant's session and prune the ledger to the
        oldest surviving checkpoint's mark."""
        from repro.pipeline import snapshot

        target = snapshot.save_checkpoint(
            tenant.session, tenant.checkpoint_dir,
            retain=tenant.checkpoint_retain,
        )
        seq = int(target.name[len(snapshot.CHECKPOINT_PREFIX):])
        covered = tenant.ledger_base + len(tenant.ledger)
        tenant.checkpoint_marks[seq] = covered
        tenant._batches_since_checkpoint = 0
        tenant.stats["checkpoints_written"] += 1
        surviving = {
            int(path.name[len(snapshot.CHECKPOINT_PREFIX):])
            for path in snapshot.list_checkpoints(tenant.checkpoint_dir)
        }
        tenant.checkpoint_marks = {
            s: mark for s, mark in tenant.checkpoint_marks.items()
            if s in surviving
        }
        floor = min(tenant.checkpoint_marks.values(), default=covered)
        if floor > tenant.ledger_base:
            del tenant.ledger[: floor - tenant.ledger_base]
            tenant.ledger_base = floor

    _sentinel_failed = object()

    def _recover(
        self,
        tenant: _Tenant,
        tickets: List[WriteTicket],
        failure: BaseException,
    ) -> Any:
        """Bring a poisoned tenant back from its newest checkpoint.

        Walks the retained checkpoints newest-to-oldest (exactly
        ``restore_latest``), replays the acknowledged ledger tail the
        restored checkpoint does not cover, swaps the session, and
        re-applies the failed batch.  Returns the re-applied batch's
        result, or the ``_FAILED`` sentinel after poisoning the tenant
        (recovery disabled, exhausted, or itself failing) — in which
        case the batch tickets and the whole pending tail are failed.
        """
        if (
            not tenant.recovery_enabled
            or tenant.recoveries_used >= tenant.max_recoveries
        ):
            self._poison(tenant, tickets, failure)
            return _FAILED
        tenant.recoveries_used += 1
        tenant.stats["recoveries"] += 1
        try:
            tenant.session.close()  # force-kill the poisoned pool
            restored, covered = self._restore_latest(tenant)
            replay = tenant.ledger[covered - tenant.ledger_base:]
            if replay:
                tenant.stats["replayed"] += len(replay)
                restored.apply_many(list(replay))
            tenant.session = restored
            result = restored.apply_many([t.changeset for t in tickets])
        except Exception as exc:  # recovery itself failed: poison
            exc.__cause__ = failure
            self._poison(tenant, tickets, exc)
            return _FAILED
        return result

    def _restore_latest(self, tenant: _Tenant) -> Tuple[Any, int]:
        """``restore_latest`` that also reports the restored
        checkpoint's ledger mark: newest-to-oldest, skipping anything
        that fails validation — but only checkpoints *this service*
        wrote (their marks are known; an alien checkpoint's coverage
        is not, so replaying over it could diverge silently)."""
        from repro.pipeline import snapshot

        last_error: Optional[Exception] = None
        for path in reversed(snapshot.list_checkpoints(tenant.checkpoint_dir)):
            seq = int(path.name[len(snapshot.CHECKPOINT_PREFIX):])
            mark = tenant.checkpoint_marks.get(seq)
            if mark is None:
                continue
            try:
                session = type(tenant.session).restore(
                    path, n_workers=tenant.session.n_workers,
                    supervision=tenant.session.supervision,
                )
            except SnapshotError as exc:
                last_error = exc
                continue
            return session, mark
        raise SnapshotError(
            f"tenant {tenant.name!r}: no restorable checkpoint with a "
            f"known ledger mark under {tenant.checkpoint_dir}"
            + (f" (newest failure: {last_error})" if last_error else "")
        ) from last_error

    def _poison(
        self,
        tenant: _Tenant,
        tickets: List[WriteTicket],
        failure: BaseException,
    ) -> None:
        """Mark the tenant dead and fail its in-flight and queued
        tickets; other tenants are untouched."""
        with self._cond:
            tenant.poisoned = failure
            for ticket in tickets:
                tenant.stats["failed"] += 1
                ticket._fail(failure)
            while tenant.pending:
                ticket = tenant.pending.popleft()
                tenant.stats["failed"] += 1
                ticket._fail(failure)
            self._cond.notify_all()


#: Sentinel: the batch was failed (tickets already resolved) — nothing
#: to commit.
_FAILED = CleaningService._sentinel_failed
