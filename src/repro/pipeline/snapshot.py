"""Durable session snapshots: serialize/restore cleaning sessions exactly.

The sessions of :mod:`repro.pipeline` are stateful by construction —
reliability/currency decisions accumulate across rounds — yet until this
module they lived and died with the process: a service restart meant
re-cleaning millions of rows from scratch.  Snapshots make the session
state durable, in the spirit of incremental view-maintenance engines
that persist auxiliary structures to keep answering under updates
without recomputation (Berkholz et al., "FO+MOD queries under updates").

What is stored vs rebuilt
-------------------------
A snapshot persists exactly the state that is *not* a pure function of
anything else:

* the rules and master data (the session's environment — omitted from
  per-shard snapshots, whose worker already holds them);
* the **base** (dirty) and **working** (repaired) relations, columnar
  (:mod:`repro.pipeline.payload`), insertion order and tid bookkeeping
  (``_next_tid``, retired tids) included — when the resident relations
  are column-backed (:mod:`repro.relational.columns`) the encode/decode
  is a resident-ref ↔ snapshot-ref remap over the column arrays, never a
  per-tuple walk, and the emitted bytes are identical either way;
* the ordered **fix log** and the per-cell **cost map** (entry order is
  preserved so float sums replay bit-identically);
* the **MD match cache** as ``premise projection → master tids`` (master
  data is immutable, so tids re-resolve exactly);
* the **ever-group-key sets** (collision-detection state: they include
  transient keys of past runs and cannot be rebuilt from the data);
* the last satisfaction verdict (it gates the scoped verification path).

Everything derived is rebuilt on restore by
:meth:`~repro.pipeline.session.CleaningSession._attach_relation_state`:
group stores, the violation/check index, the entropy structures and the
master-side blocking indexes are pure functions of the persisted
relations and rules, so rebuilding is both smaller on disk and exact.
A restored session's subsequent ``apply()``/``clean()`` observables are
therefore **byte-identical** to the never-stopped session's — fuzz-
verified (with phase traces compared) in
``tests/properties/test_property_snapshot.py``.

File format
-----------
One framed binary blob (written atomically: temp file + ``os.replace``)::

    MAGIC "UCSN" | version byte | kind | n_sections
    per section:  name | body length | SHA-256(body) | body
    trailer:      SHA-256 of everything above

Section bodies are pickled columnar dicts sharing one
:class:`~repro.pipeline.payload.ValueTable` (its value list is itself a
section), so base/working/log/cache values dedupe against each other.
Any truncation or bit flip fails a digest (or the framing) and raises
:class:`~repro.exceptions.SnapshotCorrupt` — a snapshot is never loaded
silently wrong.  An unknown version byte is refused the same way: format
changes must bump :data:`SNAPSHOT_VERSION` consciously (the golden-
fixture test in ``tests/pipeline/test_snapshot.py`` enforces that
current code keeps restoring committed version-1 snapshots).

Sharded sessions
----------------
``ShardedCleaningSession.save(path)`` writes a *directory*: one snapshot
per shard, named ``shard-<content id>-<state digest>.snap`` — the
``_shard_content_id`` that addresses the shard's live worker session
plus a prefix of the blob's own SHA-256, so a re-save whose shard
*state* changed (same tid set, same content id) writes a fresh file
instead of overwriting one the still-installed previous manifest
references — plus a ``manifest.snap`` holding the coordinator state (plan, merged
working, fix log, per-shard views with their full-form flags) and the
SHA-256 of every shard file, so a manifest and stale shard files from a
different save can never be mixed.  ``restore`` re-attaches every shard
snapshot to its worker slot (slot affinity is content-id-derived, so
each worker gets its old shards back), which is what keeps sticky
re-planning reusing warm shards across restarts.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import struct
import tempfile
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

from repro.core.fixes import FixLog
from repro.exceptions import SnapshotCorrupt, SnapshotError
from repro.pipeline import payload
from repro.relational.schema import Schema

SNAPSHOT_MAGIC = b"UCSN"
#: Bump consciously on any change to the framing or the section schema;
#: restore refuses unknown versions instead of guessing.
SNAPSHOT_VERSION = 1

_PROTOCOL = pickle.HIGHEST_PROTOCOL
_DIGEST = hashlib.sha256
_DIGEST_SIZE = 32

#: The manifest file of a sharded snapshot directory.
MANIFEST_NAME = "manifest.snap"


# ----------------------------------------------------------------------
# Framing
# ----------------------------------------------------------------------
def pack_snapshot(kind: str, sections: Dict[str, bytes]) -> bytes:
    """Frame *sections* into one self-validating snapshot blob."""
    kind_bytes = kind.encode("utf-8")
    if len(kind_bytes) > 255:
        raise SnapshotError(f"snapshot kind too long: {kind!r}")
    out = bytearray()
    out += SNAPSHOT_MAGIC
    out.append(SNAPSHOT_VERSION)
    out.append(len(kind_bytes))
    out += kind_bytes
    out += struct.pack(">I", len(sections))
    for name, body in sections.items():
        name_bytes = name.encode("utf-8")
        out += struct.pack(">H", len(name_bytes))
        out += name_bytes
        out += struct.pack(">Q", len(body))
        out += _DIGEST(body).digest()
        out += body
    out += _DIGEST(bytes(out)).digest()
    return bytes(out)


class _Reader:
    """Bounds-checked cursor over a snapshot blob; every short read is a
    corruption, never an ``IndexError``."""

    __slots__ = ("data", "at")

    def __init__(self, data: bytes):
        self.data = data
        self.at = 0

    def take(self, n: int) -> bytes:
        end = self.at + n
        if n < 0 or end > len(self.data):
            raise SnapshotCorrupt("snapshot truncated mid-frame")
        out = self.data[self.at : end]
        self.at = end
        return out

    def u8(self) -> int:
        return self.take(1)[0]

    def u16(self) -> int:
        return struct.unpack(">H", self.take(2))[0]

    def u32(self) -> int:
        return struct.unpack(">I", self.take(4))[0]

    def u64(self) -> int:
        return struct.unpack(">Q", self.take(8))[0]


def unpack_snapshot(
    data: bytes, expect_kind: Optional[str] = None
) -> Tuple[str, Dict[str, bytes]]:
    """Validate and split a snapshot blob into ``(kind, sections)``.

    Raises :class:`~repro.exceptions.SnapshotCorrupt` on any magic,
    version, framing or checksum failure — validation happens **before**
    any section body is unpickled.
    """
    if len(data) < len(SNAPSHOT_MAGIC) + 2 + _DIGEST_SIZE:
        raise SnapshotCorrupt("snapshot too short to be valid")
    if data[: len(SNAPSHOT_MAGIC)] != SNAPSHOT_MAGIC:
        raise SnapshotCorrupt("not a snapshot (bad magic)")
    body, trailer = data[:-_DIGEST_SIZE], data[-_DIGEST_SIZE:]
    if _DIGEST(body).digest() != trailer:
        raise SnapshotCorrupt("snapshot checksum mismatch (file digest)")
    reader = _Reader(body)
    reader.take(len(SNAPSHOT_MAGIC))
    version = reader.u8()
    if version != SNAPSHOT_VERSION:
        raise SnapshotCorrupt(
            f"unsupported snapshot version {version} (this build reads "
            f"version {SNAPSHOT_VERSION}; bump SNAPSHOT_VERSION consciously "
            f"when the format changes)"
        )
    kind = reader.take(reader.u8()).decode("utf-8")
    if expect_kind is not None and kind != expect_kind:
        raise SnapshotCorrupt(
            f"snapshot kind {kind!r} where {expect_kind!r} was expected"
        )
    sections: Dict[str, bytes] = {}
    for _ in range(reader.u32()):
        name = reader.take(reader.u16()).decode("utf-8")
        length = reader.u64()
        digest = reader.take(_DIGEST_SIZE)
        section = reader.take(length)
        if _DIGEST(section).digest() != digest:
            raise SnapshotCorrupt(
                f"snapshot checksum mismatch in section {name!r}"
            )
        sections[name] = section
    if reader.at != len(body):
        raise SnapshotCorrupt("snapshot carries trailing garbage")
    return kind, sections


def write_snapshot_file(path, blob: bytes) -> int:
    """Atomically write *blob* to *path* (unique temp file + ``os.replace``).

    A crash before the rename leaves the previous snapshot intact; the
    temp file never becomes visible under the target name (and is named
    via ``mkstemp``, so concurrent saves to one path cannot clobber each
    other's temp data).  The containing directory is fsynced after the
    rename, so a reported success survives power loss.  Returns the
    number of bytes written.
    """
    target = os.fspath(path)
    directory = os.path.dirname(target) or "."
    fd, tmp = tempfile.mkstemp(
        dir=directory, prefix=os.path.basename(target) + ".tmp."
    )
    try:
        with os.fdopen(fd, "wb") as fh:
            fh.write(blob)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, target)
        dir_fd = os.open(directory, os.O_RDONLY)
        try:
            os.fsync(dir_fd)  # make the rename itself durable
        finally:
            os.close(dir_fd)
    finally:
        try:
            os.unlink(tmp)  # only present when the replace never happened
        except FileNotFoundError:
            pass
    return len(blob)


def _read_back(path) -> bytes:
    """Read snapshot bytes back from disk through the ``"snapshot.read"``
    fault point (:mod:`repro.pipeline.faults`): an armed ``corrupt`` spec
    flips a byte *before* validation, so the checksummed framing raises
    :class:`~repro.exceptions.SnapshotCorrupt` exactly as a real torn
    file would."""
    data = Path(path).read_bytes()
    from repro.pipeline import faults

    injector = faults.active()
    if injector is not None:
        data = injector.mangle_at("snapshot.read", data, target=os.fspath(path))
    return data


def read_snapshot_file(path, expect_kind: Optional[str] = None):
    """Read and validate a snapshot file; see :func:`unpack_snapshot`."""
    try:
        data = _read_back(path)
    except FileNotFoundError:
        raise SnapshotError(f"no snapshot at {os.fspath(path)!r}") from None
    return unpack_snapshot(data, expect_kind)


# ----------------------------------------------------------------------
# Session encoding
# ----------------------------------------------------------------------
def _schema_lookup_for(*relations_and_rules) -> payload.SchemaLookup:
    """A lookup reusing known schema instances (and memoizing fresh
    ones, so base and working decode onto one schema object)."""
    known: Dict[Tuple[str, Tuple[str, ...]], Schema] = {}

    def remember(schema: Schema) -> None:
        known.setdefault((schema.name, tuple(schema.names)), schema)

    for source in relations_and_rules:
        if source is None:
            continue
        schema = getattr(source, "schema", None)
        if schema is not None:
            remember(schema)

    def lookup(name: str, names: Tuple[str, ...]) -> Schema:
        key = (name, tuple(names))
        schema = known.get(key)
        if schema is None:
            schema = known[key] = Schema(name, names)
        return schema

    return lookup


def encode_session(session, include_environment: bool = True) -> bytes:
    """Serialize a :class:`~repro.pipeline.session.CleaningSession`.

    ``include_environment=False`` omits rules, config and master data —
    the per-shard form, where the hosting worker already owns them and
    supplies them back at decode time.
    """
    from repro.exceptions import DataError

    if session.base is None or session.working is None:
        raise DataError("CleaningSession.save() requires a prior clean()")
    table = payload.ValueTable()
    caches = _cache_entries(session, scoped=not include_environment)
    encoded: Dict[str, Any] = {
        "meta": {
            "collect_traces": session.collect_traces,
            "last_clean": session._last_clean,
            "has_master": session.master is not None,
            "has_environment": include_environment,
        },
        "base": payload.encode_relation(session.base, table),
        "working": payload.encode_relation(session.working, table),
        "fixlog": payload.encode_fixes(session.fix_log.fixes(), table),
        "costs": payload.encode_costs(session._cell_costs, table),
        "ever": payload.encode_ever_keys(session.ever_group_keys, table),
        "cache": payload.encode_match_caches(caches, table),
    }
    if include_environment:
        encoded["environment"] = (session.cfds, session.mds, session.config)
        if session.master is not None:
            encoded["master"] = payload.encode_relation(session.master, table)
    sections = {
        name: pickle.dumps(body, _PROTOCOL) for name, body in encoded.items()
    }
    sections["values"] = pickle.dumps(table.values, _PROTOCOL)
    return pack_snapshot("session", sections)


def _cache_entries(session, scoped: bool) -> Dict[str, List[Tuple]]:
    """The MD match-cache entries worth persisting for *session*.

    Shard sessions share one cache dict per worker (their
    ``md_indexes`` is the :class:`_WorkerState`-level mapping), so a
    *scoped* snapshot keeps only the entries whose premise projection
    occurs in this session's own base or working tuples — otherwise
    every shard file would duplicate the whole worker's cache.  Dropping
    an entry is always safe: the cache is a pure memo, recomputed
    deterministically on miss.
    """
    out: Dict[str, List[Tuple]] = {}
    allowed_by_attrs: Dict[Tuple[str, ...], set] = {}
    for name, index in session.md_indexes.items():
        if not index._match_cache:
            continue
        entries = index.cache_entries()
        if scoped:
            attrs = index._premise_attrs
            allowed = allowed_by_attrs.get(attrs)
            if allowed is None:  # one scan per distinct premise projection
                allowed = allowed_by_attrs[attrs] = (
                    session.working.project(attrs)
                    | session.base.project(attrs)
                )
            entries = [(key, tids) for key, tids in entries if key in allowed]
        if entries:
            out[name] = entries
    return out


def decode_session(
    blob: bytes,
    environment: Optional[Tuple] = None,
):
    """Rebuild a :class:`~repro.pipeline.session.CleaningSession`.

    *environment* — ``(cfds, mds, master, config, md_indexes)`` — must be
    given for snapshots written with ``include_environment=False`` (the
    per-shard form); when given it also wins over an embedded
    environment, which is how a worker re-attaches a shard session to its
    process-local master-side indexes.
    """
    _kind, sections = unpack_snapshot(blob, expect_kind="session")
    return _decode_session_sections(sections, environment)


def _load_section(sections: Dict[str, bytes], name: str) -> Any:
    try:
        body = sections[name]
    except KeyError:
        raise SnapshotCorrupt(f"snapshot is missing section {name!r}") from None
    return pickle.loads(body)


def _decode_session_sections(
    sections: Dict[str, bytes], environment: Optional[Tuple]
):
    from repro.pipeline.session import CleaningSession

    values: List[Any] = _load_section(sections, "values")
    meta = _load_section(sections, "meta")
    if environment is not None:
        cfds, mds, master, config, md_indexes = environment
    else:
        if not meta["has_environment"]:
            raise SnapshotError(
                "snapshot was written without its environment (per-shard "
                "form); pass rules/master/config to decode it"
            )
        cfds, mds, config = _load_section(sections, "environment")
        master = (
            payload.decode_relation(
                _load_section(sections, "master"), values,
                _schema_lookup_for(*cfds),
            )
            if meta["has_master"]
            else None
        )
        md_indexes = None
    session = CleaningSession.from_normalized(
        cfds,
        mds,
        master,
        config,
        md_indexes=md_indexes,
        collect_traces=meta["collect_traces"],
    )
    lookup = _schema_lookup_for(*cfds, master)
    base = payload.decode_relation(_load_section(sections, "base"), values, lookup)
    working = payload.decode_relation(
        _load_section(sections, "working"), values, lookup
    )
    fix_log = FixLog()
    for fix in payload.decode_fixes(_load_section(sections, "fixlog"), values):
        fix_log.record(fix)
    session._adopt_restored_state(
        base=base,
        working=working,
        fix_log=fix_log,
        cell_costs=payload.decode_costs(_load_section(sections, "costs"), values),
        ever_group_keys=payload.decode_ever_keys(
            _load_section(sections, "ever"), values
        ),
        last_clean=meta["last_clean"],
    )
    # _attach_relation_state built the blocking indexes; re-warm their
    # match caches with the persisted entries (exact: master tids).
    for name, entries in payload.decode_match_caches(
        _load_section(sections, "cache"), values
    ).items():
        index = session.md_indexes.get(name)
        if index is not None:
            index.warm_cache(entries)
    return session


def save_session(session, path) -> int:
    """Write *session* to the snapshot file *path* atomically."""
    return write_snapshot_file(path, encode_session(session))


def restore_session(path):
    """Rebuild a session from the snapshot file at *path*."""
    _kind, sections = read_snapshot_file(path, expect_kind="session")
    return _decode_session_sections(sections, environment=None)


# ----------------------------------------------------------------------
# Sharded sessions (manifest + one snapshot per shard)
# ----------------------------------------------------------------------
def save_sharded(session, path) -> int:
    """Write *session* (a sharded session) to the directory *path*.

    Shard snapshots are pulled from their workers and written first,
    then the manifest — which names every shard file with its SHA-256 —
    is renamed into place last, so a reader either sees a complete,
    cross-checked snapshot or the previous one.  Returns total bytes.
    """
    from repro.exceptions import DataError

    if session.working is None or session.base is None or session.plan is None:
        raise DataError(
            "ShardedCleaningSession.save() requires a prior clean()"
        )
    if session._closed:
        raise DataError("cannot save a close()d ShardedCleaningSession")
    if session._pending:
        raise DataError(
            "flush() the buffered changesets before save() (buffered ops "
            "are not part of the session state)"
        )
    directory = Path(path)
    directory.mkdir(parents=True, exist_ok=True)

    runner = session._ensure_runner()
    shard_ids = list(session.plan.ids)
    blobs: List[bytes] = runner.run(
        [(sid, "snapshot_shard", ()) for sid in shard_ids]
    )
    total = 0
    shard_files: List[Tuple[str, str, str]] = []
    for sid, blob in zip(shard_ids, blobs):
        digest = _DIGEST(blob).hexdigest()
        # Content-addressed name: a shard whose *state* changed gets a
        # fresh file even when its tid set (and hence content id) did
        # not, so re-saving into the same directory never overwrites a
        # file the still-installed previous manifest references — a
        # crash anywhere mid-save leaves the old snapshot restorable.
        file_name = f"shard-{sid}-{digest[:16]}.snap"
        total += write_snapshot_file(directory / file_name, blob)
        shard_files.append((sid, file_name, digest))

    table = payload.ValueTable()
    views = []
    for sid in shard_ids:
        view = session._shard_views[sid]
        views.append(
            (sid, _encode_view(view, table), view.fullform)
        )
    encoded: Dict[str, Any] = {
        "meta": {
            "last_clean": session._last_clean,
            "stats": dict(session.stats),
            "n_workers": session.n_workers,
            "n_shards": session.n_shards,
            "reuse_sessions": session.reuse_sessions,
            "include_md_affinity": session.include_md_affinity,
            "track_legacy_bytes": session.track_legacy_bytes,
            "has_master": session.master is not None,
            "shard_files": shard_files,
        },
        "environment": (session.cfds, session.mds, session.config),
        "base": payload.encode_relation(session.base, table),
        "working": payload.encode_relation(session.working, table),
        "fixlog": payload.encode_fixes(session.fix_log.fixes(), table),
        "plan": {
            "shards": [payload.pack_ints(tids) for tids in session.plan.shards],
            "ids": list(session.plan.ids),
            "n_components": session.plan.n_components,
            "degenerate": session.plan.degenerate,
            "reason": session.plan.reason,
        },
        "views": views,
    }
    if session.master is not None:
        encoded["master"] = payload.encode_relation(session.master, table)
    sections = {
        name: pickle.dumps(body, _PROTOCOL) for name, body in encoded.items()
    }
    sections["values"] = pickle.dumps(table.values, _PROTOCOL)
    total += write_snapshot_file(
        directory / MANIFEST_NAME, pack_snapshot("sharded", sections)
    )
    # With the new manifest durably in place, retire shard files it does
    # not reference (earlier saves' states, ids that left the plan).
    keep = {MANIFEST_NAME} | {file_name for _sid, file_name, _d in shard_files}
    for stale in directory.glob("shard-*.snap"):
        if stale.name not in keep:
            stale.unlink()
    return total


def _encode_view(view, table: payload.ValueTable) -> Dict[str, Any]:
    from repro.pipeline import sharding

    if view.repaired is not None:
        raise SnapshotError(
            "shard view still holds an unmerged repaired relation"
        )
    return sharding._encode_clean_outcome(view, table)


def restore_sharded(
    path,
    n_workers: Optional[int] = None,
    supervision=None,
    checkpoint_dir=None,
    checkpoint_every: int = 0,
    checkpoint_retain: int = 3,
):
    """Rebuild a :class:`~repro.pipeline.sharding.ShardedCleaningSession`
    from a :func:`save_sharded` directory.

    Every shard snapshot is verified against the manifest's digest and
    re-attached to its worker (content-id slot affinity puts each shard
    back where it lived), so the next sticky re-plan reuses the restored
    shards instead of re-cleaning them.  *n_workers* may override the
    saved worker count — shard state is worker-agnostic.  *supervision*
    and the ``checkpoint_*`` knobs configure the restored session; they
    are runtime policy, deliberately not snapshot state.
    """
    from repro.pipeline.sharding import ShardedCleaningSession, ShardPlan

    directory = Path(path)
    _kind, sections = read_snapshot_file(
        directory / MANIFEST_NAME, expect_kind="sharded"
    )
    values: List[Any] = _load_section(sections, "values")
    meta = _load_section(sections, "meta")
    cfds, mds, config = _load_section(sections, "environment")
    master = (
        payload.decode_relation(
            _load_section(sections, "master"), values, _schema_lookup_for(*cfds)
        )
        if meta["has_master"]
        else None
    )
    session = ShardedCleaningSession.from_normalized(
        cfds,
        mds,
        master,
        config,
        n_workers=n_workers if n_workers is not None else meta["n_workers"],
        n_shards=meta["n_shards"],
        include_md_affinity=meta["include_md_affinity"],
        reuse_sessions=meta["reuse_sessions"],
        track_legacy_bytes=meta["track_legacy_bytes"],
        supervision=supervision,
        checkpoint_dir=checkpoint_dir,
        checkpoint_every=checkpoint_every,
        checkpoint_retain=checkpoint_retain,
    )
    lookup = _schema_lookup_for(*cfds, master)
    session.base = payload.decode_relation(
        _load_section(sections, "base"), values, lookup
    )
    session.working = payload.decode_relation(
        _load_section(sections, "working"), values, lookup
    )
    log = FixLog()
    for fix in payload.decode_fixes(_load_section(sections, "fixlog"), values):
        log.record(fix)
    session.fix_log = log
    plan_blob = _load_section(sections, "plan")
    shards = [list(tids) for tids in plan_blob["shards"]]
    session.plan = ShardPlan(
        shards=shards,
        shard_of={
            tid: index for index, tids in enumerate(shards) for tid in tids
        },
        n_components=plan_blob["n_components"],
        degenerate=plan_blob["degenerate"],
        reason=plan_blob["reason"],
        ids=list(plan_blob["ids"]),
    )
    # The crash-recovery registry aliases the plan's tid lists, exactly
    # as _install_plan arranges for a live session.
    session._shard_tids = {
        sid: tids for sid, tids in zip(session.plan.ids, session.plan.shards)
    }
    from repro.pipeline import sharding

    session._shard_views = {}
    for sid, view_blob, fullform in _load_section(sections, "views"):
        view = sharding._decode_clean_outcome(view_blob, values)
        view.fullform = fullform
        session._shard_views[sid] = view
    session._last_clean = meta["last_clean"]
    session.stats.update(meta["stats"])

    # Read and digest-check every shard blob *before* spawning workers,
    # so a corrupt directory raises without leaking a process pool.
    calls = []
    for sid, file_name, digest in meta["shard_files"]:
        try:
            blob = _read_back(directory / file_name)
        except FileNotFoundError:
            raise SnapshotCorrupt(
                f"sharded snapshot is missing shard file {file_name!r}"
            ) from None
        if _DIGEST(blob).hexdigest() != digest:
            raise SnapshotCorrupt(
                f"shard file {file_name!r} does not match the manifest digest"
            )
        calls.append((sid, "restore_shard", (blob,)))
    try:
        session._ensure_runner().run(calls)
    except BaseException:
        session.close()  # do not leak the pool on a failed re-attach
        raise
    session._session_ids = {sid for sid, _f, _d in meta["shard_files"]}
    session._sync_io_stats()
    return session


# ----------------------------------------------------------------------
# Checkpoints (a retained sequence of sharded snapshots)
# ----------------------------------------------------------------------
#: Checkpoint directories are named ``checkpoint-<seq>`` with a fixed-
#: width sequence number, so lexicographic order is creation order.
CHECKPOINT_PREFIX = "checkpoint-"


def list_checkpoints(path) -> List[Path]:
    """The checkpoint directories under *path*, oldest first."""
    root = Path(path)
    if not root.is_dir():
        return []
    out: List[Tuple[int, Path]] = []
    for entry in root.iterdir():
        if not entry.is_dir() or not entry.name.startswith(CHECKPOINT_PREFIX):
            continue
        suffix = entry.name[len(CHECKPOINT_PREFIX):]
        if suffix.isdigit():
            out.append((int(suffix), entry))
    out.sort()
    return [entry for _seq, entry in out]


def save_checkpoint(session, path, retain: int = 3) -> Path:
    """Write a sharded snapshot of *session* as the next checkpoint under
    *path* and prune all but the newest *retain* checkpoints.

    Each checkpoint is a :func:`save_sharded` directory; its manifest is
    written last, so a checkpoint that lost a race with a crash simply
    fails validation and :func:`restore_latest_checkpoint` falls back to
    the previous one.  Returns the new checkpoint's path.
    """
    root = Path(path)
    root.mkdir(parents=True, exist_ok=True)
    existing = list_checkpoints(root)
    seq = (
        int(existing[-1].name[len(CHECKPOINT_PREFIX):]) + 1 if existing else 1
    )
    target = root / f"{CHECKPOINT_PREFIX}{seq:06d}"
    save_sharded(session, target)
    if retain > 0:
        import shutil

        for stale in list_checkpoints(root)[:-retain]:
            shutil.rmtree(stale, ignore_errors=True)
    return target


def restore_latest_checkpoint(
    path,
    n_workers: Optional[int] = None,
    supervision=None,
    checkpoint_every: int = 0,
    checkpoint_retain: int = 3,
):
    """Restore the newest checkpoint under *path* that validates.

    Corrupt, torn or half-written checkpoints (a flipped byte, a missing
    shard file, a crash mid-save) are skipped newest-to-oldest until one
    restores cleanly; raises :class:`~repro.exceptions.SnapshotError`
    when none does.  The restored session checkpoints back into *path*
    when *checkpoint_every* is set.
    """
    candidates = list_checkpoints(path)
    last_error: Optional[Exception] = None
    for candidate in reversed(candidates):
        try:
            return restore_sharded(
                candidate,
                n_workers=n_workers,
                supervision=supervision,
                checkpoint_dir=path,
                checkpoint_every=checkpoint_every,
                checkpoint_retain=checkpoint_retain,
            )
        except SnapshotError as exc:
            last_error = exc
    if last_error is not None:
        raise SnapshotError(
            f"no restorable checkpoint under {os.fspath(path)!r} "
            f"(newest failure: {last_error})"
        ) from last_error
    raise SnapshotError(f"no checkpoints under {os.fspath(path)!r}")
