"""Columnar coordinator↔worker payloads for partition-parallel cleaning.

PR 3 shipped whole pickled object graphs across the process boundary:
each ``clean_shard`` pickled a :class:`~repro.relational.relation.Relation`
tuple-by-tuple (one dict of values + one dict of confidences per
``CTuple``), and each outcome pickled lists of :class:`~repro.core.fixes.Fix`
dataclasses, ``{(tid, attr): cost}`` dicts and per-spec group-key sets.
Pickle memoizes by object *identity*, not equality, so the highly
repetitive relational payloads (a handful of distinct city names across
thousands of rows; the same attribute names on every fix) are re-encoded
over and over.

This module replaces those graphs with **typed column arrays over one
per-payload value dictionary**:

* every scalar (cell value, confidence, attribute name, rule name, fix
  source) is interned into a single ``values`` table, deduplicated by
  ``(type, value)`` — the type guard keeps ``0``, ``0.0`` and ``False``
  from aliasing one slot;
* fixed-width data — tids, table references, costs — travels as
  :class:`array.array` columns (the narrowest int width that fits, see
  :func:`pack_ints`; ``d`` for costs), which pickle as raw machine bytes
  instead of per-element opcodes;
* irregular data (scheduling-trace ranks, ever-group-key sets) keeps its
  tuple shape but with scalars replaced by table references.

Encoders take the shared :class:`ValueTable` of the enclosing payload so
every section of one message deduplicates against every other; the
message-level framing (and the choice to skip encoding entirely on the
``n_workers=1`` in-process path) lives in
:mod:`repro.pipeline.sharding`.  Round-trips are exact — property- and
unit-tested in ``tests/pipeline/test_payload.py`` — and the size win
(≥2× vs the PR 3 pickled forms on the PART testbed) is asserted
structurally there and by the ``replan`` scenario of
``benchmarks/perf_report.py``; wall-clock is never asserted.
"""

from __future__ import annotations

import struct
import zlib
from array import array
from typing import Any, Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.core.fixes import Fix, FixKind
from repro.exceptions import TornFrame
from repro.core.trace import RoundTrace, WorklistTrace
from repro.pipeline.changeset import KEEP, CellEdit, Delete, Insert, Op
from repro.relational.relation import Relation
from repro.relational.schema import Schema
from repro.relational.tuples import CTuple

Cell = Tuple[int, str]
Key = Tuple[Any, ...]

_FIX_KINDS: Tuple[FixKind, ...] = tuple(FixKind)
_FIX_KIND_INDEX: Dict[FixKind, int] = {k: i for i, k in enumerate(_FIX_KINDS)}


class ValueTable:
    """A per-payload scalar dictionary: value → small integer reference.

    Values are deduplicated by ``(type, value)`` so numerically equal
    scalars of different types (``0`` / ``0.0`` / ``False``) keep their
    identity through a round-trip.  Unhashable values are appended
    without deduplication (they cannot recur by equality anyway).
    """

    __slots__ = ("values", "_index")

    def __init__(self) -> None:
        self.values: List[Any] = []
        self._index: Dict[Tuple[type, Any], int] = {}

    def ref(self, value: Any) -> int:
        """Intern *value*, returning its table reference."""
        try:
            key = (value.__class__, value)
            index = self._index.get(key)
            if index is None:
                index = self._index[key] = len(self.values)
                self.values.append(value)
            return index
        except TypeError:  # unhashable: store without dedup
            self.values.append(value)
            return len(self.values) - 1

    def refs(self, items: Sequence[Any]) -> array:
        """Intern a sequence, returning the narrowest int array of
        references that fits."""
        ref = self.ref
        return pack_ints([ref(v) for v in items])


def pack_ints(items: Sequence[int]) -> array:
    """The narrowest :class:`array.array` that holds *items* exactly.

    Table references, tids and trace counters are overwhelmingly small
    non-negative ints; a fixed 4/8-byte column wastes most of its width
    (and can even lose to pickle's variable-length ints).  Unsigned
    widths ``B``/``H``/``I``/``Q`` cover the non-negative case, signed
    ``i``/``q`` the rest.  Decoders never care: every width iterates
    back to plain ints.
    """
    items = items if isinstance(items, list) else list(items)
    if not items:
        return array("B")
    lo = min(items)
    hi = max(items)
    if lo >= 0:
        if hi < 1 << 8:
            return array("B", items)
        if hi < 1 << 16:
            return array("H", items)
        if hi < 1 << 32:
            return array("I", items)
        return array("Q", items)
    if -(1 << 31) <= lo and hi < 1 << 31:
        return array("i", items)
    return array("q", items)


def _encode_node(node: Any, table: ValueTable) -> Any:
    """Encode a scalar-or-tuple tree (trace ranks, group keys) by
    replacing scalars with table references, preserving tuple shape.

    Non-negative ``int`` scalars (tids, rule indices, rounds — the bulk
    of trace ranks) already pickle as compactly as a reference would, so
    they stay inline; everything else becomes a reference, sign-tagged
    as ``-(index + 1)`` so the decoder can tell the two apart.
    """
    if isinstance(node, tuple):
        return tuple(_encode_node(item, table) for item in node)
    if type(node) is int and node >= 0:
        return node
    return -(table.ref(node) + 1)


def _decode_node(node: Any, values: List[Any]) -> Any:
    if isinstance(node, tuple):
        return tuple(_decode_node(item, values) for item in node)
    if node >= 0:
        return node
    return values[-node - 1]


# ----------------------------------------------------------------------
# Relations
# ----------------------------------------------------------------------
SchemaLookup = Callable[[str, Tuple[str, ...]], Optional[Schema]]


def encode_relation(relation: Relation, table: ValueTable) -> Dict[str, Any]:
    """One column of value references and one of confidence references
    per attribute, plus tid/bookkeeping arrays — no per-tuple dicts.

    Column-backed relations take the ref-bridge fast path: resident
    cells are already interned integers, so encoding is a resident-ref →
    message-ref remap over the column arrays (one dictionary hit per
    *distinct* resident value instead of one per cell), never touching a
    tuple object.  The interning walk follows the exact row-major,
    value-then-confidence order of the per-tuple path, so the emitted
    blob — including message-table reference numbering — is
    byte-identical for both backings.
    """
    names = relation.schema.names
    store = relation.column_store
    cols: List[List[int]] = [[] for _ in names]
    confs: List[List[int]] = [[] for _ in names]
    ref = table.ref
    if store is not None:
        resident_values = store.table.values
        vcols = [store.values[store.index_of[a]].data for a in names]
        ccols = [store.confs[store.index_of[a]].data for a in names]
        span = range(len(names))
        remap: Dict[int, int] = {}
        tids, rows = relation._live_rows()
        row_iter = range(len(tids)) if rows is None else rows
        for row in row_iter:
            for index in span:
                r = vcols[index][row]
                m = remap.get(r)
                if m is None:
                    m = remap[r] = ref(resident_values[r])
                cols[index].append(m)
                r = ccols[index][row]
                m = remap.get(r)
                if m is None:
                    m = remap[r] = ref(resident_values[r])
                confs[index].append(m)
    else:
        for t in relation:
            values = t._values
            conf = t._conf
            for index, attr in enumerate(names):
                cols[index].append(ref(values[attr]))
                confs[index].append(ref(conf[attr]))
    return {
        "schema": (relation.schema.name, tuple(names)),
        "tids": pack_ints(list(relation.tids())),
        "next_tid": relation._next_tid,
        "retired": pack_ints(sorted(relation._retired)),
        "cols": [pack_ints(col) for col in cols],
        "confs": [pack_ints(col) for col in confs],
    }


def decode_relation(
    blob: Dict[str, Any],
    values: List[Any],
    schema_lookup: Optional[SchemaLookup] = None,
) -> Relation:
    """Rebuild the relation; *schema_lookup* lets the worker reuse the
    schema object its rules/master already carry (same structural
    equality either way — this only avoids duplicate Schema instances)."""
    name, names = blob["schema"]
    schema = schema_lookup(name, names) if schema_lookup is not None else None
    if schema is None:
        schema = Schema(name, names)
    relation = Relation(schema)
    tuples = relation._tuples
    cols = blob["cols"]
    confs = blob["confs"]
    store = relation.column_store
    if store is not None:
        # Ref bridge: remap message refs straight into the resident
        # table and append column rows — no per-tuple dicts are built.
        from repro.relational.columns import ColumnTuple

        resident_ref = store.table.ref
        remap: Dict[int, int] = {}
        make = ColumnTuple.make
        append = store.append_refs
        for row, tid in enumerate(blob["tids"]):
            vrefs: List[int] = []
            for col in cols:
                r = col[row]
                m = remap.get(r)
                if m is None:
                    m = remap[r] = resident_ref(values[r])
                vrefs.append(m)
            crefs: List[int] = []
            for col in confs:
                r = col[row]
                m = remap.get(r)
                if m is None:
                    m = remap[r] = resident_ref(values[r])
                crefs.append(m)
            tuples[tid] = make(store, append(tid, vrefs, crefs), tid)
    else:
        for row, tid in enumerate(blob["tids"]):
            t = CTuple.__new__(CTuple)
            t.schema = schema
            t.tid = tid
            t._values = {
                attr: values[cols[index][row]] for index, attr in enumerate(names)
            }
            t._conf = {
                attr: values[confs[index][row]] for index, attr in enumerate(names)
            }
            tuples[tid] = t
    relation._next_tid = blob["next_tid"]
    relation._retired = set(blob["retired"])
    return relation


# ----------------------------------------------------------------------
# Fix segments
# ----------------------------------------------------------------------
def encode_fixes(fixes: Sequence[Fix], table: ValueTable) -> Dict[str, Any]:
    """Nine parallel columns instead of one dataclass per fix."""
    return {
        "kind": array("b", [_FIX_KIND_INDEX[f.kind] for f in fixes]),
        "rule": table.refs([f.rule_name for f in fixes]),
        "tid": pack_ints([f.tid for f in fixes]),
        "attr": table.refs([f.attr for f in fixes]),
        "old": table.refs([f.old_value for f in fixes]),
        "new": table.refs([f.new_value for f in fixes]),
        "old_conf": table.refs([f.old_conf for f in fixes]),
        "new_conf": table.refs([f.new_conf for f in fixes]),
        "source": table.refs([f.source for f in fixes]),
    }


def decode_fixes(blob: Dict[str, Any], values: List[Any]) -> List[Fix]:
    return [
        Fix(
            kind=_FIX_KINDS[kind],
            rule_name=values[rule],
            tid=tid,
            attr=values[attr],
            old_value=values[old],
            new_value=values[new],
            old_conf=values[old_conf],
            new_conf=values[new_conf],
            source=values[source],
        )
        for kind, rule, tid, attr, old, new, old_conf, new_conf, source in zip(
            blob["kind"], blob["rule"], blob["tid"], blob["attr"],
            blob["old"], blob["new"], blob["old_conf"], blob["new_conf"],
            blob["source"],
        )
    ]


# ----------------------------------------------------------------------
# Per-cell costs and cell sets
# ----------------------------------------------------------------------
def encode_costs(costs: Dict[Cell, float], table: ValueTable) -> Dict[str, Any]:
    cells = list(costs)
    return {
        "tid": pack_ints([tid for tid, _attr in cells]),
        "attr": table.refs([attr for _tid, attr in cells]),
        "cost": array("d", [costs[cell] for cell in cells]),
    }


def decode_costs(blob: Dict[str, Any], values: List[Any]) -> Dict[Cell, float]:
    return {
        (tid, values[attr]): cost
        for tid, attr, cost in zip(blob["tid"], blob["attr"], blob["cost"])
    }


def encode_cells(cells: Sequence[Cell], table: ValueTable) -> Dict[str, Any]:
    return {
        "tid": pack_ints([tid for tid, _attr in cells]),
        "attr": table.refs([attr for _tid, attr in cells]),
    }


def decode_cells(blob: Dict[str, Any], values: List[Any]) -> List[Cell]:
    return [(tid, values[attr]) for tid, attr in zip(blob["tid"], blob["attr"])]


# ----------------------------------------------------------------------
# Touched rows (scoped-apply state shipping)
# ----------------------------------------------------------------------
def encode_rows(
    rows: Dict[int, Tuple[List[Any], List[Optional[float]]]],
    table: ValueTable,
) -> Dict[str, Any]:
    """``tid → (values, confs)`` rows as one flat reference column each;
    every row spans the full schema, so the width is implied."""
    tids = list(rows)
    flat_values: List[Any] = []
    flat_confs: List[Any] = []
    for tid in tids:
        values, confs = rows[tid]
        flat_values.extend(values)
        flat_confs.extend(confs)
    return {
        "tid": pack_ints(tids),
        "values": table.refs(flat_values),
        "confs": table.refs(flat_confs),
    }


def decode_rows(
    blob: Dict[str, Any], values: List[Any]
) -> Dict[int, Tuple[List[Any], List[Optional[float]]]]:
    tids = blob["tid"]
    out: Dict[int, Tuple[List[Any], List[Optional[float]]]] = {}
    if not len(tids):
        return out
    width = len(blob["values"]) // len(tids)
    for index, tid in enumerate(tids):
        start = index * width
        out[tid] = (
            [values[ref] for ref in blob["values"][start : start + width]],
            [values[ref] for ref in blob["confs"][start : start + width]],
        )
    return out


# ----------------------------------------------------------------------
# Ever-group-key sets (collision-detection state)
# ----------------------------------------------------------------------
def encode_ever_keys(
    ever_keys: Dict[Tuple, Set[Key]], table: ValueTable
) -> List[Tuple[Any, int, array]]:
    """Per rule spec: the spec (small, shipped by shape with interned
    scalars), the key width, and one flat reference column of all keys."""
    out: List[Tuple[Any, int, array]] = []
    for spec, keys in ever_keys.items():
        width = len(next(iter(keys))) if keys else 0
        flat: List[Any] = []
        for key in keys:
            flat.extend(key)
        out.append((_encode_node(spec, table), width, table.refs(flat)))
    return out


def decode_ever_keys(
    blobs: List[Tuple[Any, int, array]], values: List[Any]
) -> Dict[Tuple, Set[Key]]:
    out: Dict[Tuple, Set[Key]] = {}
    for spec_node, width, flat in blobs:
        spec = _decode_node(spec_node, values)
        keys: Set[Key] = set()
        if width:
            for start in range(0, len(flat), width):
                keys.add(
                    tuple(values[ref] for ref in flat[start : start + width])
                )
        out[spec] = keys
    return out


# ----------------------------------------------------------------------
# MD match caches (session snapshots re-warm them on restore)
# ----------------------------------------------------------------------
def encode_match_caches(
    caches: Dict[str, Sequence[Tuple[Key, Sequence[int]]]], table: ValueTable
) -> List[Dict[str, Any]]:
    """Per MD name: the cached premise projections as one flat reference
    column (fixed width per MD) and the matched master tids as a
    length-prefixed flat column.  Entry order is preserved, so a restored
    cache dict iterates exactly like the saved one."""
    out: List[Dict[str, Any]] = []
    for name, entries in caches.items():
        width = len(entries[0][0]) if entries else 0
        flat_keys: List[Any] = []
        lens: List[int] = []
        flat_tids: List[int] = []
        for key, tids in entries:
            flat_keys.extend(key)
            lens.append(len(tids))
            flat_tids.extend(tids)
        out.append(
            {
                "name": name,
                "width": width,
                "keys": table.refs(flat_keys),
                "lens": pack_ints(lens),
                "tids": pack_ints(flat_tids),
            }
        )
    return out


def decode_match_caches(
    blobs: List[Dict[str, Any]], values: List[Any]
) -> Dict[str, List[Tuple[Key, List[int]]]]:
    out: Dict[str, List[Tuple[Key, List[int]]]] = {}
    for blob in blobs:
        width = blob["width"]
        keys_flat = blob["keys"]
        tids_flat = blob["tids"]
        entries: List[Tuple[Key, List[int]]] = []
        tid_at = 0
        for index, n_tids in enumerate(blob["lens"]):
            start = index * width
            key = tuple(
                values[ref] for ref in keys_flat[start : start + width]
            )
            entries.append((key, list(tids_flat[tid_at : tid_at + n_tids])))
            tid_at += n_tids
        out[blob["name"]] = entries
    return out


# ----------------------------------------------------------------------
# Scheduling traces
# ----------------------------------------------------------------------
def encode_trace(trace: Any, table: ValueTable) -> Any:
    """Pack a :class:`WorklistTrace` / :class:`RoundTrace` (or ``None``):
    pops become two int columns, ranks keep their shape with interned
    scalars."""
    if trace is None:
        return None
    if isinstance(trace, WorklistTrace):
        children, fixes = trace.pack_pops()
        roots = trace.root_ranks
        if roots and all(
            type(rank) is tuple
            and len(rank) == len(roots[0])
            and all(type(item) is int and item >= 0 for item in rank)
            for rank in roots
        ):
            # The common case (cRepair ranks are fixed-width int
            # tuples): one narrow column per rank position.
            width = len(roots[0])
            root_blob: Any = (
                "cols",
                width,
                [
                    pack_ints([rank[position] for rank in roots])
                    for position in range(width)
                ],
            )
        else:
            root_blob = ("nodes", [_encode_node(r, table) for r in roots])
        return ("w", root_blob, pack_ints(children), pack_ints(fixes))
    return ("r", [_encode_node(token, table) for token in trace.tokens])


def decode_trace(blob: Any, values: List[Any]) -> Any:
    if blob is None:
        return None
    if blob[0] == "w":
        _tag, root_blob, children, fixes = blob
        if root_blob[0] == "cols":
            _rtag, _width, columns = root_blob
            root_ranks: List[Tuple] = (
                [tuple(rank) for rank in zip(*columns)] if columns else []
            )
        else:
            root_ranks = [_decode_node(rank, values) for rank in root_blob[1]]
        return WorklistTrace(
            root_ranks=root_ranks,
            pops=WorklistTrace.unpack_pops(children, fixes),
        )
    _tag, tokens = blob
    return RoundTrace(tokens=[_decode_node(token, values) for token in tokens])


# ----------------------------------------------------------------------
# Changeset ops (coordinator → worker apply payload)
# ----------------------------------------------------------------------
_NO_REF = -1  # column sentinel: KEEP / not applicable


def encode_ops(ops: Sequence[Op], table: ValueTable) -> Dict[str, Any]:
    """One kind column driving three per-kind streams: edit columns,
    delete tids, and a (rare) insert list."""
    kinds = array("b")
    edit_tid = array("q")
    edit_attr = array("i")
    edit_value = array("i")
    edit_conf = array("i")
    delete_tid = array("q")
    inserts: List[Tuple[Any, Any]] = []
    for op in ops:
        if isinstance(op, CellEdit):
            kinds.append(0)
            edit_tid.append(op.tid)
            edit_attr.append(table.ref(op.attr))
            edit_value.append(
                _NO_REF if op.value is KEEP else table.ref(op.value)
            )
            edit_conf.append(_NO_REF if op.conf is KEEP else table.ref(op.conf))
        elif isinstance(op, Insert):
            kinds.append(1)
            values = tuple(
                (table.ref(attr), table.ref(value))
                for attr, value in op.values.items()
            )
            confs = (
                None
                if op.confidences is None
                else tuple(
                    (table.ref(attr), table.ref(conf))
                    for attr, conf in op.confidences.items()
                )
            )
            inserts.append((values, confs))
        else:
            kinds.append(2)
            delete_tid.append(op.tid)
    return {
        "kind": kinds,
        "edit_tid": edit_tid,
        "edit_attr": edit_attr,
        "edit_value": edit_value,
        "edit_conf": edit_conf,
        "delete_tid": delete_tid,
        "inserts": inserts,
    }


def decode_ops(blob: Dict[str, Any], values: List[Any]) -> List[Op]:
    out: List[Op] = []
    edit_at = delete_at = insert_at = 0
    for kind in blob["kind"]:
        if kind == 0:
            value_ref = blob["edit_value"][edit_at]
            conf_ref = blob["edit_conf"][edit_at]
            out.append(
                CellEdit(
                    tid=blob["edit_tid"][edit_at],
                    attr=values[blob["edit_attr"][edit_at]],
                    value=KEEP if value_ref == _NO_REF else values[value_ref],
                    conf=KEEP if conf_ref == _NO_REF else values[conf_ref],
                )
            )
            edit_at += 1
        elif kind == 1:
            value_pairs, conf_pairs = blob["inserts"][insert_at]
            out.append(
                Insert(
                    values={values[a]: values[v] for a, v in value_pairs},
                    confidences=(
                        None
                        if conf_pairs is None
                        else {values[a]: values[c] for a, c in conf_pairs}
                    ),
                )
            )
            insert_at += 1
        else:
            out.append(Delete(tid=blob["delete_tid"][delete_at]))
            delete_at += 1
    return out


# ----------------------------------------------------------------------
# CRC frame envelope (coordinator<->worker transport integrity)
# ----------------------------------------------------------------------
#: Frame layout: 4-byte magic + big-endian u32 CRC32 + u64 length + body.
FRAME_MAGIC = b"UCF1"
_FRAME_HEADER = struct.Struct(">IQ")
_FRAME_OVERHEAD = len(FRAME_MAGIC) + _FRAME_HEADER.size


def frame(body: bytes) -> bytes:
    """Wrap *body* in the CRC envelope every coordinator<->worker message
    travels in.  A frame that arrives torn (truncated, bit-flipped, or
    mis-split) fails :func:`unframe` instead of being decoded into wrong
    state -- the supervised runner then retries the dispatch."""
    return (
        FRAME_MAGIC
        + _FRAME_HEADER.pack(zlib.crc32(body) & 0xFFFFFFFF, len(body))
        + body
    )


def unframe(data: bytes, label: str = "") -> bytes:
    """Validate and strip the CRC envelope of :func:`frame`.

    Raises :class:`~repro.exceptions.TornFrame` on any mismatch (magic,
    length or CRC32) -- always *before* any payload bytes are decoded.
    ``"payload.unframe"`` is a named fault point: an installed
    :mod:`~repro.pipeline.faults` injector may corrupt the bytes here to
    simulate a torn frame deterministically.
    """
    from repro.pipeline import faults as _faults

    injector = _faults.active()
    if injector is not None:
        data = injector.mangle_at("payload.unframe", data, target=label)
    if len(data) < _FRAME_OVERHEAD or data[: len(FRAME_MAGIC)] != FRAME_MAGIC:
        raise TornFrame(f"torn frame{label and f' ({label})'}: bad envelope")
    crc, length = _FRAME_HEADER.unpack(
        data[len(FRAME_MAGIC): _FRAME_OVERHEAD]
    )
    body = data[_FRAME_OVERHEAD:]
    if len(body) != length:
        raise TornFrame(
            f"torn frame{label and f' ({label})'}: length mismatch "
            f"({len(body)} != {length})"
        )
    if zlib.crc32(body) & 0xFFFFFFFF != crc:
        raise TornFrame(f"torn frame{label and f' ({label})'}: CRC mismatch")
    return body
