"""The persistent cleaning pipeline: sessions and deltas.

* :class:`Changeset` — a micro-batch of tuple inserts / deletes / cell
  edits against a relation;
* :class:`CleaningSession` — a long-lived engine that binds rules and
  master data once, owns all shared cleaning state, and re-cleans
  incrementally under changesets (``clean()`` + ``apply()``);
* :class:`ApplyResult` — the outcome of one ``apply()`` call;
* :mod:`~repro.pipeline.sharding` — the partition-parallel
  :class:`ShardedCleaningSession` (component-stable shard ids, batched
  ``apply_many``/``buffer``/``flush``);
* :mod:`~repro.pipeline.payload` — the columnar coordinator↔worker wire
  format;
* :mod:`~repro.pipeline.snapshot` — durable, checksummed session
  snapshots (``CleaningSession.save``/``restore`` and the sharded
  manifest-per-shard form).

See the "Sessions and deltas", "Sharding", "Incremental re-planning"
and "Snapshots and recovery" sections of ``docs/architecture.md``.
"""

from repro.exceptions import SnapshotCorrupt, SnapshotError
from repro.pipeline.changeset import (
    AppliedChangeset,
    CellEdit,
    Changeset,
    Delete,
    Insert,
    KEEP,
)
from repro.pipeline.session import ApplyResult, CleaningSession
from repro.pipeline.sharding import (
    ShardedCleaningSession,
    ShardPlan,
    ShardPlanner,
)
from repro.pipeline.snapshot import SNAPSHOT_VERSION

__all__ = [
    "AppliedChangeset",
    "ApplyResult",
    "CellEdit",
    "Changeset",
    "CleaningSession",
    "Delete",
    "Insert",
    "KEEP",
    "SNAPSHOT_VERSION",
    "ShardPlan",
    "ShardPlanner",
    "ShardedCleaningSession",
    "SnapshotCorrupt",
    "SnapshotError",
]
