"""The persistent cleaning pipeline: sessions and deltas.

* :class:`Changeset` — a micro-batch of tuple inserts / deletes / cell
  edits against a relation;
* :class:`CleaningSession` — a long-lived engine that binds rules and
  master data once, owns all shared cleaning state, and re-cleans
  incrementally under changesets (``clean()`` + ``apply()``);
* :class:`ApplyResult` — the outcome of one ``apply()`` call;
* :mod:`~repro.pipeline.sharding` — the partition-parallel
  :class:`ShardedCleaningSession` (component-stable shard ids, batched
  ``apply_many``/``buffer``/``flush``);
* :mod:`~repro.pipeline.payload` — the columnar coordinator↔worker wire
  format;
* :mod:`~repro.pipeline.snapshot` — durable, checksummed session
  snapshots (``CleaningSession.save``/``restore``, the sharded
  manifest-per-shard form, and retained checkpoints);
* :mod:`~repro.pipeline.supervision` /
  :mod:`~repro.pipeline.faults` — worker supervision (timeouts,
  bounded retries, respawn, serial fallback) and the deterministic
  fault-injection harness that exercises it;
* :mod:`~repro.pipeline.service` — the online
  :class:`CleaningService`: an asynchronous, multi-tenant request queue
  over sessions (micro-batch coalescing under a :class:`FlushPolicy`,
  bounded backpressure, snapshot-isolated reads, checkpointed
  recovery).

See the "Sessions and deltas", "Sharding", "Incremental re-planning",
"Snapshots and recovery", "Fault tolerance and recovery" and "Online
cleaning service" sections of ``docs/architecture.md``.
"""

from repro.exceptions import (
    RetriesExhausted,
    ServiceClosed,
    ServiceError,
    ServiceOverloaded,
    ShardTimeout,
    SnapshotCorrupt,
    SnapshotError,
    TornFrame,
    UnknownTenant,
    WorkerFailure,
)
from repro.pipeline.changeset import (
    AppliedChangeset,
    CellEdit,
    Changeset,
    Delete,
    Insert,
    KEEP,
)
from repro.pipeline.faults import FaultInjector, FaultSpec, InjectedFault
from repro.pipeline.service import (
    CleaningService,
    FlushPolicy,
    SessionRegistry,
    WriteTicket,
)
from repro.pipeline.session import ApplyResult, CleaningSession
from repro.pipeline.sharding import (
    ShardedCleaningSession,
    ShardPlan,
    ShardPlanner,
)
from repro.pipeline.snapshot import SNAPSHOT_VERSION
from repro.pipeline.supervision import SupervisionPolicy

__all__ = [
    "AppliedChangeset",
    "ApplyResult",
    "CellEdit",
    "Changeset",
    "CleaningService",
    "CleaningSession",
    "Delete",
    "FaultInjector",
    "FaultSpec",
    "FlushPolicy",
    "Insert",
    "InjectedFault",
    "KEEP",
    "RetriesExhausted",
    "SNAPSHOT_VERSION",
    "ServiceClosed",
    "ServiceError",
    "ServiceOverloaded",
    "SessionRegistry",
    "ShardPlan",
    "ShardPlanner",
    "ShardTimeout",
    "ShardedCleaningSession",
    "SnapshotCorrupt",
    "SnapshotError",
    "SupervisionPolicy",
    "TornFrame",
    "UnknownTenant",
    "WorkerFailure",
    "WriteTicket",
]
