"""Deterministic, schedule-driven fault injection for sharded cleaning.

Fault tolerance that is only exercised by real infrastructure failures is
untested fault tolerance.  This module makes every failure mode the
supervision layer handles (:mod:`repro.pipeline.supervision` and the
supervised runner in :mod:`repro.pipeline.sharding`) reproducible on
demand:

* **worker crash** — the worker process exits hard mid-call (the
  coordinator observes a ``BrokenProcessPool``);
* **hang** — the worker sleeps past the per-dispatch timeout (the
  coordinator observes a :class:`~repro.exceptions.ShardTimeout`);
* **delay** — the worker sleeps briefly and then answers (exercises
  backoff bookkeeping without a failure);
* **transient error** — the worker raises :class:`InjectedFault` before
  executing (a retry-safe pre-execution failure);
* **torn request / torn response frame** — the CRC envelope of
  :mod:`repro.pipeline.payload` is corrupted in flight (the coordinator
  observes a :class:`~repro.exceptions.TornFrame`);
* **coordinator kill** — the coordinator SIGKILLs itself at a dispatch
  point (the crash-recovery drill for checkpointed restore);
* **snapshot corruption** — bytes read back from a snapshot file are
  flipped (the reader observes a
  :class:`~repro.exceptions.SnapshotCorrupt`).

Determinism
-----------
All scheduling state lives in the **coordinator**: each
:class:`FaultSpec` counts its own matching fault-point hits and arms on
the ``after``-th one (for ``times`` consecutive hits).  Worker-side
faults are not scheduled in the worker — the coordinator embeds a
one-shot *directive* in the request envelope and the worker merely obeys
it (:func:`obey`).  A respawned worker therefore never replays a fault
meant for its predecessor, and a given schedule produces the same fault
sequence on every run.

Named fault points
------------------
``"dispatch"``
    Every supervised coordinator→worker call attempt (including
    broadcasts and recovery re-dispatches).  Context: ``method`` (the
    worker method) and ``target`` (the shard id, or ``None`` for a
    broadcast).  All kinds except ``"corrupt"`` apply here.
``"payload.unframe"``
    Coordinator-side validation of a received frame
    (:func:`repro.pipeline.payload.unframe`).  Kind ``"corrupt"``
    mangles the bytes before validation.
``"snapshot.read"``
    Any snapshot bytes read back from disk
    (:mod:`repro.pipeline.snapshot`).  Context: ``target`` (the file
    path).  Kind ``"corrupt"`` mangles the bytes before validation, so
    the checksummed framing raises ``SnapshotCorrupt``.

Usage
-----
>>> from repro.pipeline.faults import FaultInjector, FaultSpec, injected
>>> schedule = [FaultSpec(point="dispatch", kind="crash", after=1)]
>>> with injected(FaultInjector(schedule)):       # doctest: +SKIP
...     session.clean(relation)                   # doctest: +SKIP

The injector is installed process-globally (:func:`install` /
:func:`clear` / the :func:`injected` context manager); worker processes
never see it.  ``FaultInjector.fuzz(seed)`` derives a random — but
seed-deterministic — schedule for property tests.
"""

from __future__ import annotations

import os
import random
import signal
import time
from dataclasses import dataclass, replace
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.exceptions import ReproError

__all__ = [
    "FaultInjector",
    "FaultSpec",
    "DispatchFaults",
    "InjectedFault",
    "active",
    "clear",
    "injected",
    "install",
    "kill_self",
    "mangle",
    "obey",
]

#: Fault kinds executed inside the worker, shipped as request directives.
WORKER_KINDS = ("crash", "hang", "delay", "error")
#: Fault kinds executed by the coordinator around the dispatch.
COORDINATOR_KINDS = ("torn_request", "torn_response", "kill")
#: The byte-mangling kind for ``payload.unframe`` / ``snapshot.read``.
CORRUPT_KIND = "corrupt"

_HANG_DEFAULT = 3600.0
_DELAY_DEFAULT = 0.02


class InjectedFault(ReproError):
    """A deliberately injected, retry-safe transient worker error.

    Raised by :func:`obey` *before* the worker executes the call, so a
    supervised re-send of the same request is always safe.
    """


@dataclass
class FaultSpec:
    """One scheduled fault.

    Parameters
    ----------
    point:
        Fault-point name (``"dispatch"``, ``"payload.unframe"``,
        ``"snapshot.read"``).
    kind:
        One of :data:`WORKER_KINDS`, :data:`COORDINATOR_KINDS` or
        ``"corrupt"``.
    after:
        Fire on the *n*-th matching hit of the point (0-based).
    times:
        Number of consecutive matching hits to affect.
    seconds:
        Sleep length for ``hang`` / ``delay`` (defaults: one hour for a
        hang — the supervisor kills it long before — and 20 ms for a
        delay).
    method:
        Optional filter: only hits whose context ``method`` equals this.
    match:
        Optional filter: only hits whose context ``target`` contains
        this substring (shard id or file path).
    """

    point: str
    kind: str
    after: int = 0
    times: int = 1
    seconds: Optional[float] = None
    method: Optional[str] = None
    match: Optional[str] = None


@dataclass
class DispatchFaults:
    """The injector's decision for one dispatch attempt."""

    #: Worker-side directive ``(kind, seconds)`` embedded in the request.
    directive: Optional[Tuple[str, Optional[float]]] = None
    torn_request: bool = False
    torn_response: bool = False
    kill: bool = False

    def __bool__(self) -> bool:
        return bool(
            self.directive or self.torn_request or self.torn_response
            or self.kill
        )


class FaultInjector:
    """A deterministic, schedule-driven fault source.

    Thread-compatible with the coordinator's single-threaded dispatch
    loop: every fault decision advances per-spec hit counters, and
    :attr:`log` records each fired fault as ``(point, kind, context)``
    for assertions and reports.
    """

    def __init__(self, specs: Sequence[FaultSpec] = ()):
        self.specs: List[FaultSpec] = [replace(spec) for spec in specs]
        self._hits: List[int] = [0] * len(self.specs)
        self.log: List[Tuple[str, str, Dict[str, Any]]] = []

    # -- scheduling ----------------------------------------------------
    def _draw(self, point: str, **ctx: Any) -> List[FaultSpec]:
        armed: List[FaultSpec] = []
        for index, spec in enumerate(self.specs):
            if spec.point != point:
                continue
            if spec.method is not None and ctx.get("method") != spec.method:
                continue
            if spec.match is not None and spec.match not in str(
                ctx.get("target", "")
            ):
                continue
            count = self._hits[index]
            self._hits[index] = count + 1
            if spec.after <= count < spec.after + spec.times:
                armed.append(spec)
                self.log.append((point, spec.kind, dict(ctx)))
        return armed

    def plan_dispatch(
        self, method: str, target: Optional[str]
    ) -> DispatchFaults:
        """Decide the faults of one ``"dispatch"`` attempt."""
        plan = DispatchFaults()
        for spec in self._draw("dispatch", method=method, target=target):
            if spec.kind in WORKER_KINDS:
                plan.directive = (spec.kind, spec.seconds)
            elif spec.kind == "torn_request":
                plan.torn_request = True
            elif spec.kind == "torn_response":
                plan.torn_response = True
            elif spec.kind == "kill":
                plan.kill = True
        return plan

    def mangle_at(self, point: str, data: bytes, target: Any = None) -> bytes:
        """Return *data*, corrupted iff a ``"corrupt"`` spec arms at
        *point* for *target*."""
        for spec in self._draw(point, target=target):
            if spec.kind == CORRUPT_KIND:
                return mangle(data)
        return data

    # -- seeded schedules ----------------------------------------------
    @classmethod
    def fuzz(
        cls,
        seed: int,
        n_faults: int = 2,
        max_after: int = 8,
        kinds: Sequence[str] = (
            "crash", "delay", "error", "torn_request", "torn_response",
        ),
        hang_seconds: float = 3.0,
    ) -> "FaultInjector":
        """A random — but seed-deterministic — dispatch fault schedule."""
        rng = random.Random(seed)
        specs = []
        for _ in range(n_faults):
            kind = rng.choice(list(kinds))
            specs.append(
                FaultSpec(
                    point="dispatch",
                    kind=kind,
                    after=rng.randrange(max_after),
                    times=rng.choice((1, 1, 2)),
                    seconds=hang_seconds if kind == "hang" else None,
                )
            )
        return cls(specs)


# ----------------------------------------------------------------------
# Fault actions
# ----------------------------------------------------------------------
def mangle(data: bytes) -> bytes:
    """Deterministically corrupt *data* (flip one mid-payload byte)."""
    if not data:
        return b"\xff"
    blob = bytearray(data)
    blob[len(blob) // 2] ^= 0xFF
    return bytes(blob)


def obey(directive: Optional[Tuple[str, Optional[float]]]) -> None:
    """Execute a worker-side fault directive (see :data:`WORKER_KINDS`).

    Runs in the worker process, before the request is decoded into a
    state-changing call — so ``error`` (and a torn request) are always
    safe to retry against the same worker.
    """
    if not directive:
        return
    kind, seconds = directive
    if kind == "crash":
        os._exit(13)
    elif kind == "hang":
        time.sleep(seconds if seconds else _HANG_DEFAULT)
    elif kind == "delay":
        time.sleep(seconds if seconds else _DELAY_DEFAULT)
    elif kind == "error":
        raise InjectedFault("injected transient worker error")


def kill_self() -> None:
    """SIGKILL the current process — the coordinator-crash drill."""
    os.kill(os.getpid(), signal.SIGKILL)


# ----------------------------------------------------------------------
# Process-global activation (coordinator only; workers never see it)
# ----------------------------------------------------------------------
_ACTIVE: Optional[FaultInjector] = None


def install(injector: Optional[FaultInjector]) -> None:
    """Activate *injector* for this process (``None`` deactivates)."""
    global _ACTIVE
    _ACTIVE = injector


def clear() -> None:
    """Deactivate fault injection for this process."""
    install(None)


def active() -> Optional[FaultInjector]:
    """The currently installed injector, or ``None``."""
    return _ACTIVE


class injected:
    """Context manager: install an injector, always uninstall on exit.

    >>> with injected(FaultInjector([...])):       # doctest: +SKIP
    ...     session.clean(relation)                # doctest: +SKIP
    """

    def __init__(self, injector: FaultInjector):
        self.injector = injector

    def __enter__(self) -> FaultInjector:
        install(self.injector)
        return self.injector

    def __exit__(self, *_exc) -> None:
        clear()
