"""Changesets: first-class micro-batches of edits against a relation.

A :class:`Changeset` collects tuple inserts, tuple deletes and cell edits
(value and/or confidence) and applies them to a
:class:`~repro.relational.relation.Relation` in one call.  Every
operation is routed through the relation's observer hooks
(``set_value`` / ``add`` / ``remove``), so incrementally maintained
indexes — the shared group stores, the violation index, the entropy
index — stay coherent without rebuilds.  This is the delta format
:class:`~repro.pipeline.session.CleaningSession.apply` consumes.

Example
-------
>>> delta = (Changeset()
...          .edit(3, "city", "Edi")
...          .edit(7, "phone", "3456789", conf=1.0)
...          .insert({"FN": "Bob", "city": "Ldn"})
...          .delete(12))                                # doctest: +SKIP
>>> session.apply(delta)                                 # doctest: +SKIP
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Iterator, List, Mapping, Optional, Tuple, Union

from repro.exceptions import DataError
from repro.relational.relation import Relation


class _Keep:
    """Sentinel: leave the current value / confidence unchanged."""

    _instance: Optional["_Keep"] = None

    def __new__(cls) -> "_Keep":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return "KEEP"


#: Sentinel for :meth:`Changeset.edit`: keep the current value/confidence.
KEEP = _Keep()


@dataclass(frozen=True)
class CellEdit:
    """Assign ``t[attr] := value`` (and/or ``t[attr].cf := conf``)."""

    tid: int
    attr: str
    value: Any = KEEP
    conf: Union[float, None, _Keep] = KEEP


@dataclass(frozen=True)
class Insert:
    """Insert a fresh tuple built from *values* (missing attrs → null)."""

    values: Mapping[str, Any]
    confidences: Optional[Mapping[str, Optional[float]]] = None


@dataclass(frozen=True)
class Delete:
    """Delete the tuple with identifier *tid*."""

    tid: int


Op = Union[CellEdit, Insert, Delete]


@dataclass
class AppliedChangeset:
    """What a :meth:`Changeset.apply_to` call actually did.

    ``edited_cells`` lists the cells whose value *or* confidence was
    assigned (including no-op assignments); ``inserted_tids`` the tids the
    relation gave the new tuples, in op order; ``deleted_tids`` the
    removed tuples.
    """

    edited_cells: List[Tuple[int, str]] = field(default_factory=list)
    inserted_tids: List[int] = field(default_factory=list)
    deleted_tids: List[int] = field(default_factory=list)

    def touched_tids(self) -> List[int]:
        """Distinct surviving tids the changeset touched (edits + inserts,
        in first-touch order; deleted tuples are gone and excluded)."""
        seen = dict.fromkeys(tid for tid, _attr in self.edited_cells)
        seen.update(dict.fromkeys(self.inserted_tids))
        for tid in self.deleted_tids:
            seen.pop(tid, None)
        return list(seen)

    def all_tids(self) -> set:
        """Every tid the changeset touched — edited, inserted *or*
        deleted.  This is the re-plan reuse guard of
        :class:`~repro.pipeline.sharding.ShardedCleaningSession`: a
        shard containing any of these tids cannot reuse its session."""
        out = {tid for tid, _attr in self.edited_cells}
        out.update(self.inserted_tids)
        out.update(self.deleted_tids)
        return out


class Changeset:
    """An ordered micro-batch of relation edits (fluent builder).

    Operations apply in insertion order, so an ``insert`` followed by
    ``edit``/``delete`` on another tuple behaves as written; edits to a
    tuple inserted *by the same changeset* are not expressible (the tid
    is only assigned at apply time) — put the final values in the insert.
    """

    def __init__(self, ops: Optional[List[Op]] = None):
        self.ops: List[Op] = list(ops) if ops else []

    @classmethod
    def concat(cls, changesets: Iterable["Changeset"]) -> "Changeset":
        """One changeset carrying the ops of *changesets*, in order.

        Applying the concatenation is equivalent to applying the parts
        one after another — ops execute in insertion order either way —
        which is what lets ``apply_many`` ship one coalesced per-shard
        delta per coordinator round-trip instead of one per changeset.
        (The one asymmetry: an op referencing a tid inserted by an
        *earlier changeset of the same batch* cannot validate, because
        tids are only assigned at apply time — the same rule that already
        holds within a single changeset.)
        """
        ops: List[Op] = []
        for changeset in changesets:
            ops.extend(changeset.ops)
        return cls(ops)

    # ------------------------------------------------------------------
    # Builders
    # ------------------------------------------------------------------
    def edit(
        self,
        tid: int,
        attr: str,
        value: Any = KEEP,
        conf: Union[float, None, _Keep] = KEEP,
    ) -> "Changeset":
        """Queue ``t[attr] := value`` (and/or a confidence assignment)."""
        if value is KEEP and conf is KEEP:
            raise DataError("edit() needs a value and/or a confidence")
        self.ops.append(CellEdit(tid, attr, value, conf))
        return self

    def insert(
        self,
        values: Mapping[str, Any],
        confidences: Optional[Mapping[str, Optional[float]]] = None,
    ) -> "Changeset":
        """Queue a tuple insert."""
        self.ops.append(Insert(dict(values), dict(confidences) if confidences else None))
        return self

    def delete(self, tid: int) -> "Changeset":
        """Queue a tuple delete."""
        self.ops.append(Delete(tid))
        return self

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.ops)

    def __iter__(self) -> Iterator[Op]:
        return iter(self.ops)

    def __bool__(self) -> bool:
        return bool(self.ops)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kinds = {"edit": 0, "insert": 0, "delete": 0}
        for op in self.ops:
            if isinstance(op, CellEdit):
                kinds["edit"] += 1
            elif isinstance(op, Insert):
                kinds["insert"] += 1
            else:
                kinds["delete"] += 1
        return (
            f"Changeset({kinds['edit']} edits, {kinds['insert']} inserts, "
            f"{kinds['delete']} deletes)"
        )

    # ------------------------------------------------------------------
    # Application
    # ------------------------------------------------------------------
    def validate_against(self, relation: Relation) -> None:
        """Check every operation against *relation* without mutating it.

        Simulates the op sequence (edits/deletes on a tid deleted
        earlier in the same changeset fail; unknown tids, unknown
        attributes and out-of-range confidences fail), raising
        :class:`~repro.exceptions.DataError` /
        :class:`~repro.exceptions.SchemaError`.  :meth:`apply_to` runs
        this before mutating anything, so a bad op can never leave the
        relation — or its observer-maintained indexes — half-updated.
        """
        schema = relation.schema
        deleted: set = set()
        for op in self.ops:
            if isinstance(op, CellEdit):
                if op.tid in deleted or not relation.has_tid(op.tid):
                    raise DataError(
                        f"changeset edits unknown tuple #{op.tid} of "
                        f"relation {schema.name!r}"
                    )
                schema.check_attrs([op.attr])
                if op.conf is not KEEP and op.conf is not None:
                    try:
                        in_range = 0.0 <= op.conf <= 1.0  # type: ignore[operator]
                    except TypeError:
                        in_range = False  # unorderable type: reject up front
                    if not in_range:
                        raise DataError(
                            f"changeset sets confidence {op.conf!r} outside "
                            f"[0, 1] on tuple #{op.tid}"
                        )
            elif isinstance(op, Insert):
                for attr in op.values:
                    schema.check_attrs([attr])
                if op.confidences:
                    for attr, conf in op.confidences.items():
                        schema.check_attrs([attr])
                        if conf is not None and not 0.0 <= conf <= 1.0:
                            raise DataError(
                                f"changeset inserts confidence {conf!r} "
                                f"outside [0, 1] for attribute {attr!r}"
                            )
            else:
                if op.tid in deleted or not relation.has_tid(op.tid):
                    raise DataError(
                        f"changeset deletes unknown tuple #{op.tid} of "
                        f"relation {schema.name!r}"
                    )
                deleted.add(op.tid)

    def apply_to(self, relation: Relation) -> AppliedChangeset:
        """Apply every operation to *relation*, in order — atomically.

        All mutations go through the relation's notifying entry points,
        so observers (index registries) see each one.  The whole op
        sequence is validated via :meth:`validate_against` **before any
        mutation**: an edit or delete naming an unknown tid, an unknown
        attribute, or an out-of-range confidence raises
        :class:`~repro.exceptions.DataError` /
        :class:`~repro.exceptions.SchemaError` while the relation — and
        every observer-maintained index — is still untouched.  A
        changeset therefore either applies in full or not at all.
        """
        self.validate_against(relation)
        applied = AppliedChangeset()
        for op in self.ops:
            if isinstance(op, CellEdit):
                t = relation.by_tid(op.tid)
                if op.value is not KEEP:
                    relation.set_value(t, op.attr, op.value)
                if op.conf is not KEEP:
                    t.set_conf(op.attr, op.conf)  # type: ignore[arg-type]
                applied.edited_cells.append((op.tid, op.attr))
            elif isinstance(op, Insert):
                t = relation.add_row(op.values, op.confidences)
                applied.inserted_tids.append(t.tid)
            else:
                relation.remove(op.tid)
                applied.deleted_tids.append(op.tid)
        return applied
