"""``CleaningSession``: a persistent, incremental cleaning engine.

The paper specifies UniClean as a one-shot batch pipeline; the ROADMAP's
north star is a service that cleans *evolving* data continuously.  This
module refactors the pipeline into the shape dynamic query-evaluation
work (Berkholz et al., "Answering FO+MOD queries under updates") argues
for: pay once to build index state, then answer — here: *repair* — under
updates in time proportional to the delta.

A session binds rules and master data once and owns all shared state:

* the master-side MD blocking indexes and their match cache (master data
  is immutable, so these persist across every ``clean``/``apply``);
* a :class:`~repro.indexing.group_store.GroupStoreRegistry` on the
  working relation — the LHS-keyed groupings that back both the
  violation index and the entropy indexes of every phase;
* the merged :class:`~repro.core.fixes.FixLog` and the base (dirty)
  relation the repair is defined against.

``clean(relation)`` runs the classic three-phase pipeline and keeps the
state alive.  ``apply(changeset)`` then re-cleans under a micro-batch of
edits, choosing between two exact strategies:

* **Scoped replay** — when the changeset's *perturbed-cell closure* is
  provably local: every touched cell is a pure rule target (never a
  variable-CFD premise), and every group it votes in has membership
  that the superseded run never rewrote.  Under those conditions group
  composition is static, so reverting the perturbed cells to base
  values and re-running the three phases seeded with just those cells
  reproduces a from-scratch clean of the edited base exactly — at a
  cost proportional to the delta, not ``|D|``.  The replay is still
  watched: a write landing outside the perturbed set (e.g. hRepair
  breaking a premise) or a cRepair group-value provision reaching an
  out-of-scope tuple voids the locality argument and triggers the
  fallback.
* **Warm full replay** — for everything else (premise edits, inserts,
  deltas whose groups embed premise fixes): the edited base is
  re-cleaned from scratch *inside the session*, which still skips the
  dominant costs of a cold run — the master-side blocking indexes and
  the MD match cache persist, so only the data-side phases re-run.

Both strategies leave the relation in exactly the state a full
pipeline run over the edited base produces — property-tested in
``tests/properties/test_property_session.py`` and re-verified per
micro-batch by ``benchmarks/perf_report.py``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.analysis.consistency import assert_consistent, relation_is_clean
from repro.constraints.cfd import CFD
from repro.constraints.md import MD, NegativeMD, embed_negative
from repro.constraints.rules import derive_rules
from repro.core.cost import cell_cost
from repro.core.crepair import CRepairResult, crepair
from repro.core.erepair import ERepairResult, erepair
from repro.core.fixes import FixLog
from repro.core.hrepair import HRepairResult, hrepair
from repro.core.trace import RoundTrace, WorklistTrace
from repro.core.uniclean import CleaningResult, UniCleanConfig
from repro.exceptions import DataError
from repro.indexing.blocking import MDBlockingIndex, build_md_indexes
from repro.indexing.group_store import CFDGroupStore, GroupStoreRegistry
from repro.indexing.violation_index import ViolationIndex
from repro.pipeline.changeset import CellEdit, Changeset, Insert
from repro.relational.relation import Relation

Cell = Tuple[int, str]


@dataclass
class ApplyResult:
    """The outcome of one :meth:`CleaningSession.apply` call."""

    repaired: Relation
    fix_log: FixLog
    crepair_result: Optional[CRepairResult]
    erepair_result: Optional[ERepairResult]
    hrepair_result: Optional[HRepairResult]
    cost: float
    clean: bool
    affected: int
    affected_cells: int
    replays: int
    full_reclean: bool = False
    timings: Dict[str, float] = field(default_factory=dict)

    @property
    def total_time(self) -> float:
        """Total wall-clock seconds across phases and session bookkeeping."""
        return sum(self.timings.values())

    def summary(self) -> str:
        """Human-readable apply summary."""
        mode = "full re-clean" if self.full_reclean else f"{self.replays} replay(s)"
        return (
            f"apply: {self.fix_log.summary()}; affected={self.affected} tuples"
            f"/{self.affected_cells} cells ({mode}); clean={self.clean}; "
            f"time={self.total_time:.3f}s"
        )


class CleaningSession:
    """A long-lived cleaning engine over one rule set and master relation.

    Parameters
    ----------
    cfds, mds, negative_mds, master, config:
        As for :class:`~repro.core.uniclean.UniClean` (rules are
        normalized, negative MDs embedded, consistency optionally
        checked).
    md_indexes:
        Optional pre-built master-side blocking indexes to adopt
        (``UniClean`` shares one set across its throwaway sessions).
    collect_traces:
        Record per-phase scheduling traces (:mod:`repro.core.trace`) and
        the set of variable-CFD group keys ever materialized, per rule
        spec.  Shard workers of
        :class:`~repro.pipeline.sharding.ShardedCleaningSession` enable
        this so the coordinator can merge shard fix logs into the exact
        unsharded order and detect cross-shard group collisions.
        Requires ``use_violation_index`` (key tracking rides the shared
        group stores).

    Examples
    --------
    >>> session = CleaningSession(cfds=sigma, mds=gamma, master=dm)  # doctest: +SKIP
    >>> result = session.clean(dirty)                                # doctest: +SKIP
    >>> out = session.apply(Changeset().edit(3, "city", "Edi"))      # doctest: +SKIP
    >>> out.clean                                                    # doctest: +SKIP
    True
    """

    def __init__(
        self,
        cfds: Sequence[CFD] = (),
        mds: Sequence[MD] = (),
        negative_mds: Sequence[NegativeMD] = (),
        master: Optional[Relation] = None,
        config: Optional[UniCleanConfig] = None,
        md_indexes: Optional[Dict[str, MDBlockingIndex]] = None,
        collect_traces: bool = False,
    ):
        self.config = config or UniCleanConfig()
        self._init_trace_support(collect_traces)
        self.cfds: List[CFD] = []
        for cfd in cfds:
            self.cfds.extend(cfd.normalize())
        if negative_mds:
            self.mds = embed_negative(list(mds), list(negative_mds))
        else:
            self.mds = []
            for md in mds:
                self.mds.extend(md.normalize())
        if self.mds and master is None:
            raise ValueError("MDs require master data")
        self.master = master
        if self.config.check_consistency and self.cfds:
            schema = self.cfds[0].schema
            assert_consistent(schema, self.cfds, self.mds, master)

        self.rules = derive_rules(self.cfds, self.mds)
        #: Master-side blocking indexes + match cache; master data is
        #: immutable, so these persist across every clean()/apply().
        self.md_indexes: Dict[str, MDBlockingIndex] = (
            md_indexes if md_indexes is not None else {}
        )
        self._init_rule_maps()
        self._init_relation_state()

    @classmethod
    def from_normalized(
        cls,
        cfds: Sequence[CFD],
        mds: Sequence[MD],
        master: Optional[Relation],
        config: UniCleanConfig,
        md_indexes: Optional[Dict[str, MDBlockingIndex]] = None,
        collect_traces: bool = False,
    ) -> "CleaningSession":
        """Build a session over already-normalized rules, skipping the
        (idempotent but not free) normalization and consistency checks —
        the constructor ``UniClean.clean()`` uses per call.  This is also
        the pickling-safe shard-construction hook: a
        :class:`~repro.pipeline.sharding.ShardedCleaningSession` worker
        receives the already-normalized rule payload and builds its
        per-shard session here, without re-running the (whole-rule-set)
        consistency analysis in every process."""
        session = cls.__new__(cls)
        session.config = config
        session._init_trace_support(collect_traces)
        session.cfds = list(cfds)
        session.mds = list(mds)
        session.master = master
        session.rules = derive_rules(session.cfds, session.mds)
        session.md_indexes = md_indexes if md_indexes is not None else {}
        session._init_rule_maps()
        session._init_relation_state()
        return session

    def _init_trace_support(self, collect_traces: bool) -> None:
        """Sharding-support state: per-phase scheduling traces, new-fix
        segments, the perturbed set of the latest apply, and the set of
        variable-CFD group keys ever materialized (per rule spec)."""
        self.collect_traces = collect_traces
        if collect_traces and not self.config.use_violation_index:
            raise ValueError(
                "collect_traces requires use_violation_index (group-key "
                "tracking rides the shared group stores)"
            )
        #: Per-phase traces / new-fix segments of the latest phase run.
        self.last_traces: Dict[str, object] = {}
        self.last_segments: Dict[str, List] = {}
        #: Perturbed cells of the latest scoped apply (empty after a full
        #: replay or a clean()).
        self.last_perturbed: Set[Cell] = set()
        self._last_c_result: Optional[CRepairResult] = None
        self._last_e_result: Optional[ERepairResult] = None
        self._last_h_result: Optional[HRepairResult] = None
        #: spec -> every LHS group key that ever existed on the working
        #: relation since the last clean() (initial groups + every key a
        #: repair write created, transient ones included).
        self.ever_group_keys: Dict[Tuple, Set[Tuple]] = {}

    def _track_group_keys(self) -> None:
        assert self.registry is not None
        self.ever_group_keys = {}
        for store in self.registry.variable_cfd_stores():
            spec = GroupStoreRegistry.cfd_spec(store.cfd)
            seen = self.ever_group_keys.setdefault(spec, set())
            seen.update(store.groups)

            def tracker(t, old_key, new_key, _seen=seen):
                if new_key is not None:
                    _seen.add(new_key)

            store.change_listeners.append(tracker)

    def _init_rule_maps(self) -> None:
        """Static closure helpers derived from the bound rule set."""
        # Per-tuple rules (constant CFDs, MDs): a perturbed cell in the
        # rule's scope perturbs the rule's target on the *same* tuple.
        pt: Dict[str, Dict[str, None]] = {}
        for rule in self.rules:
            if getattr(rule, "cfd", None) is not None and rule.cfd.is_variable:
                continue
            for attr in rule.scope_attrs():
                pt.setdefault(attr, {})[rule.rhs_attr()] = None
        self._pt_rhs_by_attr: Dict[str, Tuple[str, ...]] = {
            attr: tuple(rhs) for attr, rhs in pt.items()
        }
        # Premise attributes of variable CFDs: a perturbed cell here can
        # change group membership, which voids the scoped-replay locality
        # argument — such deltas take the warm full replay.
        var_lhs: Set[str] = set()
        for rule in self.rules:
            cfd = getattr(rule, "cfd", None)
            if cfd is not None and cfd.is_variable:
                var_lhs.update(rule.lhs_attrs())
        self._var_lhs_attrs: frozenset = frozenset(var_lhs)

    def _init_relation_state(self) -> None:
        # Per-clean state (populated by clean()).
        self.base: Optional[Relation] = None
        self.working: Optional[Relation] = None
        self.registry: Optional[GroupStoreRegistry] = None
        #: Variable-CFD groupings of the *base* relation: scratch-run group
        #: composition starts from base keys, so the delta closure must see
        #: them (a tuple repaired out of a group still starts inside it).
        self.base_registry: Optional[GroupStoreRegistry] = None
        self.fix_log: FixLog = FixLog()
        #: attr -> [(working store, base store)] for variable-CFD specs.
        self._var_stores_by_attr: Dict[
            str, List[Tuple[CFDGroupStore, CFDGroupStore]]
        ] = {}
        #: The same pairs, deduplicated (one entry per spec).
        self._var_store_pairs: List[Tuple[CFDGroupStore, CFDGroupStore]] = []
        self._check_index: Optional[ViolationIndex] = None
        #: Per-cell contributions to cost(Dr, D) (nonzero entries only);
        #: maintained incrementally by apply().
        self._cell_costs: Dict[Cell, float] = {}
        self._last_clean = False

    # ------------------------------------------------------------------
    # Shared state
    # ------------------------------------------------------------------
    def _ensure_md_indexes(self) -> None:
        if self.mds and self.master is not None and not self.md_indexes:
            self.md_indexes.update(
                build_md_indexes(
                    self.mds,
                    self.master,
                    top_l=self.config.top_l,
                    use_suffix_tree=self.config.use_suffix_tree,
                    # Configs from pre-match-engine snapshots are already
                    # upgraded by UniCleanConfig.__setstate__.
                    engine=self.config.match_engine,
                )
            )

    def _teardown_relation_state(self) -> None:
        if self.registry is not None:
            self.registry.detach()
            self.registry = None
        if self.base_registry is not None:
            self.base_registry.detach()
            self.base_registry = None
        self._var_stores_by_attr = {}
        self._var_store_pairs = []
        self._check_index = None

    def close(self) -> None:
        """Detach all observers from the working relation (idempotent)."""
        self._teardown_relation_state()

    # ------------------------------------------------------------------
    # Full clean
    # ------------------------------------------------------------------
    def clean(self, relation: Relation) -> CleaningResult:
        """Run the configured phases on *relation* and keep the state.

        The input relation is never modified; the session owns a private
        base copy (which :meth:`apply` edits) and the working repair.
        """
        self._teardown_relation_state()
        self.base = relation.clone()
        self.working = self.base.clone()
        self.fix_log = FixLog()
        timings: Dict[str, float] = {}
        self._attach_relation_state(timings)
        self.last_perturbed = set()
        c_result, e_result, h_result = self._run_phases(None, self.fix_log, timings)
        self._rebuild_cell_costs()
        self._last_clean = relation_is_clean(
            self.working, self.cfds, self.mds, self.master,
            violation_index=self._check_index,
            md_indexes=self.md_indexes,
        )
        return CleaningResult(
            repaired=self.working,
            fix_log=self.fix_log,
            crepair_result=c_result,
            erepair_result=e_result,
            hrepair_result=h_result,
            cost=sum(self._cell_costs.values()),
            clean=self._last_clean,
            timings=timings,
        )

    def _attach_relation_state(self, timings: Dict[str, float]) -> None:
        """Build the derived per-relation state over ``self.base`` /
        ``self.working``: the shared group-store registries, the
        satisfaction-check index, trace-time group-key tracking and the
        master-side MD indexes.  All of it is a pure function of the two
        relations and the bound rules, which is why a snapshot restore
        (:mod:`repro.pipeline.snapshot`) rebuilds it here instead of
        persisting it."""
        if self.config.use_violation_index:
            started = time.perf_counter()
            self.registry = GroupStoreRegistry(self.working)
            self.registry.ensure_rules(self.rules)
            self.base_registry = GroupStoreRegistry(self.base)
            variable_rules = [
                rule
                for rule in self.rules
                if getattr(rule, "cfd", None) is not None and rule.cfd.is_variable
            ]
            self.base_registry.ensure_rules(variable_rules)
            for store in self.registry.variable_cfd_stores():
                base_store = self.base_registry.cfd_store(store.cfd)
                self._var_store_pairs.append((store, base_store))
                for attr in store.scope_attrs():
                    self._var_stores_by_attr.setdefault(attr, []).append(
                        (store, base_store)
                    )
            if self.cfds:
                # A maintained index for satisfaction checks: reads the
                # live shared stores, so D ⊨ Σ verification never rescans.
                self._check_index = ViolationIndex(
                    self.working,
                    [r for cfd in self.cfds for r in derive_rules([cfd])],
                    attach=False,
                    registry=self.registry,
                )
            if self.collect_traces:
                self._track_group_keys()
            timings["setup"] = time.perf_counter() - started

        self._ensure_md_indexes()

    def _adopt_restored_state(
        self,
        base: Relation,
        working: Relation,
        fix_log: FixLog,
        cell_costs: Dict[Cell, float],
        ever_group_keys: Dict[Tuple, Set[Tuple]],
        last_clean: bool,
    ) -> None:
        """Install snapshot state and rebuild everything derived from it.

        The persisted pieces — relations, fix log, per-cell costs, the
        ever-materialized group keys and the last satisfaction verdict —
        are adopted as-is (insertion orders included; float sums replay
        bit-identically).  Group stores, the check index and the MD
        blocking indexes are rebuilt from the adopted relations via
        :meth:`_attach_relation_state`; the match cache is re-warmed by
        the caller (it needs the decoded entries)."""
        self._teardown_relation_state()
        self.base = base
        self.working = working
        self.fix_log = fix_log
        self._attach_relation_state({})
        self.last_perturbed = set()
        self._cell_costs = cell_costs
        self._last_clean = last_clean
        # The trackers installed by _attach_relation_state hold references
        # to the per-spec sets: merge the persisted keys in place so both
        # the session and its trackers keep seeing one set per spec.
        for spec, keys in ever_group_keys.items():
            self.ever_group_keys.setdefault(spec, set()).update(keys)

    # ------------------------------------------------------------------
    # Snapshots (see repro/pipeline/snapshot.py)
    # ------------------------------------------------------------------
    def save(self, path) -> int:
        """Write a durable snapshot of this session to *path*.

        Captures rules, master data, base and working relations, the fix
        log, per-cell costs, the MD match cache and the ever-group-key
        sets — everything a fresh process needs so that the restored
        session's subsequent ``apply()``/``clean()`` observables are
        byte-identical to this one's.  The write is atomic (temp file +
        rename) and checksummed.  Returns the snapshot size in bytes.
        Requires a prior :meth:`clean`.
        """
        from repro.pipeline import snapshot

        return snapshot.save_session(self, path)

    @classmethod
    def restore(cls, path) -> "CleaningSession":
        """Rebuild a session from a :meth:`save` snapshot at *path*.

        Raises :class:`~repro.exceptions.SnapshotCorrupt` when the file
        fails checksum/format validation.
        """
        from repro.pipeline import snapshot

        return snapshot.restore_session(path)

    def _rebuild_cell_costs(self) -> None:
        """Full pass of the Section 3.1 cost model, kept per cell so
        apply() can maintain the total under deltas."""
        assert self.base is not None and self.working is not None
        costs: Dict[Cell, float] = {}
        names = self.base.schema.names
        for t in self.base:
            r = self.working.by_tid(t.tid)
            for attr in names:
                if t[attr] != r[attr]:
                    costs[(t.tid, attr)] = cell_cost(t[attr], r[attr], t.conf(attr))
        self._cell_costs = costs

    def _run_phases(
        self,
        scope_tids: Optional[List[int]],
        log: FixLog,
        timings: Dict[str, float],
        escapes: Optional[Set[Cell]] = None,
        scope_cells: Optional[List[Cell]] = None,
    ) -> Tuple[
        Optional[CRepairResult], Optional[ERepairResult], Optional[HRepairResult]
    ]:
        """Run the configured phases in place over *scope_tids* (or all)."""
        assert self.working is not None
        config = self.config
        c_result: Optional[CRepairResult] = None
        e_result: Optional[ERepairResult] = None
        h_result: Optional[HRepairResult] = None

        tracing = self.collect_traces
        trace_c = WorklistTrace() if tracing and config.run_crepair else None
        trace_e = RoundTrace() if tracing and config.run_erepair else None
        trace_h = RoundTrace() if tracing and config.run_hrepair else None
        self.last_traces = {
            "crepair": trace_c, "erepair": trace_e, "hrepair": trace_h,
        }
        self.last_segments = {"crepair": [], "erepair": [], "hrepair": []}
        mark = len(log)

        if config.run_crepair:
            started = time.perf_counter()
            c_result = crepair(
                self.working,
                self.cfds,
                self.mds,
                master=self.master,
                eta=config.eta,
                fix_log=log,
                top_l=config.top_l,
                use_suffix_tree=config.use_suffix_tree,
                in_place=True,
                use_violation_index=config.use_violation_index,
                md_indexes=self.md_indexes,
                registry=self.registry,
                scope_tids=scope_tids,
                trace=trace_c,
            )
            if escapes is not None:
                escapes |= c_result.escaped_cells
            if tracing:
                self.last_segments["crepair"] = log.fixes()[mark:]
                mark = len(log)
            timings["crepair"] = timings.get("crepair", 0.0) + (
                time.perf_counter() - started
            )

        protected: Set[Cell] = log.deterministic_cells()

        if config.run_erepair:
            started = time.perf_counter()
            e_result = erepair(
                self.working,
                self.cfds,
                self.mds,
                master=self.master,
                delta1=config.delta1,
                delta2=config.delta2,
                protected=protected,
                fix_log=log,
                top_l=config.top_l,
                use_suffix_tree=config.use_suffix_tree,
                in_place=True,
                use_violation_index=config.use_violation_index,
                md_indexes=self.md_indexes,
                registry=self.registry,
                scope_tids=scope_tids,
                scope_cells=scope_cells,
                trace=trace_e,
            )
            if tracing:
                self.last_segments["erepair"] = log.fixes()[mark:]
                mark = len(log)
            timings["erepair"] = timings.get("erepair", 0.0) + (
                time.perf_counter() - started
            )

        if config.run_hrepair:
            started = time.perf_counter()
            h_result = hrepair(
                self.working,
                self.cfds,
                self.mds,
                master=self.master,
                protected=protected,
                fix_log=log,
                top_l=config.top_l,
                use_suffix_tree=config.use_suffix_tree,
                in_place=True,
                use_violation_index=config.use_violation_index,
                md_indexes=self.md_indexes,
                registry=self.registry,
                scope_tids=scope_tids,
                scope_cells=scope_cells,
                trace=trace_h,
            )
            if tracing:
                self.last_segments["hrepair"] = log.fixes()[mark:]
                mark = len(log)
            timings["hrepair"] = timings.get("hrepair", 0.0) + (
                time.perf_counter() - started
            )
        #: Kept for shard workers, which report phase statistics upstream.
        self._last_c_result = c_result
        self._last_e_result = e_result
        self._last_h_result = h_result
        return c_result, e_result, h_result

    # ------------------------------------------------------------------
    # Incremental apply
    # ------------------------------------------------------------------
    def apply(self, changeset: Changeset) -> ApplyResult:
        """Re-clean after *changeset*; exact, and scoped when provably safe.

        The changeset edits the session's **base** (dirty) relation; the
        session then brings the working repair to the state a full
        ``clean()`` of the edited base would produce — via the scoped
        replay when the delta's closure is local, via a warm full replay
        otherwise (see the module docstring).
        """
        if self.working is None or self.base is None:
            raise DataError("CleaningSession.apply() requires a prior clean()")
        # All-or-nothing is inherited from Changeset.apply_to, which
        # validates every op before mutating anything; the bookkeeping
        # below it (seeds, dead-tid pruning) only runs after it succeeds.
        # A scoped apply whose closure turns out empty never reaches
        # _run_phases: reset the sharding-support state here so workers
        # cannot ship a stale previous run's segments upstream.
        self.last_traces = {"crepair": None, "erepair": None, "hrepair": None}
        self.last_segments = {"crepair": [], "erepair": [], "hrepair": []}
        self.last_perturbed = set()

        timings: Dict[str, float] = {}
        started = time.perf_counter()

        if (
            not self.config.use_violation_index
            or self.registry is None
            # Inserts change group composition outright — the scoped
            # locality argument does not cover them, so skip the delta
            # pre-processing the full replay would discard anyway.
            or any(isinstance(op, Insert) for op in changeset.ops)
        ):
            changeset.apply_to(self.base)
            return self._full_replay(timings)

        pre_apply_log = self.fix_log
        fixed_cells: Set[Cell] = {fix.cell for fix in pre_apply_log}
        schema_attrs = tuple(self.working.schema.names)

        # --- Seed the perturbed-cell set -------------------------------
        seeds: Set[Cell] = set()
        unsafe = False
        # A from-scratch run groups tuples by their *base* keys: capture
        # the base groups an edited/deleted tuple is leaving before the
        # base mutates.
        for op in changeset.ops:
            if isinstance(op, CellEdit):
                seeds.add((op.tid, op.attr))
            else:  # Delete (inserts were dispatched above)
                for wstore, bstore in self._var_store_pairs:
                    for store in (wstore, bstore):
                        key = store.key_of.get(op.tid)
                        if key is None:
                            continue
                        rhs = store.rhs
                        for mate in store.groups[key].tids:
                            if mate != op.tid:
                                seeds.add((mate, rhs))

        applied = changeset.apply_to(self.base)
        dead: Set[int] = set(applied.deleted_tids)
        for tid in dead:
            if self.working.has_tid(tid):
                self.working.remove(tid)  # observers keep stores coherent
        seeds = {(tid, attr) for tid, attr in seeds if tid not in dead}
        log = pre_apply_log.without_tids(dead) if dead else pre_apply_log
        self.fix_log = log
        for tid in dead:
            for attr in schema_attrs:
                self._cell_costs.pop((tid, attr), None)

        perturbed: Set[Cell] = set()
        if not unsafe and seeds:
            perturbed, safe = self._perturb_closure(seeds, fixed_cells)
            unsafe = not safe
        timings["delta"] = time.perf_counter() - started
        if unsafe:
            return self._full_replay(timings)

        c_result = e_result = h_result = None
        if perturbed:
            started = time.perf_counter()
            self._revert_cells(perturbed)
            log = pre_apply_log.without_tids(dead).without_cells(perturbed)
            scope = sorted({tid for tid, _attr in perturbed})
            timings["delta"] += time.perf_counter() - started
            escaped: Set[Cell] = set()
            watch = self._escape_watch(perturbed, escaped)
            self.working.add_observer(watch)
            try:
                c_result, e_result, h_result = self._run_phases(
                    scope, log, timings, escapes=escaped,
                    scope_cells=sorted(perturbed),
                )
            finally:
                self.working.remove_observer(watch)
            if escaped:
                # A replay fix reached beyond the perturbed set (premise
                # break, provision to an out-of-scope tuple): the
                # locality argument is void — replay everything.
                self.fix_log = log
                return self._full_replay(timings)
            self.fix_log = log

        started = time.perf_counter()
        # Incremental cost: contributions change only for perturbed /
        # deleted cells (the escape watch guarantees no other writes).
        for cell in perturbed:
            tid, attr = cell
            base_t = self.base.by_tid(tid)
            value = self.working.by_tid(tid)[attr]
            if base_t[attr] != value:
                self._cell_costs[cell] = cell_cost(
                    base_t[attr], value, base_t.conf(attr)
                )
            else:
                self._cell_costs.pop(cell, None)
        cost = sum(self._cell_costs.values())
        # Scoped verification: tuples outside the perturbed set satisfied
        # the rules before and were not written (escape watch); their
        # partitions can only have shrunk.  Falls back to a full check
        # when the previous state did not verify clean.
        only = (
            {tid for tid, _attr in perturbed} if self._last_clean else None
        )
        is_clean_now = relation_is_clean(
            self.working, self.cfds, self.mds, self.master,
            violation_index=self._check_index, md_indexes=self.md_indexes,
            only_tids=only,
        )
        self._last_clean = is_clean_now
        timings["verify"] = time.perf_counter() - started
        self.last_perturbed = set(perturbed)
        return ApplyResult(
            repaired=self.working,
            fix_log=self.fix_log,
            crepair_result=c_result,
            erepair_result=e_result,
            hrepair_result=h_result,
            cost=cost,
            clean=is_clean_now,
            affected=len({tid for tid, _attr in perturbed}),
            affected_cells=len(perturbed),
            replays=1 if perturbed else 0,
            timings=timings,
        )

    def apply_many(
        self, changesets: Sequence[Changeset]
    ) -> Optional[ApplyResult]:
        """Apply several changesets as one merged micro-batch.

        Exactly ``apply(Changeset.concat(changesets))``: ops execute in
        order, the delta pre-processing (closure, strategy choice, log
        splice) runs once for the whole batch, and the final state is the
        state a full ``clean()`` of the fully edited base produces.  This
        is the unsharded counterpart of
        :meth:`~repro.pipeline.sharding.ShardedCleaningSession.apply_many`.

        An **empty batch** — no changesets, or changesets carrying no
        ops — is a contractual no-op: returns ``None`` and touches no
        session state (no replay, no fix-log/cost/verdict mutation).
        Callers coalescing deltas (``flush()``, the online service) rely
        on this instead of a degenerate zero-op replay.
        """
        if self.working is None or self.base is None:
            raise DataError("CleaningSession.apply_many() requires a prior clean()")
        merged = Changeset.concat(changesets)
        if not merged.ops:
            return None
        return self.apply(merged)

    def _full_replay(self, timings: Dict[str, float]) -> ApplyResult:
        """Exact fallback: re-clean the edited base inside the session.

        Equivalent to a from-scratch ``clean()`` by construction, but the
        master-side blocking indexes and match cache stay warm — the
        dominant cost of a cold run.
        """
        assert self.base is not None
        result = self.clean(self.base)
        merged = dict(timings)
        for key, value in result.timings.items():
            merged[key] = merged.get(key, 0.0) + value
        return ApplyResult(
            repaired=result.repaired,
            fix_log=result.fix_log,
            crepair_result=result.crepair_result,
            erepair_result=result.erepair_result,
            hrepair_result=result.hrepair_result,
            cost=result.cost,
            clean=result.clean,
            affected=len(result.repaired),
            affected_cells=len(result.repaired) * len(result.repaired.schema.names),
            replays=0,
            full_reclean=True,
            timings=merged,
        )

    def _live_tids(self) -> Set[int]:
        assert self.base is not None
        return set(self.base.tids())

    def _perturb_closure(
        self, seeds: Set[Cell], fixed_cells: Set[Cell]
    ) -> Tuple[Set[Cell], bool]:
        """The perturbed-cell closure of *seeds*, with a safety verdict.

        Propagation: a perturbed cell in a per-tuple rule's scope
        (constant CFD, MD) perturbs that rule's target on the same tuple,
        recursively; a perturbed cell that is a variable-CFD store's
        target perturbs the target cells of the owner's current *and*
        base groups (their votes are re-counted from base values).

        The closure is **safe** — the scoped replay provably reproduces a
        from-scratch run — only when no perturbed cell sits on a
        variable-CFD premise (membership would change) and no perturbed
        group contains a member whose premise there was rewritten by the
        superseded run (membership *evolved*; a scoped replay would read
        its final position, a scratch run its stage positions).  Returns
        ``(perturbed, safe)``; an unsafe closure is abandoned eagerly.
        """
        live = self._live_tids()
        perturbed: Set[Cell] = set()
        processed: Set[Cell] = set()
        stack = list(seeds)
        while stack:
            cell = stack.pop()
            if cell in processed:
                continue
            processed.add(cell)
            tid, attr = cell
            if tid not in live:
                continue
            if attr in self._var_lhs_attrs:
                return perturbed, False  # premise cell: membership changes
            perturbed.add(cell)
            for rhs in self._pt_rhs_by_attr.get(attr, ()):
                if (tid, rhs) not in processed:
                    stack.append((tid, rhs))
            for wstore, bstore in self._var_stores_by_attr.get(attr, ()):
                rhs = wstore.rhs
                lhs = wstore.lhs
                if attr != rhs:
                    continue
                for store in (wstore, bstore):
                    key = store.key_of.get(tid)
                    if key is None:
                        continue
                    group = store.groups.get(key)
                    if group is None:
                        continue
                    for mate in group.tids:
                        if mate not in live:
                            continue
                        for y in lhs:
                            if (mate, y) in fixed_cells:
                                return perturbed, False  # membership evolved
                        mate_cell = (mate, rhs)
                        if mate_cell not in processed:
                            stack.append(mate_cell)
        return perturbed, True

    def _revert_cells(self, perturbed: Set[Cell]) -> None:
        """Restore every perturbed cell to its base value and confidence
        (values through ``set_value`` so every index stays coherent)."""
        assert self.base is not None and self.working is not None
        working = self.working
        base = self.base
        for tid, attr in sorted(perturbed):
            t = working.by_tid(tid)
            base_t = base.by_tid(tid)
            working.set_value(t, attr, base_t[attr])
            t.set_conf(attr, base_t.conf(attr))

    def _escape_watch(self, perturbed: Set[Cell], escaped: Set[Cell]):
        """A relation observer flagging replay writes outside *perturbed*."""

        def watch(t, attr, old, new) -> None:
            cell = (t.tid, attr)
            if cell not in perturbed:
                escaped.add(cell)

        return watch

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def is_clean(self) -> bool:
        """Whether the current working repair satisfies Σ and Γ."""
        if self.working is None:
            raise DataError("CleaningSession.is_clean() requires a prior clean()")
        return relation_is_clean(
            self.working, self.cfds, self.mds, self.master,
            violation_index=self._check_index, md_indexes=self.md_indexes,
        )
