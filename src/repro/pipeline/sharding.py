"""Partition-parallel sharded cleaning: plan, fan out, merge — exactly.

The three repair phases are embarrassingly parallel along the blocking
structure of the rules themselves: a CFD violation never couples tuples
that disagree on the rule's LHS key (``CFD.key_attrs()``), an MD check
couples one data tuple with the *immutable* master relation only, and
constant-CFD checks are per-tuple.  Co-partitioning the working relation
so that no variable-CFD group straddles shards therefore lets one
:class:`~repro.pipeline.session.CleaningSession` per shard run every
phase independently — the pay-once-then-answer-under-updates shape of
the session, scaled out across processes.

Plan
----
:class:`ShardPlanner` computes the *coarsest common refinement* of all
rules' shard keys: tuples are unioned whenever they share a variable-CFD
group (``t[X] ≍ tp[X]`` and equal LHS projection — a hard correctness
constraint) or an MD equality-blocking group
(``MD.blocking_key_attrs()`` — an affinity constraint that keeps the
per-shard MD match caches as hot as the unsharded one; pure-similarity
MDs, whose blocking key is empty, are per-tuple against master and add
no constraint).  The resulting connected components are packed into
``n_shards`` balanced bins.  When the rule keys are incompatible — one
component swallows the relation, as chained FDs over a denormalized
schema can arrange — the plan *degenerates to a single shard* and the
sharded session behaves exactly like (and costs no more than) an
unsharded one.

Exactness
---------
Because shards never interact, an unsharded run's behaviour restricted
to one shard's tuples *is* the shard run (same fixes, same relative
order).  Two mechanisms turn that into byte-identical observable state:

* **Scheduling traces** (:mod:`repro.core.trace`): each shard session
  records how its phases scheduled work, and the coordinator replays
  the unified schedule to interleave per-shard fix logs into the exact
  unsharded emission order.
* **Group-key collision detection**: the plan is computed on *base*
  group keys, but repairs may rewrite LHS cells and create new groups
  mid-run.  Every shard session tracks the set of group keys that ever
  existed per rule spec; if the same key ever materializes in two
  shards, the shard-local trajectories may have diverged from the
  global one, so the coordinator merges the colliding shards and
  re-cleans.  Shard count strictly decreases per retry, so the loop
  terminates — in the worst case at one shard, which is trivially
  exact.

``apply(changeset)`` routes each op to the shard owning its tid and
mirrors the unsharded session's strategy choice: deltas that are scoped
in every shard stay scoped (cost ∝ delta, no cross-process state
shipping beyond the ops and the touched rows); inserts and edits to any
variable-CFD premise attribute — edits that could re-shard tuples — take
the re-plan path, which is the sharded counterpart of the session's warm
full replay (master-side indexes stay hot in every worker process).

Equivalence — repaired relation, per-cell costs, satisfaction verdict
and the *full ordered fix log* — is property-tested against an unsharded
session in ``tests/properties/test_property_sharding.py`` and re-checked
by the ``sharded`` scenario of ``benchmarks/perf_report.py``.
"""

from __future__ import annotations

import pickle
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

from repro.analysis.consistency import assert_consistent
from repro.constraints.cfd import CFD
from repro.constraints.md import MD, NegativeMD, embed_negative
from repro.core.crepair import CRepairResult
from repro.core.erepair import ERepairResult
from repro.core.fixes import Fix, FixLog
from repro.core.hrepair import HRepairResult
from repro.core.trace import merge_round_fixes, merge_worklist_fixes
from repro.core.uniclean import CleaningResult, UniCleanConfig
from repro.exceptions import DataError
from repro.pipeline.changeset import CellEdit, Changeset, Delete, Insert, Op
from repro.pipeline.session import ApplyResult, CleaningSession
from repro.relational.relation import Relation

Cell = Tuple[int, str]
Key = Tuple[Any, ...]
Spec = Tuple


# ----------------------------------------------------------------------
# Planning
# ----------------------------------------------------------------------
@dataclass
class ShardPlan:
    """A co-partitioning of a relation's tids into shards.

    ``shards[i]`` is the sorted tid list of shard *i*; ``shard_of`` is
    the inverse map.  ``n_components`` counts the connected components
    of the group-coupling graph (the finest legal partition);
    ``degenerate`` flags a single-shard plan with ``reason`` saying why.
    """

    shards: List[List[int]]
    shard_of: Dict[int, int]
    n_components: int
    degenerate: bool = False
    reason: str = ""

    @property
    def n_shards(self) -> int:
        return len(self.shards)


class ShardPlanner:
    """Computes shard plans from the rules' own blocking structure.

    Parameters
    ----------
    cfds, mds:
        *Normalized* rule sets (as a session holds them).
    include_md_affinity:
        Also co-locate MD equality-blocking groups (cache affinity; see
        the module docstring).  Correctness never requires it.
    """

    def __init__(
        self,
        cfds: Sequence[CFD],
        mds: Sequence[MD] = (),
        include_md_affinity: bool = True,
    ):
        self.variable_cfds = [cfd for cfd in cfds if cfd.is_variable]
        self.mds = [md for md in mds if md.blocking_key_attrs()]
        self.include_md_affinity = include_md_affinity

    def partition_attrs(self) -> frozenset:
        """Attributes whose *edit* can move a tuple between variable-CFD
        groups — and hence, potentially, between shards."""
        out: Set[str] = set()
        for cfd in self.variable_cfds:
            out.update(cfd.lhs)
        return frozenset(out)

    def plan(self, relation: Relation, n_shards: int) -> ShardPlan:
        """Partition *relation* into at most *n_shards* co-partitions."""
        tids = list(relation.tids())
        if n_shards <= 1 or len(tids) <= 1:
            return ShardPlan(
                shards=[tids],
                shard_of={tid: 0 for tid in tids},
                n_components=1 if tids else 0,
                degenerate=True,
                reason="single shard requested",
            )

        parent: Dict[int, int] = {tid: tid for tid in tids}

        def find(x: int) -> int:
            while parent[x] != x:
                parent[x] = parent[parent[x]]
                x = parent[x]
            return x

        def union(a: int, b: int) -> None:
            ra, rb = find(a), find(b)
            if ra != rb:
                parent[rb] = ra

        for cfd in self.variable_cfds:
            first_of: Dict[Key, int] = {}
            lhs = cfd.lhs
            for t in relation:
                if not cfd.lhs_matches(t):
                    continue
                key = t.project(lhs)
                anchor = first_of.setdefault(key, t.tid)
                if anchor != t.tid:
                    union(anchor, t.tid)
        if self.include_md_affinity:
            for md in self.mds:
                attrs = md.blocking_key_attrs()
                first_of = {}
                for t in relation:
                    if t.has_null(attrs):
                        continue  # null keys never satisfy an equality premise
                    key = t.project(attrs)
                    anchor = first_of.setdefault(key, t.tid)
                    if anchor != t.tid:
                        union(anchor, t.tid)

        components: Dict[int, List[int]] = {}
        for tid in tids:
            components.setdefault(find(tid), []).append(tid)
        # Deterministic packing: biggest component first (ties by smallest
        # member tid), always into the currently lightest bin.
        ordered = sorted(components.values(), key=lambda c: (-len(c), c[0]))
        if len(ordered) == 1:
            return ShardPlan(
                shards=[tids],
                shard_of={tid: 0 for tid in tids},
                n_components=1,
                degenerate=True,
                reason="rule keys are incompatible: one coupling component",
            )
        bins = min(n_shards, len(ordered))
        shards: List[List[int]] = [[] for _ in range(bins)]
        loads = [0] * bins
        for component in ordered:
            target = min(range(bins), key=lambda i: (loads[i], i))
            shards[target].extend(component)
            loads[target] += len(component)
        for shard in shards:
            shard.sort()
        shard_of = {
            tid: index for index, shard in enumerate(shards) for tid in shard
        }
        return ShardPlan(
            shards=shards,
            shard_of=shard_of,
            n_components=len(ordered),
        )


# ----------------------------------------------------------------------
# Worker protocol (runs in the coordinator process or in pool workers)
# ----------------------------------------------------------------------
@dataclass
class _PhaseCounts:
    crepair: Optional[Dict[str, int]] = None
    erepair: Optional[Dict[str, int]] = None
    hrepair: Optional[Dict[str, int]] = None


@dataclass
class _CleanOutcome:
    """What one shard ships back after a (re)clean."""

    shard_id: int
    repaired: Optional[Relation]  # None when the caller knows state is unchanged
    segments: Dict[str, List[Fix]]
    traces: Dict[str, Any]
    costs: Dict[Cell, float]
    clean: bool
    counts: _PhaseCounts
    timings: Dict[str, float]
    ever_keys: Dict[Spec, Set[Key]]


@dataclass
class _ApplyOutcome:
    """What one shard ships back after an apply."""

    shard_id: int
    mode: str  # "scoped" | "full"
    full: Optional[_CleanOutcome] = None
    # Scoped fields:
    perturbed: List[Cell] = field(default_factory=list)
    dead: List[int] = field(default_factory=list)
    rows: Dict[int, Tuple[List[Any], List[Optional[float]]]] = field(
        default_factory=dict
    )
    segments: Dict[str, List[Fix]] = field(default_factory=dict)
    traces: Dict[str, Any] = field(default_factory=dict)
    costs: Dict[Cell, float] = field(default_factory=dict)
    clean: bool = True
    counts: _PhaseCounts = field(default_factory=_PhaseCounts)
    timings: Dict[str, float] = field(default_factory=dict)
    ever_keys: Dict[Spec, Set[Key]] = field(default_factory=dict)
    replays: int = 0
    affected: int = 0
    affected_cells: int = 0


def _result_counts(c_result, e_result, h_result) -> _PhaseCounts:
    counts = _PhaseCounts()
    if c_result is not None:
        counts.crepair = {
            "deterministic_fixes": c_result.deterministic_fixes,
            "confirmed_cells": c_result.confirmed_cells,
            "rules_fired": c_result.rules_fired,
        }
    if e_result is not None:
        counts.erepair = {
            "reliable_fixes": e_result.reliable_fixes,
            "rounds": e_result.rounds,
        }
    if h_result is not None:
        counts.hrepair = {
            "possible_fixes": h_result.possible_fixes,
            "merges": h_result.merges,
            "upgrades": h_result.upgrades,
            "unresolved": h_result.unresolved,
            "rounds": h_result.rounds,
        }
    return counts


class _WorkerState:
    """Per-process shard host: long-lived sessions + shared master-side
    indexes (blocking indexes and MD match caches are built once per
    process and reused by every shard session it hosts)."""

    def __init__(
        self,
        cfds: Sequence[CFD],
        mds: Sequence[MD],
        master: Optional[Relation],
        config: UniCleanConfig,
    ):
        self.cfds = list(cfds)
        self.mds = list(mds)
        self.master = master
        self.config = config
        self.md_indexes: Dict[str, Any] = {}
        self.sessions: Dict[int, CleaningSession] = {}

    # -- lifecycle -----------------------------------------------------
    def reset(self, _shard_id: int) -> bool:
        for session in self.sessions.values():
            session.close()
        self.sessions.clear()
        return True

    # -- operations ----------------------------------------------------
    def clean_shard(self, shard_id: int, relation: Relation) -> _CleanOutcome:
        old = self.sessions.pop(shard_id, None)
        if old is not None:
            old.close()
        session = CleaningSession.from_normalized(
            self.cfds,
            self.mds,
            self.master,
            self.config,
            md_indexes=self.md_indexes,
            collect_traces=True,
        )
        self.sessions[shard_id] = session
        result = session.clean(relation)
        return self._clean_outcome(shard_id, session, result.clean, result.timings)

    def reclean_shard(self, shard_id: int) -> _CleanOutcome:
        """Re-clean from the shard's current (possibly just-edited) base:
        deterministic, so the shard state is reproduced, and the
        log/traces become full-form — used when another shard's fallback
        demands a full-form merge.  Ships the repaired relation because
        the coordinator's merged copy may predate this shard's latest
        scoped apply."""
        session = self.sessions[shard_id]
        result = session.clean(session.base)
        return self._clean_outcome(shard_id, session, result.clean, result.timings)

    def apply_shard(self, shard_id: int, ops: Sequence[Op]) -> _ApplyOutcome:
        session = self.sessions[shard_id]
        out = session.apply(Changeset(list(ops)))
        if out.full_reclean:
            return _ApplyOutcome(
                shard_id=shard_id,
                mode="full",
                full=self._clean_outcome(
                    shard_id, session, out.clean, out.timings
                ),
            )
        schema_names = session.working.schema.names
        perturbed = sorted(session.last_perturbed)
        rows: Dict[int, Tuple[List[Any], List[Optional[float]]]] = {}
        for tid in {tid for tid, _attr in perturbed}:
            t = session.working.by_tid(tid)
            rows[tid] = (
                [t[attr] for attr in schema_names],
                [t.conf(attr) for attr in schema_names],
            )
        return _ApplyOutcome(
            shard_id=shard_id,
            mode="scoped",
            perturbed=perturbed,
            dead=[op.tid for op in ops if isinstance(op, Delete)],
            rows=rows,
            segments={k: list(v) for k, v in session.last_segments.items()},
            traces=dict(session.last_traces),
            costs=dict(session._cell_costs),
            clean=out.clean,
            counts=_result_counts(
                out.crepair_result, out.erepair_result, out.hrepair_result
            ),
            timings=out.timings,
            ever_keys={s: set(k) for s, k in session.ever_group_keys.items()},
            replays=out.replays,
            affected=out.affected,
            affected_cells=out.affected_cells,
        )

    def is_clean_shard(self, shard_id: int) -> bool:
        return self.sessions[shard_id].is_clean()

    # -- helpers -------------------------------------------------------
    def _clean_outcome(
        self,
        shard_id: int,
        session: CleaningSession,
        clean: bool,
        timings: Dict[str, float],
    ) -> _CleanOutcome:
        assert session.working is not None
        return _CleanOutcome(
            shard_id=shard_id,
            repaired=session.working.clone(),
            segments={k: list(v) for k, v in session.last_segments.items()},
            traces=dict(session.last_traces),
            costs=dict(session._cell_costs),
            clean=clean,
            counts=_result_counts(
                session._last_c_result,
                session._last_e_result,
                session._last_h_result,
            ),
            timings=dict(timings),
            ever_keys={s: set(k) for s, k in session.ever_group_keys.items()},
        )


# Module-level hooks for ProcessPoolExecutor (must be picklable by name).
_PROCESS_STATE: Optional[_WorkerState] = None


def _process_init(spec_blob: bytes) -> None:
    global _PROCESS_STATE
    cfds, mds, master, config = pickle.loads(spec_blob)
    _PROCESS_STATE = _WorkerState(cfds, mds, master, config)


def _process_call(shard_id: int, method: str, args: tuple):
    assert _PROCESS_STATE is not None, "worker not initialized"
    return getattr(_PROCESS_STATE, method)(shard_id, *args)


class _SerialRunner:
    """In-process execution (``n_workers=1``): no pickling, same protocol.

    Keeping the serial path on the identical worker code means the
    debugging story (“run it serial, step through”) exercises the exact
    production logic.
    """

    def __init__(self, cfds, mds, master, config):
        self._state = _WorkerState(cfds, mds, master, config)

    def run(self, calls: Sequence[Tuple[int, str, tuple]]) -> List[Any]:
        return [
            getattr(self._state, method)(shard_id, *args)
            for shard_id, method, args in calls
        ]

    def broadcast(self, method: str, args: tuple = ()) -> None:
        getattr(self._state, method)(-1, *args)

    def close(self) -> None:
        self._state.reset(-1)


class _ProcessRunner:
    """One single-worker pool per slot, so shard→slot affinity holds and
    every shard session survives in its worker across calls."""

    def __init__(self, cfds, mds, master, config, n_workers: int):
        spec_blob = pickle.dumps((cfds, mds, master, config))
        self._slots = [
            ProcessPoolExecutor(
                max_workers=1, initializer=_process_init, initargs=(spec_blob,)
            )
            for _ in range(n_workers)
        ]

    def _slot(self, shard_id: int) -> ProcessPoolExecutor:
        return self._slots[shard_id % len(self._slots)]

    def run(self, calls: Sequence[Tuple[int, str, tuple]]) -> List[Any]:
        futures = [
            self._slot(shard_id).submit(_process_call, shard_id, method, args)
            for shard_id, method, args in calls
        ]
        return [future.result() for future in futures]

    def broadcast(self, method: str, args: tuple = ()) -> None:
        futures = [
            slot.submit(_process_call, -1, method, args) for slot in self._slots
        ]
        for future in futures:
            future.result()

    def close(self) -> None:
        for slot in self._slots:
            slot.shutdown(cancel_futures=True)


# ----------------------------------------------------------------------
# The sharded session
# ----------------------------------------------------------------------
class ShardedCleaningSession:
    """A drop-in :class:`CleaningSession` that fans the work out across
    co-partitioned shards (see the module docstring for the plan and the
    exactness argument).

    Parameters
    ----------
    cfds, mds, negative_mds, master, config:
        As for :class:`CleaningSession` (normalization, negative-MD
        embedding and the optional consistency check run once, here).
        ``config.use_violation_index`` must stay enabled — collision
        detection rides the shared group stores.
    n_workers:
        Process-pool slots.  ``1`` (the default) runs every shard in
        this process through the identical worker code path — the
        debugging mode, and the right choice for small relations where
        process startup dominates.
    n_shards:
        Target shard count (default ``n_workers``).  The planner may
        produce fewer shards (fewer coupling components), and collision
        retries may merge shards further.
    include_md_affinity:
        Forwarded to :class:`ShardPlanner`.

    Examples
    --------
    >>> session = ShardedCleaningSession(cfds=sigma, mds=gamma,
    ...                                  master=dm, n_workers=4)  # doctest: +SKIP
    >>> result = session.clean(dirty)                             # doctest: +SKIP
    >>> out = session.apply(Changeset().edit(3, "city", "Edi"))   # doctest: +SKIP
    """

    def __init__(
        self,
        cfds: Sequence[CFD] = (),
        mds: Sequence[MD] = (),
        negative_mds: Sequence[NegativeMD] = (),
        master: Optional[Relation] = None,
        config: Optional[UniCleanConfig] = None,
        n_workers: int = 1,
        n_shards: Optional[int] = None,
        include_md_affinity: bool = True,
    ):
        self.config = config or UniCleanConfig()
        if not self.config.use_violation_index:
            raise ValueError(
                "ShardedCleaningSession requires use_violation_index: "
                "group-key collision detection rides the shared group stores"
            )
        if n_workers < 1:
            raise ValueError(f"n_workers must be >= 1, got {n_workers}")
        self.cfds: List[CFD] = []
        for cfd in cfds:
            self.cfds.extend(cfd.normalize())
        if negative_mds:
            self.mds = embed_negative(list(mds), list(negative_mds))
        else:
            self.mds = []
            for md in mds:
                self.mds.extend(md.normalize())
        if self.mds and master is None:
            raise ValueError("MDs require master data")
        self.master = master
        if self.config.check_consistency and self.cfds:
            assert_consistent(self.cfds[0].schema, self.cfds, self.mds, master)

        self.n_workers = n_workers
        self.n_shards = n_shards if n_shards is not None else n_workers
        self.planner = ShardPlanner(
            self.cfds, self.mds, include_md_affinity=include_md_affinity
        )
        self._partition_attrs = self.planner.partition_attrs()

        self._runner: Optional[Any] = None
        self._closed = False
        self.plan: Optional[ShardPlan] = None
        self.base: Optional[Relation] = None
        self.working: Optional[Relation] = None
        self.fix_log: FixLog = FixLog()
        self._shard_views: Dict[int, _CleanOutcome] = {}
        self._last_clean = False
        #: Observability counters: plans, collision retries, apply modes.
        self.stats: Dict[str, int] = {
            "plans": 0,
            "collision_retries": 0,
            "scoped_applies": 0,
            "full_applies": 0,
        }

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def _ensure_runner(self):
        if self._runner is None:
            if self.n_workers == 1:
                self._runner = _SerialRunner(
                    self.cfds, self.mds, self.master, self.config
                )
            else:
                self._runner = _ProcessRunner(
                    self.cfds, self.mds, self.master, self.config, self.n_workers
                )
        return self._runner

    def close(self) -> None:
        """Shut down worker processes / detach serial sessions.

        The per-shard sessions die with their workers, so ``apply`` and
        ``is_clean`` raise afterwards; a fresh ``clean()`` restarts the
        session lifecycle.
        """
        if self._runner is not None:
            self._runner.close()
            self._runner = None
        self._closed = True

    def __enter__(self) -> "ShardedCleaningSession":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Cleaning
    # ------------------------------------------------------------------
    def clean(self, relation: Relation) -> CleaningResult:
        """Shard *relation*, clean every shard, merge — exactly like an
        unsharded ``CleaningSession.clean`` of the same relation."""
        self._closed = False  # a fresh clean restarts the lifecycle
        self.base = relation.clone()
        return self._clean_base()

    def _clean_base(self) -> CleaningResult:
        assert self.base is not None
        tids = list(self.base.tids())
        if tids != sorted(tids):
            # The exact-order merge ranks cRepair init work by tid, which
            # equals the unsharded initialization (insertion) order only
            # when tids ascend.  Every construction path in this library
            # produces ascending tids; a caller who interleaved explicit
            # out-of-order tids must normalize first.
            raise ValueError(
                "ShardedCleaningSession requires tids in ascending insertion "
                "order (rebuild the relation, e.g. via restrict(sorted tids))"
            )
        runner = self._ensure_runner()
        started = time.perf_counter()
        plan = self.planner.plan(self.base, self.n_shards)
        shard_sets = plan.shards
        n_components = plan.n_components
        degenerate, reason = plan.degenerate, plan.reason

        while True:
            self.stats["plans"] += 1
            runner.broadcast("reset")
            calls = [
                (sid, "clean_shard", (self.base.restrict(tids),))
                for sid, tids in enumerate(shard_sets)
            ]
            outcomes: List[_CleanOutcome] = runner.run(calls)
            merged_sets = self._colliding_shard_sets(
                shard_sets, [o.ever_keys for o in outcomes]
            )
            if merged_sets is None:
                break
            self.stats["collision_retries"] += 1
            shard_sets = merged_sets
            if len(shard_sets) == 1:
                degenerate, reason = True, "collision retries merged all shards"

        self.plan = ShardPlan(
            shards=shard_sets,
            shard_of={
                tid: sid for sid, tids in enumerate(shard_sets) for tid in tids
            },
            n_components=n_components,
            degenerate=degenerate,
            reason=reason,
        )
        self._shard_views = {o.shard_id: o for o in outcomes}

        self.working = self.base.clone()
        for outcome in outcomes:
            assert outcome.repaired is not None
            for t in outcome.repaired:
                self.working._tuples[t.tid] = t
            outcome.repaired = None  # merged; free the per-shard copy
        self.fix_log = self._merge_full_logs()
        c_result, e_result, h_result = self._merged_phase_results()
        self._last_clean = all(o.clean for o in outcomes)
        timings = self._merged_timings((o.timings for o in outcomes), started)
        return CleaningResult(
            repaired=self.working,
            fix_log=self.fix_log,
            crepair_result=c_result,
            erepair_result=e_result,
            hrepair_result=h_result,
            cost=self._total_cost(),
            clean=self._last_clean,
            timings=timings,
        )

    # ------------------------------------------------------------------
    # Incremental apply
    # ------------------------------------------------------------------
    def apply(self, changeset: Changeset) -> ApplyResult:
        """Re-clean under *changeset*; byte-identical to an unsharded
        ``CleaningSession.apply`` of the same delta.

        Ops route to the shard owning their tid.  Inserts and edits of
        variable-CFD premise attributes (the only edits that can move a
        tuple between shards) take the re-plan path — the sharded warm
        full replay.  Everything else attempts the scoped path per
        shard, falling back exactly when the unsharded session would.
        """
        if self._closed or self.working is None or self.base is None:
            raise DataError(
                "ShardedCleaningSession.apply() requires a prior clean() "
                "(and a session that has not been close()d)"
            )
        changeset.validate_against(self.base)
        started = time.perf_counter()

        # An edit to a variable-CFD premise attribute can move a tuple
        # between shards — unless the same changeset deletes the tuple,
        # in which case the unsharded session drops the seed too (the
        # tuple is gone before any replay reads it) and stays scoped.
        deleted = {op.tid for op in changeset.ops if isinstance(op, Delete)}
        needs_replan = any(
            isinstance(op, Insert)
            or (
                isinstance(op, CellEdit)
                and op.attr in self._partition_attrs
                and op.tid not in deleted
            )
            for op in changeset.ops
        )
        if needs_replan:
            return self._full_apply(changeset, started)

        while True:
            assert self.plan is not None
            by_shard: Dict[int, List[Op]] = {}
            for op in changeset.ops:
                by_shard.setdefault(self.plan.shard_of[op.tid], []).append(op)
            runner = self._ensure_runner()
            calls = [
                (sid, "apply_shard", (ops,)) for sid, ops in sorted(by_shard.items())
            ]
            outcomes: List[_ApplyOutcome] = runner.run(calls)

            ever = {o.shard_id: self._outcome_ever_keys(o) for o in outcomes}
            shard_sets = self.plan.shards
            merged_sets = self._colliding_shard_sets(
                shard_sets,
                [
                    ever.get(sid, self._shard_views[sid].ever_keys)
                    for sid in range(len(shard_sets))
                ],
            )
            if merged_sets is not None:
                # The shard-local trajectories may have diverged from the
                # global one: discard the attempt, re-clean the (pre-edit)
                # base on the merged topology, and retry the delta.
                self.stats["collision_retries"] += 1
                self._reclean_on_sets(merged_sets)
                continue

            if any(o.mode == "full" for o in outcomes):
                return self._finish_mixed_apply(changeset, outcomes, started)
            return self._finish_scoped_apply(changeset, outcomes, started)

    # -- apply paths ---------------------------------------------------
    def _full_apply(self, changeset: Changeset, started: float) -> ApplyResult:
        """The sharded warm full replay: edit the base, re-plan, re-clean.

        Byte-identical to the unsharded fallback (a from-scratch clean of
        the edited base); worker-cached master-side indexes keep it warm.
        """
        assert self.base is not None
        self.stats["full_applies"] += 1
        changeset.apply_to(self.base)
        result = self._clean_base()
        timings = dict(result.timings)
        timings["wall"] = time.perf_counter() - started
        return ApplyResult(
            repaired=result.repaired,
            fix_log=result.fix_log,
            crepair_result=result.crepair_result,
            erepair_result=result.erepair_result,
            hrepair_result=result.hrepair_result,
            cost=result.cost,
            clean=result.clean,
            affected=len(result.repaired),
            affected_cells=len(result.repaired)
            * len(result.repaired.schema.names),
            replays=0,
            full_reclean=True,
            timings=timings,
        )

    def _finish_scoped_apply(
        self,
        changeset: Changeset,
        outcomes: List[_ApplyOutcome],
        started: float,
    ) -> ApplyResult:
        """Every shard stayed scoped: splice the merged log and state."""
        assert self.base is not None and self.working is not None
        assert self.plan is not None
        self.stats["scoped_applies"] += 1
        changeset.apply_to(self.base)

        dead: Set[int] = set()
        perturbed: Set[Cell] = set()
        names = self.working.schema.names
        for outcome in outcomes:
            dead.update(outcome.dead)
            perturbed.update(outcome.perturbed)
            view = self._shard_views[outcome.shard_id]
            view.costs = dict(outcome.costs)
            view.clean = outcome.clean
            view.ever_keys = self._outcome_ever_keys(outcome)
            for tid, (values, confs) in outcome.rows.items():
                t = self.working.by_tid(tid)
                for attr, value, conf in zip(names, values, confs):
                    t[attr] = value
                    t.set_conf(attr, conf)
        for tid in dead:
            self._drop_dead_tid(tid)

        log = self.fix_log
        if dead:
            log = log.without_tids(dead)
        if perturbed:
            log = log.without_cells(perturbed)
        for fix in self._merge_apply_segments(outcomes):
            log.record(fix)
        self.fix_log = log

        c_result, e_result, h_result = self._merged_apply_results(outcomes)
        self._last_clean = all(v.clean for v in self._shard_views.values())
        timings = self._merged_timings((o.timings for o in outcomes), started)
        return ApplyResult(
            repaired=self.working,
            fix_log=self.fix_log,
            crepair_result=c_result,
            erepair_result=e_result,
            hrepair_result=h_result,
            cost=self._total_cost(),
            clean=self._last_clean,
            affected=len({tid for tid, _attr in perturbed}),
            affected_cells=len(perturbed),
            replays=sum(o.replays for o in outcomes),
            timings=timings,
        )

    def _finish_mixed_apply(
        self,
        changeset: Changeset,
        outcomes: List[_ApplyOutcome],
        started: float,
    ) -> ApplyResult:
        """At least one shard fell back to its full replay — exactly the
        situations where the unsharded session re-cleans everything, so
        bring every shard to full-form and merge fresh logs."""
        assert self.base is not None and self.plan is not None
        self.stats["full_applies"] += 1
        changeset.apply_to(self.base)
        runner = self._ensure_runner()

        full_by_shard: Dict[int, _CleanOutcome] = {
            o.shard_id: o.full for o in outcomes if o.mode == "full"
        }
        # Shards that ran scoped (or saw no ops) re-clean from their
        # current base: same state, full-form log.
        reclean_ids = [
            sid
            for sid in range(len(self.plan.shards))
            if sid not in full_by_shard
        ]
        recleaned: List[_CleanOutcome] = runner.run(
            [(sid, "reclean_shard", ()) for sid in reclean_ids]
        )
        for outcome in recleaned:
            full_by_shard[outcome.shard_id] = outcome
        merged_sets = self._colliding_shard_sets(
            self.plan.shards,
            [
                full_by_shard[sid].ever_keys
                for sid in range(len(self.plan.shards))
            ],
        )
        if merged_sets is not None:
            # Rare: the full replays themselves collided across shards.
            # The base is already edited, so this is a plain re-plan
            # (whose own loop keeps merging until collision-free).
            self.stats["collision_retries"] += 1
            result = self._clean_base()
            timings = dict(result.timings)
            timings["wall"] = time.perf_counter() - started
            return ApplyResult(
                repaired=result.repaired,
                fix_log=result.fix_log,
                crepair_result=result.crepair_result,
                erepair_result=result.erepair_result,
                hrepair_result=result.hrepair_result,
                cost=result.cost,
                clean=result.clean,
                affected=len(result.repaired),
                affected_cells=len(result.repaired)
                * len(result.repaired.schema.names),
                replays=0,
                full_reclean=True,
                timings=timings,
            )

        for op in changeset.ops:
            if isinstance(op, Delete):
                self._drop_dead_tid(op.tid)
        for sid, outcome in full_by_shard.items():
            self._shard_views[sid] = outcome
            if outcome.repaired is not None:
                for t in outcome.repaired:
                    self.working._tuples[t.tid] = t
                outcome.repaired = None
        self.fix_log = self._merge_full_logs()
        c_result, e_result, h_result = self._merged_phase_results()
        self._last_clean = all(v.clean for v in self._shard_views.values())
        timings = self._merged_timings(
            (v.timings for v in full_by_shard.values()), started
        )
        return ApplyResult(
            repaired=self.working,
            fix_log=self.fix_log,
            crepair_result=c_result,
            erepair_result=e_result,
            hrepair_result=h_result,
            cost=self._total_cost(),
            clean=self._last_clean,
            affected=len(self.working),
            affected_cells=len(self.working) * len(self.working.schema.names),
            replays=0,
            full_reclean=True,
            timings=timings,
        )

    def _drop_dead_tid(self, tid: int) -> None:
        """Remove a deleted tuple from the merged working relation *and*
        the plan (both the tid→shard map and the shard tid lists — a
        later re-plan restricts the base by those lists, so a stale dead
        tid would make ``Relation.restrict`` raise mid-recovery)."""
        assert self.working is not None and self.plan is not None
        if self.working.has_tid(tid):
            self.working.remove(tid)
        shard = self.plan.shard_of.pop(tid, None)
        if shard is not None:
            self.plan.shards[shard].remove(tid)

    # ------------------------------------------------------------------
    # Collision handling
    # ------------------------------------------------------------------
    @staticmethod
    def _colliding_shard_sets(
        shard_sets: List[List[int]],
        ever_keys_by_shard: Sequence[Dict[Spec, Set[Key]]],
    ) -> Optional[List[List[int]]]:
        """Merge shards that ever materialized the same group key.

        Returns the merged tid sets, or ``None`` when the plan held (no
        key ever existed in two shards — the certificate that the shard
        trajectories compose into the global one).
        """
        n = len(shard_sets)
        parent = list(range(n))

        def find(x: int) -> int:
            while parent[x] != x:
                parent[x] = parent[parent[x]]
                x = parent[x]
            return x

        collided = False
        owner: Dict[Tuple[Spec, Key], int] = {}
        for shard, ever in enumerate(ever_keys_by_shard):
            for spec, keys in ever.items():
                for key in keys:
                    holder = owner.setdefault((spec, key), shard)
                    if holder != shard:
                        ra, rb = find(holder), find(shard)
                        if ra != rb:
                            parent[rb] = ra
                            collided = True
        if not collided:
            return None
        merged: Dict[int, List[int]] = {}
        for shard, tids in enumerate(shard_sets):
            merged.setdefault(find(shard), []).extend(tids)
        out = [sorted(tids) for _root, tids in sorted(merged.items())]
        return out

    def _reclean_on_sets(self, shard_sets: List[List[int]]) -> None:
        """Rebuild every shard session on *shard_sets* from the current
        (pre-delta) base — the recovery step of an apply-time collision."""
        assert self.base is not None and self.plan is not None
        runner = self._ensure_runner()
        while True:
            self.stats["plans"] += 1
            runner.broadcast("reset")
            outcomes: List[_CleanOutcome] = runner.run(
                [
                    (sid, "clean_shard", (self.base.restrict(tids),))
                    for sid, tids in enumerate(shard_sets)
                ]
            )
            merged = self._colliding_shard_sets(
                shard_sets, [o.ever_keys for o in outcomes]
            )
            if merged is None:
                break
            self.stats["collision_retries"] += 1
            shard_sets = merged
        self.plan = ShardPlan(
            shards=shard_sets,
            shard_of={
                tid: sid for sid, tids in enumerate(shard_sets) for tid in tids
            },
            n_components=self.plan.n_components,
            degenerate=len(shard_sets) == 1,
            reason="collision retries merged shards" if len(shard_sets) == 1 else "",
        )
        self._shard_views = {o.shard_id: o for o in outcomes}
        for outcome in outcomes:
            assert outcome.repaired is not None
            for t in outcome.repaired:
                self.working._tuples[t.tid] = t
            outcome.repaired = None
        self.fix_log = self._merge_full_logs()
        self._last_clean = all(o.clean for o in outcomes)

    @staticmethod
    def _outcome_ever_keys(outcome: _ApplyOutcome) -> Dict[Spec, Set[Key]]:
        if outcome.mode == "full":
            assert outcome.full is not None
            return outcome.full.ever_keys
        return outcome.ever_keys

    # ------------------------------------------------------------------
    # Merging
    # ------------------------------------------------------------------
    def _ordered_views(self) -> List[_CleanOutcome]:
        return [self._shard_views[sid] for sid in sorted(self._shard_views)]

    def _merge_full_logs(self) -> FixLog:
        views = self._ordered_views()
        log = FixLog()
        for fix in self._merge_segments(
            [(v.segments, v.traces) for v in views]
        ):
            log.record(fix)
        return log

    def _merge_apply_segments(
        self, outcomes: List[_ApplyOutcome]
    ) -> List[Fix]:
        parts = [
            (o.segments, o.traces)
            for o in sorted(outcomes, key=lambda o: o.shard_id)
        ]
        return self._merge_segments(parts)

    @staticmethod
    def _merge_segments(
        parts: Sequence[Tuple[Dict[str, List[Fix]], Dict[str, Any]]]
    ) -> List[Fix]:
        """Interleave per-shard phase segments into the global fix order
        (phases are contiguous in an unsharded log: c, then e, then h)."""
        out: List[Fix] = []
        crepair_parts = [
            (segments["crepair"], traces["crepair"])
            for segments, traces in parts
            if traces.get("crepair") is not None
        ]
        if crepair_parts:
            out.extend(merge_worklist_fixes(crepair_parts))
        for phase in ("erepair", "hrepair"):
            round_parts = [
                (segments[phase], traces[phase])
                for segments, traces in parts
                if traces.get(phase) is not None
            ]
            if round_parts:
                out.extend(merge_round_fixes(round_parts))
        return out

    def _merged_phase_results(
        self,
    ) -> Tuple[
        Optional[CRepairResult], Optional[ERepairResult], Optional[HRepairResult]
    ]:
        views = self._ordered_views()
        return self._merge_counts(
            [v.counts for v in views], self.working, self.fix_log
        )

    def _merged_apply_results(self, outcomes: List[_ApplyOutcome]):
        return self._merge_counts(
            [o.counts for o in outcomes], self.working, self.fix_log
        )

    @staticmethod
    def _merge_counts(counts: Sequence[_PhaseCounts], relation, log):
        c_result = e_result = h_result = None
        c_parts = [c.crepair for c in counts if c.crepair is not None]
        if c_parts:
            c_result = CRepairResult(
                relation=relation,
                fix_log=log,
                deterministic_fixes=sum(p["deterministic_fixes"] for p in c_parts),
                confirmed_cells=sum(p["confirmed_cells"] for p in c_parts),
                rules_fired=sum(p["rules_fired"] for p in c_parts),
            )
        e_parts = [c.erepair for c in counts if c.erepair is not None]
        if e_parts:
            e_result = ERepairResult(
                relation=relation,
                fix_log=log,
                reliable_fixes=sum(p["reliable_fixes"] for p in e_parts),
                rounds=max(p["rounds"] for p in e_parts),
            )
        h_parts = [c.hrepair for c in counts if c.hrepair is not None]
        if h_parts:
            h_result = HRepairResult(
                relation=relation,
                fix_log=log,
                possible_fixes=sum(p["possible_fixes"] for p in h_parts),
                merges=sum(p["merges"] for p in h_parts),
                upgrades=sum(p["upgrades"] for p in h_parts),
                unresolved=sum(p["unresolved"] for p in h_parts),
                rounds=max(p["rounds"] for p in h_parts),
            )
        return c_result, e_result, h_result

    def _total_cost(self) -> float:
        return sum(
            sum(view.costs.values()) for view in self._shard_views.values()
        )

    def _merged_timings(self, timing_dicts, started: float) -> Dict[str, float]:
        merged: Dict[str, float] = {}
        for timings in timing_dicts:
            for key, value in timings.items():
                merged[key] = merged.get(key, 0.0) + value
        merged["wall"] = time.perf_counter() - started
        return merged

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def is_clean(self) -> bool:
        """Whether the merged working repair satisfies Σ and Γ (conjunction
        of per-shard verdicts; exact because no group key spans shards)."""
        if self._closed or self.working is None or self.plan is None:
            raise DataError(
                "ShardedCleaningSession.is_clean() requires a prior clean() "
                "(and a session that has not been close()d)"
            )
        runner = self._ensure_runner()
        verdicts = runner.run(
            [(sid, "is_clean_shard", ()) for sid in range(len(self.plan.shards))]
        )
        return all(verdicts)
