"""Partition-parallel sharded cleaning: plan, fan out, merge — exactly.

The three repair phases are embarrassingly parallel along the blocking
structure of the rules themselves: a CFD violation never couples tuples
that disagree on the rule's LHS key (``CFD.key_attrs()``), an MD check
couples one data tuple with the *immutable* master relation only, and
constant-CFD checks are per-tuple.  Co-partitioning the working relation
so that no variable-CFD group straddles shards therefore lets one
:class:`~repro.pipeline.session.CleaningSession` per shard run every
phase independently — the pay-once-then-answer-under-updates shape of
the session, scaled out across processes.

Plan
----
:class:`ShardPlanner` computes the *coarsest common refinement* of all
rules' shard keys: tuples are unioned whenever they share a variable-CFD
group (``t[X] ≍ tp[X]`` and equal LHS projection — a hard correctness
constraint) or an MD equality-blocking group
(``MD.blocking_key_attrs()`` — an affinity constraint that keeps the
per-shard MD match caches as hot as the unsharded one; pure-similarity
MDs, whose blocking key is empty, are per-tuple against master and add
no constraint).  The resulting connected components are packed into
``n_shards`` balanced bins.  When the rule keys are incompatible — one
component swallows the relation, as chained FDs over a denormalized
schema can arrange — the plan *degenerates to a single shard* and the
sharded session behaves exactly like (and costs no more than) an
unsharded one.

Exactness
---------
Because shards never interact, an unsharded run's behaviour restricted
to one shard's tuples *is* the shard run (same fixes, same relative
order).  Two mechanisms turn that into byte-identical observable state:

* **Scheduling traces** (:mod:`repro.core.trace`): each shard session
  records how its phases scheduled work, and the coordinator replays
  the unified schedule to interleave per-shard fix logs into the exact
  unsharded emission order.
* **Group-key collision detection**: the plan is computed on *base*
  group keys, but repairs may rewrite LHS cells and create new groups
  mid-run.  Every shard session tracks the set of group keys that ever
  existed per rule spec; if the same key ever materializes in two
  shards, the shard-local trajectories may have diverged from the
  global one, so the coordinator merges the colliding shards and
  re-cleans.  Shard count strictly decreases per retry, so the loop
  terminates — in the worst case at one shard, which is trivially
  exact.

Incremental re-planning
-----------------------
Shards carry **component-stable ids**: when a shard is (re)cleaned its
id is derived from the content of its tid set (a digest of the sorted
tids), and that id addresses the shard's long-lived worker session for
as long as the shard exists.  A re-plan — triggered by inserts or
variable-CFD-premise edits — recomputes the coupling components of the
edited base and *keeps* every previous shard whose membership is still
exactly a union of current components and whose tuples the delta never
touched: those shards' sessions (match caches, group stores, fix-log
segments, traces) are reused verbatim, with **zero** coordinator↔worker
traffic.  Only components orphaned by the delta are re-packed and
re-cleaned, so ``stats["shards_recleaned"]`` tracks the *touched*
components, not the shard count.  Reuse is sound because shards never
interact while the collision certificate holds — and the certificate is
re-checked across reused *and* fresh shards after every re-plan, with
the usual merge-and-retry (and, ultimately, the single-shard plan) as
the escape hatch; ``reuse_sessions=False`` forces the PR 3 behaviour of
rebuilding every shard on every re-plan.

Batching and the wire format
----------------------------
``apply_many([δ1, δ2, …])`` (and the ``buffer()``/``flush()`` pair)
coalesces several changesets into one micro-batch: ops are routed and
shipped as **one** per-shard delta per coordinator round-trip, and a
batch that forces a re-plan pays for it once instead of once per
changeset.  Everything that crosses the process boundary travels in the
columnar form of :mod:`repro.pipeline.payload` — typed arrays over a
per-message value dictionary instead of pickled object graphs — and the
``n_workers=1`` serial executor skips serialization entirely (raw
in-process objects; regression-tested to never call ``pickle.dumps``).

``apply(changeset)`` routes each op to the shard owning its tid and
mirrors the unsharded session's strategy choice: deltas that are scoped
in every shard stay scoped (cost ∝ delta, no cross-process state
shipping beyond the ops and the touched rows); inserts and edits to any
variable-CFD premise attribute — edits that could re-shard tuples — take
the re-plan path, which is the sharded counterpart of the session's warm
full replay (master-side indexes stay hot in every worker process).

Equivalence — repaired relation, per-cell costs, satisfaction verdict
and the *full ordered fix log* — is property-tested against an unsharded
session in ``tests/properties/test_property_sharding.py`` and re-checked
by the ``sharded`` and ``replan`` scenarios of
``benchmarks/perf_report.py``.
"""

from __future__ import annotations

import hashlib
import pickle
import time
from array import array
from concurrent.futures import ProcessPoolExecutor
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple, Union

from repro.analysis.consistency import assert_consistent
from repro.constraints.cfd import CFD
from repro.constraints.md import MD, NegativeMD, embed_negative
from repro.core.crepair import CRepairResult
from repro.core.erepair import ERepairResult
from repro.core.fixes import Fix, FixLog
from repro.core.hrepair import HRepairResult
from repro.core.trace import merge_round_fixes, merge_worklist_fixes
from repro.core.uniclean import CleaningResult, UniCleanConfig
from repro.exceptions import (
    DataError,
    RetriesExhausted,
    ShardTimeout,
    TornFrame,
    WorkerFailure,
)
from repro.pipeline import faults, payload
from repro.pipeline.changeset import CellEdit, Changeset, Delete, Insert, Op
from repro.pipeline.faults import InjectedFault
from repro.pipeline.supervision import (
    SlotFailure,
    SupervisedSlot,
    SupervisionPolicy,
)
from repro.pipeline.session import ApplyResult, CleaningSession
from repro.relational.relation import Relation
from repro.relational.schema import Schema

Cell = Tuple[int, str]
Key = Tuple[Any, ...]
Spec = Tuple

_PROTOCOL = pickle.HIGHEST_PROTOCOL


def _shard_content_id(tids: Sequence[int]) -> str:
    """A content-derived shard id: digest of the (sorted) tid set.

    Stable across processes and re-plans — the property that lets a
    re-plan recognise an unchanged shard and address its live session.
    """
    return hashlib.blake2b(
        array("q", tids).tobytes(), digest_size=8
    ).hexdigest()


# ----------------------------------------------------------------------
# Planning
# ----------------------------------------------------------------------
@dataclass
class ShardPlan:
    """A co-partitioning of a relation's tids into shards.

    ``shards[i]`` is the sorted tid list of shard *i*; ``shard_of`` is
    the inverse map; ``ids[i]`` is the shard's stable session address
    (see :func:`_shard_content_id`).  ``n_components`` counts the
    connected components of the group-coupling graph (the finest legal
    partition); ``degenerate`` flags a single-shard plan with ``reason``
    saying why.
    """

    shards: List[List[int]]
    shard_of: Dict[int, int]
    n_components: int
    degenerate: bool = False
    reason: str = ""
    ids: List[str] = field(default_factory=list)

    @property
    def n_shards(self) -> int:
        return len(self.shards)


class ShardPlanner:
    """Computes shard plans from the rules' own blocking structure.

    Parameters
    ----------
    cfds, mds:
        *Normalized* rule sets (as a session holds them).
    include_md_affinity:
        Also co-locate MD equality-blocking groups (cache affinity; see
        the module docstring).  Correctness never requires it.
    """

    def __init__(
        self,
        cfds: Sequence[CFD],
        mds: Sequence[MD] = (),
        include_md_affinity: bool = True,
    ):
        self.variable_cfds = [cfd for cfd in cfds if cfd.is_variable]
        self.mds = [md for md in mds if md.blocking_key_attrs()]
        self.include_md_affinity = include_md_affinity

    def partition_attrs(self) -> frozenset:
        """Attributes whose *edit* can move a tuple between variable-CFD
        groups — and hence, potentially, between shards."""
        out: Set[str] = set()
        for cfd in self.variable_cfds:
            out.update(cfd.lhs)
        return frozenset(out)

    def components(self, relation: Relation) -> List[List[int]]:
        """Connected components of the group-coupling graph — the finest
        legal partition of *relation* — biggest first (ties by smallest
        member tid), members ascending."""
        tids = list(relation.tids())
        if not tids:
            return []
        parent: Dict[int, int] = {tid: tid for tid in tids}

        def find(x: int) -> int:
            while parent[x] != x:
                parent[x] = parent[parent[x]]
                x = parent[x]
            return x

        def union(a: int, b: int) -> None:
            ra, rb = find(a), find(b)
            if ra != rb:
                parent[rb] = ra

        for cfd in self.variable_cfds:
            first_of: Dict[Key, int] = {}
            lhs = cfd.lhs
            for t in relation:
                if not cfd.lhs_matches(t):
                    continue
                key = t.project(lhs)
                anchor = first_of.setdefault(key, t.tid)
                if anchor != t.tid:
                    union(anchor, t.tid)
        if self.include_md_affinity:
            for md in self.mds:
                attrs = md.blocking_key_attrs()
                first_of = {}
                for t in relation:
                    if t.has_null(attrs):
                        continue  # null keys never satisfy an equality premise
                    key = t.project(attrs)
                    anchor = first_of.setdefault(key, t.tid)
                    if anchor != t.tid:
                        union(anchor, t.tid)

        components: Dict[int, List[int]] = {}
        for tid in tids:
            components.setdefault(find(tid), []).append(tid)
        out = [sorted(component) for component in components.values()]
        out.sort(key=lambda component: (-len(component), component[0]))
        return out

    @staticmethod
    def pack(components: List[List[int]], n_bins: int) -> List[List[int]]:
        """Deterministic balanced packing: each component (expected
        biggest-first) goes into the currently lightest bin."""
        bins = max(1, min(n_bins, len(components)))
        shards: List[List[int]] = [[] for _ in range(bins)]
        loads = [0] * bins
        for component in components:
            target = min(range(bins), key=lambda i: (loads[i], i))
            shards[target].extend(component)
            loads[target] += len(component)
        for shard in shards:
            shard.sort()
        return shards

    def plan(self, relation: Relation, n_shards: int) -> ShardPlan:
        """Partition *relation* into at most *n_shards* co-partitions."""
        tids = list(relation.tids())
        if n_shards <= 1 or len(tids) <= 1:
            return ShardPlan(
                shards=[tids],
                shard_of={tid: 0 for tid in tids},
                n_components=1 if tids else 0,
                degenerate=True,
                reason="single shard requested",
            )
        ordered = self.components(relation)
        if len(ordered) == 1:
            return ShardPlan(
                shards=[tids],
                shard_of={tid: 0 for tid in tids},
                n_components=1,
                degenerate=True,
                reason="rule keys are incompatible: one coupling component",
            )
        shards = self.pack(ordered, n_shards)
        shard_of = {
            tid: index for index, shard in enumerate(shards) for tid in shard
        }
        return ShardPlan(
            shards=shards,
            shard_of=shard_of,
            n_components=len(ordered),
        )


# ----------------------------------------------------------------------
# Worker protocol (runs in the coordinator process or in pool workers)
# ----------------------------------------------------------------------
@dataclass
class _PhaseCounts:
    crepair: Optional[Dict[str, int]] = None
    erepair: Optional[Dict[str, int]] = None
    hrepair: Optional[Dict[str, int]] = None


@dataclass
class _CleanOutcome:
    """What one shard ships back after a (re)clean."""

    shard_id: str
    repaired: Optional[Relation]  # None when the caller knows state is unchanged
    segments: Dict[str, List[Fix]]
    traces: Dict[str, Any]
    costs: Dict[Cell, float]
    clean: bool
    counts: _PhaseCounts
    timings: Dict[str, float]
    ever_keys: Dict[Spec, Set[Key]]
    #: Coordinator-side flag: whether ``segments``/``traces`` still
    #: describe a from-scratch clean of the shard's *current* base
    #: (cleared once a scoped apply touches the shard).
    fullform: bool = True


@dataclass
class _ApplyOutcome:
    """What one shard ships back after an apply."""

    shard_id: str
    mode: str  # "scoped" | "full"
    full: Optional[_CleanOutcome] = None
    # Scoped fields:
    perturbed: List[Cell] = field(default_factory=list)
    dead: List[int] = field(default_factory=list)
    rows: Dict[int, Tuple[List[Any], List[Optional[float]]]] = field(
        default_factory=dict
    )
    segments: Dict[str, List[Fix]] = field(default_factory=dict)
    traces: Dict[str, Any] = field(default_factory=dict)
    costs: Dict[Cell, float] = field(default_factory=dict)
    clean: bool = True
    counts: _PhaseCounts = field(default_factory=_PhaseCounts)
    timings: Dict[str, float] = field(default_factory=dict)
    ever_keys: Dict[Spec, Set[Key]] = field(default_factory=dict)
    replays: int = 0
    affected: int = 0
    affected_cells: int = 0


def _result_counts(c_result, e_result, h_result) -> _PhaseCounts:
    counts = _PhaseCounts()
    if c_result is not None:
        counts.crepair = {
            "deterministic_fixes": c_result.deterministic_fixes,
            "confirmed_cells": c_result.confirmed_cells,
            "rules_fired": c_result.rules_fired,
        }
    if e_result is not None:
        counts.erepair = {
            "reliable_fixes": e_result.reliable_fixes,
            "rounds": e_result.rounds,
        }
    if h_result is not None:
        counts.hrepair = {
            "possible_fixes": h_result.possible_fixes,
            "merges": h_result.merges,
            "upgrades": h_result.upgrades,
            "unresolved": h_result.unresolved,
            "rounds": h_result.rounds,
        }
    return counts


class _WorkerState:
    """Per-process shard host: long-lived sessions + shared master-side
    indexes (blocking indexes and MD match caches are built once per
    process and reused by every shard session it hosts).  Sessions are
    keyed by the shard's stable content id, so they survive re-plans
    that leave the shard's membership alone."""

    def __init__(
        self,
        cfds: Sequence[CFD],
        mds: Sequence[MD],
        master: Optional[Relation],
        config: UniCleanConfig,
        track_legacy_bytes: bool = False,
    ):
        self.cfds = list(cfds)
        self.mds = list(mds)
        self.master = master
        self.config = config
        self.track_legacy_bytes = track_legacy_bytes
        self.md_indexes: Dict[str, Any] = {}
        self.sessions: Dict[str, CleaningSession] = {}
        self._schemas: Dict[Tuple[str, Tuple[str, ...]], Schema] = {}
        for cfd in self.cfds:
            schema = cfd.schema
            self._schemas.setdefault((schema.name, schema.names), schema)
        if master is not None:
            schema = master.schema
            self._schemas.setdefault((schema.name, schema.names), schema)

    def schema_lookup(
        self, name: str, names: Tuple[str, ...]
    ) -> Optional[Schema]:
        """Resolve (and cache) the schema of a decoded relation, reusing
        the instance the rules/master already carry when shapes match."""
        key = (name, names)
        schema = self._schemas.get(key)
        if schema is None:
            schema = self._schemas[key] = Schema(name, names)
        return schema

    # -- lifecycle -----------------------------------------------------
    def reset(self, _shard_id) -> bool:
        for session in self.sessions.values():
            session.close()
        self.sessions.clear()
        return True

    def retain_shards(self, _shard_id, keep: Sequence[str]) -> bool:
        """Close every hosted session whose shard id is not in *keep* —
        how a re-plan retires shards whose membership changed."""
        wanted = set(keep)
        for sid in list(self.sessions):
            if sid not in wanted:
                self.sessions.pop(sid).close()
        return True

    def merge_ever_keys(
        self, shard_id: str, ever_keys: Dict[Spec, Set[Key]]
    ) -> bool:
        """Union remembered group keys into a rebuilt session.

        Crash recovery rebuilds a lost shard session with a fresh
        ``clean_shard`` of its current base — which resets the session's
        ``ever_group_keys`` to the fresh clean's.  The collision
        certificate, however, must keep every key the lost session ever
        materialized, so the coordinator ships its stored view's keys
        back in.  A superset only ever causes *more* shard merging,
        which is always exact (any topology yields byte-identical
        observables)."""
        session = self.sessions[shard_id]
        for spec, keys in ever_keys.items():
            session.ever_group_keys.setdefault(spec, set()).update(keys)
        return True

    # -- operations ----------------------------------------------------
    def clean_shard(self, shard_id: str, relation: Relation) -> _CleanOutcome:
        old = self.sessions.pop(shard_id, None)
        if old is not None:
            old.close()
        session = CleaningSession.from_normalized(
            self.cfds,
            self.mds,
            self.master,
            self.config,
            md_indexes=self.md_indexes,
            collect_traces=True,
        )
        self.sessions[shard_id] = session
        result = session.clean(relation)
        return self._clean_outcome(shard_id, session, result.clean, result.timings)

    def reclean_shard(self, shard_id: str) -> _CleanOutcome:
        """Re-clean from the shard's current (possibly just-edited) base:
        deterministic, so the shard state is reproduced, and the
        log/traces become full-form — used when a re-plan or another
        shard's fallback demands a full-form merge.  Ships **no**
        relation: the session's exactness invariant (a scoped apply
        leaves exactly the state a from-scratch clean of the edited base
        produces, and every scoped apply ships its perturbed rows) means
        the coordinator's merged working already equals this re-clean's
        result, so only the log/trace/cost metadata needs to travel."""
        session = self.sessions[shard_id]
        result = session.clean(session.base)
        outcome = self._clean_outcome(
            shard_id, session, result.clean, result.timings
        )
        outcome.repaired = None
        return outcome

    def snapshot_shard(self, shard_id: str) -> bytes:
        """Serialize the hosted session of *shard_id* (environment-free:
        rules, config and master stay with the worker — see
        :mod:`repro.pipeline.snapshot`)."""
        from repro.pipeline import snapshot

        return snapshot.encode_session(
            self.sessions[shard_id], include_environment=False
        )

    def restore_shard(self, shard_id: str, blob: bytes) -> bool:
        """Rebuild the session of *shard_id* from a :meth:`snapshot_shard`
        blob, re-attaching it to this worker's rules, master data and
        shared master-side indexes (whose match caches the snapshot
        re-warms)."""
        from repro.pipeline import snapshot

        old = self.sessions.pop(shard_id, None)
        if old is not None:
            old.close()
        self.sessions[shard_id] = snapshot.decode_session(
            blob,
            environment=(
                self.cfds, self.mds, self.master, self.config, self.md_indexes
            ),
        )
        return True

    def apply_shard(self, shard_id: str, ops: Sequence[Op]) -> _ApplyOutcome:
        session = self.sessions[shard_id]
        out = session.apply(Changeset(list(ops)))
        if out.full_reclean:
            return _ApplyOutcome(
                shard_id=shard_id,
                mode="full",
                full=self._clean_outcome(
                    shard_id, session, out.clean, out.timings
                ),
            )
        schema_names = session.working.schema.names
        perturbed = sorted(session.last_perturbed)
        rows: Dict[int, Tuple[List[Any], List[Optional[float]]]] = {}
        for tid in {tid for tid, _attr in perturbed}:
            t = session.working.by_tid(tid)
            rows[tid] = (
                [t[attr] for attr in schema_names],
                [t.conf(attr) for attr in schema_names],
            )
        return _ApplyOutcome(
            shard_id=shard_id,
            mode="scoped",
            perturbed=perturbed,
            dead=[op.tid for op in ops if isinstance(op, Delete)],
            rows=rows,
            segments={k: list(v) for k, v in session.last_segments.items()},
            traces=dict(session.last_traces),
            costs=dict(session._cell_costs),
            clean=out.clean,
            counts=_result_counts(
                out.crepair_result, out.erepair_result, out.hrepair_result
            ),
            timings=out.timings,
            ever_keys={s: set(k) for s, k in session.ever_group_keys.items()},
            replays=out.replays,
            affected=out.affected,
            affected_cells=out.affected_cells,
        )

    def is_clean_shard(self, shard_id: str) -> bool:
        return self.sessions[shard_id].is_clean()

    # -- helpers -------------------------------------------------------
    def _clean_outcome(
        self,
        shard_id: str,
        session: CleaningSession,
        clean: bool,
        timings: Dict[str, float],
    ) -> _CleanOutcome:
        assert session.working is not None
        return _CleanOutcome(
            shard_id=shard_id,
            repaired=session.working.clone(),
            segments={k: list(v) for k, v in session.last_segments.items()},
            traces=dict(session.last_traces),
            costs=dict(session._cell_costs),
            clean=clean,
            counts=_result_counts(
                session._last_c_result,
                session._last_e_result,
                session._last_h_result,
            ),
            timings=dict(timings),
            ever_keys={s: set(k) for s, k in session.ever_group_keys.items()},
        )


# ----------------------------------------------------------------------
# Wire framing (process pool only — the serial runner ships raw objects)
# ----------------------------------------------------------------------
def _encode_request(
    shard_id,
    method: str,
    args: tuple,
    fault: Optional[Tuple[str, Optional[float]]] = None,
) -> bytes:
    """Frame one worker call as a columnar message (see
    :mod:`repro.pipeline.payload`) inside a CRC envelope
    (:func:`repro.pipeline.payload.frame`).  *fault* is an optional
    one-shot worker-side fault directive (:mod:`repro.pipeline.faults`)
    the coordinator embeds for deterministic fault injection."""
    table = payload.ValueTable()
    body: Dict[str, Any] = {}
    if method == "clean_shard":
        body["relation"] = payload.encode_relation(args[0], table)
    elif method == "apply_shard":
        body["ops"] = payload.encode_ops(args[0], table)
    elif method == "retain_shards":
        body["keep"] = list(args[0])
    elif method == "restore_shard":
        body["blob"] = args[0]  # already framed+checksummed snapshot bytes
    elif args:
        body["args"] = args
    message = {
        "id": shard_id, "method": method, "body": body, "values": table.values,
    }
    if fault is not None:
        message["fault"] = fault
    return payload.frame(pickle.dumps(message, _PROTOCOL))


def _decode_request(blob: bytes, state: _WorkerState):
    return _decode_request_message(
        pickle.loads(payload.unframe(blob, "request")), state
    )


def _decode_request_message(message: Dict[str, Any], state: _WorkerState):
    method = message["method"]
    body = message["body"]
    values = message["values"]
    if method == "clean_shard":
        args: tuple = (
            payload.decode_relation(
                body["relation"], values, state.schema_lookup
            ),
        )
    elif method == "apply_shard":
        args = (payload.decode_ops(body["ops"], values),)
    elif method == "retain_shards":
        args = (body["keep"],)
    elif method == "restore_shard":
        args = (body["blob"],)
    else:
        args = tuple(body.get("args", ()))
    return message["id"], method, args


def _encode_clean_outcome(
    outcome: _CleanOutcome, table: payload.ValueTable
) -> Dict[str, Any]:
    return {
        "shard_id": outcome.shard_id,
        "repaired": (
            payload.encode_relation(outcome.repaired, table)
            if outcome.repaired is not None
            else None
        ),
        "segments": {
            phase: payload.encode_fixes(fixes, table)
            for phase, fixes in outcome.segments.items()
        },
        "traces": {
            phase: payload.encode_trace(trace, table)
            for phase, trace in outcome.traces.items()
        },
        "costs": payload.encode_costs(outcome.costs, table),
        "clean": outcome.clean,
        "counts": outcome.counts,
        "timings": outcome.timings,
        "ever": payload.encode_ever_keys(outcome.ever_keys, table),
    }


def _decode_clean_outcome(blob: Dict[str, Any], values: List[Any]) -> _CleanOutcome:
    return _CleanOutcome(
        shard_id=blob["shard_id"],
        repaired=(
            payload.decode_relation(blob["repaired"], values)
            if blob["repaired"] is not None
            else None
        ),
        segments={
            phase: payload.decode_fixes(part, values)
            for phase, part in blob["segments"].items()
        },
        traces={
            phase: payload.decode_trace(part, values)
            for phase, part in blob["traces"].items()
        },
        costs=payload.decode_costs(blob["costs"], values),
        clean=blob["clean"],
        counts=blob["counts"],
        timings=blob["timings"],
        ever_keys=payload.decode_ever_keys(blob["ever"], values),
    )


def _encode_apply_outcome(
    outcome: _ApplyOutcome, table: payload.ValueTable
) -> Dict[str, Any]:
    return {
        "shard_id": outcome.shard_id,
        "mode": outcome.mode,
        "full": (
            _encode_clean_outcome(outcome.full, table)
            if outcome.full is not None
            else None
        ),
        "perturbed": payload.encode_cells(outcome.perturbed, table),
        "dead": payload.pack_ints(outcome.dead),
        "rows": payload.encode_rows(outcome.rows, table),
        "segments": {
            phase: payload.encode_fixes(fixes, table)
            for phase, fixes in outcome.segments.items()
        },
        "traces": {
            phase: payload.encode_trace(trace, table)
            for phase, trace in outcome.traces.items()
        },
        "costs": payload.encode_costs(outcome.costs, table),
        "clean": outcome.clean,
        "counts": outcome.counts,
        "timings": outcome.timings,
        "ever": payload.encode_ever_keys(outcome.ever_keys, table),
        "replays": outcome.replays,
        "affected": outcome.affected,
        "affected_cells": outcome.affected_cells,
    }


def _decode_apply_outcome(blob: Dict[str, Any], values: List[Any]) -> _ApplyOutcome:
    return _ApplyOutcome(
        shard_id=blob["shard_id"],
        mode=blob["mode"],
        full=(
            _decode_clean_outcome(blob["full"], values)
            if blob["full"] is not None
            else None
        ),
        perturbed=payload.decode_cells(blob["perturbed"], values),
        dead=list(blob["dead"]),
        rows=payload.decode_rows(blob["rows"], values),
        segments={
            phase: payload.decode_fixes(part, values)
            for phase, part in blob["segments"].items()
        },
        traces={
            phase: payload.decode_trace(part, values)
            for phase, part in blob["traces"].items()
        },
        costs=payload.decode_costs(blob["costs"], values),
        clean=blob["clean"],
        counts=blob["counts"],
        timings=blob["timings"],
        ever_keys=payload.decode_ever_keys(blob["ever"], values),
        replays=blob["replays"],
        affected=blob["affected"],
        affected_cells=blob["affected_cells"],
    )


def _encode_response(result: Any, track_legacy_bytes: bool) -> bytes:
    legacy = (
        len(pickle.dumps(result, _PROTOCOL)) if track_legacy_bytes else 0
    )
    table = payload.ValueTable()
    if isinstance(result, _CleanOutcome):
        body: Tuple[str, Any] = ("clean", _encode_clean_outcome(result, table))
    elif isinstance(result, _ApplyOutcome):
        body = ("apply", _encode_apply_outcome(result, table))
    else:
        body = ("raw", result)
    return pickle.dumps(
        {"body": body, "values": table.values, "legacy": legacy}, _PROTOCOL
    )


def _decode_response(blob: bytes) -> Tuple[Any, int]:
    message = pickle.loads(blob)
    tag, body = message["body"]
    values = message["values"]
    if tag == "clean":
        result: Any = _decode_clean_outcome(body, values)
    elif tag == "apply":
        result = _decode_apply_outcome(body, values)
    else:
        result = body
    return result, message["legacy"]


# Module-level hooks for ProcessPoolExecutor (must be picklable by name).
_PROCESS_STATE: Optional[_WorkerState] = None


def _process_init(spec_blob: bytes) -> None:
    global _PROCESS_STATE
    cfds, mds, master, config, track_legacy_bytes = pickle.loads(spec_blob)
    _PROCESS_STATE = _WorkerState(
        cfds, mds, master, config, track_legacy_bytes=track_legacy_bytes
    )


def _process_call(blob: bytes) -> bytes:
    assert _PROCESS_STATE is not None, "worker not initialized"
    # Frame validation and the fault directive both run BEFORE the
    # request is decoded into a state-changing call: a torn request and
    # every worker-side injected fault are provably pre-execution, so a
    # supervised re-send of the same request is always safe.
    message = pickle.loads(payload.unframe(blob, "request"))
    faults.obey(message.get("fault"))
    shard_id, method, args = _decode_request_message(message, _PROCESS_STATE)
    result = getattr(_PROCESS_STATE, method)(shard_id, *args)
    return payload.frame(
        _encode_response(result, _PROCESS_STATE.track_legacy_bytes)
    )


class _SerialRunner:
    """In-process execution (``n_workers=1``): same protocol, raw Python
    objects end to end — **zero** serialization (no ``pickle.dumps``
    anywhere on this path; regression-tested).

    Keeping the serial path on the identical worker code means the
    debugging story ("run it serial, step through") exercises the exact
    production logic.  The fault injector is consulted per dispatch so
    its hit counters advance identically to the process runner's, but
    only the ``kill`` (coordinator SIGKILL — the crash-recovery drill)
    and ``delay`` kinds act here: there is no worker process to crash,
    hang or respawn.
    """

    bytes_sent = 0
    bytes_received = 0
    legacy_bytes_sent = 0
    legacy_bytes_received = 0
    dispatch_retries = 0
    dispatch_timeouts = 0
    worker_respawns = 0
    serial_fallbacks = 0

    def __init__(self, cfds, mds, master, config):
        self._state = _WorkerState(cfds, mds, master, config)

    def run(self, calls: Sequence[Tuple[str, str, tuple]]) -> List[Any]:
        out = []
        for shard_id, method, args in calls:
            self._consult_faults(method, shard_id)
            out.append(getattr(self._state, method)(shard_id, *args))
        return out

    def broadcast(self, method: str, args: tuple = ()) -> None:
        self._consult_faults(method, None)
        getattr(self._state, method)(None, *args)

    @staticmethod
    def _consult_faults(method: str, shard_id: Optional[str]) -> None:
        injector = faults.active()
        if injector is None:
            return
        plan = injector.plan_dispatch(method, shard_id)
        if plan.kill:
            faults.kill_self()
        if plan.directive is not None and plan.directive[0] == "delay":
            faults.obey(plan.directive)

    def close(self) -> None:
        self._state.reset(None)


class _ProcessRunner:
    """The supervised runner: one single-worker pool per slot; a shard's
    slot is derived from its content id, so shard→slot affinity survives
    re-plans and every live shard session stays in its worker across
    calls.  All traffic is framed through the columnar codecs inside a
    CRC envelope, and the byte counters record exactly what crossed the
    boundary.

    Supervision (see :mod:`repro.pipeline.supervision`): every dispatch
    is awaited under the policy's per-dispatch timeout with a bounded
    per-slot retry budget.  Failures split into **soft** (the worker
    provably never executed the call — a torn request or an injected
    pre-execution error — so the one request is simply re-sent) and
    **hard** (the worker is dead or of unknown state — a broken pool, a
    timeout, or a torn *response* after execution): the slot is killed,
    respawned, its resident shard sessions are rebuilt from the
    coordinator's base via *recovery* (exact, because session state is a
    deterministic function of the shard base), and the slot's in-flight
    batch is re-run.  When the budget runs out the slot either escalates
    to an in-process serial fallback (``policy.serial_fallback``) or the
    typed failure propagates (:class:`~repro.exceptions.RetriesExhausted`
    with the last failure as ``__cause__``; the direct typed error when
    ``max_retries == 0``).
    """

    def __init__(self, cfds, mds, master, config, n_workers: int,
                 track_legacy_bytes: bool = False,
                 policy: Optional[SupervisionPolicy] = None,
                 recovery=None):
        self._spec = (cfds, mds, master, config)
        spec_blob = pickle.dumps(
            (cfds, mds, master, config, track_legacy_bytes)
        )

        def _spawn() -> ProcessPoolExecutor:
            return ProcessPoolExecutor(
                max_workers=1, initializer=_process_init, initargs=(spec_blob,)
            )

        self._slots = [SupervisedSlot(i, _spawn) for i in range(n_workers)]
        self.policy = policy if policy is not None else SupervisionPolicy()
        #: ``recovery(exclude)`` → the worker-call sequence that rebuilds
        #: every live shard session (minus *exclude*) from coordinator
        #: state; installed by the owning session.
        self._recovery = recovery
        self._fallback_state: Optional[_WorkerState] = None
        self.track_legacy_bytes = track_legacy_bytes
        self.bytes_sent = 0
        self.bytes_received = 0
        self.legacy_bytes_sent = 0
        self.legacy_bytes_received = 0
        self.dispatch_retries = 0
        self.dispatch_timeouts = 0
        self.worker_respawns = 0
        self.serial_fallbacks = 0

    # -- addressing ----------------------------------------------------
    def _slot_index(self, shard_id: Union[str, int, None]) -> int:
        if isinstance(shard_id, str):
            return int(shard_id, 16) % len(self._slots)
        # legacy / broadcast addressing
        return (shard_id or 0) % len(self._slots)

    # -- the public runner protocol ------------------------------------
    def run(self, calls: Sequence[Tuple[str, str, tuple]]) -> List[Any]:
        results: List[Any] = [None] * len(calls)
        by_slot: Dict[int, List[int]] = {}
        for i, (shard_id, _method, _args) in enumerate(calls):
            by_slot.setdefault(self._slot_index(shard_id), []).append(i)
        # Submit every slot's first attempt up front so healthy slots
        # overlap; retries then serialize per slot.
        first: Dict[int, Any] = {}
        for index in sorted(by_slot):
            slot = self._slots[index]
            if slot.escalated:
                first[index] = None
                continue
            try:
                first[index] = self._submit_batch(slot, by_slot[index], calls)
            except SlotFailure as failure:
                first[index] = failure
        for index in sorted(by_slot):
            self._run_slot(
                self._slots[index], by_slot[index], calls, results,
                first[index],
            )
        return results

    def broadcast(self, method: str, args: tuple = ()) -> None:
        call = (None, method, args)
        for slot in self._slots:
            if not slot.escalated:
                self._broadcast_slot(slot, call)
        if self._fallback_state is not None:
            getattr(self._fallback_state, method)(None, *args)

    def close(self) -> None:
        for slot in self._slots:
            slot.kill()
        if self._fallback_state is not None:
            self._fallback_state.reset(None)
            self._fallback_state = None

    # -- encoding and single dispatches --------------------------------
    def _encode_call(self, call: Tuple[Any, str, tuple]):
        shard_id, method, args = call
        injector = faults.active()
        plan = (
            injector.plan_dispatch(method, shard_id)
            if injector is not None
            else None
        )
        if plan is not None and plan.kill:
            faults.kill_self()
        blob = _encode_request(
            shard_id, method, args,
            fault=plan.directive if plan is not None else None,
        )
        if plan is not None and plan.torn_request:
            blob = faults.mangle(blob)
        self.bytes_sent += len(blob)
        if self.track_legacy_bytes:
            self.legacy_bytes_sent += len(
                pickle.dumps((shard_id, method, args), _PROTOCOL)
            )
        return blob, plan

    def _submit_one(self, slot: SupervisedSlot, call, index: int):
        blob, plan = self._encode_call(call)
        try:
            future = slot.submit(_process_call, blob)
        except WorkerFailure as exc:
            slot.kill(primary=exc)
            raise SlotFailure(exc, hard=True)
        return index, future, plan

    def _submit_batch(self, slot: SupervisedSlot, indices, calls):
        return [self._submit_one(slot, calls[i], i) for i in indices]

    def _receive(self, slot: SupervisedSlot, future, plan) -> Any:
        """Await one response and decode it; every failure after this
        point is **hard** (the worker may have executed the call)."""
        try:
            response = slot.result(future, self.policy.timeout)
        except ShardTimeout as exc:
            self.dispatch_timeouts += 1
            slot.kill(primary=exc)  # never leave a hung worker behind
            raise SlotFailure(exc, hard=True)
        except WorkerFailure as exc:
            slot.kill(primary=exc)
            raise SlotFailure(exc, hard=True)
        if plan is not None and plan.torn_response:
            response = faults.mangle(response)
        try:
            body = payload.unframe(response, "response")
        except TornFrame as exc:
            # The worker DID execute the call; only the reply was lost.
            # Re-running e.g. apply_shard against the same session would
            # double-apply, so recovery must rebuild the slot's state.
            raise SlotFailure(exc, hard=True)
        self.bytes_received += len(response)
        result, legacy = _decode_response(body)
        self.legacy_bytes_received += legacy
        return result

    def _dispatch_once(self, slot: SupervisedSlot, call) -> Any:
        """One supervised round-trip with no soft-retry absorption: any
        failure surfaces as a hard :class:`SlotFailure` (the caller's
        retry loop respawns and re-runs — recovery calls and broadcasts
        are safe to repeat against a rebuilt slot)."""
        _index, future, plan = self._submit_one(slot, call, -1)
        try:
            return self._receive(slot, future, plan)
        except SlotFailure:
            raise
        except (TornFrame, InjectedFault) as exc:
            raise SlotFailure(exc, hard=True)

    # -- the supervised batch loop -------------------------------------
    def _run_slot(self, slot: SupervisedSlot, indices, calls, results, first):
        if slot.escalated:
            self._run_fallback(indices, calls, results)
            return
        budget = [0]
        submitted = first if isinstance(first, list) else None
        pending: Optional[SlotFailure] = (
            first if isinstance(first, SlotFailure) else None
        )
        while True:
            if pending is None:
                try:
                    if submitted is None:
                        submitted = self._submit_batch(slot, indices, calls)
                    self._collect_batch(slot, submitted, calls, results, budget)
                    return
                except SlotFailure as exc:
                    pending = exc
            submitted = None
            budget[0] += 1
            if budget[0] > self.policy.max_retries:
                slot.kill(primary=pending.error)
                if self.policy.serial_fallback:
                    self._escalate(slot, indices, calls, results)
                    return
                self._raise_final(pending)
            self.dispatch_retries += 1
            if pending.hard:
                self.worker_respawns += 1
                slot.respawn(primary=pending.error)
            self.policy.sleep(budget[0] - 1)
            if pending.hard:
                try:
                    self._rebuild_slot(slot, indices, calls)
                except SlotFailure as exc:
                    pending = exc
                    continue
            pending = None

    def _collect_batch(self, slot, submitted, calls, results, budget):
        for position in range(len(submitted)):
            index, future, plan = submitted[position]
            while True:
                try:
                    results[index] = self._receive(slot, future, plan)
                    break
                except SlotFailure:
                    raise
                except (TornFrame, InjectedFault) as exc:
                    # Raised worker-side BEFORE execution (frame checks
                    # and fault directives run first): re-sending this
                    # one request is safe, and the rest of the batch is
                    # untouched.  The soft retry shares the slot budget.
                    budget[0] += 1
                    if budget[0] > self.policy.max_retries:
                        raise SlotFailure(exc, hard=False)
                    self.dispatch_retries += 1
                    self.policy.sleep(budget[0] - 1)
                    index, future, plan = self._submit_one(
                        slot, calls[index], index
                    )

    def _rebuild_slot(self, slot: SupervisedSlot, indices, calls) -> None:
        """Re-create the shard sessions a dead slot hosted.

        Exact because a shard session's state is a deterministic
        function of its current base (the scoped-apply invariant: a
        scoped apply leaves exactly the state a from-scratch clean of
        the edited base produces) — so ``clean_shard`` over the
        coordinator's base, plus the remembered ever-group-keys, equals
        the lost state.  Shards whose in-flight batch call re-establishes
        them anyway (``clean_shard`` / ``restore_shard``) are excluded by
        the recovery callback."""
        if self._recovery is None:
            return
        exclude = {
            calls[i][0]
            for i in indices
            if calls[i][1] in ("clean_shard", "restore_shard")
        }
        for call in self._recovery(exclude):
            if self._slot_index(call[0]) != slot.index:
                continue
            self._dispatch_once(slot, call)

    # -- escalation to the in-process serial fallback ------------------
    def _ensure_fallback(self) -> _WorkerState:
        if self._fallback_state is None:
            cfds, mds, master, config = self._spec
            self._fallback_state = _WorkerState(cfds, mds, master, config)
        return self._fallback_state

    def _escalate(self, slot: SupervisedSlot, indices, calls, results):
        """Degrade the slot to in-process execution: rebuild its resident
        sessions in the coordinator (exact — see :meth:`_rebuild_slot`)
        and run the in-flight batch there.  The slot stays escalated for
        the rest of the runner's life."""
        self.serial_fallbacks += 1
        slot.escalated = True
        state = self._ensure_fallback()
        exclude = {
            calls[i][0]
            for i in indices
            if calls[i][1] in ("clean_shard", "restore_shard")
        }
        if self._recovery is not None:
            for shard_id, method, args in self._recovery(exclude):
                if self._slot_index(shard_id) != slot.index:
                    continue
                getattr(state, method)(shard_id, *args)
        self._run_fallback(indices, calls, results)

    def _run_fallback(self, indices, calls, results) -> None:
        state = self._ensure_fallback()
        for i in indices:
            shard_id, method, args = calls[i]
            results[i] = getattr(state, method)(shard_id, *args)

    # -- supervised broadcasts -----------------------------------------
    def _broadcast_slot(self, slot: SupervisedSlot, call) -> None:
        used = 0
        pending: Optional[SlotFailure] = None
        while True:
            if pending is None:
                try:
                    self._dispatch_once(slot, call)
                    return
                except SlotFailure as exc:
                    pending = exc
            used += 1
            if used > self.policy.max_retries:
                slot.kill(primary=pending.error)
                if self.policy.serial_fallback:
                    self._escalate_broadcast(slot, call)
                    return
                self._raise_final(pending)
            self.dispatch_retries += 1
            if pending.hard:
                self.worker_respawns += 1
                slot.respawn(primary=pending.error)
            self.policy.sleep(used - 1)
            # "reset" wipes every session anyway — skip the rebuild.
            if pending.hard and call[1] != "reset":
                try:
                    self._rebuild_slot(slot, (), [])
                except SlotFailure as exc:
                    pending = exc
                    continue
            pending = None

    def _escalate_broadcast(self, slot: SupervisedSlot, call) -> None:
        self.serial_fallbacks += 1
        slot.escalated = True
        state = self._ensure_fallback()
        if self._recovery is not None and call[1] != "reset":
            for shard_id, method, args in self._recovery(set()):
                if self._slot_index(shard_id) != slot.index:
                    continue
                getattr(state, method)(shard_id, *args)
        # The shared fallback state receives the broadcast itself exactly
        # once, at the end of broadcast().

    def _raise_final(self, failure: SlotFailure) -> None:
        """Surface the budget-exhaustion failure.  With retries enabled
        the wrapper chains the last underlying error as ``__cause__``;
        with ``max_retries=0`` the direct error is raised bare — never
        ``raise x from x``, which would knot the cause chain into a
        cycle (and clobber the error's own ``__cause__``)."""
        if self.policy.max_retries > 0:
            raise RetriesExhausted(
                f"dispatch retries exhausted "
                f"(max_retries={self.policy.max_retries}) and the "
                f"supervision policy forbids the serial fallback"
            ) from failure.error
        raise failure.error


# ----------------------------------------------------------------------
# The sharded session
# ----------------------------------------------------------------------
class ShardedCleaningSession:
    """A drop-in :class:`CleaningSession` that fans the work out across
    co-partitioned shards (see the module docstring for the plan and the
    exactness argument).

    Parameters
    ----------
    cfds, mds, negative_mds, master, config:
        As for :class:`CleaningSession` (normalization, negative-MD
        embedding and the optional consistency check run once, here).
        ``config.use_violation_index`` must stay enabled — collision
        detection rides the shared group stores.
    n_workers:
        Process-pool slots.  ``1`` (the default) runs every shard in
        this process through the identical worker code path — the
        debugging mode, and the right choice for small relations where
        process startup dominates.
    n_shards:
        Target shard count (default ``n_workers``).  The planner may
        produce fewer shards (fewer coupling components), and collision
        retries may merge shards further.
    include_md_affinity:
        Forwarded to :class:`ShardPlanner`.
    reuse_sessions:
        Reuse unaffected shard sessions across re-plans (the default;
        see "Incremental re-planning" in the module docstring).
        ``False`` is the documented escape hatch: every re-plan rebuilds
        every shard from scratch, exactly the PR 3 behaviour.
    track_legacy_bytes:
        Benchmark-only: additionally pickle every payload the PR 3 way
        and record the byte counts in ``stats`` so the columnar savings
        can be asserted structurally (never enable in production — it
        doubles the serialization work).

    Examples
    --------
    >>> session = ShardedCleaningSession(cfds=sigma, mds=gamma,
    ...                                  master=dm, n_workers=4)  # doctest: +SKIP
    >>> result = session.clean(dirty)                             # doctest: +SKIP
    >>> out = session.apply(Changeset().edit(3, "city", "Edi"))   # doctest: +SKIP
    >>> out = session.apply_many([delta1, delta2])                # doctest: +SKIP
    """

    def __init__(
        self,
        cfds: Sequence[CFD] = (),
        mds: Sequence[MD] = (),
        negative_mds: Sequence[NegativeMD] = (),
        master: Optional[Relation] = None,
        config: Optional[UniCleanConfig] = None,
        n_workers: int = 1,
        n_shards: Optional[int] = None,
        include_md_affinity: bool = True,
        reuse_sessions: bool = True,
        track_legacy_bytes: bool = False,
        supervision: Optional[SupervisionPolicy] = None,
        checkpoint_dir=None,
        checkpoint_every: int = 0,
        checkpoint_retain: int = 3,
    ):
        self.config = config or UniCleanConfig()
        self.cfds: List[CFD] = []
        for cfd in cfds:
            self.cfds.extend(cfd.normalize())
        if negative_mds:
            self.mds = embed_negative(list(mds), list(negative_mds))
        else:
            self.mds = []
            for md in mds:
                self.mds.extend(md.normalize())
        if self.mds and master is None:
            raise ValueError("MDs require master data")
        self.master = master
        if self.config.check_consistency and self.cfds:
            assert_consistent(self.cfds[0].schema, self.cfds, self.mds, master)
        self._finish_init(
            n_workers, n_shards, include_md_affinity, reuse_sessions,
            track_legacy_bytes, supervision, checkpoint_dir,
            checkpoint_every, checkpoint_retain,
        )

    @classmethod
    def from_normalized(
        cls,
        cfds: Sequence[CFD],
        mds: Sequence[MD],
        master: Optional[Relation],
        config: UniCleanConfig,
        n_workers: int = 1,
        n_shards: Optional[int] = None,
        include_md_affinity: bool = True,
        reuse_sessions: bool = True,
        track_legacy_bytes: bool = False,
        supervision: Optional[SupervisionPolicy] = None,
        checkpoint_dir=None,
        checkpoint_every: int = 0,
        checkpoint_retain: int = 3,
    ) -> "ShardedCleaningSession":
        """Build a sharded session over already-normalized rules, skipping
        normalization and the consistency analysis — the snapshot-restore
        constructor (:mod:`repro.pipeline.snapshot` persists the session's
        normalized rule forms)."""
        session = cls.__new__(cls)
        session.config = config
        session.cfds = list(cfds)
        session.mds = list(mds)
        session.master = master
        session._finish_init(
            n_workers, n_shards, include_md_affinity, reuse_sessions,
            track_legacy_bytes, supervision, checkpoint_dir,
            checkpoint_every, checkpoint_retain,
        )
        return session

    def _finish_init(
        self,
        n_workers: int,
        n_shards: Optional[int],
        include_md_affinity: bool,
        reuse_sessions: bool,
        track_legacy_bytes: bool,
        supervision: Optional[SupervisionPolicy] = None,
        checkpoint_dir=None,
        checkpoint_every: int = 0,
        checkpoint_retain: int = 3,
    ) -> None:
        if not self.config.use_violation_index:
            raise ValueError(
                "ShardedCleaningSession requires use_violation_index: "
                "group-key collision detection rides the shared group stores"
            )
        if n_workers < 1:
            raise ValueError(f"n_workers must be >= 1, got {n_workers}")
        self.n_workers = n_workers
        self.include_md_affinity = include_md_affinity
        self.n_shards = n_shards if n_shards is not None else n_workers
        self.reuse_sessions = reuse_sessions
        self.track_legacy_bytes = track_legacy_bytes
        self.planner = ShardPlanner(
            self.cfds, self.mds, include_md_affinity=self.include_md_affinity
        )
        self._partition_attrs = self.planner.partition_attrs()
        self.supervision = (
            supervision if supervision is not None else SupervisionPolicy()
        )
        self.checkpoint_dir = (
            Path(checkpoint_dir) if checkpoint_dir is not None else None
        )
        self.checkpoint_every = checkpoint_every
        self.checkpoint_retain = checkpoint_retain
        self._ops_since_checkpoint = 0

        self._runner: Optional[Any] = None
        self._closed = False
        #: Poisoned by an unrecovered worker failure: coordinator and
        #: worker state may disagree (observables were never merged), so
        #: apply/save/is_clean refuse until a fresh clean() or restore().
        self._failed = False
        self.plan: Optional[ShardPlan] = None
        self.base: Optional[Relation] = None
        self.working: Optional[Relation] = None
        self.fix_log: FixLog = FixLog()
        self._shard_views: Dict[str, _CleanOutcome] = {}
        #: Shard ids with a live session in some worker.
        self._session_ids: Set[str] = set()
        #: Shard id → current tid membership (aliases ``plan.shards`` so
        #: delete-driven membership edits stay visible) — what crash
        #: recovery restricts the base by to rebuild a lost session.
        self._shard_tids: Dict[str, List[int]] = {}
        #: Changesets queued by :meth:`buffer`, applied by :meth:`flush`.
        self._pending: List[Changeset] = []
        self._last_clean = False
        #: Observability counters: plans, collision retries, apply modes,
        #: per-re-plan shard reuse, coordinator↔worker payload bytes
        #: (zero on the serial path, which never serializes), and the
        #: supervision ledger (retries, timeouts, respawns, fallbacks,
        #: checkpoints).
        self.stats: Dict[str, int] = {
            "plans": 0,
            "collision_retries": 0,
            "scoped_applies": 0,
            "full_applies": 0,
            "shards_recleaned": 0,
            "shards_reused": 0,
            "bytes_to_workers": 0,
            "bytes_from_workers": 0,
            "legacy_bytes_to_workers": 0,
            "legacy_bytes_from_workers": 0,
            "dispatch_retries": 0,
            "dispatch_timeouts": 0,
            "worker_respawns": 0,
            "serial_fallbacks": 0,
            "checkpoints_written": 0,
        }

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def _ensure_runner(self):
        if self._runner is None:
            if self.n_workers == 1:
                self._runner = _SerialRunner(
                    self.cfds, self.mds, self.master, self.config
                )
            else:
                self._runner = _ProcessRunner(
                    self.cfds, self.mds, self.master, self.config,
                    self.n_workers,
                    track_legacy_bytes=self.track_legacy_bytes,
                    policy=self.supervision,
                    recovery=self._recovery_calls,
                )
        return self._runner

    def _sync_io_stats(self) -> None:
        runner = self._runner
        if runner is None:
            return
        self.stats["bytes_to_workers"] = runner.bytes_sent
        self.stats["bytes_from_workers"] = runner.bytes_received
        self.stats["legacy_bytes_to_workers"] = runner.legacy_bytes_sent
        self.stats["legacy_bytes_from_workers"] = runner.legacy_bytes_received
        self.stats["dispatch_retries"] = runner.dispatch_retries
        self.stats["dispatch_timeouts"] = runner.dispatch_timeouts
        self.stats["worker_respawns"] = runner.worker_respawns
        self.stats["serial_fallbacks"] = runner.serial_fallbacks

    def _recovery_calls(
        self, exclude: Set[str]
    ) -> List[Tuple[str, str, tuple]]:
        """The worker-call sequence that rebuilds every live shard
        session (minus *exclude*) from coordinator state after a worker
        died — exact because a shard session's state is a deterministic
        function of its current base (see ``_WorkerState.reclean_shard``),
        and the remembered ever-group-keys are unioned back in so the
        collision certificate keeps the lost session's memory."""
        calls: List[Tuple[str, str, tuple]] = []
        if self.base is None:
            return calls
        for sid in sorted(self._session_ids - set(exclude)):
            tids = self._shard_tids.get(sid)
            if tids is None:
                continue
            live = [tid for tid in tids if self.base.has_tid(tid)]
            if not live:
                continue
            calls.append(
                (sid, "clean_shard", (self.base.restrict(live, copy=False),))
            )
            view = self._shard_views.get(sid)
            if view is not None and view.ever_keys:
                calls.append(
                    (sid, "merge_ever_keys",
                     ({s: set(k) for s, k in view.ever_keys.items()},))
                )
        return calls

    @contextmanager
    def _absorb_failure(self):
        """Poison the session when a typed supervision failure escapes:
        some workers may have executed calls the coordinator never
        merged, so coordinator and worker state can disagree (the
        observables themselves are never half-merged — merging happens
        strictly after every outcome arrived)."""
        try:
            yield
        except (WorkerFailure, TornFrame, InjectedFault):
            self._failed = True
            raise

    def _check_usable(self, what: str) -> None:
        if self._failed:
            raise DataError(
                f"ShardedCleaningSession.{what} refused: the session is "
                "in a failed state after an unrecovered worker failure — "
                "run clean() again or restore() a snapshot/checkpoint"
            )

    def _maybe_checkpoint(self) -> None:
        """The auto-checkpoint policy: after every ``checkpoint_every``
        successful state-changing operations (clean/apply), write a
        durable snapshot under ``checkpoint_dir`` and prune all but the
        newest ``checkpoint_retain``."""
        if self.checkpoint_dir is None or self.checkpoint_every <= 0:
            return
        self._ops_since_checkpoint += 1
        if self._ops_since_checkpoint < self.checkpoint_every:
            return
        if self._pending:
            return  # buffered deltas are not state yet; the flush counts
        from repro.pipeline import snapshot

        snapshot.save_checkpoint(
            self, self.checkpoint_dir, retain=self.checkpoint_retain
        )
        self._ops_since_checkpoint = 0
        self.stats["checkpoints_written"] += 1

    def close(self) -> None:
        """Shut down worker processes / detach serial sessions.

        The per-shard sessions die with their workers, so ``apply`` and
        ``is_clean`` raise afterwards; a fresh ``clean()`` restarts the
        session lifecycle.  Changesets still sitting in the
        :meth:`buffer` queue are discarded.

        Idempotent and failure-safe: a second ``close()``, or a
        ``close()`` on a poisoned session whose workers already died,
        is a no-op that never raises — slot teardown force-kills
        best-effort and swallows cleanup errors from already-dead pools
        (they only surface, chained, during *failure-path* respawns;
        see :meth:`SupervisedSlot.kill`).
        """
        runner, self._runner = self._runner, None
        if runner is not None:
            runner.close()
        self._session_ids = set()
        self._pending = []
        self._closed = True

    def __enter__(self) -> "ShardedCleaningSession":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Snapshots (see repro/pipeline/snapshot.py)
    # ------------------------------------------------------------------
    def save(self, path) -> int:
        """Write a durable snapshot of the whole sharded session to the
        directory *path*: one checksummed snapshot per shard (pulled from
        its worker) plus a manifest with the coordinator state, written
        last so the directory is never observable half-saved.  Shard ids
        (:func:`_shard_content_id`) name the files, so a later
        :meth:`restore` re-attaches each shard to its worker slot.
        Requires a prior :meth:`clean` and an empty :meth:`buffer` queue.
        Returns total bytes written.
        """
        from repro.pipeline import snapshot

        self._check_usable("save()")
        with self._absorb_failure():
            return snapshot.save_sharded(self, path)

    @classmethod
    def restore(
        cls,
        path,
        n_workers: Optional[int] = None,
        supervision: Optional[SupervisionPolicy] = None,
        checkpoint_dir=None,
        checkpoint_every: int = 0,
        checkpoint_retain: int = 3,
    ) -> "ShardedCleaningSession":
        """Rebuild a sharded session from a :meth:`save` directory.

        Restored shards keep their content ids, worker-slot affinity and
        full-form views, so the next sticky re-plan reuses them instead
        of re-cleaning; subsequent ``apply``/``apply_many`` observables
        are byte-identical to the never-stopped session's.  *n_workers*
        optionally overrides the saved pool size (shard state is
        worker-agnostic).  The runner's payload byte counters restart at
        the restore traffic itself; the logical counters (plans,
        collision retries, apply modes, reuse) continue from their saved
        values.  Raises :class:`~repro.exceptions.SnapshotCorrupt` on
        any checksum/format failure, including a shard file that does
        not match the manifest digest.  *supervision* and the
        ``checkpoint_*`` knobs configure the restored session (they are
        runtime policy, not snapshot state).
        """
        from repro.pipeline import snapshot

        return snapshot.restore_sharded(
            path,
            n_workers=n_workers,
            supervision=supervision,
            checkpoint_dir=checkpoint_dir,
            checkpoint_every=checkpoint_every,
            checkpoint_retain=checkpoint_retain,
        )

    @classmethod
    def restore_latest(
        cls,
        checkpoint_dir,
        n_workers: Optional[int] = None,
        supervision: Optional[SupervisionPolicy] = None,
        checkpoint_every: int = 0,
        checkpoint_retain: int = 3,
    ) -> "ShardedCleaningSession":
        """Restore the newest restorable checkpoint under
        *checkpoint_dir* (written by the ``checkpoint_every`` policy),
        falling back past corrupt or torn checkpoints to the newest one
        that validates.  The restored session keeps checkpointing into
        the same directory when *checkpoint_every* is set.  Raises
        :class:`~repro.exceptions.SnapshotError` when no checkpoint
        validates."""
        from repro.pipeline import snapshot

        return snapshot.restore_latest_checkpoint(
            checkpoint_dir,
            n_workers=n_workers,
            supervision=supervision,
            checkpoint_every=checkpoint_every,
            checkpoint_retain=checkpoint_retain,
        )

    # ------------------------------------------------------------------
    # Cleaning
    # ------------------------------------------------------------------
    def clean(self, relation: Relation) -> CleaningResult:
        """Shard *relation*, clean every shard, merge — exactly like an
        unsharded ``CleaningSession.clean`` of the same relation."""
        self._closed = False  # a fresh clean restarts the lifecycle
        self._failed = False  # ... and clears a poisoned session
        self.base = relation.clone()
        self.plan = None  # a new base invalidates every previous shard
        self._shard_views = {}
        self._shard_tids = {}
        with self._absorb_failure():
            result = self._clean_base(touched=None)
        self._maybe_checkpoint()
        return result

    # -- re-plan core --------------------------------------------------
    def _converge(
        self,
        shard_sets: List[List[int]],
        valid: Dict[str, _CleanOutcome],
        reclean_ids: Set[str],
        address: Dict[Tuple[int, ...], str],
    ) -> Tuple[List[str], List[List[int]], Set[str]]:
        """Bring every shard of *shard_sets* to a valid full-form clean,
        merging on group-key collisions until the plan holds.

        *valid* seeds reusable views (shards whose sessions and stored
        full-form outcomes match the current base); *reclean_ids* names
        shards whose session is current but whose stored log is not
        full-form (they re-clean in place, shipping no relation);
        *address* pins existing shard ids to their tid sets.  Returns
        ``(ids, shard_sets, cleaned_ids)`` with *valid* updated in
        place.
        """
        runner = self._ensure_runner()
        cleaned: Set[str] = set()
        while True:
            self.stats["plans"] += 1
            ids: List[str] = []
            for tids in shard_sets:
                key = tuple(tids)
                sid = address.get(key)
                if sid is None:
                    sid = address[key] = _shard_content_id(tids)
                ids.append(sid)
            # Update the coordinator's view of membership and liveness
            # BEFORE the retain broadcast: a worker that dies during the
            # broadcast is recovered against this state, so it must
            # already describe the post-retain world.
            for sid, tids in zip(ids, shard_sets):
                self._shard_tids[sid] = tids
            keep = set(ids)
            if self._session_ids - keep:
                self._session_ids &= keep
                self._shard_tids = {
                    sid: tids
                    for sid, tids in self._shard_tids.items()
                    if sid in keep
                }
                runner.broadcast("retain_shards", (sorted(keep),))
            calls: List[Tuple[str, str, tuple]] = []
            for sid, tids in zip(ids, shard_sets):
                if sid in valid and sid not in reclean_ids:
                    continue
                if sid in self._session_ids and sid in reclean_ids:
                    calls.append((sid, "reclean_shard", ()))
                else:
                    assert self.base is not None
                    calls.append(
                        (sid, "clean_shard",
                         (self.base.restrict(tids, copy=False),))
                    )
            outcomes: List[_CleanOutcome] = runner.run(calls)
            self.stats["shards_recleaned"] += len(calls)
            for outcome in outcomes:
                valid[outcome.shard_id] = outcome
                self._session_ids.add(outcome.shard_id)
                reclean_ids.discard(outcome.shard_id)
                cleaned.add(outcome.shard_id)
            merged = self._colliding_shard_sets(
                shard_sets, [valid[sid].ever_keys for sid in ids]
            )
            if merged is None:
                self.stats["shards_reused"] += sum(
                    1 for sid in ids if sid not in cleaned
                )
                return ids, shard_sets, cleaned
            self.stats["collision_retries"] += 1
            shard_sets = merged

    def _sticky_shard_sets(
        self,
        components: List[List[int]],
        touched: Set[int],
        valid: Dict[str, _CleanOutcome],
        reclean_ids: Set[str],
        address: Dict[Tuple[int, ...], str],
    ) -> List[List[int]]:
        """The component-stable re-plan: keep every previous shard whose
        membership is still exactly a union of current components and
        whose tuples the delta never touched; re-pack the rest."""
        assert self.plan is not None
        comp_of: Dict[int, int] = {}
        for index, component in enumerate(components):
            for tid in component:
                comp_of[tid] = index
        used: Set[int] = set()
        kept_sets: List[List[int]] = []
        for index, tids in enumerate(self.plan.shards):
            sid = self.plan.ids[index] if index < len(self.plan.ids) else None
            if sid is None or sid not in self._session_ids or not tids:
                continue
            if touched.intersection(tids):
                continue
            comps: Set[int] = set()
            intact = True
            for tid in tids:
                ci = comp_of.get(tid)
                if ci is None:
                    intact = False
                    break
                comps.add(ci)
            if not intact:
                continue
            if sum(len(components[ci]) for ci in comps) != len(tids):
                continue  # a coupled tuple now sits outside the shard
            address[tuple(tids)] = sid
            view = self._shard_views.get(sid)
            if view is not None and view.fullform:
                valid[sid] = view
            else:
                reclean_ids.add(sid)
            used.update(comps)
            kept_sets.append(tids)
        pool = [
            component
            for index, component in enumerate(components)
            if index not in used
        ]
        fresh_sets = (
            self.planner.pack(pool, max(1, self.n_shards - len(kept_sets)))
            if pool
            else []
        )
        return kept_sets + fresh_sets

    def _clean_base(self, touched: Optional[Set[int]] = None) -> CleaningResult:
        assert self.base is not None
        tids = list(self.base.tids())
        if tids != sorted(tids):
            # The exact-order merge ranks cRepair init work by tid, which
            # equals the unsharded initialization (insertion) order only
            # when tids ascend.  Every construction path in this library
            # produces ascending tids; a caller who interleaved explicit
            # out-of-order tids must normalize first.
            raise ValueError(
                "ShardedCleaningSession requires tids in ascending insertion "
                "order (rebuild the relation, e.g. via restrict(sorted tids))"
            )
        runner = self._ensure_runner()
        started = time.perf_counter()

        valid: Dict[str, _CleanOutcome] = {}
        reclean_ids: Set[str] = set()
        address: Dict[Tuple[int, ...], str] = {}
        reuse_allowed = (
            self.reuse_sessions
            and touched is not None
            and self.plan is not None
            and bool(self.plan.ids)
            and bool(self._session_ids)
        )
        if reuse_allowed:
            components = self.planner.components(self.base)
            shard_sets = self._sticky_shard_sets(
                components, touched, valid, reclean_ids, address
            )
            n_components = len(components)
            degenerate = len(shard_sets) == 1
            reason = "one coupling component" if degenerate else ""
        else:
            plan = self.planner.plan(self.base, self.n_shards)
            shard_sets = plan.shards
            n_components = plan.n_components
            degenerate, reason = plan.degenerate, plan.reason
            # Clear coordinator liveness BEFORE the reset broadcast:
            # recovery of a worker that dies mid-reset must not try to
            # rebuild sessions the reset is wiping anyway.
            self._session_ids = set()
            self._shard_views = {}
            self._shard_tids = {}
            runner.broadcast("reset")

        retries_before = self.stats["collision_retries"]
        ids, shard_sets, cleaned = self._converge(
            shard_sets, valid, reclean_ids, address
        )
        if len(shard_sets) == 1 and (
            self.stats["collision_retries"] > retries_before
        ):
            degenerate, reason = True, "collision retries merged all shards"
        elif reuse_allowed:
            degenerate = len(shard_sets) == 1
            reason = reason if degenerate else ""

        self._install_plan(shard_sets, ids, n_components, degenerate, reason)
        assert self.plan is not None
        ids = self.plan.ids
        shard_sets = self.plan.shards

        old_working = self.working
        working = Relation(self.base.schema)
        working._next_tid = self.base._next_tid
        working._retired = set(self.base._retired)
        fresh_outcomes: List[_CleanOutcome] = []
        #: tid → its repaired tuple; ``None`` marks a reused /
        #: re-cleaned-in-place shard whose tuples the previous merged
        #: working still holds (shards never interact, and scoped
        #: applies ship their rows, so that restriction is exact).
        repaired_of: Dict[int, Optional[Any]] = {}
        for sid, tids_ in zip(ids, shard_sets):
            view = valid[sid]
            if sid in cleaned:
                fresh_outcomes.append(view)
            if view.repaired is not None:
                for t in view.repaired:
                    repaired_of[t.tid] = t
                view.repaired = None  # merged; free the per-shard copy
            else:
                assert old_working is not None
                for tid_ in tids_:
                    repaired_of[tid_] = None
        # Populate in base insertion order (= the unsharded working's
        # iteration order); reused tuples are cloned so snapshots
        # returned to earlier callers stay frozen.
        for tid in self.base.tids():
            t = repaired_of[tid]
            working._install(
                old_working._tuples[tid].clone() if t is None else t
            )
        self.working = working
        self._shard_views = {sid: valid[sid] for sid in ids}
        self.fix_log = self._merge_full_logs()
        c_result, e_result, h_result = self._merged_phase_results()
        self._last_clean = all(
            view.clean for view in self._shard_views.values()
        )
        timings = self._merged_timings(
            (outcome.timings for outcome in fresh_outcomes), started
        )
        self._sync_io_stats()
        return CleaningResult(
            repaired=self.working,
            fix_log=self.fix_log,
            crepair_result=c_result,
            erepair_result=e_result,
            hrepair_result=h_result,
            cost=self._total_cost(),
            clean=self._last_clean,
            timings=timings,
        )

    # ------------------------------------------------------------------
    # Incremental apply
    # ------------------------------------------------------------------
    def buffer(self, changeset: Changeset) -> "ShardedCleaningSession":
        """Queue *changeset* without applying it; :meth:`flush` applies
        everything buffered as one coalesced micro-batch."""
        self._pending.append(changeset)
        return self

    def flush(self) -> Optional[ApplyResult]:
        """Apply the buffered changesets via :meth:`apply_many` (one
        fan-out round-trip).

        An empty buffer — or a buffer of changesets that carry no ops —
        is a contractual **no-op**: returns ``None``, dispatches nothing,
        leaves the plan and every ``stats`` counter untouched, and does
        not count toward the checkpoint policy.  (Same contract as
        ``apply_many([])``.)
        """
        if not self._pending:
            return None
        pending, self._pending = self._pending, []
        return self.apply_many(pending)

    def apply(self, changeset: Changeset) -> Optional[ApplyResult]:
        """Re-clean under *changeset*; byte-identical to an unsharded
        ``CleaningSession.apply`` of the same delta.  See
        :meth:`apply_many` for the batched form (and for the ``None``
        no-op contract on an op-less changeset)."""
        return self.apply_many([changeset])

    def apply_many(
        self, changesets: Union[Changeset, Sequence[Changeset]]
    ) -> Optional[ApplyResult]:
        """Apply several changesets as **one** micro-batch — exactly
        ``apply(Changeset.concat(changesets))``.

        Ops route to the shard owning their tid and ship as one
        coalesced per-shard delta per coordinator round-trip.  Inserts
        and edits of variable-CFD premise attributes (the only edits
        that can move a tuple between shards) send the whole batch down
        the re-plan path — paid once for the batch, with unaffected
        shards' sessions reused (see the module docstring).  Everything
        else attempts the scoped path per shard, falling back exactly
        when the unsharded session would.

        An **empty batch** (no changesets, or only op-less changesets)
        is a contractual no-op: returns ``None`` after the usual
        lifecycle checks, with no dispatch, no plan change, no ``stats``
        mutation and no checkpoint-policy tick — never a degenerate
        zero-op scoped apply.
        """
        if isinstance(changesets, Changeset):
            changesets = [changesets]
        changeset = Changeset.concat(changesets)
        self._check_usable("apply()")
        if self._closed or self.working is None or self.base is None:
            raise DataError(
                "ShardedCleaningSession.apply() requires a prior clean() "
                "(and a session that has not been close()d)"
            )
        if not changeset.ops:
            return None
        changeset.validate_against(self.base)
        started = time.perf_counter()

        # An edit to a variable-CFD premise attribute can move a tuple
        # between shards — unless the same changeset deletes the tuple,
        # in which case the unsharded session drops the seed too (the
        # tuple is gone before any replay reads it) and stays scoped.
        deleted = {op.tid for op in changeset.ops if isinstance(op, Delete)}
        needs_replan = any(
            isinstance(op, Insert)
            or (
                isinstance(op, CellEdit)
                and op.attr in self._partition_attrs
                and op.tid not in deleted
            )
            for op in changeset.ops
        )
        with self._absorb_failure():
            if needs_replan:
                result = self._full_apply(changeset, started)
            else:
                result = self._apply_routed(changeset, started)
        self._maybe_checkpoint()
        return result

    def _apply_routed(
        self, changeset: Changeset, started: float
    ) -> ApplyResult:
        """The scoped route of :meth:`apply_many`: coalesce ops per
        shard, dispatch, and merge — retrying on the merged topology
        when the collision certificate breaks."""
        while True:
            assert self.plan is not None
            by_shard: Dict[int, List[Op]] = {}
            for op in changeset.ops:
                by_shard.setdefault(self.plan.shard_of[op.tid], []).append(op)
            runner = self._ensure_runner()
            calls = [
                (self.plan.ids[index], "apply_shard", (ops,))
                for index, ops in sorted(by_shard.items())
            ]
            outcomes: List[_ApplyOutcome] = runner.run(calls)

            ever = {o.shard_id: self._outcome_ever_keys(o) for o in outcomes}
            merged_sets = self._colliding_shard_sets(
                self.plan.shards,
                [
                    ever.get(sid, self._shard_views[sid].ever_keys)
                    for sid in self.plan.ids
                ],
            )
            if merged_sets is not None:
                # The shard-local trajectories may have diverged from the
                # global one: discard the attempt, re-clean the (pre-edit)
                # base on the merged topology, and retry the delta.
                self.stats["collision_retries"] += 1
                self._reclean_on_sets(
                    merged_sets, dirty_ids={o.shard_id for o in outcomes}
                )
                continue

            if any(o.mode == "full" for o in outcomes):
                return self._finish_mixed_apply(changeset, outcomes, started)
            return self._finish_scoped_apply(changeset, outcomes, started)

    # -- apply paths ---------------------------------------------------
    def _full_apply(self, changeset: Changeset, started: float) -> ApplyResult:
        """The sharded warm full replay: edit the base, re-plan, re-clean.

        Byte-identical to the unsharded fallback (a from-scratch clean of
        the edited base).  Worker-cached master-side indexes keep it
        warm, and the component-stable re-plan reuses every shard the
        delta left alone.
        """
        assert self.base is not None
        self.stats["full_applies"] += 1
        applied = changeset.apply_to(self.base)
        result = self._clean_base(touched=applied.all_tids())
        timings = dict(result.timings)
        timings["wall"] = time.perf_counter() - started
        return ApplyResult(
            repaired=result.repaired,
            fix_log=result.fix_log,
            crepair_result=result.crepair_result,
            erepair_result=result.erepair_result,
            hrepair_result=result.hrepair_result,
            cost=result.cost,
            clean=result.clean,
            affected=len(result.repaired),
            affected_cells=len(result.repaired)
            * len(result.repaired.schema.names),
            replays=0,
            full_reclean=True,
            timings=timings,
        )

    def _finish_scoped_apply(
        self,
        changeset: Changeset,
        outcomes: List[_ApplyOutcome],
        started: float,
    ) -> ApplyResult:
        """Every shard stayed scoped: splice the merged log and state."""
        assert self.base is not None and self.working is not None
        assert self.plan is not None
        self.stats["scoped_applies"] += 1
        changeset.apply_to(self.base)

        dead: Set[int] = set()
        perturbed: Set[Cell] = set()
        names = self.working.schema.names
        for outcome in outcomes:
            dead.update(outcome.dead)
            perturbed.update(outcome.perturbed)
            view = self._shard_views[outcome.shard_id]
            view.costs = dict(outcome.costs)
            view.clean = outcome.clean
            view.ever_keys = self._outcome_ever_keys(outcome)
            if outcome.perturbed or outcome.dead or any(
                outcome.segments.values()
            ):
                # The stored full-form segments no longer describe a
                # from-scratch clean of this shard's (now-evolved) base.
                view.fullform = False
            for tid, (values, confs) in outcome.rows.items():
                t = self.working.by_tid(tid)
                for attr, value, conf in zip(names, values, confs):
                    t[attr] = value
                    t.set_conf(attr, conf)
        for tid in dead:
            self._drop_dead_tid(tid)

        log = self.fix_log
        if dead:
            log = log.without_tids(dead)
        if perturbed:
            log = log.without_cells(perturbed)
        for fix in self._merge_apply_segments(outcomes):
            log.record(fix)
        self.fix_log = log

        c_result, e_result, h_result = self._merged_apply_results(outcomes)
        self._last_clean = all(v.clean for v in self._shard_views.values())
        timings = self._merged_timings((o.timings for o in outcomes), started)
        self._sync_io_stats()
        return ApplyResult(
            repaired=self.working,
            fix_log=self.fix_log,
            crepair_result=c_result,
            erepair_result=e_result,
            hrepair_result=h_result,
            cost=self._total_cost(),
            clean=self._last_clean,
            affected=len({tid for tid, _attr in perturbed}),
            affected_cells=len(perturbed),
            replays=sum(o.replays for o in outcomes),
            timings=timings,
        )

    def _finish_mixed_apply(
        self,
        changeset: Changeset,
        outcomes: List[_ApplyOutcome],
        started: float,
    ) -> ApplyResult:
        """At least one shard fell back to its full replay — exactly the
        situations where the unsharded session re-cleans everything, so
        bring every shard to full-form and merge fresh logs.  Shards
        whose stored view is still full-form (no scoped apply since
        their last clean, no ops in this batch) skip the re-clean — and
        the round-trip — entirely."""
        assert self.base is not None and self.plan is not None
        self.stats["full_applies"] += 1
        applied = changeset.apply_to(self.base)
        runner = self._ensure_runner()

        views: Dict[str, _CleanOutcome] = {
            o.shard_id: o.full for o in outcomes if o.mode == "full"
        }
        scoped_ids = {o.shard_id for o in outcomes if o.mode == "scoped"}
        reclean_ids: List[str] = []
        reused = 0
        for sid in self.plan.ids:
            if sid in views:
                continue
            view = self._shard_views[sid]
            if sid not in scoped_ids and view.fullform:
                views[sid] = view  # still exact and full-form: reuse
                reused += 1
            else:
                reclean_ids.append(sid)
        recleaned: List[_CleanOutcome] = runner.run(
            [(sid, "reclean_shard", ()) for sid in reclean_ids]
        )
        # Shards whose own apply fell back to a full replay re-cleaned
        # inside apply_shard — count them alongside the explicit ones.
        self.stats["shards_recleaned"] += len(reclean_ids) + len(
            [o for o in outcomes if o.mode == "full"]
        )
        self.stats["shards_reused"] += reused
        for outcome in recleaned:
            views[outcome.shard_id] = outcome
        merged_sets = self._colliding_shard_sets(
            self.plan.shards, [views[sid].ever_keys for sid in self.plan.ids]
        )
        if merged_sets is not None:
            # Rare: the full replays themselves collided across shards.
            # The base is already edited, so this is a plain re-plan
            # (whose own loop keeps merging until collision-free).
            # Adopt the just-recleaned views first — they are valid
            # full-form outcomes for the current base of op-free shards.
            for outcome in recleaned:
                views_sid = outcome.shard_id
                self._shard_views[views_sid] = outcome
            self.stats["collision_retries"] += 1
            result = self._clean_base(touched=applied.all_tids())
            timings = dict(result.timings)
            timings["wall"] = time.perf_counter() - started
            return ApplyResult(
                repaired=result.repaired,
                fix_log=result.fix_log,
                crepair_result=result.crepair_result,
                erepair_result=result.erepair_result,
                hrepair_result=result.hrepair_result,
                cost=result.cost,
                clean=result.clean,
                affected=len(result.repaired),
                affected_cells=len(result.repaired)
                * len(result.repaired.schema.names),
                replays=0,
                full_reclean=True,
                timings=timings,
            )

        for op in changeset.ops:
            if isinstance(op, Delete):
                self._drop_dead_tid(op.tid)
        fresh: List[_CleanOutcome] = []
        for sid, outcome in views.items():
            if outcome is not self._shard_views.get(sid):
                fresh.append(outcome)
            self._shard_views[sid] = outcome
            if outcome.repaired is not None:
                for t in outcome.repaired:
                    self.working._install(t)
                outcome.repaired = None
        self.fix_log = self._merge_full_logs()
        c_result, e_result, h_result = self._merged_phase_results()
        self._last_clean = all(v.clean for v in self._shard_views.values())
        timings = self._merged_timings(
            (outcome.timings for outcome in fresh), started
        )
        self._sync_io_stats()
        return ApplyResult(
            repaired=self.working,
            fix_log=self.fix_log,
            crepair_result=c_result,
            erepair_result=e_result,
            hrepair_result=h_result,
            cost=self._total_cost(),
            clean=self._last_clean,
            affected=len(self.working),
            affected_cells=len(self.working) * len(self.working.schema.names),
            replays=0,
            full_reclean=True,
            timings=timings,
        )

    def _drop_dead_tid(self, tid: int) -> None:
        """Remove a deleted tuple from the merged working relation *and*
        the plan (both the tid→shard map and the shard tid lists — a
        later re-plan restricts the base by those lists, so a stale dead
        tid would make ``Relation.restrict`` raise mid-recovery).  The
        shard's id — its session address — survives the membership
        change; the next re-plan re-validates membership against it."""
        assert self.working is not None and self.plan is not None
        if self.working.has_tid(tid):
            self.working.remove(tid)
        shard = self.plan.shard_of.pop(tid, None)
        if shard is not None:
            self.plan.shards[shard].remove(tid)

    # ------------------------------------------------------------------
    # Collision handling
    # ------------------------------------------------------------------
    @staticmethod
    def _colliding_shard_sets(
        shard_sets: List[List[int]],
        ever_keys_by_shard: Sequence[Dict[Spec, Set[Key]]],
    ) -> Optional[List[List[int]]]:
        """Merge shards that ever materialized the same group key.

        Returns the merged tid sets, or ``None`` when the plan held (no
        key ever existed in two shards — the certificate that the shard
        trajectories compose into the global one).
        """
        n = len(shard_sets)
        parent = list(range(n))

        def find(x: int) -> int:
            while parent[x] != x:
                parent[x] = parent[parent[x]]
                x = parent[x]
            return x

        collided = False
        owner: Dict[Tuple[Spec, Key], int] = {}
        for shard, ever in enumerate(ever_keys_by_shard):
            for spec, keys in ever.items():
                for key in keys:
                    holder = owner.setdefault((spec, key), shard)
                    if holder != shard:
                        ra, rb = find(holder), find(shard)
                        if ra != rb:
                            parent[rb] = ra
                            collided = True
        if not collided:
            return None
        merged: Dict[int, List[int]] = {}
        for shard, tids in enumerate(shard_sets):
            merged.setdefault(find(shard), []).extend(tids)
        out = [sorted(tids) for _root, tids in sorted(merged.items())]
        return out

    def _reclean_on_sets(
        self, shard_sets: List[List[int]], dirty_ids: Set[str]
    ) -> None:
        """Rebuild shard sessions on *shard_sets* from the current
        (pre-delta) base — the recovery step of an apply-time collision.
        Sessions of shards that saw no ops in the failed attempt
        (*dirty_ids*) and whose membership the merge left alone are
        reused."""
        assert self.base is not None and self.plan is not None
        assert self.working is not None
        valid: Dict[str, _CleanOutcome] = {}
        reclean_ids: Set[str] = set()
        address: Dict[Tuple[int, ...], str] = {}
        new_keys = {tuple(tids) for tids in shard_sets}
        for index, tids in enumerate(self.plan.shards):
            sid = self.plan.ids[index]
            key = tuple(tids)
            if key not in new_keys or sid not in self._session_ids:
                continue
            if sid in dirty_ids:
                continue  # worker session diverged in the failed attempt
            address[key] = sid
            view = self._shard_views.get(sid)
            if view is not None and view.fullform:
                valid[sid] = view
            else:
                reclean_ids.add(sid)
        ids, shard_sets, _cleaned = self._converge(
            shard_sets, valid, reclean_ids, address
        )
        self._install_plan(
            shard_sets,
            ids,
            self.plan.n_components,
            degenerate=len(shard_sets) == 1,
            reason="collision retries merged shards"
            if len(shard_sets) == 1
            else "",
        )
        ids = self.plan.ids
        for sid in ids:
            view = valid[sid]
            if view.repaired is not None:
                for t in view.repaired:
                    self.working._install(t)
                view.repaired = None
        self._shard_views = {sid: valid[sid] for sid in ids}
        self.fix_log = self._merge_full_logs()
        self._last_clean = all(v.clean for v in self._shard_views.values())

    def _install_plan(
        self,
        shard_sets: List[List[int]],
        ids: List[str],
        n_components: int,
        degenerate: bool,
        reason: str,
    ) -> None:
        """Install ``self.plan`` with shards in canonical order
        (ascending smallest member tid) and the tid→shard inverse map."""
        order = sorted(
            range(len(shard_sets)),
            key=lambda i: shard_sets[i][0] if shard_sets[i] else -1,
        )
        ordered_sets = [shard_sets[i] for i in order]
        self.plan = ShardPlan(
            shards=ordered_sets,
            shard_of={
                tid: index
                for index, tids in enumerate(ordered_sets)
                for tid in tids
            },
            n_components=n_components,
            degenerate=degenerate,
            reason=reason,
            ids=[ids[i] for i in order],
        )
        # The recovery registry aliases the plan's tid lists on purpose:
        # _drop_dead_tid edits them in place, so recovery always sees
        # current membership.
        self._shard_tids = {
            sid: tids for sid, tids in zip(self.plan.ids, self.plan.shards)
        }

    @staticmethod
    def _outcome_ever_keys(outcome: _ApplyOutcome) -> Dict[Spec, Set[Key]]:
        if outcome.mode == "full":
            assert outcome.full is not None
            return outcome.full.ever_keys
        return outcome.ever_keys

    # ------------------------------------------------------------------
    # Merging
    # ------------------------------------------------------------------
    def _ordered_views(self) -> List[_CleanOutcome]:
        assert self.plan is not None
        return [self._shard_views[sid] for sid in self.plan.ids]

    def _merge_full_logs(self) -> FixLog:
        views = self._ordered_views()
        log = FixLog()
        for fix in self._merge_segments(
            [(v.segments, v.traces) for v in views]
        ):
            log.record(fix)
        return log

    def _merge_apply_segments(
        self, outcomes: List[_ApplyOutcome]
    ) -> List[Fix]:
        parts = [
            (o.segments, o.traces)
            for o in sorted(outcomes, key=lambda o: o.shard_id)
        ]
        return self._merge_segments(parts)

    @staticmethod
    def _merge_segments(
        parts: Sequence[Tuple[Dict[str, List[Fix]], Dict[str, Any]]]
    ) -> List[Fix]:
        """Interleave per-shard phase segments into the global fix order
        (phases are contiguous in an unsharded log: c, then e, then h)."""
        out: List[Fix] = []
        crepair_parts = [
            (segments["crepair"], traces["crepair"])
            for segments, traces in parts
            if traces.get("crepair") is not None
        ]
        if crepair_parts:
            out.extend(merge_worklist_fixes(crepair_parts))
        for phase in ("erepair", "hrepair"):
            round_parts = [
                (segments[phase], traces[phase])
                for segments, traces in parts
                if traces.get(phase) is not None
            ]
            if round_parts:
                out.extend(merge_round_fixes(round_parts))
        return out

    def _merged_phase_results(
        self,
    ) -> Tuple[
        Optional[CRepairResult], Optional[ERepairResult], Optional[HRepairResult]
    ]:
        views = self._ordered_views()
        return self._merge_counts(
            [v.counts for v in views], self.working, self.fix_log
        )

    def _merged_apply_results(self, outcomes: List[_ApplyOutcome]):
        return self._merge_counts(
            [o.counts for o in outcomes], self.working, self.fix_log
        )

    @staticmethod
    def _merge_counts(counts: Sequence[_PhaseCounts], relation, log):
        c_result = e_result = h_result = None
        c_parts = [c.crepair for c in counts if c.crepair is not None]
        if c_parts:
            c_result = CRepairResult(
                relation=relation,
                fix_log=log,
                deterministic_fixes=sum(p["deterministic_fixes"] for p in c_parts),
                confirmed_cells=sum(p["confirmed_cells"] for p in c_parts),
                rules_fired=sum(p["rules_fired"] for p in c_parts),
            )
        e_parts = [c.erepair for c in counts if c.erepair is not None]
        if e_parts:
            e_result = ERepairResult(
                relation=relation,
                fix_log=log,
                reliable_fixes=sum(p["reliable_fixes"] for p in e_parts),
                rounds=max(p["rounds"] for p in e_parts),
            )
        h_parts = [c.hrepair for c in counts if c.hrepair is not None]
        if h_parts:
            h_result = HRepairResult(
                relation=relation,
                fix_log=log,
                possible_fixes=sum(p["possible_fixes"] for p in h_parts),
                merges=sum(p["merges"] for p in h_parts),
                upgrades=sum(p["upgrades"] for p in h_parts),
                unresolved=sum(p["unresolved"] for p in h_parts),
                rounds=max(p["rounds"] for p in h_parts),
            )
        return c_result, e_result, h_result

    def _total_cost(self) -> float:
        return sum(
            sum(view.costs.values()) for view in self._shard_views.values()
        )

    def _merged_timings(self, timing_dicts, started: float) -> Dict[str, float]:
        merged: Dict[str, float] = {}
        for timings in timing_dicts:
            for key, value in timings.items():
                merged[key] = merged.get(key, 0.0) + value
        merged["wall"] = time.perf_counter() - started
        return merged

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def is_clean(self) -> bool:
        """Whether the merged working repair satisfies Σ and Γ (conjunction
        of per-shard verdicts; exact because no group key spans shards)."""
        if self._closed or self.working is None or self.plan is None:
            raise DataError(
                "ShardedCleaningSession.is_clean() requires a prior clean() "
                "(and a session that has not been close()d)"
            )
        self._check_usable("is_clean()")
        runner = self._ensure_runner()
        with self._absorb_failure():
            verdicts = runner.run(
                [(sid, "is_clean_shard", ()) for sid in self.plan.ids]
            )
        self._sync_io_stats()
        return all(verdicts)
