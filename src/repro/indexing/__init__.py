"""Indexing structures backing the cleaning algorithms.

* :class:`GeneralizedSuffixTree` — top-``l`` LCS blocking for MD
  similarity search (Section 5.2).
* :class:`AVLTree` — the balanced tree underlying the entropy structure.
* :class:`EntropyIndex` — the 2-in-1 hash-table + AVL structure per
  variable CFD (Section 6.3).
* :class:`ExactIndex` / :class:`MDBlockingIndex` — equality and
  similarity blocking for MDs against master data.
* :class:`CFDGroupStore` / :class:`MDGroupStore` /
  :class:`GroupStoreRegistry` — shared LHS-keyed group stores: one
  grouping per rule spec, fanned out to every consumer (the entropy
  index and the violation index of the same CFD share one store).
* :class:`ViolationIndex` — per-rule inverted partition indexes with
  dirty work queues, powering incremental violation detection across all
  three repair phases (see ``docs/architecture.md``).
"""

from repro.indexing.avl import AVLTree
from repro.indexing.blocking import ExactIndex, MDBlockingIndex, build_md_indexes
from repro.indexing.entropy_index import EntropyIndex, GroupStats, entropy_of_counts
from repro.indexing.group_store import (
    CFDGroupStore,
    GroupStoreRegistry,
    MDGroupStore,
)
from repro.indexing.suffix_tree import GeneralizedSuffixTree
from repro.indexing.violation_index import CFDPartition, MDPartition, ViolationIndex

__all__ = [
    "AVLTree",
    "CFDGroupStore",
    "CFDPartition",
    "EntropyIndex",
    "ExactIndex",
    "GeneralizedSuffixTree",
    "GroupStats",
    "GroupStoreRegistry",
    "MDGroupStore",
    "MDPartition",
    "MDBlockingIndex",
    "ViolationIndex",
    "build_md_indexes",
    "entropy_of_counts",
]
