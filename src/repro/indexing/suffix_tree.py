"""Generalized suffix tree with top-``l`` LCS retrieval (Section 5.2).

The paper blocks MD similarity search as follows: "we generalize suffix
trees as an index for LCS.  For each attribute that needs similarity
checking, a generalized suffix tree is maintained on those strings in the
active domain of the attribute in Dm. ... We traverse T bottom-up to pick
top-l similar strings in terms of the length of the LCS.  In this way, we
can identify l similar values from Dm in O(l|v|²) time."

This module implements a compressed generalized suffix tree built by
suffix-by-suffix insertion (O(Σ|s|²) construction — attribute values are
short strings, so this is the pragmatic choice over Ukkonen's algorithm)
with:

* ``contains_substring`` — exact substring membership,
* ``strings_with_substring`` — ids of indexed strings containing a substring,
* ``top_l_lcs(query, l)`` — the top-``l`` indexed strings by longest common
  substring with ``query``, each with its LCS length.

Every tree node records the set of string ids whose suffixes pass through
it, so a query substring walk immediately yields the candidate set at the
deepest matched node.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set, Tuple


class _Node:
    """Internal tree node; ``children`` maps first edge character to edge."""

    __slots__ = ("children", "ids")

    def __init__(self) -> None:
        self.children: Dict[str, "_Edge"] = {}
        self.ids: Set[int] = set()


class _Edge:
    """A compressed edge carrying a substring label."""

    __slots__ = ("label", "child")

    def __init__(self, label: str, child: _Node):
        self.label = label
        self.child = child


class GeneralizedSuffixTree:
    """A generalized suffix tree over a set of identified strings.

    Examples
    --------
    >>> tree = GeneralizedSuffixTree()
    >>> tree.add_string(0, "robert")
    >>> tree.add_string(1, "bob")
    >>> tree.contains_substring("ober")
    True
    >>> tree.strings_with_substring("ob") == {0, 1}
    True
    >>> tree.top_l_lcs("rob", 2)
    [(0, 3), (1, 2)]
    """

    def __init__(self) -> None:
        self._root = _Node()
        self._strings: Dict[int, str] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._strings)

    def string(self, sid: int) -> str:
        """The indexed string with id *sid*."""
        return self._strings[sid]

    def ids(self) -> Tuple[int, ...]:
        """All indexed string ids."""
        return tuple(self._strings)

    def add_string(self, sid: int, s: str) -> None:
        """Index string *s* under id *sid* (all of its suffixes)."""
        if sid in self._strings:
            raise ValueError(f"string id {sid} already indexed")
        self._strings[sid] = s
        for start in range(len(s)):
            self._insert_suffix(s[start:], sid)

    def add_strings(self, strings: Iterable[Tuple[int, str]]) -> None:
        """Index many ``(sid, string)`` pairs."""
        for sid, s in strings:
            self.add_string(sid, s)

    def _insert_suffix(self, suffix: str, sid: int) -> None:
        node = self._root
        i = 0
        while i < len(suffix):
            first = suffix[i]
            edge = node.children.get(first)
            if edge is None:
                leaf = _Node()
                leaf.ids.add(sid)
                node.children[first] = _Edge(suffix[i:], leaf)
                return
            label = edge.label
            # Length of the common prefix between the remaining suffix and
            # the edge label (the first characters are known equal).
            match_len = 1
            limit = min(len(label), len(suffix) - i)
            while match_len < limit and label[match_len] == suffix[i + match_len]:
                match_len += 1
            if match_len == len(label):
                # Fully consumed the edge: descend.
                node = edge.child
                node.ids.add(sid)
                i += match_len
                continue
            # Split the edge at match_len.
            middle = _Node()
            middle.ids = set(edge.child.ids)
            middle.ids.add(sid)
            middle.children[label[match_len]] = _Edge(label[match_len:], edge.child)
            edge.label = label[:match_len]
            edge.child = middle
            remainder = suffix[i + match_len :]
            if remainder:
                leaf = _Node()
                leaf.ids.add(sid)
                middle.children[remainder[0]] = _Edge(remainder, leaf)
            # An empty remainder means the suffix ends exactly at the new
            # middle node, whose id set already includes ``sid``.
            return
        # Suffix fully consumed at an existing node boundary.
        node.ids.add(sid)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def _walk(self, text: str) -> Tuple[int, Optional[_Node]]:
        """Longest prefix of *text* present in the tree.

        Returns ``(matched_length, node)`` where *node* is the node (or
        edge-target node, for a mid-edge stop) covering the matched prefix;
        ``node.ids`` over-approximates only by strings sharing that whole
        prefix, so the id set is exact for the matched depth.
        """
        node = self._root
        depth = 0
        i = 0
        while i < len(text):
            edge = node.children.get(text[i])
            if edge is None:
                return depth, node if depth else None
            label = edge.label
            match_len = 0
            limit = min(len(label), len(text) - i)
            while match_len < limit and label[match_len] == text[i + match_len]:
                match_len += 1
            depth += match_len
            i += match_len
            if match_len < len(label):
                # Stopped mid-edge: everything below edge.child shares the
                # matched prefix.
                return depth, edge.child
            node = edge.child
        return depth, node if depth else None

    def contains_substring(self, sub: str) -> bool:
        """Whether *sub* occurs in any indexed string (O(|sub|))."""
        if not sub:
            return True
        depth, _node = self._walk(sub)
        return depth == len(sub)

    def strings_with_substring(self, sub: str) -> Set[int]:
        """Ids of all indexed strings that contain *sub*."""
        if not sub:
            return set(self._strings)
        depth, node = self._walk(sub)
        if depth != len(sub) or node is None:
            return set()
        return set(node.ids)

    def _walk_path(self, text: str) -> List[Tuple[int, _Node]]:
        """All ``(depth, node)`` positions along the longest-prefix walk.

        A string whose suffix diverges from *text* after ``d`` characters
        lives in the depth-``d`` node of the path, so every node on the
        path is a candidate carrier — not just the deepest one.
        """
        out: List[Tuple[int, _Node]] = []
        node = self._root
        depth = 0
        i = 0
        while i < len(text):
            edge = node.children.get(text[i])
            if edge is None:
                return out
            label = edge.label
            match_len = 0
            limit = min(len(label), len(text) - i)
            while match_len < limit and label[match_len] == text[i + match_len]:
                match_len += 1
            depth += match_len
            i += match_len
            out.append((depth, edge.child))
            if match_len < len(label):
                return out
            node = edge.child
        return out

    def top_l_lcs(self, query: str, l: int) -> List[Tuple[int, int]]:
        """Top-``l`` indexed strings by LCS length with *query*.

        Walks every suffix of *query* down the tree (O(|query|²) character
        comparisons), recording every node along each walk, then assigns
        candidates in decreasing depth order until ``l`` distinct string
        ids are collected.  Returns ``(sid, lcs_length)`` pairs in
        decreasing LCS order (ties broken by sid for determinism).
        """
        if l <= 0 or not self._strings:
            return []
        candidates: List[Tuple[int, _Node]] = []
        for start in range(len(query)):
            candidates.extend(self._walk_path(query[start:]))
        best: Dict[int, int] = {}
        for depth, node in sorted(candidates, key=lambda item: -item[0]):
            if len(best) >= l:
                break
            for sid in node.ids:
                if sid not in best:
                    best[sid] = depth
        ranked = sorted(best.items(), key=lambda item: (-item[1], item[0]))
        return ranked[:l]

    def lcs_candidates(self, query: str, k: int, l: int) -> List[int]:
        """Candidate ids surviving the LCS blocking bound for distance *k*.

        Section 5.2: strings within Hamming/edit distance ``k`` of *query*
        have LCS at least ``max(|u|,|v|)/(k+1)``.  We retrieve the top-``l``
        by LCS and keep those meeting the bound for their own length.
        """
        out: List[int] = []
        for sid, lcs_len in self.top_l_lcs(query, l):
            from repro.similarity.lcs import lcs_blocking_bound

            bound = lcs_blocking_bound(len(query), len(self._strings[sid]), k)
            if lcs_len >= bound:
                out.append(sid)
        return out
