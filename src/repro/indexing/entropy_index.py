"""The 2-in-1 hash-table + AVL structure for variable CFDs (Section 6.3).

For a variable CFD ``φ = R(Y → B, tp)`` the structure keeps, per group
``Δ(ȳ) = {t ∈ D : t[Y] = ȳ ≍ tp[Y]}``:

* a hash-table entry ``HTab(ȳ) → (H(φ|Y=ȳ), |Δ(ȳ)|, {(b, cnt)}, {tids})``
  giving O(1) violation checks and entropy lookups, and
* an AVL tree over groups with non-zero entropy, keyed by
  ``(entropy, ȳ)``, giving O(log |T|) minimum-entropy retrieval and
  maintenance after each fix.

The hash-table side now lives in a shared
:class:`~repro.indexing.group_store.CFDGroupStore` — the same grouping
the violation index partitions by — so a cell change walks the LHS
grouping once for both consumers.  :class:`EntropyIndex` is the AVL
*view* over that store:

* **standalone** (``EntropyIndex(cfd, relation)``) it owns a private
  store and exposes the classic mutator API (``add_tuple`` /
  ``remove_tuple`` / ``update_cell`` / ``on_cell_changed``);
* **shared** (``EntropyIndex(cfd, store=...)``) it registers as an entry
  view on a registry-owned store and only *reads*; mutations arrive via
  the registry's relation observer, and the mutator API raises.

The entropy of φ for ``Y = ȳ`` (Section 6.1) is::

    H(φ|Y=ȳ) = Σ_{i=1}^{k} (cnt(ȳ, b_i) / |Δ(ȳ)|) · log_k(|Δ(ȳ)| / cnt(ȳ, b_i))

with ``k = |π_B(Δ(ȳ))|`` the number of distinct B values.  Note the
*base-k* logarithm: a uniform conflict has entropy exactly 1, and a
conflict-free group (k = 1) has entropy 0.
"""

from __future__ import annotations

from typing import Any, Iterator, List, Optional, Tuple

from repro.constraints.cfd import CFD
from repro.exceptions import ConstraintError
from repro.indexing.avl import AVLTree
from repro.indexing.group_store import (
    CFDGroupStore,
    GroupStats,
    entropy_of_counts,
    sort_key as _sort_key,
)
from repro.relational.relation import Relation
from repro.relational.tuples import CTuple

__all__ = ["EntropyIndex", "GroupStats", "entropy_of_counts"]


class EntropyIndex:
    """The 2-in-1 structure of Section 6.3 for one variable CFD.

    Parameters
    ----------
    cfd:
        A normalized *variable* CFD ``R(Y → B, tp)``.
    relation:
        Optional relation to bulk-load (one scan, as in the paper:
        "initialization ... can be done by scanning the database D once").
        Ignored when *store* is given (the store is already loaded).
    store:
        Optional shared :class:`CFDGroupStore` (from a
        :class:`~repro.indexing.group_store.GroupStoreRegistry`) to view
        instead of owning a private grouping.

    Notes
    -----
    Tuples whose ``Y`` values do not match the pattern ``tp[Y]`` (including
    tuples with nulls there) are *not* indexed — the CFD does not apply to
    them.
    """

    def __init__(
        self,
        cfd: CFD,
        relation: Optional[Relation] = None,
        store: Optional[CFDGroupStore] = None,
    ):
        if not cfd.is_variable:
            raise ConstraintError(f"{cfd.name} is not a normalized variable CFD")
        self.cfd = cfd
        self._shared = store is not None
        self._store = store if store is not None else CFDGroupStore(cfd)
        self._tree: AVLTree = AVLTree()
        self._store.entry_views.append(self)
        if self._shared:
            self._rebuild_tree()
        elif relation is not None:
            self.build(relation)

    @property
    def store(self) -> CFDGroupStore:
        """The backing group store (shared or private)."""
        return self._store

    def detach(self) -> None:
        """Stop viewing the backing store (idempotent).

        Required for shared stores when the consuming phase finishes, so
        the registry-owned store does not keep notifying a dead view.
        """
        try:
            self._store.entry_views.remove(self)
        except ValueError:
            pass

    def _require_private(self, op: str) -> None:
        if self._shared:
            raise RuntimeError(
                f"EntropyIndex.{op} is unavailable on a shared group store: "
                "mutations arrive via the registry's relation observer"
            )

    # ------------------------------------------------------------------
    # Bulk construction
    # ------------------------------------------------------------------
    def build(self, relation: Relation) -> None:
        """(Re)build from *relation* in one scan."""
        self._require_private("build")
        self._store.build(relation)
        self._rebuild_tree()

    def _rebuild_tree(self) -> None:
        self._tree = AVLTree()
        for group in self._store.groups.values():
            self._tree_insert(group)

    # ------------------------------------------------------------------
    # AVL maintenance (entry-view hooks fired by the store)
    # ------------------------------------------------------------------
    def _tree_key(self, group: GroupStats) -> Tuple[float, Tuple]:
        return (group.entropy, tuple(_sort_key(v) for v in group.key))

    def _tree_insert(self, group: GroupStats) -> None:
        if group.entropy != 0.0:
            self._tree.insert(self._tree_key(group), group.key)

    def _tree_remove(self, group: GroupStats) -> None:
        if group.entropy != 0.0:
            self._tree.delete(self._tree_key(group))

    def group_will_change(self, group: GroupStats) -> None:
        """Store hook: *group* is about to mutate — unslot it at its
        current (pre-change) entropy."""
        self._tree_remove(group)

    def group_changed(self, group: GroupStats) -> None:
        """Store hook: *group* mutated — re-slot it (dropped when empty)."""
        if group.size:
            self._tree_insert(group)

    # ------------------------------------------------------------------
    # Incremental maintenance (standalone stores only)
    # ------------------------------------------------------------------
    def add_tuple(self, t: CTuple) -> None:
        """Register tuple *t* (no-op when its Y does not match the pattern)."""
        self._require_private("add_tuple")
        self._store.on_insert(t)

    def remove_tuple(self, t: CTuple) -> None:
        """Unregister tuple *t* using its *current* attribute values."""
        self._require_private("remove_tuple")
        self._store.on_delete(t)

    def update_cell(self, t: CTuple, attr: str, new_value: Any) -> None:
        """Maintain the index across the assignment ``t[attr] := new_value``.

        Call *before* performing the assignment on the tuple (the index
        needs the old values to locate the tuple's current group).  When
        *attr* is unrelated to this CFD the call is a no-op.
        """
        self._require_private("update_cell")
        if not self._store.relevant(attr):
            return
        old_value = t[attr]
        if old_value == new_value:
            return
        t[attr] = new_value
        try:
            self._store.on_cell_changed(t, attr, old_value, new_value)
        finally:
            t[attr] = old_value

    def on_cell_changed(self, t: CTuple, attr: str, old: Any, new: Any) -> None:
        """Post-mutation adapter for ``Relation.add_observer``."""
        self._require_private("on_cell_changed")
        self._store.on_cell_changed(t, attr, old, new)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def group(self, key: Tuple[Any, ...]) -> Optional[GroupStats]:
        """The group for Y-values *key*, or ``None``."""
        return self._store.groups.get(key)

    def group_of(self, t: CTuple) -> Optional[GroupStats]:
        """The group containing tuple *t* (by its current Y values)."""
        if not self.cfd.lhs_matches(t):
            return None
        return self._store.groups.get(t.project(self._store.lhs))

    def groups(self) -> Iterator[GroupStats]:
        """All groups, in no particular order."""
        return iter(self._store.groups.values())

    def group_count(self) -> int:
        """Number of groups (``|HTab|``)."""
        return len(self._store.groups)

    def min_entropy_group(self) -> Optional[GroupStats]:
        """The conflicting group with smallest non-zero entropy, if any."""
        if not self._tree:
            return None
        _key, group_key = self._tree.min()
        return self._store.groups[group_key]

    def conflicting_groups(self) -> List[GroupStats]:
        """Groups with non-zero entropy, in increasing entropy order."""
        return [self._store.groups[group_key] for _key, group_key in self._tree.items()]

    def is_clean(self) -> bool:
        """Whether no group has conflicting B values (``D ⊨ φ`` over the
        indexed portion; Section 6.1 notes H = 0 everywhere iff D ⊨ φ)."""
        return not self._tree

    def check_consistency(self, relation: Relation) -> None:
        """Assert the index matches *relation* (used by property tests)."""
        rebuilt = EntropyIndex(self.cfd, relation)
        if set(rebuilt._store.groups) != set(self._store.groups):
            raise AssertionError("group keys diverge from relation state")
        for key, group in self._store.groups.items():
            other = rebuilt._store.groups[key]
            if group.value_counts != other.value_counts or group.tids != other.tids:
                raise AssertionError(f"group {key!r} diverges from relation state")
        if sorted(self._tree.keys()) != sorted(rebuilt._tree.keys()):
            raise AssertionError("AVL contents diverge from relation state")
