"""The 2-in-1 hash-table + AVL structure for variable CFDs (Section 6.3).

For a variable CFD ``φ = R(Y → B, tp)`` the structure keeps, per group
``Δ(ȳ) = {t ∈ D : t[Y] = ȳ ≍ tp[Y]}``:

* a hash-table entry ``HTab(ȳ) → (H(φ|Y=ȳ), |Δ(ȳ)|, {(b, cnt)}, {tids})``
  giving O(1) violation checks and entropy lookups, and
* an AVL tree over groups with non-zero entropy, keyed by
  ``(entropy, ȳ)``, giving O(log |T|) minimum-entropy retrieval and
  maintenance after each fix.

The entropy of φ for ``Y = ȳ`` (Section 6.1) is::

    H(φ|Y=ȳ) = Σ_{i=1}^{k} (cnt(ȳ, b_i) / |Δ(ȳ)|) · log_k(|Δ(ȳ)| / cnt(ȳ, b_i))

with ``k = |π_B(Δ(ȳ))|`` the number of distinct B values.  Note the
*base-k* logarithm: a uniform conflict has entropy exactly 1, and a
conflict-free group (k = 1) has entropy 0.
"""

from __future__ import annotations

import math
from collections import Counter
from typing import Any, Dict, Iterator, List, Optional, Set, Tuple

from repro.constraints.cfd import CFD
from repro.exceptions import ConstraintError, DataError
from repro.indexing.avl import AVLTree
from repro.relational.relation import Relation
from repro.relational.tuples import CTuple


def entropy_of_counts(counts: Counter) -> float:
    """Entropy of a value-count distribution, log base ``k`` (= #values).

    Matches ``H(φ|Y=ȳ)`` of Section 6.1: 0 when all occurrences agree
    (``k ≤ 1``), 1 when the ``k`` distinct values are equally frequent.

    Examples
    --------
    >>> entropy_of_counts(Counter({"a": 4}))
    0.0
    >>> entropy_of_counts(Counter({"a": 2, "b": 2}))
    1.0
    >>> 0 < entropy_of_counts(Counter({"a": 3, "b": 1})) < 1
    True
    """
    k = len(counts)
    if k <= 1:
        return 0.0
    total = sum(counts.values())
    if total <= 0:
        return 0.0
    log_k = math.log(k)
    h = 0.0
    # Summation over *sorted* counts keeps the float result independent of
    # dictionary insertion order, so incrementally maintained indexes stay
    # bit-identical to rebuilt ones.
    for count in sorted(counts.values()):
        if count <= 0:
            continue
        p = count / total
        h += p * (math.log(1.0 / p) / log_k)
    return h


def _sort_key(value: Any) -> Tuple[str, str]:
    """A deterministic, type-stable ordering key for arbitrary cell values."""
    return (type(value).__name__, repr(value))


class GroupStats:
    """Statistics of one group ``Δ(ȳ)``: counts, tids, cached entropy."""

    __slots__ = ("key", "value_counts", "tids", "_entropy")

    def __init__(self, key: Tuple[Any, ...]):
        self.key = key
        self.value_counts: Counter = Counter()
        self.tids: Set[int] = set()
        self._entropy: Optional[float] = None

    @property
    def size(self) -> int:
        """``|Δ(ȳ)|`` — the number of tuples in the group."""
        return len(self.tids)

    @property
    def entropy(self) -> float:
        """``H(φ|Y=ȳ)`` (cached; invalidated on mutation)."""
        if self._entropy is None:
            self._entropy = entropy_of_counts(self.value_counts)
        return self._entropy

    def majority(self) -> Tuple[Any, int]:
        """The most frequent B value and its count (deterministic ties)."""
        if not self.value_counts:
            raise DataError("majority() of an empty group")
        best_count = max(self.value_counts.values())
        winners = [v for v, c in self.value_counts.items() if c == best_count]
        winners.sort(key=_sort_key)
        return winners[0], best_count

    def distinct_values(self) -> int:
        """``k = |π_B(Δ(ȳ))|``."""
        return len(self.value_counts)

    def _invalidate(self) -> None:
        self._entropy = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"GroupStats({self.key!r}, n={self.size}, "
            f"values={dict(self.value_counts)}, H={self.entropy:.3f})"
        )


class EntropyIndex:
    """The 2-in-1 structure of Section 6.3 for one variable CFD.

    Parameters
    ----------
    cfd:
        A normalized *variable* CFD ``R(Y → B, tp)``.
    relation:
        Optional relation to bulk-load (one scan, as in the paper:
        "initialization ... can be done by scanning the database D once").

    Notes
    -----
    Tuples whose ``Y`` values do not match the pattern ``tp[Y]`` (including
    tuples with nulls there) are *not* indexed — the CFD does not apply to
    them.
    """

    def __init__(self, cfd: CFD, relation: Optional[Relation] = None):
        if not cfd.is_variable:
            raise ConstraintError(f"{cfd.name} is not a normalized variable CFD")
        self.cfd = cfd
        self._groups: Dict[Tuple[Any, ...], GroupStats] = {}
        self._tree: AVLTree = AVLTree()
        if relation is not None:
            self.build(relation)

    # ------------------------------------------------------------------
    # Bulk construction
    # ------------------------------------------------------------------
    def build(self, relation: Relation) -> None:
        """(Re)build from *relation* in one scan."""
        self._groups.clear()
        self._tree = AVLTree()
        lhs = self.cfd.lhs
        rhs = self.cfd.rhs_attr
        for t in relation:
            if not self.cfd.lhs_matches(t):
                continue
            key = t.project(lhs)
            group = self._groups.get(key)
            if group is None:
                group = self._groups[key] = GroupStats(key)
            group.tids.add(t.tid)  # type: ignore[arg-type]
            group.value_counts[t[rhs]] += 1
            group._invalidate()
        for group in self._groups.values():
            self._tree_insert(group)

    # ------------------------------------------------------------------
    # AVL maintenance
    # ------------------------------------------------------------------
    def _tree_key(self, group: GroupStats) -> Tuple[float, Tuple]:
        return (group.entropy, tuple(_sort_key(v) for v in group.key))

    def _tree_insert(self, group: GroupStats) -> None:
        if group.entropy != 0.0:
            self._tree.insert(self._tree_key(group), group.key)

    def _tree_remove(self, group: GroupStats) -> None:
        if group.entropy != 0.0:
            self._tree.delete(self._tree_key(group))

    # ------------------------------------------------------------------
    # Incremental maintenance
    # ------------------------------------------------------------------
    def add_tuple(self, t: CTuple) -> None:
        """Register tuple *t* (no-op when its Y does not match the pattern)."""
        if not self.cfd.lhs_matches(t):
            return
        key = t.project(self.cfd.lhs)
        group = self._groups.get(key)
        if group is None:
            group = self._groups[key] = GroupStats(key)
        else:
            self._tree_remove(group)
        group.tids.add(t.tid)  # type: ignore[arg-type]
        group.value_counts[t[self.cfd.rhs_attr]] += 1
        group._invalidate()
        self._tree_insert(group)

    def remove_tuple(self, t: CTuple) -> None:
        """Unregister tuple *t* using its *current* attribute values."""
        if not self.cfd.lhs_matches(t):
            return
        key = t.project(self.cfd.lhs)
        group = self._groups.get(key)
        if group is None or t.tid not in group.tids:
            return
        self._tree_remove(group)
        group.tids.discard(t.tid)  # type: ignore[arg-type]
        value = t[self.cfd.rhs_attr]
        group.value_counts[value] -= 1
        if group.value_counts[value] <= 0:
            del group.value_counts[value]
        group._invalidate()
        if group.size == 0:
            del self._groups[key]
        else:
            self._tree_insert(group)

    def update_cell(self, t: CTuple, attr: str, new_value: Any) -> None:
        """Maintain the index across the assignment ``t[attr] := new_value``.

        Call *before* performing the assignment on the tuple (the index
        needs the old values to locate the tuple's current group).  When
        *attr* is unrelated to this CFD the call is a no-op.
        """
        related = attr == self.cfd.rhs_attr or attr in self.cfd.lhs
        if not related:
            return
        self.remove_tuple(t)
        old_value = t[attr]
        t[attr] = new_value
        try:
            self.add_tuple(t)
        finally:
            t[attr] = old_value

    def on_cell_changed(self, t: CTuple, attr: str, old: Any, new: Any) -> None:
        """Post-mutation adapter for ``Relation.add_observer``.

        The relation notifies *after* assignment; the old value is
        restored briefly so the tuple can be removed from the group its
        old values placed it in, then re-added under the new values.
        """
        related = attr == self.cfd.rhs_attr or attr in self.cfd.lhs
        if not related:
            return
        t[attr] = old
        try:
            self.remove_tuple(t)
        finally:
            t[attr] = new
        self.add_tuple(t)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def group(self, key: Tuple[Any, ...]) -> Optional[GroupStats]:
        """The group for Y-values *key*, or ``None``."""
        return self._groups.get(key)

    def group_of(self, t: CTuple) -> Optional[GroupStats]:
        """The group containing tuple *t* (by its current Y values)."""
        if not self.cfd.lhs_matches(t):
            return None
        return self._groups.get(t.project(self.cfd.lhs))

    def groups(self) -> Iterator[GroupStats]:
        """All groups, in no particular order."""
        return iter(self._groups.values())

    def group_count(self) -> int:
        """Number of groups (``|HTab|``)."""
        return len(self._groups)

    def min_entropy_group(self) -> Optional[GroupStats]:
        """The conflicting group with smallest non-zero entropy, if any."""
        if not self._tree:
            return None
        _key, group_key = self._tree.min()
        return self._groups[group_key]

    def conflicting_groups(self) -> List[GroupStats]:
        """Groups with non-zero entropy, in increasing entropy order."""
        return [self._groups[group_key] for _key, group_key in self._tree.items()]

    def is_clean(self) -> bool:
        """Whether no group has conflicting B values (``D ⊨ φ`` over the
        indexed portion; Section 6.1 notes H = 0 everywhere iff D ⊨ φ)."""
        return not self._tree

    def check_consistency(self, relation: Relation) -> None:
        """Assert the index matches *relation* (used by property tests)."""
        rebuilt = EntropyIndex(self.cfd, relation)
        if set(rebuilt._groups) != set(self._groups):
            raise AssertionError("group keys diverge from relation state")
        for key, group in self._groups.items():
            other = rebuilt._groups[key]
            if group.value_counts != other.value_counts or group.tids != other.tids:
                raise AssertionError(f"group {key!r} diverges from relation state")
        if sorted(self._tree.keys()) != sorted(rebuilt._tree.keys()):
            raise AssertionError("AVL contents diverge from relation state")
