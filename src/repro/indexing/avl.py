"""A self-balancing AVL tree with ordered-key operations.

The 2-in-1 structure of Section 6.3 keeps, per variable CFD, an AVL tree
over the groups ``Δ(ȳ)`` ordered by their entropy ``H(φ|Y=ȳ)``, supporting
O(log n) insertion/removal and minimum-entropy retrieval.  Keys are
``(entropy, group_key)`` pairs, so duplicates (equal entropies) are
disambiguated deterministically.
"""

from __future__ import annotations

from typing import Any, Generic, Iterator, List, Optional, Tuple, TypeVar

K = TypeVar("K")
V = TypeVar("V")


class _AVLNode(Generic[K, V]):
    __slots__ = ("key", "value", "left", "right", "height")

    def __init__(self, key: K, value: V):
        self.key = key
        self.value = value
        self.left: Optional["_AVLNode[K, V]"] = None
        self.right: Optional["_AVLNode[K, V]"] = None
        self.height = 1


def _height(node: Optional[_AVLNode]) -> int:
    return node.height if node else 0


def _update(node: _AVLNode) -> None:
    node.height = 1 + max(_height(node.left), _height(node.right))


def _balance_factor(node: _AVLNode) -> int:
    return _height(node.left) - _height(node.right)


def _rotate_right(y: _AVLNode) -> _AVLNode:
    x = y.left
    assert x is not None
    y.left = x.right
    x.right = y
    _update(y)
    _update(x)
    return x


def _rotate_left(x: _AVLNode) -> _AVLNode:
    y = x.right
    assert y is not None
    x.right = y.left
    y.left = x
    _update(x)
    _update(y)
    return y


def _rebalance(node: _AVLNode) -> _AVLNode:
    _update(node)
    balance = _balance_factor(node)
    if balance > 1:
        assert node.left is not None
        if _balance_factor(node.left) < 0:
            node.left = _rotate_left(node.left)
        return _rotate_right(node)
    if balance < -1:
        assert node.right is not None
        if _balance_factor(node.right) > 0:
            node.right = _rotate_right(node.right)
        return _rotate_left(node)
    return node


class AVLTree(Generic[K, V]):
    """An AVL tree mapping totally ordered keys to values.

    Duplicate keys are rejected — compose the key with a unique
    discriminator (as the entropy index does) when duplicates are possible.

    Examples
    --------
    >>> tree = AVLTree()
    >>> for k in [5, 2, 8, 1, 3]:
    ...     tree.insert(k, str(k))
    >>> tree.min()
    (1, '1')
    >>> tree.delete(1)
    >>> tree.min()
    (2, '2')
    >>> len(tree)
    4
    """

    def __init__(self) -> None:
        self._root: Optional[_AVLNode[K, V]] = None
        self._size = 0

    def __len__(self) -> int:
        return self._size

    def __bool__(self) -> bool:
        return self._size > 0

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def insert(self, key: K, value: V) -> None:
        """Insert ``key → value``; raises ``KeyError`` on duplicate key."""
        self._root = self._insert(self._root, key, value)
        self._size += 1

    def _insert(self, node: Optional[_AVLNode[K, V]], key: K, value: V) -> _AVLNode[K, V]:
        if node is None:
            return _AVLNode(key, value)
        if key < node.key:
            node.left = self._insert(node.left, key, value)
        elif node.key < key:
            node.right = self._insert(node.right, key, value)
        else:
            raise KeyError(f"duplicate key {key!r}")
        return _rebalance(node)

    def delete(self, key: K) -> None:
        """Remove *key*; raises ``KeyError`` when absent."""
        self._root, removed = self._delete(self._root, key)
        if not removed:
            raise KeyError(key)
        self._size -= 1

    def _delete(
        self, node: Optional[_AVLNode[K, V]], key: K
    ) -> Tuple[Optional[_AVLNode[K, V]], bool]:
        if node is None:
            return None, False
        if key < node.key:
            node.left, removed = self._delete(node.left, key)
        elif node.key < key:
            node.right, removed = self._delete(node.right, key)
        else:
            removed = True
            if node.left is None:
                return node.right, True
            if node.right is None:
                return node.left, True
            successor = node.right
            while successor.left is not None:
                successor = successor.left
            node.key, node.value = successor.key, successor.value
            node.right, _ = self._delete(node.right, successor.key)
        return _rebalance(node), removed

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def get(self, key: K, default: Any = None) -> Any:
        """Value for *key*, or *default*."""
        node = self._root
        while node is not None:
            if key < node.key:
                node = node.left
            elif node.key < key:
                node = node.right
            else:
                return node.value
        return default

    def __contains__(self, key: object) -> bool:
        sentinel = object()
        return self.get(key, sentinel) is not sentinel  # type: ignore[arg-type]

    def min(self) -> Tuple[K, V]:
        """The smallest ``(key, value)``; raises ``KeyError`` when empty."""
        if self._root is None:
            raise KeyError("min() of empty AVL tree")
        node = self._root
        while node.left is not None:
            node = node.left
        return node.key, node.value

    def max(self) -> Tuple[K, V]:
        """The largest ``(key, value)``; raises ``KeyError`` when empty."""
        if self._root is None:
            raise KeyError("max() of empty AVL tree")
        node = self._root
        while node.right is not None:
            node = node.right
        return node.key, node.value

    def items(self) -> Iterator[Tuple[K, V]]:
        """In-order iteration over ``(key, value)`` pairs."""
        stack: List[_AVLNode[K, V]] = []
        node = self._root
        while stack or node is not None:
            while node is not None:
                stack.append(node)
                node = node.left
            node = stack.pop()
            yield node.key, node.value
            node = node.right

    def keys(self) -> Iterator[K]:
        """In-order key iteration."""
        for key, _value in self.items():
            yield key

    def height(self) -> int:
        """Tree height (0 for empty); AVL guarantees O(log n)."""
        return _height(self._root)

    def check_invariants(self) -> None:
        """Assert BST ordering and AVL balance (used by property tests)."""

        def recurse(node: Optional[_AVLNode[K, V]]) -> Tuple[int, Optional[K], Optional[K]]:
            if node is None:
                return 0, None, None
            left_height, left_min, left_max = recurse(node.left)
            right_height, right_min, right_max = recurse(node.right)
            if left_max is not None and not left_max < node.key:
                raise AssertionError("BST order violated on the left")
            if right_min is not None and not node.key < right_min:
                raise AssertionError("BST order violated on the right")
            if abs(left_height - right_height) > 1:
                raise AssertionError("AVL balance violated")
            height = 1 + max(left_height, right_height)
            if height != node.height:
                raise AssertionError("stale cached height")
            lo = left_min if left_min is not None else node.key
            hi = right_max if right_max is not None else node.key
            return height, lo, hi

        recurse(self._root)
