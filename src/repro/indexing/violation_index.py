"""Incremental violation detection: per-rule inverted partition indexes.

The repair phases repeatedly ask "which tuples can currently violate rule
r?".  The seed implementation answered by rescanning the whole relation
for every rule on every resolution round — O(rules × |D| × rounds).  This
module answers it incrementally, in the spirit of factorized evaluation
and first-order incremental view maintenance: build partitions once, then
maintain them under point updates so each fix only revisits the tuples it
can actually affect.

Partition state lives in shared group stores
(:mod:`repro.indexing.group_store`), one per distinct rule spec:

* **CFD rule** ``R(X → B, tp)`` — a :class:`CFDGroupStore` mapping each
  LHS pattern key ``x̄`` (the projection ``t[X]`` of tuples with
  ``t[X] ≍ tp[X]``) to the member tids and RHS value counts, plus the
  inverse ``tid → x̄`` map.  A violation of the CFD can only involve
  tuples of a single partition, so partitions are the unit of
  (re)checking.  The *same* store backs the
  :class:`~repro.indexing.entropy_index.EntropyIndex` of the CFD, so a
  cell change walks the grouping once for both consumers.
* **MD rule** — an :class:`MDGroupStore` over the data side, partitioned
  by the equality blocking key (``MD.blocking_key_attrs``); master data
  is immutable, so only data-side dirtiness matters.

Dirtiness (the work queue):

* per *constant-CFD* and *MD* rule — a set of **dirty tids** (checks are
  per-tuple: pattern constant / master match);
* per *variable-CFD* rule — a set of **dirty partition keys** (checks
  are per-group: conflicting B values within ``Δ(x̄)``).

A cell update ``(tid, attr)`` dirties only the rules whose scope contains
``attr``, and within them only the partitions the tuple belongs to (both
the old and the new partition when an LHS change moves the tuple).
Inserts and deletes dirty the same way (the new member / the vacated
partition).

Invariants (checked by ``check_consistency`` and the property tests):

1. after any sequence of ``Relation.set_value`` calls, every partition
   equals the partition of a freshly built index;
2. ``pop_dirty_tids`` / ``pop_dirty_keys`` return sorted snapshots (by
   tid / by smallest member tid), so indexed resolution visits work in
   the same deterministic order as a legacy full scan — fix logs are
   byte-identical between the two paths;
3. dirtiness over-approximates: every tuple/partition whose violation
   status may have changed is dirty (the converse need not hold).

When no :class:`~repro.indexing.group_store.GroupStoreRegistry` is
supplied, the index owns a private one and attaches it to the relation;
a session-owned registry is reused as-is (stores already built — index
construction is O(rules), not O(|D|·rules)).

On columnar relations (:mod:`repro.relational.columns`) the initial
store builds behind this index run as ref-column array scans
(``GroupStoreRegistry.ensure_rules`` → ``_bulk_index_columnar``) and the
full-relation checks consuming its partitions run on canonical-ref
integer comparisons (:func:`repro.analysis.consistency.relation_violations`
under the ``vectorized`` engine) — the partition *contents* and all
dirtiness semantics here are engine-independent and byte-identical
either way.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.constraints.rules import (
    AnyRule,
    ConstantCFDRule,
    MDRule,
    VariableCFDRule,
)
from repro.indexing.group_store import (
    CFDGroupStore,
    GroupStoreRegistry,
    MDGroupStore,
)
from repro.relational.relation import Relation
from repro.relational.tuples import CTuple

Key = Tuple[Any, ...]

# Backward-compatible aliases: the partition classes were folded into the
# shared group stores (membership + value stats in one structure).
CFDPartition = CFDGroupStore
MDPartition = MDGroupStore


class ViolationIndex:
    """The indexed rule engine: per-rule partitions + dirty work queues.

    Parameters
    ----------
    relation:
        The relation being repaired.  The index must observe *every* cell
        mutation; call :meth:`attach` (done by default) so that
        ``relation.set_value`` keeps it coherent.
    rules:
        The cleaning rules, in the order the consuming phase iterates
        them — dirty state is tracked per rule index.
    registry:
        Optional shared :class:`GroupStoreRegistry` (session-owned).
        When given, its stores are reused and the registry's own
        relation observer keeps them coherent; the index only subscribes
        dirtiness listeners.  When absent, a private registry is created
        (and attached/detached together with the index).
    membership_only:
        Maintain CFD partition membership but no dirty queues and no MD
        state (the cRepair worklist only needs membership tests).

    Usage pattern (one resolution round of a repair phase)::

        index.mark_all_dirty()          # round 1 examines everything
        ...
        for tid in index.pop_dirty_tids(rule_idx):   # constant CFD / MD
            ...                                       # may set_value(...)
        for key in index.pop_dirty_keys(rule_idx):   # variable CFD
            group = index.members(rule_idx, key)
            ...

    Fixes made while draining a queue re-dirty whatever they touch, which
    the *next* round pops — exactly the legacy fixpoint semantics, minus
    the rescans of unaffected tuples.
    """

    def __init__(
        self,
        relation: Relation,
        rules: Sequence[AnyRule],
        attach: bool = True,
        membership_only: bool = False,
        registry: Optional[GroupStoreRegistry] = None,
    ):
        self.relation = relation
        self.rules: List[AnyRule] = list(rules)
        self.membership_only = membership_only
        self._owns_registry = registry is None
        if registry is None:
            registry = GroupStoreRegistry(relation, attach=False)
        self.registry = registry
        self._cfd_parts: Dict[int, CFDGroupStore] = {}
        self._md_parts: Dict[int, MDGroupStore] = {}
        self._dirty_tids: Dict[int, Set[int]] = {}
        self._dirty_keys: Dict[int, Set[Key]] = {}
        self._rules_by_attr: Dict[str, List[int]] = {}
        self._listeners: List[Tuple[Any, Any]] = []  # (store, listener)
        self._attached = False

        include_md = not (membership_only and self._owns_registry)
        registry.ensure_rules(self.rules, include_md=include_md)
        for idx, rule in enumerate(self.rules):
            if isinstance(rule, (ConstantCFDRule, VariableCFDRule)):
                self._cfd_parts[idx] = registry.cfd_store(rule.cfd)
            elif isinstance(rule, MDRule):
                if membership_only:
                    continue  # every tuple is an MD member; nothing to track
                self._md_parts[idx] = registry.md_store(rule.md)
            else:  # pragma: no cover - defensive
                raise TypeError(f"unsupported rule type {type(rule).__name__}")
            if isinstance(rule, VariableCFDRule):
                self._dirty_keys[idx] = set()
            else:
                self._dirty_tids[idx] = set()
            for attr in rule.scope_attrs():
                self._rules_by_attr.setdefault(attr, []).append(idx)
        if attach:
            self.attach()

    # ------------------------------------------------------------------
    # Observer wiring
    # ------------------------------------------------------------------
    def attach(self) -> None:
        """Subscribe for change notifications (registry + dirtiness)."""
        if self._attached:
            return
        if self._owns_registry:
            self.registry.attach()
        if not self.membership_only:
            for idx in self._dirty_keys:
                self._subscribe(self._cfd_parts[idx], self._variable_listener(idx))
            for idx in self._dirty_tids:
                part = self._cfd_parts.get(idx)
                if part is not None:
                    self._subscribe(part, self._constant_listener(idx))
                else:
                    self._subscribe(self._md_parts[idx], self._md_listener(idx))
        self._attached = True

    def detach(self) -> None:
        """Unsubscribe (call when the consuming phase is done)."""
        if not self._attached:
            return
        for store, listener in self._listeners:
            try:
                store.change_listeners.remove(listener)
            except ValueError:
                pass
        self._listeners.clear()
        if self._owns_registry:
            self.registry.detach()
        self._attached = False

    def _subscribe(self, store: Any, listener: Any) -> None:
        store.change_listeners.append(listener)
        self._listeners.append((store, listener))

    def _variable_listener(self, idx: int):
        keys = self._dirty_keys[idx]

        def on_change(t: CTuple, old_key: Optional[Key], new_key: Optional[Key]) -> None:
            if old_key is not None:
                keys.add(old_key)
            if new_key is not None:
                keys.add(new_key)

        return on_change

    def _constant_listener(self, idx: int):
        tids = self._dirty_tids[idx]

        def on_change(t: CTuple, old_key: Optional[Key], new_key: Optional[Key]) -> None:
            if new_key is not None:  # constant CFD: member tuples only
                tids.add(t.tid)

        return on_change

    def _md_listener(self, idx: int):
        tids = self._dirty_tids[idx]

        def on_change(t: CTuple, old_key: Optional[Key], new_key: Optional[Key]) -> None:
            if self.relation.has_tid(t.tid):
                tids.add(t.tid)
            # else: deleted tuple — it can no longer violate, and MD checks
            # are per-tuple, so its absence creates no work elsewhere.

        return on_change

    # ------------------------------------------------------------------
    # Dirtiness
    # ------------------------------------------------------------------
    def _require_dirty_queues(self) -> None:
        if self.membership_only:
            raise RuntimeError(
                "dirty queues are disabled on a membership_only ViolationIndex"
            )

    def mark_cell_dirty(self, tid: int, attr: str) -> None:
        """Mark cell ``(tid, attr)`` dirty without a value change.

        hRepair uses this when a target-lattice event (class merge or
        target upgrade) changes a cell's *resolution state* while its
        value stays put — the affected partitions must be re-examined.
        """
        self._require_dirty_queues()
        for idx in self._rules_by_attr.get(attr, ()):
            keys = self._dirty_keys.get(idx)
            if keys is not None:
                part = self._cfd_parts[idx]
                key = part.key_of.get(tid)
                if key is not None:
                    keys.add(key)
            else:
                part_c = self._cfd_parts.get(idx)
                if part_c is not None and tid not in part_c.key_of:
                    continue  # not a member: the constant rule cannot fire
                self._dirty_tids[idx].add(tid)

    def seed_dirty(
        self,
        scope_cells: Optional[Sequence[Tuple[int, str]]] = None,
        scope_tids: Optional[Sequence[int]] = None,
    ) -> None:
        """Round-1 seeding policy shared by the repair phases: cell-
        granular scope when given, tuple scope otherwise, everything as
        the default (a full run)."""
        if scope_cells is not None:
            for tid, attr in scope_cells:
                self.mark_cell_dirty(tid, attr)
        elif scope_tids is not None:
            self.mark_scope_dirty(scope_tids)
        else:
            self.mark_all_dirty()

    def mark_all_dirty(self) -> None:
        """Queue every member tuple / partition of every rule (round 1)."""
        self._require_dirty_queues()
        for idx in range(len(self.rules)):
            self.mark_rule_dirty(idx)

    def mark_rule_dirty(self, idx: int) -> None:
        """Queue all current members/partitions of rule *idx*."""
        keys = self._dirty_keys.get(idx)
        if keys is not None:
            keys.update(self._cfd_parts[idx].groups)
        else:
            part = self._cfd_parts.get(idx)
            if part is not None:
                self._dirty_tids[idx].update(part.key_of)
            else:
                self._dirty_tids[idx].update(self._md_parts[idx].key_of)

    def mark_scope_dirty(self, tids: Sequence[int]) -> None:
        """Queue only the given tuples (and their partitions) — the seed of
        a delta-driven re-clean: round 1 examines the dirty scope instead
        of the whole relation."""
        self._require_dirty_queues()
        for idx, rule in enumerate(self.rules):
            keys = self._dirty_keys.get(idx)
            if keys is not None:
                key_of = self._cfd_parts[idx].key_of
                for tid in tids:
                    key = key_of.get(tid)
                    if key is not None:
                        keys.add(key)
            else:
                part = self._cfd_parts.get(idx)
                if part is not None:  # constant CFD: members only
                    key_of = part.key_of
                    self._dirty_tids[idx].update(t for t in tids if t in key_of)
                else:  # MD: any tuple may match the premise
                    self._dirty_tids[idx].update(tids)

    def pop_dirty_tids(self, idx: int) -> List[int]:
        """Drain rule *idx*'s dirty tuples, in ascending tid order.

        Ascending tid equals relation insertion order (tids are assigned
        monotonically), so indexed resolution visits tuples exactly as a
        legacy full scan would.
        """
        dirty = self._dirty_tids[idx]
        if not dirty:
            return []
        out = sorted(dirty)
        dirty.clear()
        return out

    def pop_dirty_keys(self, idx: int) -> List[Key]:
        """Drain rule *idx*'s dirty partitions, ordered by smallest member
        tid (the order a legacy scan first encounters each group).
        Partitions that became empty are dropped silently."""
        dirty = self._dirty_keys[idx]
        if not dirty:
            return []
        groups = self._cfd_parts[idx].groups
        live = [key for key in dirty if key in groups]
        dirty.clear()
        live.sort(key=lambda key: min(groups[key].tids))
        return live

    def dirty_tuples(self, idx: int) -> Iterator[CTuple]:
        """Drain rule *idx*'s dirty tuples as live :class:`CTuple`s.

        The shared drain used by the per-tuple resolve procedures of
        eRepair and hRepair (their legacy paths iterate the full
        relation instead); order follows :meth:`pop_dirty_tids`.
        Tids deleted since they were queued are skipped.
        """
        relation = self.relation
        return (
            relation.by_tid(tid)
            for tid in self.pop_dirty_tids(idx)
            if relation.has_tid(tid)
        )

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def partition(self, idx: int) -> Optional[CFDGroupStore]:
        """The CFD group store of rule *idx*, or ``None`` for MD rules.

        The vectorized check engine walks ``partition(idx).key_of``
        directly (one ascending-tid pass buckets members into partitions
        in first-encounter order) instead of paying the per-group
        ``sorted``/``min`` calls of :meth:`iter_groups`."""
        return self._cfd_parts.get(idx)

    def is_member(self, idx: int, tid: int) -> bool:
        """Whether tuple *tid* currently matches rule *idx*'s premise
        pattern (always true for MD rules — any tuple may match)."""
        part = self._cfd_parts.get(idx)
        if part is None:
            return True
        return tid in part.key_of

    def members(self, idx: int, key: Key) -> List[int]:
        """Sorted member tids of partition *key* of rule *idx*."""
        part = self._cfd_parts.get(idx)
        if part is not None:
            return sorted(part.tids_of(key))
        return sorted(self._md_parts[idx].groups.get(key, ()))

    def member_tids(self, idx: int) -> List[int]:
        """Sorted tids of all members of rule *idx*."""
        part = self._cfd_parts.get(idx)
        if part is not None:
            return sorted(part.key_of)
        return sorted(self._md_parts[idx].key_of)

    def iter_groups(self, idx: int) -> Iterator[Tuple[Key, List[int]]]:
        """All ``(key, sorted member tids)`` of a CFD rule, ordered by
        smallest member tid (legacy first-encounter order)."""
        groups = self._cfd_parts[idx].groups
        for key in sorted(groups, key=lambda k: min(groups[k].tids)):
            yield key, sorted(groups[key].tids)

    def groups_of_tids(
        self, idx: int, tids: Sequence[int]
    ) -> Iterator[Tuple[Key, List[int]]]:
        """The partitions of CFD rule *idx* containing any of *tids*, as
        ``(key, sorted member tids)`` in first-encounter order — the
        delta-scoped counterpart of :meth:`iter_groups` (tuples outside
        every listed partition cannot pair-violate with a listed one)."""
        part = self._cfd_parts[idx]
        key_of = part.key_of
        keys = {key_of[tid] for tid in tids if tid in key_of}
        groups = part.groups
        for key in sorted(keys, key=lambda k: min(groups[k].tids)):
            yield key, sorted(groups[key].tids)

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------
    def check_consistency(self, relation: Optional[Relation] = None) -> None:
        """Assert every partition matches a fresh build (property tests)."""
        target = relation if relation is not None else self.relation
        for part in self._cfd_parts.values():
            part.check_against(target)
        for mpart in self._md_parts.values():
            mpart.check_against(target)
