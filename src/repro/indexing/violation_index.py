"""Incremental violation detection: per-rule inverted partition indexes.

The repair phases repeatedly ask "which tuples can currently violate rule
r?".  The seed implementation answered by rescanning the whole relation
for every rule on every resolution round — O(rules × |D| × rounds).  This
module answers it incrementally, in the spirit of factorized evaluation
and first-order incremental view maintenance: build partitions once, then
maintain them under point updates so each fix only revisits the tuples it
can actually affect.

Structure per rule:

* **CFD rule** ``R(X → B, tp)`` — a :class:`CFDPartition` mapping each
  LHS pattern key ``x̄`` (the projection ``t[X]`` of tuples with
  ``t[X] ≍ tp[X]``) to the set of member tids, plus the inverse
  ``tid → x̄`` map.  A violation of the CFD can only involve tuples of a
  single partition, so partitions are the unit of (re)checking.
* **MD rule** — an :class:`MDPartition` over the data side, partitioned
  by the equality blocking key (``MD.blocking_key_attrs``); master data
  is immutable, so only data-side dirtiness matters.

Dirtiness (the work queue):

* per *constant-CFD* and *MD* rule — a set of **dirty tids** (checks are
  per-tuple: pattern constant / master match);
* per *variable-CFD* rule — a set of **dirty partition keys** (checks
  are per-group: conflicting B values within ``Δ(x̄)``).

A cell update ``(tid, attr)`` dirties only the rules whose scope contains
``attr``, and within them only the partitions the tuple belongs to (both
the old and the new partition when an LHS change moves the tuple).

Invariants (checked by ``check_consistency`` and the property tests):

1. after any sequence of ``Relation.set_value`` calls, every partition
   equals the partition of a freshly built index;
2. ``pop_dirty_tids`` / ``pop_dirty_keys`` return sorted snapshots (by
   tid / by smallest member tid), so indexed resolution visits work in
   the same deterministic order as a legacy full scan — fix logs are
   byte-identical between the two paths;
3. dirtiness over-approximates: every tuple/partition whose violation
   status may have changed is dirty (the converse need not hold).

The index subscribes to :meth:`repro.relational.relation.Relation.
add_observer`; all cell writes of the repair phases go through
``Relation.set_value``, which keeps the structures coherent with in-place
``CTuple`` mutation.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.constraints.rules import (
    AnyRule,
    ConstantCFDRule,
    MDRule,
    VariableCFDRule,
)
from repro.relational.relation import Relation
from repro.relational.tuples import CTuple

Key = Tuple[Any, ...]


class CFDPartition:
    """Tid partitions of one normalized CFD, keyed by the LHS pattern key.

    Only tuples matching the LHS pattern ``tp[X]`` are members (nulls
    never match, Section 7); membership is maintained under point updates
    via :meth:`on_cell_changed`.
    """

    __slots__ = ("cfd", "lhs", "rhs", "_lhs_set", "groups", "key_of")

    def __init__(self, cfd: Any):
        self.cfd = cfd
        self.lhs: Tuple[str, ...] = cfd.key_attrs()
        self.rhs: str = cfd.rhs_attr
        self._lhs_set = frozenset(self.lhs)
        self.groups: Dict[Key, Set[int]] = {}
        self.key_of: Dict[int, Key] = {}

    def build(self, relation: Relation) -> None:
        self.groups.clear()
        self.key_of.clear()
        lhs = self.lhs
        matches = self.cfd.lhs_matches
        for t in relation:
            if matches(t):
                key = t.project(lhs)
                group = self.groups.get(key)
                if group is None:
                    group = self.groups[key] = set()
                group.add(t.tid)
                self.key_of[t.tid] = key

    def member_key(self, tid: int) -> Optional[Key]:
        """The partition key of *tid*, or ``None`` when not a member."""
        return self.key_of.get(tid)

    def on_cell_changed(self, t: CTuple, attr: str) -> Tuple[Optional[Key], Optional[Key]]:
        """Re-slot *t* after ``t[attr]`` changed (post-mutation).

        Returns ``(old_key, new_key)`` — the partitions whose contents
        (LHS move) or violation status (RHS change) were touched; either
        may be ``None`` when the tuple was/is not a member.
        """
        tid = t.tid
        old_key = self.key_of.get(tid)
        if attr in self._lhs_set:
            new_key = t.project(self.lhs) if self.cfd.lhs_matches(t) else None
            if new_key != old_key:
                if old_key is not None:
                    group = self.groups[old_key]
                    group.discard(tid)
                    if not group:
                        del self.groups[old_key]
                    del self.key_of[tid]
                if new_key is not None:
                    self.groups.setdefault(new_key, set()).add(tid)
                    self.key_of[tid] = new_key
            return old_key, new_key
        # Pure RHS change: membership is unaffected, the tuple's own
        # partition becomes dirty.
        return old_key, old_key

    def check_against(self, relation: Relation) -> None:
        """Assert partitions equal those of a freshly built index."""
        rebuilt = CFDPartition(self.cfd)
        rebuilt.build(relation)
        if rebuilt.groups != self.groups or rebuilt.key_of != self.key_of:
            raise AssertionError(
                f"CFD partition for {self.cfd.name} diverges from relation state"
            )


class MDPartition:
    """Data-side partitions of one normalized MD by equality blocking key.

    Every tuple is tracked (a similarity-only premise can match any
    tuple); tuples with a null in the blocking key get the ``None``
    pseudo-key — they can never satisfy an equality premise but a later
    update may move them into a real partition.
    """

    __slots__ = ("md", "key_attrs", "rhs", "_scope", "groups", "key_of")

    def __init__(self, md: Any):
        self.md = md
        self.key_attrs: Tuple[str, ...] = md.blocking_key_attrs()
        self.rhs: str = md.rhs_pair[0]
        self._scope = frozenset(md.scope_attrs())
        self.groups: Dict[Optional[Key], Set[int]] = {}
        self.key_of: Dict[int, Optional[Key]] = {}

    def _key(self, t: CTuple) -> Optional[Key]:
        if not self.key_attrs:
            return ()
        key = t.project(self.key_attrs)
        return None if t.has_null(self.key_attrs) else key

    def build(self, relation: Relation) -> None:
        self.groups.clear()
        self.key_of.clear()
        for t in relation:
            key = self._key(t)
            self.groups.setdefault(key, set()).add(t.tid)
            self.key_of[t.tid] = key

    def relevant(self, attr: str) -> bool:
        return attr in self._scope

    def on_cell_changed(self, t: CTuple, attr: str) -> None:
        tid = t.tid
        old_key = self.key_of.get(tid)
        new_key = self._key(t)
        if new_key != old_key:
            group = self.groups.get(old_key)
            if group is not None:
                group.discard(tid)
                if not group:
                    del self.groups[old_key]
            self.groups.setdefault(new_key, set()).add(tid)
            self.key_of[tid] = new_key

    def check_against(self, relation: Relation) -> None:
        rebuilt = MDPartition(self.md)
        rebuilt.build(relation)
        if rebuilt.groups != self.groups or rebuilt.key_of != self.key_of:
            raise AssertionError(
                f"MD partition for {self.md.name} diverges from relation state"
            )


class ViolationIndex:
    """The indexed rule engine: per-rule partitions + dirty work queues.

    Parameters
    ----------
    relation:
        The relation being repaired.  The index must observe *every* cell
        mutation; call :meth:`attach` (done by default) so that
        ``relation.set_value`` keeps it coherent.
    rules:
        The cleaning rules, in the order the consuming phase iterates
        them — dirty state is tracked per rule index.

    Usage pattern (one resolution round of a repair phase)::

        index.mark_all_dirty()          # round 1 examines everything
        ...
        for tid in index.pop_dirty_tids(rule_idx):   # constant CFD / MD
            ...                                       # may set_value(...)
        for key in index.pop_dirty_keys(rule_idx):   # variable CFD
            group = index.members(rule_idx, key)
            ...

    Fixes made while draining a queue re-dirty whatever they touch, which
    the *next* round pops — exactly the legacy fixpoint semantics, minus
    the rescans of unaffected tuples.
    """

    def __init__(
        self,
        relation: Relation,
        rules: Sequence[AnyRule],
        attach: bool = True,
        membership_only: bool = False,
    ):
        self.relation = relation
        self.rules: List[AnyRule] = list(rules)
        self.membership_only = membership_only
        self._cfd_parts: Dict[int, CFDPartition] = {}
        self._md_parts: Dict[int, MDPartition] = {}
        self._dirty_tids: Dict[int, Set[int]] = {}
        self._dirty_keys: Dict[int, Set[Key]] = {}
        self._rules_by_attr: Dict[str, List[int]] = {}
        self._attached = False

        for idx, rule in enumerate(self.rules):
            if isinstance(rule, (ConstantCFDRule, VariableCFDRule)):
                part = CFDPartition(rule.cfd)
                part.build(relation)
                self._cfd_parts[idx] = part
            elif isinstance(rule, MDRule):
                if membership_only:
                    continue  # every tuple is an MD member; nothing to track
                mpart = MDPartition(rule.md)
                mpart.build(relation)
                self._md_parts[idx] = mpart
            else:  # pragma: no cover - defensive
                raise TypeError(f"unsupported rule type {type(rule).__name__}")
            if isinstance(rule, VariableCFDRule):
                self._dirty_keys[idx] = set()
            else:
                self._dirty_tids[idx] = set()
            for attr in rule.scope_attrs():
                self._rules_by_attr.setdefault(attr, []).append(idx)
        if attach:
            self.attach()

    # ------------------------------------------------------------------
    # Observer wiring
    # ------------------------------------------------------------------
    def attach(self) -> None:
        """Subscribe to the relation's cell-change notifications."""
        if not self._attached:
            self.relation.add_observer(self.on_cell_changed)
            self._attached = True

    def detach(self) -> None:
        """Unsubscribe (call when the consuming phase is done)."""
        if self._attached:
            self.relation.remove_observer(self.on_cell_changed)
            self._attached = False

    def on_cell_changed(self, t: CTuple, attr: str, old: Any, new: Any) -> None:
        """Relation observer: re-slot partitions and mark dirtiness.

        In ``membership_only`` mode (cRepair) only CFD partition
        membership is maintained — no dirty queues accumulate and MD
        rules carry no state at all.
        """
        for idx in self._rules_by_attr.get(attr, ()):
            part = self._cfd_parts.get(idx)
            if part is not None:
                old_key, new_key = part.on_cell_changed(t, attr)
                if self.membership_only:
                    continue
                keys = self._dirty_keys.get(idx)
                if keys is not None:  # variable CFD: group-level dirtiness
                    if old_key is not None:
                        keys.add(old_key)
                    if new_key is not None:
                        keys.add(new_key)
                elif new_key is not None:  # constant CFD: member tuples only
                    self._dirty_tids[idx].add(t.tid)
            else:
                mpart = self._md_parts[idx]
                mpart.on_cell_changed(t, attr)
                self._dirty_tids[idx].add(t.tid)

    # ------------------------------------------------------------------
    # Dirtiness
    # ------------------------------------------------------------------
    def _require_dirty_queues(self) -> None:
        if self.membership_only:
            raise RuntimeError(
                "dirty queues are disabled on a membership_only ViolationIndex"
            )

    def mark_cell_dirty(self, tid: int, attr: str) -> None:
        """Mark cell ``(tid, attr)`` dirty without a value change.

        hRepair uses this when a target-lattice event (class merge or
        target upgrade) changes a cell's *resolution state* while its
        value stays put — the affected partitions must be re-examined.
        """
        self._require_dirty_queues()
        for idx in self._rules_by_attr.get(attr, ()):
            keys = self._dirty_keys.get(idx)
            if keys is not None:
                part = self._cfd_parts[idx]
                key = part.key_of.get(tid)
                if key is not None:
                    keys.add(key)
            else:
                part_c = self._cfd_parts.get(idx)
                if part_c is not None and tid not in part_c.key_of:
                    continue  # not a member: the constant rule cannot fire
                self._dirty_tids[idx].add(tid)

    def mark_all_dirty(self) -> None:
        """Queue every member tuple / partition of every rule (round 1)."""
        self._require_dirty_queues()
        for idx in range(len(self.rules)):
            self.mark_rule_dirty(idx)

    def mark_rule_dirty(self, idx: int) -> None:
        """Queue all current members/partitions of rule *idx*."""
        keys = self._dirty_keys.get(idx)
        if keys is not None:
            keys.update(self._cfd_parts[idx].groups)
        else:
            part = self._cfd_parts.get(idx)
            if part is not None:
                self._dirty_tids[idx].update(part.key_of)
            else:
                self._dirty_tids[idx].update(self._md_parts[idx].key_of)

    def pop_dirty_tids(self, idx: int) -> List[int]:
        """Drain rule *idx*'s dirty tuples, in ascending tid order.

        Ascending tid equals relation insertion order (tids are assigned
        monotonically), so indexed resolution visits tuples exactly as a
        legacy full scan would.
        """
        dirty = self._dirty_tids[idx]
        if not dirty:
            return []
        out = sorted(dirty)
        dirty.clear()
        return out

    def pop_dirty_keys(self, idx: int) -> List[Key]:
        """Drain rule *idx*'s dirty partitions, ordered by smallest member
        tid (the order a legacy scan first encounters each group).
        Partitions that became empty are dropped silently."""
        dirty = self._dirty_keys[idx]
        if not dirty:
            return []
        groups = self._cfd_parts[idx].groups
        live = [key for key in dirty if key in groups]
        dirty.clear()
        live.sort(key=lambda key: min(groups[key]))
        return live

    def dirty_tuples(self, idx: int) -> Iterator[CTuple]:
        """Drain rule *idx*'s dirty tuples as live :class:`CTuple`s.

        The shared drain used by the per-tuple resolve procedures of
        eRepair and hRepair (their legacy paths iterate the full
        relation instead); order follows :meth:`pop_dirty_tids`.
        """
        by_tid = self.relation.by_tid
        return (by_tid(tid) for tid in self.pop_dirty_tids(idx))

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def is_member(self, idx: int, tid: int) -> bool:
        """Whether tuple *tid* currently matches rule *idx*'s premise
        pattern (always true for MD rules — any tuple may match)."""
        part = self._cfd_parts.get(idx)
        if part is None:
            return True
        return tid in part.key_of

    def members(self, idx: int, key: Key) -> List[int]:
        """Sorted member tids of partition *key* of rule *idx*."""
        part = self._cfd_parts.get(idx)
        groups = part.groups if part is not None else self._md_parts[idx].groups
        return sorted(groups.get(key, ()))

    def member_tids(self, idx: int) -> List[int]:
        """Sorted tids of all members of rule *idx*."""
        part = self._cfd_parts.get(idx)
        if part is not None:
            return sorted(part.key_of)
        return sorted(self._md_parts[idx].key_of)

    def iter_groups(self, idx: int) -> Iterator[Tuple[Key, List[int]]]:
        """All ``(key, sorted member tids)`` of a CFD rule, ordered by
        smallest member tid (legacy first-encounter order)."""
        groups = self._cfd_parts[idx].groups
        for key in sorted(groups, key=lambda k: min(groups[k])):
            yield key, sorted(groups[key])

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------
    def check_consistency(self, relation: Optional[Relation] = None) -> None:
        """Assert every partition matches a fresh build (property tests)."""
        target = relation if relation is not None else self.relation
        for part in self._cfd_parts.values():
            part.check_against(target)
        for mpart in self._md_parts.values():
            mpart.check_against(target)
