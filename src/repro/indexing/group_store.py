"""Shared LHS-keyed group stores: one grouping per rule *spec*, not per consumer.

Before this module, every cell update walked **two** parallel structures
per variable CFD: the violation index's ``CFDPartition`` (membership) and
the ``EntropyIndex`` (membership *again*, plus RHS value counts) — each
re-running the pattern match ``t[X] ≍ tp[X]`` and the LHS projection on
the hottest path of the pipeline.  The stores below maintain one grouping
per distinct CFD spec ``(R, X, tp[X], B)`` and fan the single traversal
out to every consumer:

* **entry views** (:class:`EntropyIndex` registers as one) get
  ``group_will_change`` / ``group_changed`` callbacks around each group
  mutation, which is exactly what an ``(entropy, key)``-ordered AVL
  needs to re-slot a group;
* **change listeners** (the :class:`ViolationIndex` dirtiness marking,
  the session's influence tracker) get one ``(t, old_key, new_key)``
  notification per relevant cell change / insert / delete.

A :class:`GroupStoreRegistry` owns the stores of one relation, attaches a
single relation observer, and dispatches each event to the stores whose
scope contains the changed attribute.  Stores are shared: asking for the
store of two CFDs with the same spec (or twice for the same CFD, as the
violation index and the entropy index do) yields the same object, built
once.  :class:`~repro.pipeline.session.CleaningSession` keeps a registry
alive across ``clean()``/``apply()`` calls, which is what makes
delta-driven re-cleaning possible without any index rebuild.
"""

from __future__ import annotations

import math
from collections import Counter
from typing import Any, Callable, Dict, Iterable, List, Optional, Set, Tuple

from repro.constraints.cfd import WILDCARD, is_wildcard
from repro.exceptions import DataError
from repro.relational import columns as _columns
from repro.relational.relation import Relation
from repro.relational.tuples import CTuple

Key = Tuple[Any, ...]

#: Cache sentinel distinct from every legitimate membership entry
#: (``None`` is a real MD pseudo-key, ``False`` a real non-member mark).
_MISSING = object()

ChangeListener = Callable[[CTuple, Optional[Key], Optional[Key]], None]


def entropy_of_counts(counts: Counter) -> float:
    """Entropy of a value-count distribution, log base ``k`` (= #values).

    Matches ``H(φ|Y=ȳ)`` of Section 6.1: 0 when all occurrences agree
    (``k ≤ 1``), 1 when the ``k`` distinct values are equally frequent.

    Examples
    --------
    >>> entropy_of_counts(Counter({"a": 4}))
    0.0
    >>> entropy_of_counts(Counter({"a": 2, "b": 2}))
    1.0
    >>> 0 < entropy_of_counts(Counter({"a": 3, "b": 1})) < 1
    True
    """
    k = len(counts)
    if k <= 1:
        return 0.0
    total = sum(counts.values())
    if total <= 0:
        return 0.0
    log_k = math.log(k)
    h = 0.0
    # Summation over *sorted* counts keeps the float result independent of
    # dictionary insertion order, so incrementally maintained indexes stay
    # bit-identical to rebuilt ones.
    for count in sorted(counts.values()):
        if count <= 0:
            continue
        p = count / total
        h += p * (math.log(1.0 / p) / log_k)
    return h


def sort_key(value: Any) -> Tuple[str, str]:
    """A deterministic, type-stable ordering key for arbitrary cell values."""
    return (type(value).__name__, repr(value))


class GroupStats:
    """Statistics of one group ``Δ(ȳ)``: counts, tids, cached entropy."""

    __slots__ = ("key", "value_counts", "tids", "_entropy")

    def __init__(self, key: Key):
        self.key = key
        self.value_counts: Counter = Counter()
        self.tids: Set[int] = set()
        self._entropy: Optional[float] = None

    @property
    def size(self) -> int:
        """``|Δ(ȳ)|`` — the number of tuples in the group."""
        return len(self.tids)

    @property
    def entropy(self) -> float:
        """``H(φ|Y=ȳ)`` (cached; invalidated on mutation)."""
        if self._entropy is None:
            self._entropy = entropy_of_counts(self.value_counts)
        return self._entropy

    def majority(self) -> Tuple[Any, int]:
        """The most frequent B value and its count (deterministic ties)."""
        if not self.value_counts:
            raise DataError("majority() of an empty group")
        best_count = max(self.value_counts.values())
        winners = [v for v, c in self.value_counts.items() if c == best_count]
        winners.sort(key=sort_key)
        return winners[0], best_count

    def distinct_values(self) -> int:
        """``k = |π_B(Δ(ȳ))|``."""
        return len(self.value_counts)

    @property
    def is_hot(self) -> bool:
        """Whether the group *can* hold a variable-CFD conflict: more
        than one distinct RHS value (``==``-class).  Cold groups (k ≤ 1)
        are provably side-effect-free for both the violation scan and
        hRepair's group resolution, so vectorized engines skip them."""
        return len(self.value_counts) > 1

    def _invalidate(self) -> None:
        self._entropy = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"GroupStats({self.key!r}, n={self.size}, "
            f"values={dict(self.value_counts)}, H={self.entropy:.3f})"
        )


def hot_groups(groups: Iterable[GroupStats]) -> List[GroupStats]:
    """The conflicted groups of a partition, ordered by smallest member
    tid — the deterministic scan order the vectorized check engine and
    the vectorized hRepair share.  Skipping cold groups is exact: a
    group whose RHS values all agree can neither witness a variable-CFD
    violation nor produce a fix, a token, or an unresolved entry."""
    hot = [g for g in groups if g.is_hot]
    hot.sort(key=lambda g: min(g.tids))
    return hot


def cfd_member_tids(relation: Relation, cfd: Any) -> Dict[Key, List[int]]:
    """Member tids per LHS key of *cfd* — keys and members both in
    first-encounter relation order, exactly the grouping the per-tuple
    loop ``groups.setdefault(t.project(lhs), []).append(t.tid)`` (guarded
    by ``lhs_matches``) builds.  Columnar relations scan the ref columns
    with membership resolved once per distinct LHS ref combination (the
    :meth:`CFDGroupStore._bulk_index_columnar` idiom); dict relations
    take the per-tuple loop itself.
    """
    lhs = cfd.key_attrs()
    groups: Dict[Key, List[int]] = {}
    if not _columns.repair_vectorized_for(relation):
        for t in relation:
            if cfd.lhs_matches(t):
                groups.setdefault(t.project(lhs), []).append(t.tid)
        return groups
    store = relation.column_store
    table = store.table
    vals = table.values
    canon = table.canon
    null_c = table.null_canon
    index_of = store.index_of
    lhs_cols = [store.values[index_of[a]].data for a in lhs]
    pattern = cfd.lhs_pattern
    const_checks: List[Tuple[int, int]] = []
    for pos, attr in enumerate(lhs):
        pv = pattern.get(attr, WILDCARD)
        if not is_wildcard(pv):
            const_checks.append((pos, table.canon_ref(pv)))
    tids, rows = relation._live_rows()
    if not lhs_cols:
        # Empty LHS (pure-constant pattern): one ``()`` partition.
        if tids:
            groups[()] = list(tids)
        return groups
    single = len(lhs_cols) == 1
    cache: Dict[Any, Any] = {}
    if rows is None:
        lhs_iter = lhs_cols[0] if single else zip(*lhs_cols)
        packed = zip(lhs_iter, tids)
    elif single:
        col0 = lhs_cols[0]
        packed = ((col0[row], tid) for tid, row in zip(tids, rows))
    else:
        packed = (
            (tuple(col[row] for col in lhs_cols), tid)
            for tid, row in zip(tids, rows)
        )
    for refs, tid in packed:
        members = cache.get(refs, _MISSING)
        if members is _MISSING:
            ref_tuple = (refs,) if single else refs
            member = True
            for r in ref_tuple:
                if canon[r] == null_c:  # nulls never match (Section 7)
                    member = False
                    break
            if member:
                for pos, want in const_checks:
                    if canon[ref_tuple[pos]] != want:
                        member = False
                        break
            if member:
                key = tuple(vals[r] for r in ref_tuple)
                members = cache[refs] = groups.setdefault(key, [])
            else:
                cache[refs] = None
                continue
        elif members is None:
            continue
        members.append(tid)
    return groups


class CFDGroupStore:
    """The shared grouping of one CFD spec ``(X, tp[X], B)``.

    Maps each LHS pattern key ``x̄`` (the projection ``t[X]`` of tuples
    with ``t[X] ≍ tp[X]``; nulls never match, Section 7) to a
    :class:`GroupStats` holding the member tids *and* the RHS value
    counts / cached entropy — the union of what ``CFDPartition`` and
    ``EntropyIndex`` used to keep separately.
    """

    __slots__ = ("cfd", "lhs", "rhs", "_lhs_set", "groups", "key_of",
                 "_interned", "entry_views", "change_listeners")

    def __init__(self, cfd: Any):
        self.cfd = cfd
        self.lhs: Tuple[str, ...] = cfd.key_attrs()
        self.rhs: str = cfd.rhs_attr
        self._lhs_set = frozenset(self.lhs)
        self.groups: Dict[Key, GroupStats] = {}
        self.key_of: Dict[int, Key] = {}
        #: Canonical instance per distinct LHS key.  ``t.project`` builds
        #: a fresh tuple on every call, so without interning each re-key
        #: on the group-rewrite hot path allocates an identical tuple and
        #: every downstream dict probe (groups, key_of comparisons,
        #: ever-key tracking) re-hashes and equality-walks it; interned
        #: keys make those probes identity hits.  Entries are never
        #: evicted: growth is bounded by the keys *ever* seen — the same
        #: envelope as the session's ``ever_group_keys`` tracking, which
        #: collision detection needs to retain anyway.
        self._interned: Dict[Key, Key] = {}
        #: Objects with ``group_will_change(group)`` / ``group_changed(group)``,
        #: called around every group mutation (EntropyIndex AVL maintenance).
        self.entry_views: List[Any] = []
        #: Callables ``(t, old_key, new_key)`` fired once per relevant cell
        #: change / insert / delete (violation-index dirtiness, influence
        #: tracking).  Either key may be ``None`` (non-member side).
        self.change_listeners: List[ChangeListener] = []

    # ------------------------------------------------------------------
    # Scope
    # ------------------------------------------------------------------
    def scope_attrs(self) -> Tuple[str, ...]:
        out = dict.fromkeys(self.lhs)
        out[self.rhs] = None
        return tuple(out)

    def relevant(self, attr: str) -> bool:
        return attr in self._lhs_set or attr == self.rhs

    # ------------------------------------------------------------------
    # Bulk construction (no notifications; callers re-sync views)
    # ------------------------------------------------------------------
    def intern_key(self, key: Key) -> Key:
        """The canonical instance of *key* (see ``_interned``)."""
        return self._interned.setdefault(key, key)

    def build(self, relation: Relation) -> None:
        """(Re)build from *relation* in one scan, without notifications."""
        self.groups.clear()
        self.key_of.clear()
        self._interned.clear()
        self.bulk_index(relation)

    def bulk_index(self, relation: Relation) -> None:
        """Index every tuple of *relation* (assumed not yet indexed here),
        taking the columnar array scan when the backing store and the
        active check engine allow it — the blocking-scan hot loop of
        every fresh :class:`GroupStoreRegistry`."""
        if _columns.vectorized_for(relation):
            self._bulk_index_columnar(relation)
        else:
            for t in relation:
                self.index_tuple(t)

    def _bulk_index_columnar(self, relation: Relation) -> None:
        """One pass over the ref columns instead of ``len(relation)``
        pattern matches: membership (non-null LHS + constant-premise
        canon-ref equality) and the key→group resolution are computed
        once per *distinct* LHS ref combination and cached — with the
        group's mutators pre-bound, so each row costs one dict probe (a
        bare ref for single-attribute LHS, a C-built ref tuple
        otherwise) plus three container updates with no attribute
        resolution.  LHS key tuples are materialized from table-resident value
        instances, which unifies the store's key interning with the
        process-wide :data:`~repro.relational.columns.GLOBAL_TABLE`.
        Byte-identical to the per-tuple loop: group/key insertion order
        is first-encounter in relation order either way, and per-group
        value counts key the first encountered value instance just as
        the per-row ``counts[v] += 1`` would.
        """
        store = relation.column_store
        table = store.table
        vals = table.values
        canon = table.canon
        null_c = table.null_canon
        index_of = store.index_of
        lhs_cols = [store.values[index_of[a]].data for a in self.lhs]
        rhs_data = store.values[index_of[self.rhs]].data
        pattern = self.cfd.lhs_pattern
        const_checks: List[Tuple[int, int]] = []
        for pos, attr in enumerate(self.lhs):
            pv = pattern.get(attr, WILDCARD)
            if not is_wildcard(pv):
                const_checks.append((pos, table.canon_ref(pv)))
        intern_key = self.intern_key
        groups = self.groups
        key_of = self.key_of
        value_of = vals.__getitem__
        tids, rows = relation._live_rows()
        if not lhs_cols:
            # Empty LHS (pure-constant pattern): every live row belongs
            # to the single ``()`` partition.
            key = intern_key(())
            member_tids = list(tids)
            rhs_refs = (
                rhs_data if rows is None else [rhs_data[row] for row in rows]
            )
            group = groups.get(key)
            if group is None:
                group = groups[key] = GroupStats(key)
            group.tids.update(member_tids)
            group.value_counts.update(map(value_of, rhs_refs))
            group._invalidate()
            key_of.update(dict.fromkeys(member_tids, key))
            return
        single = len(lhs_cols) == 1
        cache: Dict[Any, Any] = {}
        if rows is None:
            lhs_iter = lhs_cols[0] if single else zip(*lhs_cols)
            packed = zip(lhs_iter, tids, rhs_data)
        elif single:
            col0 = lhs_cols[0]
            packed = (
                (col0[row], tid, rhs_data[row])
                for tid, row in zip(tids, rows)
            )
        else:
            packed = (
                (tuple(col[row] for col in lhs_cols), tid, rhs_data[row])
                for tid, row in zip(tids, rows)
            )
        for refs, tid, rv in packed:
            entry = cache.get(refs, _MISSING)
            if entry is _MISSING:
                ref_tuple = (refs,) if single else refs
                member = True
                for r in ref_tuple:
                    if canon[r] == null_c:  # nulls never match (Section 7)
                        member = False
                        break
                if member:
                    for pos, want in const_checks:
                        if canon[ref_tuple[pos]] != want:
                            member = False
                            break
                if member:
                    key = intern_key(tuple(vals[r] for r in ref_tuple))
                    group = groups.get(key)
                    if group is None:
                        group = groups[key] = GroupStats(key)
                    # Bound methods: the hot loop below re-slots without
                    # re-resolving ``group.tids.add`` etc. per row.
                    entry = cache[refs] = (key, group.tids.add, group.value_counts)
                else:
                    cache[refs] = False
                    continue
            elif entry is False:
                continue
            key, add_tid, counts = entry
            add_tid(tid)
            counts[value_of(rv)] += 1
            key_of[tid] = key

    def index_tuple(self, t: CTuple) -> None:
        """Slot *t* in silently (bulk load; no views/listeners fired)."""
        if not self.cfd.lhs_matches(t):
            return
        key = self.intern_key(t.project(self.lhs))
        group = self.groups.get(key)
        if group is None:
            group = self.groups[key] = GroupStats(key)
        group.tids.add(t.tid)
        group.value_counts[t[self.rhs]] += 1
        group._invalidate()
        self.key_of[t.tid] = key

    # ------------------------------------------------------------------
    # Group mutation primitives (with view hooks)
    # ------------------------------------------------------------------
    def _slot_out(self, tid: int, key: Key, rhs_value: Any) -> None:
        group = self.groups[key]
        for view in self.entry_views:
            view.group_will_change(group)
        group.tids.discard(tid)
        group.value_counts[rhs_value] -= 1
        if group.value_counts[rhs_value] <= 0:
            del group.value_counts[rhs_value]
        group._invalidate()
        del self.key_of[tid]
        if not group.tids:
            del self.groups[key]
        for view in self.entry_views:
            view.group_changed(group)

    def _slot_in(self, tid: int, key: Key, rhs_value: Any) -> None:
        group = self.groups.get(key)
        if group is None:
            group = self.groups[key] = GroupStats(key)
        else:
            for view in self.entry_views:
                view.group_will_change(group)
        group.tids.add(tid)
        group.value_counts[rhs_value] += 1
        group._invalidate()
        self.key_of[tid] = key
        for view in self.entry_views:
            view.group_changed(group)

    # ------------------------------------------------------------------
    # Incremental maintenance (registry-dispatched)
    # ------------------------------------------------------------------
    def on_cell_changed(
        self, t: CTuple, attr: str, old: Any, new: Any
    ) -> Tuple[Optional[Key], Optional[Key]]:
        """Re-slot *t* after ``t[attr]`` changed (post-mutation).

        One traversal updates membership *and* RHS value counts, then
        notifies change listeners with ``(old_key, new_key)`` — the
        partitions whose contents (LHS move) or violation status / value
        distribution (RHS change) were touched.
        """
        if not self.relevant(attr):
            return None, None
        tid = t.tid
        old_key = self.key_of.get(tid)
        if attr in self._lhs_set:
            new_key = (
                self.intern_key(t.project(self.lhs))
                if self.cfd.lhs_matches(t)
                else None
            )
            if new_key != old_key:
                # The RHS value the old group counted: the *old* value when
                # the changed attribute occurs on both sides (e.g. FN → FN).
                rhs_before = old if attr == self.rhs else t[self.rhs]
                if old_key is not None:
                    self._slot_out(tid, old_key, rhs_before)
                if new_key is not None:
                    self._slot_in(tid, new_key, t[self.rhs])
        else:
            # Pure RHS change: membership is unaffected; swap the value
            # count inside the tuple's own group.
            new_key = old_key
            if old_key is not None:
                group = self.groups[old_key]
                for view in self.entry_views:
                    view.group_will_change(group)
                group.value_counts[old] -= 1
                if group.value_counts[old] <= 0:
                    del group.value_counts[old]
                group.value_counts[new] += 1
                group._invalidate()
                for view in self.entry_views:
                    view.group_changed(group)
        for listener in self.change_listeners:
            listener(t, old_key, new_key)
        return old_key, new_key

    def on_insert(self, t: CTuple) -> Optional[Key]:
        """Register a freshly inserted tuple."""
        key: Optional[Key] = None
        if self.cfd.lhs_matches(t):
            key = self.intern_key(t.project(self.lhs))
            self._slot_in(t.tid, key, t[self.rhs])
        for listener in self.change_listeners:
            listener(t, None, key)
        return key

    def on_delete(self, t: CTuple) -> Optional[Key]:
        """Unregister a deleted tuple (its values are still intact)."""
        key = self.key_of.get(t.tid)
        if key is not None:
            self._slot_out(t.tid, key, t[self.rhs])
        for listener in self.change_listeners:
            listener(t, key, None)
        return key

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def member_key(self, tid: int) -> Optional[Key]:
        """The partition key of *tid*, or ``None`` when not a member."""
        return self.key_of.get(tid)

    def tids_of(self, key: Key) -> Set[int]:
        """Member tids of partition *key* (empty set when absent)."""
        group = self.groups.get(key)
        return group.tids if group is not None else set()

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------
    def check_against(self, relation: Relation) -> None:
        """Assert groups (membership and counts) equal a fresh build."""
        rebuilt = CFDGroupStore(self.cfd)
        rebuilt.build(relation)
        if rebuilt.key_of != self.key_of or set(rebuilt.groups) != set(self.groups):
            raise AssertionError(
                f"group store for {self.cfd.name} diverges from relation state"
            )
        for key, group in self.groups.items():
            other = rebuilt.groups[key]
            if group.tids != other.tids or group.value_counts != other.value_counts:
                raise AssertionError(
                    f"group {key!r} of {self.cfd.name} diverges from relation state"
                )


class MDGroupStore:
    """Data-side groups of one MD spec by equality blocking key.

    Every tuple is tracked (a similarity-only premise can match any
    tuple); tuples with a null in the blocking key get the ``None``
    pseudo-key — they can never satisfy an equality premise but a later
    update may move them into a real partition.  Change listeners fire
    for *every* scope-attribute change (an MD check is per-tuple, so the
    tuple is dirty even when its blocking key did not move).
    """

    __slots__ = ("md", "key_attrs", "_scope", "groups", "key_of",
                 "_interned", "change_listeners")

    def __init__(self, md: Any):
        self.md = md
        self.key_attrs: Tuple[str, ...] = md.blocking_key_attrs()
        self._scope = frozenset(md.scope_attrs())
        self.groups: Dict[Optional[Key], Set[int]] = {}
        self.key_of: Dict[int, Optional[Key]] = {}
        #: Canonical instance per distinct blocking key (same hot-loop
        #: rationale as ``CFDGroupStore._interned``).
        self._interned: Dict[Key, Key] = {}
        self.change_listeners: List[ChangeListener] = []

    def scope_attrs(self) -> Tuple[str, ...]:
        return tuple(self._scope)

    def relevant(self, attr: str) -> bool:
        return attr in self._scope

    def _key(self, t: CTuple) -> Optional[Key]:
        if not self.key_attrs:
            return ()
        key = t.project(self.key_attrs)
        if t.has_null(self.key_attrs):
            return None
        return self._interned.setdefault(key, key)

    def build(self, relation: Relation) -> None:
        self.groups.clear()
        self.key_of.clear()
        self._interned.clear()
        self.bulk_index(relation)

    def bulk_index(self, relation: Relation) -> None:
        """Index every tuple of *relation* (columnar array scan when the
        backing store and check engine allow)."""
        if _columns.vectorized_for(relation):
            self._bulk_index_columnar(relation)
        else:
            for t in relation:
                self.index_tuple(t)

    def _bulk_index_columnar(self, relation: Relation) -> None:
        """The MD analog of :meth:`CFDGroupStore._bulk_index_columnar`:
        null detection and key interning happen once per distinct
        blocking-key ref combination (``None`` pseudo-key for rows with a
        null in the key, ``()`` when the MD has no equality premise),
        with the member set's ``add`` pre-bound in the cache entry."""
        store = relation.column_store
        table = store.table
        vals = table.values
        canon = table.canon
        null_c = table.null_canon
        groups = self.groups
        key_of = self.key_of
        tids, rows = relation._live_rows()
        if not self.key_attrs:
            groups.setdefault((), set()).update(tids)
            key_of.update(dict.fromkeys(tids, ()))
            return
        interned = self._interned
        key_cols = [store.values[store.index_of[a]].data for a in self.key_attrs]
        single = len(key_cols) == 1
        cache: Dict[Any, Any] = {}
        if rows is None:
            key_iter = key_cols[0] if single else zip(*key_cols)
            packed = zip(key_iter, tids)
        elif single:
            col0 = key_cols[0]
            packed = ((col0[row], tid) for tid, row in zip(tids, rows))
        else:
            packed = (
                (tuple(col[row] for col in key_cols), tid)
                for tid, row in zip(tids, rows)
            )
        for refs, tid in packed:
            entry = cache.get(refs, _MISSING)
            if entry is _MISSING:
                ref_tuple = (refs,) if single else refs
                if any(canon[r] == null_c for r in ref_tuple):
                    key = None
                else:
                    key_tuple = tuple(vals[r] for r in ref_tuple)
                    key = interned.setdefault(key_tuple, key_tuple)
                members = groups.get(key)
                if members is None:
                    members = groups[key] = set()
                entry = cache[refs] = (key, members.add)
            key, add_tid = entry
            add_tid(tid)
            key_of[tid] = key

    def index_tuple(self, t: CTuple) -> None:
        key = self._key(t)
        self.groups.setdefault(key, set()).add(t.tid)
        self.key_of[t.tid] = key

    def on_cell_changed(self, t: CTuple, attr: str, old: Any, new: Any) -> None:
        if not self.relevant(attr):
            return
        tid = t.tid
        old_key = self.key_of.get(tid)
        new_key = self._key(t)
        if new_key != old_key:
            group = self.groups.get(old_key)
            if group is not None:
                group.discard(tid)
                if not group:
                    del self.groups[old_key]
            self.groups.setdefault(new_key, set()).add(tid)
            self.key_of[tid] = new_key
        for listener in self.change_listeners:
            listener(t, old_key, new_key)

    def on_insert(self, t: CTuple) -> None:
        self.index_tuple(t)
        for listener in self.change_listeners:
            listener(t, None, self.key_of[t.tid])

    def on_delete(self, t: CTuple) -> None:
        tid = t.tid
        old_key = self.key_of.pop(tid, None)
        group = self.groups.get(old_key)
        if group is not None:
            group.discard(tid)
            if not group:
                del self.groups[old_key]
        for listener in self.change_listeners:
            listener(t, old_key, None)

    def check_against(self, relation: Relation) -> None:
        rebuilt = MDGroupStore(self.md)
        rebuilt.build(relation)
        if rebuilt.groups != self.groups or rebuilt.key_of != self.key_of:
            raise AssertionError(
                f"MD group store for {self.md.name} diverges from relation state"
            )


AnyStore = Any  # CFDGroupStore | MDGroupStore


class GroupStoreRegistry:
    """All shared group stores of one relation, behind one observer.

    Parameters
    ----------
    relation:
        The relation whose groupings are maintained.
    attach:
        Subscribe to the relation's cell/insert/delete notifications
        immediately (stores stay coherent under every mutation routed
        through ``Relation.set_value`` / ``add`` / ``remove``).

    Notes
    -----
    Stores are keyed by *spec*, not by constraint object: two CFDs with
    identical ``(schema, X, tp[X], B)`` share one store, and — the case
    that matters on the hot path — the violation index's partition and
    the entropy index of the *same* CFD resolve to the same store, so a
    cell change walks the grouping once instead of twice.
    """

    def __init__(self, relation: Relation, attach: bool = True):
        self.relation = relation
        self._cfd_stores: Dict[Tuple, CFDGroupStore] = {}
        self._md_stores: Dict[Tuple, MDGroupStore] = {}
        self._by_attr: Dict[str, List[AnyStore]] = {}
        self._attached = False
        if attach:
            self.attach()

    # ------------------------------------------------------------------
    # Spec keys
    # ------------------------------------------------------------------
    @staticmethod
    def cfd_spec(cfd: Any) -> Tuple:
        return (
            "cfd",
            cfd.schema.name,
            cfd.key_attrs(),
            tuple(sorted((a, repr(v)) for a, v in cfd.lhs_pattern.items())),
            cfd.rhs_attr,
        )

    @staticmethod
    def md_spec(md: Any) -> Tuple:
        return ("md", md.blocking_key_attrs(), tuple(sorted(md.scope_attrs())))

    # ------------------------------------------------------------------
    # Store retrieval (create + build on demand)
    # ------------------------------------------------------------------
    def _register(self, store: AnyStore) -> None:
        for attr in store.scope_attrs():
            stores = self._by_attr.setdefault(attr, [])
            if store not in stores:
                stores.append(store)

    def cfd_store(self, cfd: Any) -> CFDGroupStore:
        """The shared store for *cfd*'s spec, built on first request."""
        spec = self.cfd_spec(cfd)
        store = self._cfd_stores.get(spec)
        if store is None:
            store = self._cfd_stores[spec] = CFDGroupStore(cfd)
            store.build(self.relation)
            self._register(store)
        return store

    def md_store(self, md: Any) -> MDGroupStore:
        """The shared store for *md*'s spec, built on first request."""
        spec = self.md_spec(md)
        store = self._md_stores.get(spec)
        if store is None:
            store = self._md_stores[spec] = MDGroupStore(md)
            store.build(self.relation)
            self._register(store)
        return store

    def ensure_rules(self, rules: Iterable[Any], include_md: bool = True) -> None:
        """Create all stores the given cleaning rules need, building the
        missing ones in a single relation scan."""
        fresh: List[AnyStore] = []
        for rule in rules:
            cfd = getattr(rule, "cfd", None)
            if cfd is not None:
                spec = self.cfd_spec(cfd)
                if spec not in self._cfd_stores:
                    store = self._cfd_stores[spec] = CFDGroupStore(cfd)
                    self._register(store)
                    fresh.append(store)
                continue
            md = getattr(rule, "md", None)
            if md is not None and include_md:
                mspec = self.md_spec(md)
                if mspec not in self._md_stores:
                    mstore = self._md_stores[mspec] = MDGroupStore(md)
                    self._register(mstore)
                    fresh.append(mstore)
        if fresh:
            if _columns.vectorized_for(self.relation):
                # Column-at-a-time: each store scans the ref arrays once
                # (C-speed zips + per-distinct-key caching) instead of
                # sharing one per-tuple walk.
                for store in fresh:
                    store._bulk_index_columnar(self.relation)
            else:
                for t in self.relation:
                    for store in fresh:
                        store.index_tuple(t)

    def stores(self) -> List[AnyStore]:
        """All registered stores (CFD stores first, then MD stores)."""
        return list(self._cfd_stores.values()) + list(self._md_stores.values())

    def variable_cfd_stores(self) -> List[CFDGroupStore]:
        """The stores of variable CFDs — the only rule kind whose checks
        couple distinct tuples (the influence tracker subscribes here)."""
        return [s for s in self._cfd_stores.values() if s.cfd.is_variable]

    # ------------------------------------------------------------------
    # Observer wiring
    # ------------------------------------------------------------------
    def attach(self) -> None:
        if not self._attached:
            self.relation.add_observer(self._on_cell_changed)
            self.relation.add_insert_observer(self._on_insert)
            self.relation.add_delete_observer(self._on_delete)
            self._attached = True

    def detach(self) -> None:
        if self._attached:
            self.relation.remove_observer(self._on_cell_changed)
            self.relation.remove_insert_observer(self._on_insert)
            self.relation.remove_delete_observer(self._on_delete)
            self._attached = False

    def _on_cell_changed(self, t: CTuple, attr: str, old: Any, new: Any) -> None:
        for store in self._by_attr.get(attr, ()):
            store.on_cell_changed(t, attr, old, new)

    def _on_insert(self, t: CTuple) -> None:
        for store in self._cfd_stores.values():
            store.on_insert(t)
        for mstore in self._md_stores.values():
            mstore.on_insert(t)

    def _on_delete(self, t: CTuple) -> None:
        for store in self._cfd_stores.values():
            store.on_delete(t)
        for mstore in self._md_stores.values():
            mstore.on_delete(t)

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------
    def check_consistency(self, relation: Optional[Relation] = None) -> None:
        """Assert every store matches a fresh build (property tests)."""
        target = relation if relation is not None else self.relation
        for store in self._cfd_stores.values():
            store.check_against(target)
        for mstore in self._md_stores.values():
            mstore.check_against(target)
