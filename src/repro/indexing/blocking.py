"""Blocking indexes for MD similarity search against master data.

Checking an MD premise naively costs ``O(|D|·|Dm|)`` similarity tests.
Section 5.2 cuts the master-side factor to a constant ``l`` ("we find that
l ≤ 20 typically suffices") using two complementary indexes:

* :class:`ExactIndex` — a hash index on the master projection of the
  *equality* premise attributes (traditional exact-match indexing);
* a :class:`~repro.indexing.suffix_tree.GeneralizedSuffixTree` per
  similarity-compared master attribute, used to retrieve the top-``l``
  master values by LCS, which upper-bounds candidates for bounded
  edit/Hamming distance (the ``max(|u|,|v|)/(K+1)`` LCS bound).

:class:`MDBlockingIndex` combines both: when the MD has equality premise
clauses the (small) exact bucket is scanned and every clause verified;
otherwise similarity candidates seed the scan.  The similarity side is
engine-switched (``REPRO_MATCH_ENGINE``):

* ``join`` (default) — the filtered inverted-index similarity join of
  :mod:`repro.matching.simjoin`: length/prefix/count filters over a
  q-gram index, then exact verification.  Lossless, so :attr:`is_exact`
  holds and ``matches()`` is exhaustive by construction;
* ``reference`` — the paper's per-lookup top-``l`` LCS retrieval from a
  generalized suffix tree.  Fast but *lossy*: the cap can drop true
  matches (``is_exact`` is False), which downstream code compensates for
  with rare-path exhaustive re-verification.

A ``use_suffix_tree=False`` escape hatch forces full scans under either
engine — that is the baseline of the blocking ablation benchmark.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.constraints.md import MD
from repro.relational.attribute import is_null
from repro.relational.columns import match_engine
from repro.relational.relation import Relation
from repro.relational.tuples import CTuple
from repro.indexing.suffix_tree import GeneralizedSuffixTree


class ExactIndex:
    """Hash index from a projection of *attrs* to the matching tuples.

    Tuples with a null in any indexed attribute are skipped (they can never
    satisfy an equality premise, Section 7).
    """

    def __init__(self, relation: Relation, attrs: Sequence[str]):
        relation.schema.check_attrs(attrs)
        self.attrs: Tuple[str, ...] = tuple(attrs)
        self._buckets: Dict[Tuple[Any, ...], List[CTuple]] = {}
        for t in relation:
            if t.has_null(self.attrs):
                continue
            self._buckets.setdefault(t.project(self.attrs), []).append(t)

    def lookup(self, key: Tuple[Any, ...]) -> List[CTuple]:
        """Tuples whose projection equals *key* (possibly empty)."""
        return self._buckets.get(key, [])

    def lookup_tuple(self, t: CTuple, attrs: Sequence[str]) -> List[CTuple]:
        """Tuples matching the projection of *t* on *attrs* (data-side names)."""
        return self.lookup(t.project(attrs))

    def bucket_count(self) -> int:
        """Number of distinct keys."""
        return len(self._buckets)


class MDBlockingIndex:
    """Candidate retrieval for one normalized MD against fixed master data.

    Parameters
    ----------
    md:
        The (normalized) MD whose premise drives candidate search.
    master:
        The master relation ``Dm`` (assumed immutable during cleaning —
        master data is clean and never updated).
    top_l:
        The ``l`` of the top-``l`` LCS retrieval (paper default ≤ 20).
    use_suffix_tree:
        When false, similarity clauses fall back to scanning all of
        ``Dm`` (the ablation baseline) under either engine.
    engine:
        ``"join"`` or ``"reference"``; defaults to the process-wide
        :func:`~repro.relational.columns.match_engine` flag.
    """

    def __init__(
        self,
        md: MD,
        master: Relation,
        top_l: int = 20,
        use_suffix_tree: bool = True,
        engine: Optional[str] = None,
    ):
        self.md = md
        self.master = master
        self.top_l = top_l
        self.use_suffix_tree = use_suffix_tree
        self.engine = match_engine() if engine is None else engine
        if self.engine not in ("join", "reference"):
            raise ValueError(f"unknown match engine {self.engine!r}")
        self._eq_clauses = [c for c in md.premise if c.is_equality]
        self._sim_clauses = [c for c in md.premise if not c.is_equality]
        self._premise_attrs = tuple(dict.fromkeys(c.attr for c in md.premise))
        self._match_cache: Dict[Tuple[Any, ...], List[CTuple]] = {}
        #: Retrieval-effort counters (the match-engine benchmark reads
        #: these): premise lookups, master tuples examined post-filter,
        #: and residual per-tuple predicate evaluations.
        self.stats: Dict[str, int] = {"lookups": 0, "candidates": 0, "verify_calls": 0}
        self._exact: Optional[ExactIndex] = None
        if self._eq_clauses:
            self._exact = ExactIndex(master, [c.master_attr for c in self._eq_clauses])
        # One suffix tree per similarity-compared master attribute that has
        # a usable edit budget; built lazily only when needed.
        self._trees: Dict[str, GeneralizedSuffixTree] = {}
        self._tree_values: Dict[str, Dict[int, List[CTuple]]] = {}
        #: The similarity-join index (join engine, pure-similarity premise).
        self.join_index = None
        self._join_clause = None
        self._positions: Optional[Dict[Optional[int], int]] = None
        if use_suffix_tree and not self._eq_clauses:
            if self.engine == "join":
                # Imported lazily: ``matching`` imports the matcher, which
                # imports this module — a module-level import would cycle.
                from repro.matching.simjoin import QGramIndex

                for clause in self._sim_clauses:
                    spec = clause.join_filter()
                    if spec is not None:
                        self.join_index = QGramIndex(
                            master, clause.master_attr, spec, clause.predicate
                        )
                        self._join_clause = clause
                        break
            else:
                for clause in self._sim_clauses:
                    if clause.predicate.edit_budget is not None:
                        self._build_tree(clause.master_attr)
                        break

    @property
    def is_exact(self) -> bool:
        """Whether candidate retrieval is lossless — i.e. :meth:`matches`
        finds *every* premise match.  True for equality blocking, full
        scans, and the join engine (whose filters are upper-bound-sound,
        making retrieval exhaustive by construction).  Only the reference
        engine's suffix-tree retrieval caps candidates at top-``l`` and
        may drop true matches; verdict-style callers must not rely on it."""
        return (
            self._exact is not None
            or not self.use_suffix_tree
            or self.engine == "join"
        )

    @property
    def verify_calls(self) -> int:
        """Total similarity verifications so far: full premise checks plus
        (join engine) per-distinct-value driving-predicate checks."""
        total = self.stats["verify_calls"]
        if self.join_index is not None:
            total += self.join_index.stats["verify_calls"]
        return total

    def _tid_positions(self) -> Dict[Optional[int], int]:
        positions = self._positions
        if positions is None:
            positions = self._positions = {
                tid: i for i, tid in enumerate(self.master.tids())
            }
        return positions

    def _build_tree(self, master_attr: str) -> None:
        if master_attr in self._trees:
            return
        tree = GeneralizedSuffixTree()
        by_value: Dict[str, List[CTuple]] = {}
        for s in self.master:
            value = s[master_attr]
            if is_null(value):
                continue
            by_value.setdefault(str(value), []).append(s)
        sid_tuples: Dict[int, List[CTuple]] = {}
        for sid, (value, tuples) in enumerate(sorted(by_value.items())):
            tree.add_string(sid, value)
            sid_tuples[sid] = tuples
        self._trees[master_attr] = tree
        self._tree_values[master_attr] = sid_tuples

    # ------------------------------------------------------------------
    # Candidate retrieval
    # ------------------------------------------------------------------
    def candidates(self, t: CTuple) -> List[CTuple]:
        """Master tuples worth verifying against *t* (superset of matches
        under the index's pruning guarantees)."""
        if self._exact is not None:
            key = t.project([c.attr for c in self._eq_clauses])
            if any(is_null(v) for v in key):
                return []
            return self._exact.lookup(key)
        if self.join_index is not None:
            value = t[self._join_clause.attr]
            if is_null(value):
                return []
            out: List[CTuple] = []
            for group in self.join_index.probe_groups(value):
                out.extend(group.tuples)
            positions = self._tid_positions()
            out.sort(key=lambda s: positions[s.tid])
            return out
        if self.use_suffix_tree:
            for clause in self._sim_clauses:
                budget = clause.predicate.edit_budget
                if budget is None or clause.master_attr not in self._trees:
                    continue
                value = t[clause.attr]
                if is_null(value):
                    return []
                tree = self._trees[clause.master_attr]
                sids = tree.lcs_candidates(str(value), budget, self.top_l)
                out = []
                for sid in sids:
                    out.extend(self._tree_values[clause.master_attr][sid])
                return out
        return self.master.tuples()

    def _join_matches(self, t: CTuple) -> List[CTuple]:
        """Join-engine ``matches()``: the driving predicate is verified
        once per distinct master value (exactly, inside the join index);
        only the residual premise clauses run per tuple.  The result is
        sorted into master insertion order — byte-identical to filtering
        a full scan."""
        value = t[self._join_clause.attr]
        if is_null(value):
            return []
        residual = list(self.md._eval_order)
        try:
            residual.remove(self._join_clause)
        except ValueError:  # pragma: no cover - premise always holds it
            pass
        out: List[CTuple] = []
        for group in self.join_index.verified_groups(value):
            self.stats["candidates"] += len(group.tuples)
            if not residual:
                out.extend(group.tuples)
                continue
            for s in group.tuples:
                held = True
                for clause in residual:
                    self.stats["verify_calls"] += 1
                    if not clause.holds(t, s):
                        held = False
                        break
                if held:
                    out.append(s)
        positions = self._tid_positions()
        out.sort(key=lambda s: positions[s.tid])
        return out

    def matches(self, t: CTuple) -> List[CTuple]:
        """All master tuples whose full premise holds against *t*."""
        self.stats["lookups"] += 1
        if self._exact is None and self.join_index is not None:
            return self._join_matches(t)
        out: List[CTuple] = []
        for s in self.candidates(t):
            self.stats["candidates"] += 1
            self.stats["verify_calls"] += 1
            if self.md.premise_holds(t, s):
                out.append(s)
        return out

    def find_match(self, t: CTuple) -> Optional[CTuple]:
        """The first (smallest master tid) premise-satisfying master tuple.

        Deterministic: candidates are ordered by master tid before
        verification, so repeated runs pick the same witness.
        """
        if self._exact is None and self.join_index is not None:
            matched = self._join_matches(t)
            if not matched:
                return None
            return min(matched, key=lambda s: s.tid or 0)
        best: Optional[CTuple] = None
        for s in self.candidates(t):
            if self.md.premise_holds(t, s):
                if best is None or (s.tid or 0) < (best.tid or 0):
                    best = s
        return best

    # ------------------------------------------------------------------
    # Memoized retrieval (the indexed rule engine's MD match cache)
    # ------------------------------------------------------------------
    def cached_matches(self, t: CTuple) -> List[CTuple]:
        """Like :meth:`matches`, memoized by the premise projection.

        The premise verdict depends only on ``t``'s premise-attribute
        values, and master data is immutable during cleaning — so the
        (expensive, similarity-heavy) verification runs once per distinct
        projection instead of once per tuple per resolution round.
        Callers must not mutate the returned list.
        """
        key = t.project(self._premise_attrs)
        hit = self._match_cache.get(key)
        if hit is None:
            hit = self._match_cache[key] = self.matches(t)
        return hit

    def cached_find_match(self, t: CTuple) -> Optional[CTuple]:
        """Memoized :meth:`find_match` (same deterministic witness)."""
        matched = self.cached_matches(t)
        if not matched:
            return None
        return min(matched, key=lambda s: s.tid or 0)

    # ------------------------------------------------------------------
    # Snapshot support (session persistence re-warms the cache)
    # ------------------------------------------------------------------
    def cache_entries(self) -> List[Tuple[Tuple[Any, ...], List[int]]]:
        """The memoized match cache as ``(premise projection, master
        tids)`` pairs, in insertion order.

        Master tuples are referenced by tid — the master relation is
        immutable and travels separately in a snapshot, so this is the
        compact, relation-independent form :mod:`repro.pipeline.snapshot`
        persists.
        """
        return [
            (key, [s.tid for s in matched])
            for key, matched in self._match_cache.items()
        ]

    def warm_cache(
        self, entries: Iterable[Tuple[Tuple[Any, ...], Sequence[int]]]
    ) -> None:
        """Re-populate the match cache from :meth:`cache_entries` output.

        Tids resolve against this index's own master relation, preserving
        the original match lists (and their order) exactly — restoring a
        session starts with the cache as warm as it was at save time.
        """
        for key, tids in entries:
            self._match_cache[tuple(key)] = [
                self.master.by_tid(tid) for tid in tids
            ]


def build_md_indexes(
    mds: Iterable[MD],
    master: Relation,
    top_l: int = 20,
    use_suffix_tree: bool = True,
    engine: Optional[str] = None,
) -> Dict[str, MDBlockingIndex]:
    """Build one :class:`MDBlockingIndex` per normalized MD, keyed by name."""
    out: Dict[str, MDBlockingIndex] = {}
    for md in mds:
        for normalized in md.normalize():
            out[normalized.name] = MDBlockingIndex(
                normalized,
                master,
                top_l=top_l,
                use_suffix_tree=use_suffix_tree,
                engine=engine,
            )
    return out
