"""Blocking indexes for MD similarity search against master data.

Checking an MD premise naively costs ``O(|D|·|Dm|)`` similarity tests.
Section 5.2 cuts the master-side factor to a constant ``l`` ("we find that
l ≤ 20 typically suffices") using two complementary indexes:

* :class:`ExactIndex` — a hash index on the master projection of the
  *equality* premise attributes (traditional exact-match indexing);
* a :class:`~repro.indexing.suffix_tree.GeneralizedSuffixTree` per
  similarity-compared master attribute, used to retrieve the top-``l``
  master values by LCS, which upper-bounds candidates for bounded
  edit/Hamming distance (the ``max(|u|,|v|)/(K+1)`` LCS bound).

:class:`MDBlockingIndex` combines both: when the MD has equality premise
clauses the (small) exact bucket is scanned and every clause verified;
otherwise suffix-tree candidates from a similarity clause seed the scan.
A ``use_suffix_tree=False`` escape hatch forces full scans — that is the
baseline of the blocking ablation benchmark.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.constraints.md import MD
from repro.relational.attribute import is_null
from repro.relational.relation import Relation
from repro.relational.tuples import CTuple
from repro.indexing.suffix_tree import GeneralizedSuffixTree


class ExactIndex:
    """Hash index from a projection of *attrs* to the matching tuples.

    Tuples with a null in any indexed attribute are skipped (they can never
    satisfy an equality premise, Section 7).
    """

    def __init__(self, relation: Relation, attrs: Sequence[str]):
        relation.schema.check_attrs(attrs)
        self.attrs: Tuple[str, ...] = tuple(attrs)
        self._buckets: Dict[Tuple[Any, ...], List[CTuple]] = {}
        for t in relation:
            if t.has_null(self.attrs):
                continue
            self._buckets.setdefault(t.project(self.attrs), []).append(t)

    def lookup(self, key: Tuple[Any, ...]) -> List[CTuple]:
        """Tuples whose projection equals *key* (possibly empty)."""
        return self._buckets.get(key, [])

    def lookup_tuple(self, t: CTuple, attrs: Sequence[str]) -> List[CTuple]:
        """Tuples matching the projection of *t* on *attrs* (data-side names)."""
        return self.lookup(t.project(attrs))

    def bucket_count(self) -> int:
        """Number of distinct keys."""
        return len(self._buckets)


class MDBlockingIndex:
    """Candidate retrieval for one normalized MD against fixed master data.

    Parameters
    ----------
    md:
        The (normalized) MD whose premise drives candidate search.
    master:
        The master relation ``Dm`` (assumed immutable during cleaning —
        master data is clean and never updated).
    top_l:
        The ``l`` of the top-``l`` LCS retrieval (paper default ≤ 20).
    use_suffix_tree:
        When false, similarity clauses fall back to scanning all of
        ``Dm`` (the ablation baseline).
    """

    def __init__(
        self,
        md: MD,
        master: Relation,
        top_l: int = 20,
        use_suffix_tree: bool = True,
    ):
        self.md = md
        self.master = master
        self.top_l = top_l
        self.use_suffix_tree = use_suffix_tree
        self._eq_clauses = [c for c in md.premise if c.is_equality]
        self._sim_clauses = [c for c in md.premise if not c.is_equality]
        self._premise_attrs = tuple(dict.fromkeys(c.attr for c in md.premise))
        self._match_cache: Dict[Tuple[Any, ...], List[CTuple]] = {}
        self._exact: Optional[ExactIndex] = None
        if self._eq_clauses:
            self._exact = ExactIndex(master, [c.master_attr for c in self._eq_clauses])
        # One suffix tree per similarity-compared master attribute that has
        # a usable edit budget; built lazily only when needed.
        self._trees: Dict[str, GeneralizedSuffixTree] = {}
        self._tree_values: Dict[str, Dict[int, List[CTuple]]] = {}
        if use_suffix_tree and not self._eq_clauses:
            for clause in self._sim_clauses:
                if clause.predicate.edit_budget is not None:
                    self._build_tree(clause.master_attr)
                    break

    @property
    def is_exact(self) -> bool:
        """Whether candidate retrieval is lossless (equality blocking or
        full scans) — i.e. :meth:`matches` finds *every* premise match.
        Suffix-tree retrieval caps candidates at top-``l`` and may drop
        true matches; verdict-style callers must not rely on it."""
        return self._exact is not None or not self.use_suffix_tree

    def _build_tree(self, master_attr: str) -> None:
        if master_attr in self._trees:
            return
        tree = GeneralizedSuffixTree()
        by_value: Dict[str, List[CTuple]] = {}
        for s in self.master:
            value = s[master_attr]
            if is_null(value):
                continue
            by_value.setdefault(str(value), []).append(s)
        sid_tuples: Dict[int, List[CTuple]] = {}
        for sid, (value, tuples) in enumerate(sorted(by_value.items())):
            tree.add_string(sid, value)
            sid_tuples[sid] = tuples
        self._trees[master_attr] = tree
        self._tree_values[master_attr] = sid_tuples

    # ------------------------------------------------------------------
    # Candidate retrieval
    # ------------------------------------------------------------------
    def candidates(self, t: CTuple) -> List[CTuple]:
        """Master tuples worth verifying against *t* (superset of matches
        under the index's pruning guarantees)."""
        if self._exact is not None:
            key = t.project([c.attr for c in self._eq_clauses])
            if any(is_null(v) for v in key):
                return []
            return self._exact.lookup(key)
        if self.use_suffix_tree:
            for clause in self._sim_clauses:
                budget = clause.predicate.edit_budget
                if budget is None or clause.master_attr not in self._trees:
                    continue
                value = t[clause.attr]
                if is_null(value):
                    return []
                tree = self._trees[clause.master_attr]
                sids = tree.lcs_candidates(str(value), budget, self.top_l)
                out: List[CTuple] = []
                for sid in sids:
                    out.extend(self._tree_values[clause.master_attr][sid])
                return out
        return self.master.tuples()

    def matches(self, t: CTuple) -> List[CTuple]:
        """All master tuples whose full premise holds against *t*."""
        return [s for s in self.candidates(t) if self.md.premise_holds(t, s)]

    def find_match(self, t: CTuple) -> Optional[CTuple]:
        """The first (smallest master tid) premise-satisfying master tuple.

        Deterministic: candidates are ordered by master tid before
        verification, so repeated runs pick the same witness.
        """
        best: Optional[CTuple] = None
        for s in self.candidates(t):
            if self.md.premise_holds(t, s):
                if best is None or (s.tid or 0) < (best.tid or 0):
                    best = s
        return best

    # ------------------------------------------------------------------
    # Memoized retrieval (the indexed rule engine's MD match cache)
    # ------------------------------------------------------------------
    def cached_matches(self, t: CTuple) -> List[CTuple]:
        """Like :meth:`matches`, memoized by the premise projection.

        The premise verdict depends only on ``t``'s premise-attribute
        values, and master data is immutable during cleaning — so the
        (expensive, similarity-heavy) verification runs once per distinct
        projection instead of once per tuple per resolution round.
        Callers must not mutate the returned list.
        """
        key = t.project(self._premise_attrs)
        hit = self._match_cache.get(key)
        if hit is None:
            hit = self._match_cache[key] = self.matches(t)
        return hit

    def cached_find_match(self, t: CTuple) -> Optional[CTuple]:
        """Memoized :meth:`find_match` (same deterministic witness)."""
        matched = self.cached_matches(t)
        if not matched:
            return None
        return min(matched, key=lambda s: s.tid or 0)

    # ------------------------------------------------------------------
    # Snapshot support (session persistence re-warms the cache)
    # ------------------------------------------------------------------
    def cache_entries(self) -> List[Tuple[Tuple[Any, ...], List[int]]]:
        """The memoized match cache as ``(premise projection, master
        tids)`` pairs, in insertion order.

        Master tuples are referenced by tid — the master relation is
        immutable and travels separately in a snapshot, so this is the
        compact, relation-independent form :mod:`repro.pipeline.snapshot`
        persists.
        """
        return [
            (key, [s.tid for s in matched])
            for key, matched in self._match_cache.items()
        ]

    def warm_cache(
        self, entries: Iterable[Tuple[Tuple[Any, ...], Sequence[int]]]
    ) -> None:
        """Re-populate the match cache from :meth:`cache_entries` output.

        Tids resolve against this index's own master relation, preserving
        the original match lists (and their order) exactly — restoring a
        session starts with the cache as warm as it was at save time.
        """
        for key, tids in entries:
            self._match_cache[tuple(key)] = [
                self.master.by_tid(tid) for tid in tids
            ]


def build_md_indexes(
    mds: Iterable[MD],
    master: Relation,
    top_l: int = 20,
    use_suffix_tree: bool = True,
) -> Dict[str, MDBlockingIndex]:
    """Build one :class:`MDBlockingIndex` per normalized MD, keyed by name."""
    out: Dict[str, MDBlockingIndex] = {}
    for md in mds:
        for normalized in md.normalize():
            out[normalized.name] = MDBlockingIndex(
                normalized, master, top_l=top_l, use_suffix_tree=use_suffix_tree
            )
    return out
