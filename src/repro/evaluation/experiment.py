"""Experiment harness regenerating the paper's evaluation (Section 8).

One function per experiment family:

* :func:`exp1_matching_helps_repairing` — Fig. 10: repairing F-measure of
  Uni vs Uni(CFD) vs quaid across noise rates;
* :func:`exp2_repairing_helps_matching` — Fig. 11: matching quality of
  Uni vs SortN(MD) across noise rates;
* :func:`exp3_fix_accuracy` — Fig. 12: precision/recall of cRepair,
  cRepair+eRepair and the full pipeline;
* :func:`exp4_deterministic_fixes` — Fig. 13: % deterministic fixes vs
  dup% and asr%;
* :func:`exp5_scalability` — Fig. 14: phase runtimes vs |D|, |Dm|, |Σ|,
  |Γ|.

Each returns a list of plain-dict rows (JSON-friendly) so benchmarks and
EXPERIMENTS.md tables can render them directly via :func:`format_table`.
"""

from __future__ import annotations

import time
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.baselines.quaid import quaid
from repro.core.fixes import FixKind
from repro.core.uniclean import CleaningResult, UniClean, UniCleanConfig
from repro.datasets.dblp import generate_dblp
from repro.datasets.generator import DirtyDataset
from repro.datasets.hosp import generate_hosp
from repro.datasets.partitioned import generate_partitioned
from repro.datasets.tpch import generate_tpch
from repro.evaluation.metrics import Metrics, matching_metrics, repair_metrics
from repro.matching.matcher import MDMatcher
from repro.matching.sortn import SortedNeighborhood

GENERATORS: Dict[str, Callable[..., DirtyDataset]] = {
    "hosp": generate_hosp,
    "dblp": generate_dblp,
    "tpch": generate_tpch,
    "partitioned": generate_partitioned,
}


def generate(dataset: str, **params: Any) -> DirtyDataset:
    """Dispatch to the named dataset generator."""
    if dataset not in GENERATORS:
        raise ValueError(f"unknown dataset {dataset!r}; choose from {sorted(GENERATORS)}")
    return GENERATORS[dataset](**params)


def run_uniclean(
    ds: DirtyDataset,
    config: Optional[UniCleanConfig] = None,
    with_mds: bool = True,
) -> CleaningResult:
    """Run UniClean (optionally CFD-only) on a generated dataset."""
    cleaner = UniClean(
        cfds=ds.cfds,
        mds=ds.mds if with_mds else (),
        master=ds.master if with_mds else None,
        config=config,
    )
    return cleaner.clean(ds.dirty)


def _default_config() -> UniCleanConfig:
    """The paper's experimental settings: η = 1.0, δ2 = 0.8 (Section 8)."""
    return UniCleanConfig(eta=1.0, delta2=0.8)


# ----------------------------------------------------------------------
# Exp-1: matching helps repairing (Fig. 10)
# ----------------------------------------------------------------------
def exp1_matching_helps_repairing(
    dataset: str = "hosp",
    noise_rates: Sequence[float] = (0.02, 0.04, 0.06, 0.08, 0.10),
    size: int = 300,
    master_size: int = 150,
    duplicate_rate: float = 0.4,
    asserted_rate: float = 0.4,
    seed: int = 7,
) -> List[Dict[str, Any]]:
    """Repairing F-measure of Uni, Uni(CFD) and quaid per noise rate."""
    rows: List[Dict[str, Any]] = []
    for noise in noise_rates:
        ds = generate(
            dataset,
            size=size,
            master_size=master_size,
            noise_rate=noise,
            duplicate_rate=duplicate_rate,
            asserted_rate=asserted_rate,
            seed=seed,
        )
        uni = run_uniclean(ds, _default_config())
        uni_metrics = repair_metrics(ds.dirty, uni.repaired, ds.clean)
        unicfd = run_uniclean(ds, _default_config(), with_mds=False)
        unicfd_metrics = repair_metrics(ds.dirty, unicfd.repaired, ds.clean)
        q = quaid(ds.dirty, ds.cfds)
        quaid_metrics = repair_metrics(ds.dirty, q.repaired, ds.clean)
        rows.append(
            {
                "dataset": dataset,
                "noise_rate": noise,
                "uni_f1": uni_metrics.f1,
                "uni_cfd_f1": unicfd_metrics.f1,
                "quaid_f1": quaid_metrics.f1,
                "uni_precision": uni_metrics.precision,
                "uni_recall": uni_metrics.recall,
                "errors": len(ds.errors),
            }
        )
    return rows


# ----------------------------------------------------------------------
# Exp-2: repairing helps matching (Fig. 11)
# ----------------------------------------------------------------------
def exp2_repairing_helps_matching(
    dataset: str = "hosp",
    noise_rates: Sequence[float] = (0.02, 0.04, 0.06, 0.08, 0.10),
    size: int = 300,
    master_size: int = 150,
    duplicate_rate: float = 0.4,
    asserted_rate: float = 0.4,
    window: int = 10,
    seed: int = 7,
) -> List[Dict[str, Any]]:
    """Matching F-measure of Uni (match after repair) vs SortN(MD)."""
    rows: List[Dict[str, Any]] = []
    for noise in noise_rates:
        ds = generate(
            dataset,
            size=size,
            master_size=master_size,
            noise_rate=noise,
            duplicate_rate=duplicate_rate,
            asserted_rate=asserted_rate,
            seed=seed,
        )
        uni = run_uniclean(ds, _default_config())
        matcher = MDMatcher(ds.mds, ds.master)
        uni_match = matcher.match(uni.repaired)
        uni_metrics = matching_metrics(uni_match.pairs, ds.true_matches)
        sortn = SortedNeighborhood(ds.mds, ds.master, window=window)
        sortn_match = sortn.match(ds.dirty)
        sortn_metrics = matching_metrics(sortn_match.pairs, ds.true_matches)
        rows.append(
            {
                "dataset": dataset,
                "noise_rate": noise,
                "uni_f1": uni_metrics.f1,
                "sortn_f1": sortn_metrics.f1,
                "uni_recall": uni_metrics.recall,
                "sortn_recall": sortn_metrics.recall,
                "true_matches": len(ds.true_matches),
            }
        )
    return rows


# ----------------------------------------------------------------------
# Exp-3: accuracy of deterministic and reliable fixes (Fig. 12)
# ----------------------------------------------------------------------
def exp3_fix_accuracy(
    dataset: str = "hosp",
    noise_rates: Sequence[float] = (0.02, 0.04, 0.06, 0.08, 0.10),
    size: int = 300,
    master_size: int = 150,
    duplicate_rate: float = 0.4,
    asserted_rate: float = 0.4,
    seed: int = 7,
) -> List[Dict[str, Any]]:
    """Precision/recall of cRepair, cRepair+eRepair and full Uni."""
    rows: List[Dict[str, Any]] = []
    for noise in noise_rates:
        ds = generate(
            dataset,
            size=size,
            master_size=master_size,
            noise_rate=noise,
            duplicate_rate=duplicate_rate,
            asserted_rate=asserted_rate,
            seed=seed,
        )
        base = _default_config()
        c_only = UniCleanConfig(**{**base.__dict__, "run_erepair": False, "run_hrepair": False})
        ce = UniCleanConfig(**{**base.__dict__, "run_hrepair": False})
        result_c = run_uniclean(ds, c_only)
        result_ce = run_uniclean(ds, ce)
        result_full = run_uniclean(ds, base)
        m_c = repair_metrics(ds.dirty, result_c.repaired, ds.clean)
        m_ce = repair_metrics(ds.dirty, result_ce.repaired, ds.clean)
        m_full = repair_metrics(ds.dirty, result_full.repaired, ds.clean)
        rows.append(
            {
                "dataset": dataset,
                "noise_rate": noise,
                "crepair_precision": m_c.precision,
                "crepair_recall": m_c.recall,
                "ce_precision": m_ce.precision,
                "ce_recall": m_ce.recall,
                "uni_precision": m_full.precision,
                "uni_recall": m_full.recall,
            }
        )
    return rows


# ----------------------------------------------------------------------
# Exp-4: impact of dup% and asr% on deterministic fixes (Fig. 13)
# ----------------------------------------------------------------------
def exp4_deterministic_fixes(
    dataset: str = "hosp",
    duplicate_rates: Sequence[float] = (0.2, 0.4, 0.6, 0.8, 1.0),
    asserted_rates: Sequence[float] = (0.0, 0.2, 0.4, 0.6, 0.8),
    size: int = 300,
    master_size: int = 150,
    noise_rate: float = 0.06,
    seed: int = 7,
) -> Dict[str, List[Dict[str, Any]]]:
    """Percentage of errors receiving a deterministic fix.

    Returns two sweeps: ``"by_dup"`` (asr fixed at 40%) and ``"by_asr"``
    (dup fixed at 40%), as in Figs. 13(a) and 13(b).
    """

    def det_percentage(ds: DirtyDataset) -> float:
        result = run_uniclean(
            ds,
            UniCleanConfig(eta=1.0, run_erepair=False, run_hrepair=False),
        )
        det_cells = result.fix_log.marked_cells(FixKind.DETERMINISTIC)
        if not ds.errors:
            return 0.0
        return 100.0 * len(det_cells & ds.errors) / len(ds.errors)

    by_dup: List[Dict[str, Any]] = []
    for dup in duplicate_rates:
        ds = generate(
            dataset,
            size=size,
            master_size=master_size,
            noise_rate=noise_rate,
            duplicate_rate=dup,
            asserted_rate=0.4,
            seed=seed,
        )
        by_dup.append(
            {"dataset": dataset, "duplicate_rate": dup, "det_pct": det_percentage(ds)}
        )
    by_asr: List[Dict[str, Any]] = []
    for asr in asserted_rates:
        ds = generate(
            dataset,
            size=size,
            master_size=master_size,
            noise_rate=noise_rate,
            duplicate_rate=0.4,
            asserted_rate=asr,
            seed=seed,
        )
        by_asr.append(
            {"dataset": dataset, "asserted_rate": asr, "det_pct": det_percentage(ds)}
        )
    return {"by_dup": by_dup, "by_asr": by_asr}


# ----------------------------------------------------------------------
# Exp-5: scalability (Fig. 14)
# ----------------------------------------------------------------------
def exp5_scalability(
    dataset: str = "hosp",
    vary: str = "D",
    values: Sequence[int] = (100, 200, 300, 400, 500),
    size: int = 300,
    master_size: int = 150,
    noise_rate: float = 0.06,
    duplicate_rate: float = 0.4,
    asserted_rate: float = 0.4,
    seed: int = 7,
    use_suffix_tree: bool = True,
    match_engine: Optional[str] = None,
) -> List[Dict[str, Any]]:
    """Phase runtimes while varying |D|, |Dm|, |Σ| or |Γ|.

    ``vary`` is one of ``"D"``, ``"Dm"``, ``"Sigma"``, ``"Gamma"``
    (Figs. 14a–h); |Σ|/|Γ| sweeps use the TPC-H generator's rule subsets.
    """
    rows: List[Dict[str, Any]] = []
    for value in values:
        params: Dict[str, Any] = dict(
            size=size,
            master_size=master_size,
            noise_rate=noise_rate,
            duplicate_rate=duplicate_rate,
            asserted_rate=asserted_rate,
            seed=seed,
        )
        if vary == "D":
            params["size"] = value
        elif vary == "Dm":
            params["master_size"] = value
        elif vary == "Sigma":
            if dataset != "tpch":
                raise ValueError("|Sigma| sweeps use the tpch dataset")
            params["n_cfds"] = value
        elif vary == "Gamma":
            if dataset != "tpch":
                raise ValueError("|Gamma| sweeps use the tpch dataset")
            params["n_mds"] = value
        else:
            raise ValueError(f"vary must be D, Dm, Sigma or Gamma, got {vary!r}")
        ds = generate(dataset, **params)
        config = UniCleanConfig(
            eta=1.0, use_suffix_tree=use_suffix_tree, match_engine=match_engine
        )
        result = run_uniclean(ds, config)
        rows.append(
            {
                "dataset": dataset,
                "vary": vary,
                "value": value,
                "crepair_s": result.timings.get("crepair", 0.0),
                "ce_s": result.timings.get("crepair", 0.0)
                + result.timings.get("erepair", 0.0),
                "total_s": result.total_time,
            }
        )
    return rows


# ----------------------------------------------------------------------
# Reporting
# ----------------------------------------------------------------------
def format_table(rows: Sequence[Dict[str, Any]], title: str = "") -> str:
    """Render experiment rows as an aligned text table."""
    if not rows:
        return f"{title}\n(no rows)"
    columns = list(rows[0].keys())

    def fmt(value: Any) -> str:
        if isinstance(value, float):
            return f"{value:.3f}"
        return str(value)

    table = [[fmt(row.get(col, "")) for col in columns] for row in rows]
    widths = [
        max(len(columns[i]), *(len(r[i]) for r in table)) for i in range(len(columns))
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(c.ljust(w) for c, w in zip(columns, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for r in table:
        lines.append("  ".join(c.ljust(w) for c, w in zip(r, widths)))
    return "\n".join(lines)
