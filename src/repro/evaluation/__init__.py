"""Evaluation: Section 8 metrics and the experiment harness."""

from repro.evaluation.experiment import (
    GENERATORS,
    exp1_matching_helps_repairing,
    exp2_repairing_helps_matching,
    exp3_fix_accuracy,
    exp4_deterministic_fixes,
    exp5_scalability,
    format_table,
    generate,
    run_uniclean,
)
from repro.evaluation.metrics import Metrics, f_measure, matching_metrics, repair_metrics

__all__ = [
    "GENERATORS",
    "Metrics",
    "exp1_matching_helps_repairing",
    "exp2_repairing_helps_matching",
    "exp3_fix_accuracy",
    "exp4_deterministic_fixes",
    "exp5_scalability",
    "f_measure",
    "format_table",
    "generate",
    "matching_metrics",
    "repair_metrics",
    "run_uniclean",
]
