"""Precision / recall / F-measure, exactly as defined in Section 8.

Repairing: "precision is the ratio of attributes correctly updated to the
number of all the attributes updated, and recall is the ratio of
attributes corrected to the number of all erroneous attributes."

Matching: "precision is the ratio of true matches (true positives)
correctly found by an algorithm to all the duplicates found, and recall
is the ratio of true matches correctly found to all the matches between a
dataset and master data."

``F-measure = 2 · (precision · recall) / (precision + recall)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional, Set, Tuple

from repro.exceptions import DataError
from repro.relational.relation import Relation

Cell = Tuple[int, str]


def f_measure(precision: float, recall: float) -> float:
    """Harmonic mean of precision and recall (0 when both are 0)."""
    if precision + recall == 0.0:
        return 0.0
    return 2.0 * precision * recall / (precision + recall)


@dataclass(frozen=True)
class Metrics:
    """A precision/recall/F triple with the underlying counts."""

    precision: float
    recall: float
    f1: float
    true_positives: int
    found: int
    relevant: int

    @staticmethod
    def from_counts(true_positives: int, found: int, relevant: int) -> "Metrics":
        """Build metrics from raw counts.

        Conventions for degenerate denominators: precision is 1 when
        nothing was found (no wrong output was produced) and recall is 1
        when nothing was relevant (nothing was missed).
        """
        precision = true_positives / found if found else 1.0
        recall = true_positives / relevant if relevant else 1.0
        return Metrics(
            precision=precision,
            recall=recall,
            f1=f_measure(precision, recall),
            true_positives=true_positives,
            found=found,
            relevant=relevant,
        )

    def __str__(self) -> str:  # pragma: no cover - formatting
        return (
            f"P={self.precision:.3f} R={self.recall:.3f} F={self.f1:.3f} "
            f"({self.true_positives}/{self.found} found, {self.relevant} relevant)"
        )


def repair_metrics(
    dirty: Relation,
    repaired: Relation,
    clean: Relation,
    cells: Optional[Set[Cell]] = None,
) -> Metrics:
    """Cell-level repair quality against ground truth.

    Parameters
    ----------
    dirty:
        The relation before cleaning.
    repaired:
        The relation after cleaning (same tids).
    clean:
        Ground truth.
    cells:
        Optional restriction: only updates to these cells count as
        *found* (used to score a single phase's fixes, Exp-3).

    Notes
    -----
    * *found* = cells where ``repaired ≠ dirty`` (restricted to *cells*);
    * *true positive* = found cell with ``repaired = clean``;
    * *relevant* = cells where ``dirty ≠ clean`` (all erroneous cells —
      the recall denominator is global even when *cells* is restricted,
      matching how Exp-3 reports phase recall).
    """
    for relation in (repaired, clean):
        if set(relation.tids()) != set(dirty.tids()):
            raise DataError("relations must share tuple identifiers")
    updated = 0
    correct_updates = 0
    erroneous = 0
    for tid in dirty.tids():
        d = dirty.by_tid(tid)
        r = repaired.by_tid(tid)
        g = clean.by_tid(tid)
        for attr in dirty.schema.names:
            was_wrong = d[attr] != g[attr]
            if was_wrong:
                erroneous += 1
            changed = r[attr] != d[attr]
            if not changed:
                continue
            if cells is not None and (tid, attr) not in cells:
                continue
            updated += 1
            if r[attr] == g[attr]:
                correct_updates += 1
    return Metrics.from_counts(correct_updates, updated, erroneous)


def matching_metrics(
    found_pairs: Iterable[Tuple[int, int]],
    true_pairs: Set[Tuple[int, int]],
) -> Metrics:
    """Match quality: found ``(tid, master_tid)`` pairs vs ground truth."""
    found = set(found_pairs)
    true_positives = len(found & true_pairs)
    return Metrics.from_counts(true_positives, len(found), len(true_pairs))
