"""repro — a from-scratch reproduction of UniClean.

UniClean (Fan, Ma, Tang, Yu: *Interaction between Record Matching and Data
Repairing*, SIGMOD 2011 / JDIQ 2014) cleans a dirty relation ``D`` against
master data ``Dm`` by treating conditional functional dependencies (CFDs)
and matching dependencies (MDs) uniformly as *cleaning rules* and
interleaving repairing with matching.  Fixes come in three accuracy
classes: deterministic (confidence-based), reliable (entropy-based) and
possible (heuristic).

Public surface
--------------
The most commonly used names are re-exported here; subpackages provide the
full API (``repro.relational``, ``repro.constraints``, ``repro.core``,
``repro.matching``, ``repro.datasets``, ``repro.evaluation``, ...).
"""

from repro.relational import NULL, Attribute, CTuple, Domain, Relation, Schema
from repro.constraints import (
    CFD,
    MD,
    MDClause,
    NegativeMD,
    WILDCARD,
    derive_rules,
    embed_negative,
    parse_rules,
)

__version__ = "1.0.0"

__all__ = [
    "Attribute",
    "CFD",
    "CTuple",
    "Domain",
    "MD",
    "MDClause",
    "NULL",
    "NegativeMD",
    "Relation",
    "Schema",
    "WILDCARD",
    "derive_rules",
    "embed_negative",
    "parse_rules",
    "__version__",
]

# Cleaning pipeline exports are appended once repro.core exists; guarded so
# partially built trees (during development) still import.
try:  # pragma: no cover - trivial re-export
    from repro.core import CleaningResult, UniClean, UniCleanConfig  # noqa: F401

    __all__ += ["UniClean", "UniCleanConfig", "CleaningResult"]
except ImportError:
    pass

try:  # pragma: no cover - trivial re-export
    from repro.pipeline import (  # noqa: F401
        ApplyResult,
        Changeset,
        CleaningSession,
        ShardedCleaningSession,
        ShardPlanner,
    )

    __all__ += [
        "ApplyResult",
        "Changeset",
        "CleaningSession",
        "ShardPlanner",
        "ShardedCleaningSession",
    ]
except ImportError:
    pass
