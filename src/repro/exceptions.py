"""Exception hierarchy for the ``repro`` package.

All library errors derive from :class:`ReproError` so callers can catch a
single base class.  Subclasses partition errors by subsystem: schema/data
errors, constraint-definition errors, rule-parsing errors and cleaning-time
errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the ``repro`` library."""


class SchemaError(ReproError):
    """A schema is malformed or an attribute reference does not resolve."""


class DataError(ReproError):
    """A tuple or relation violates basic structural expectations."""


class ConstraintError(ReproError):
    """A CFD or MD definition is malformed."""


class ParseError(ConstraintError):
    """The textual syntax of a CFD/MD could not be parsed."""


class InconsistentRulesError(ConstraintError):
    """A rule set ``Sigma ∪ Gamma`` was proven inconsistent.

    The paper (Section 4.1) requires cleaning to start from a consistent rule
    set; :func:`repro.analysis.consistency.is_consistent` raises this when
    asked to *assert* consistency.
    """


class CleaningError(ReproError):
    """An error occurred while executing a cleaning algorithm."""


class SnapshotError(ReproError):
    """A session snapshot could not be written or restored."""


class SnapshotCorrupt(SnapshotError):
    """A snapshot failed structural validation (magic, version byte,
    framing, or a checksum) and was refused.

    :mod:`repro.pipeline.snapshot` raises this instead of ever loading
    silently-wrong state: every section carries a SHA-256 digest and the
    whole file a trailing one, so a truncated or bit-flipped snapshot is
    detected before any of its payload is decoded.
    """


class ServiceError(ReproError):
    """An error surfaced by the online cleaning service
    (:mod:`repro.pipeline.service`)."""


class ServiceOverloaded(ServiceError):
    """A write was refused because the tenant's request queue is at its
    high-water mark and the caller declined to block (``block=False``)
    or its blocking timeout expired.

    This is the service's bounded-backpressure contract: a queue never
    grows without bound — producers are throttled at submission time
    instead of the consumer drowning.
    """


class ServiceClosed(ServiceError):
    """A write was submitted to a service that is closing or closed.

    ``CleaningService.close(drain=True)`` refuses new writes while the
    buffered tail drains; ``drain=False`` additionally fails every
    pending ticket with this error.
    """


class UnknownTenant(ServiceError):
    """A request named a tenant the :class:`SessionRegistry` does not
    hold."""


class NonTerminationError(CleaningError):
    """A bounded cleaning process exceeded its step budget.

    Rule-based repairing may not terminate in general (Example 4.6 in the
    paper; Theorem 4.7 shows termination is PSPACE-complete), so the bounded
    explorers raise this instead of looping forever.
    """


class WorkerFailure(CleaningError):
    """A worker process died (e.g. ``BrokenProcessPool``) and the failure
    could not be recovered within the session's supervision policy.

    Dispatch supervision (:mod:`repro.pipeline.supervision`) normally
    absorbs a dead slot by respawning its executor and re-dispatching the
    in-flight shard; this surfaces only when retries are disabled or
    exhausted without a serial fallback.
    """


class ShardTimeout(WorkerFailure):
    """A shard dispatch exceeded the supervision policy's per-dispatch
    ``timeout`` and the hung worker could not be recovered.

    The hung worker process is killed before this is raised, so a caller
    never blocks forever on ``future.result()``.
    """


class RetriesExhausted(WorkerFailure):
    """Bounded dispatch retries were exhausted and the supervision policy
    forbids the in-process serial fallback.

    ``__cause__`` carries the last underlying failure (a timeout, a dead
    pool, or a torn frame).
    """


class TornFrame(ReproError):
    """A CRC-framed coordinator↔worker message failed validation (magic,
    length or CRC32) and was refused before decoding.

    Dispatch supervision treats a torn frame as a transient transport
    fault: a torn *request* (detected worker-side, before execution) is
    simply re-sent; a torn *response* (detected coordinator-side, after
    the worker executed) triggers the full slot-recovery path so the
    retried call is exactly-once.
    """
