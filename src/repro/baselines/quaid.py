"""``quaid`` — the CFD-only heuristic repairing baseline (Exp-1).

The paper compares UniClean against "the heuristic repairing algorithm of
[Cong et al. 2007], denoted by quaid, based on CFDs only".  quaid is the
equivalence-class heuristic *without* master data, MDs, confidence-based
deterministic fixes or entropy-based reliable fixes — exactly the
machinery our :func:`repro.core.hrepair.hrepair` extends, so the baseline
is hRepair restricted to Σ with no protected cells.

The ``Uni(CFD)`` variant of Exp-1 — UniClean with repairing only — is a
:class:`~repro.core.uniclean.UniClean` instance with ``Γ = ∅`` and is
provided here as a convenience constructor.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.constraints.cfd import CFD
from repro.core.fixes import FixLog
from repro.core.hrepair import HRepairResult, hrepair
from repro.core.uniclean import UniClean, UniCleanConfig
from repro.relational.relation import Relation


@dataclass
class QuaidResult:
    """Outcome of a quaid run (a thin wrapper over hRepair's result)."""

    repaired: Relation
    fix_log: FixLog
    possible_fixes: int


def quaid(
    relation: Relation,
    cfds: Sequence[CFD],
    max_rounds: int = 100,
) -> QuaidResult:
    """Repair *relation* with CFDs only, heuristically (Cong et al. 2007).

    All fixes are heuristic ("possible") — this is the weakest of the
    compared systems in Exp-1, which is the paper's point: quaid "only
    generates possible fixes with heuristic, while Uni(CFD) finds both
    deterministic fixes and reliable fixes".
    """
    result: HRepairResult = hrepair(
        relation,
        cfds=cfds,
        mds=(),
        master=None,
        protected=set(),
        max_rounds=max_rounds,
    )
    return QuaidResult(
        repaired=result.relation,
        fix_log=result.fix_log,
        possible_fixes=result.possible_fixes,
    )


def uni_cfd(
    cfds: Sequence[CFD],
    config: Optional[UniCleanConfig] = None,
) -> UniClean:
    """``Uni(CFD)``: the full tri-level pipeline restricted to CFDs.

    Uses confidence, entropy and heuristics but no master data/MDs — the
    middle system of Exp-1.
    """
    return UniClean(cfds=cfds, mds=(), negative_mds=(), master=None, config=config)
