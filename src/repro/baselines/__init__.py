"""Baselines compared against UniClean in the paper's evaluation."""

from repro.baselines.quaid import QuaidResult, quaid, uni_cfd

__all__ = ["QuaidResult", "quaid", "uni_cfd"]
