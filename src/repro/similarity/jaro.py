"""Jaro and Jaro–Winkler similarities.

The paper lists "Jaro distance" among the similarity predicates Υ that MDs
may use (Section 2.2).  These are the standard definitions used throughout
the record-linkage literature (Herzog et al. 2009).
"""

from __future__ import annotations


def jaro_similarity(a: str, b: str) -> float:
    """Jaro similarity in ``[0, 1]``.

    Characters match when equal and within ``max(|a|,|b|)//2 - 1`` positions
    of each other; the score combines the match count and transposition
    count in the usual three-term average.

    Examples
    --------
    >>> round(jaro_similarity("MARTHA", "MARHTA"), 4)
    0.9444
    >>> jaro_similarity("", "")
    1.0
    >>> jaro_similarity("abc", "")
    0.0
    """
    if a == b:
        return 1.0
    la, lb = len(a), len(b)
    if la == 0 or lb == 0:
        return 0.0
    window = max(la, lb) // 2 - 1
    if window < 0:
        window = 0
    a_matched = [False] * la
    b_matched = [False] * lb
    matches = 0
    for i, ch in enumerate(a):
        lo = max(0, i - window)
        hi = min(lb, i + window + 1)
        for j in range(lo, hi):
            if not b_matched[j] and b[j] == ch:
                a_matched[i] = True
                b_matched[j] = True
                matches += 1
                break
    if matches == 0:
        return 0.0
    transpositions = 0
    j = 0
    for i in range(la):
        if a_matched[i]:
            while not b_matched[j]:
                j += 1
            if a[i] != b[j]:
                transpositions += 1
            j += 1
    transpositions //= 2
    m = float(matches)
    return (m / la + m / lb + (m - transpositions) / m) / 3.0


def jaro_winkler_similarity(a: str, b: str, prefix_scale: float = 0.1) -> float:
    """Jaro–Winkler similarity: Jaro boosted by a common-prefix bonus.

    Parameters
    ----------
    a, b:
        The strings to compare.
    prefix_scale:
        Winkler's ``p`` parameter, conventionally 0.1 and capped so the
        result stays in ``[0, 1]`` (prefix length is capped at 4).
    """
    if not 0.0 <= prefix_scale <= 0.25:
        raise ValueError("prefix_scale must be in [0, 0.25] to keep results in [0, 1]")
    jaro = jaro_similarity(a, b)
    prefix = 0
    for x, y in zip(a[:4], b[:4]):
        if x != y:
            break
        prefix += 1
    return jaro + prefix * prefix_scale * (1.0 - jaro)
