"""Similarity predicates — the set Υ used in matching dependencies.

An MD premise conjunct has the form ``R[A] ≈j Rm[B]`` where ``≈j`` is drawn
from a set Υ of similarity predicates "e.g., q-grams, Jaro distance or edit
distance" (Section 2.2).  Equality ``=`` is itself a (degenerate) member of
Υ, and the paper's confidence-propagation rule treats it specially: the
derived confidence minimum ranges over premise attributes whose predicate
*is* equality (Section 3.1).

A :class:`SimilarityPredicate` wraps a boolean test over two values plus
metadata: a name, whether it is exact equality, and an optional *distance
budget* ``k`` that blocking indexes can exploit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional

from repro.exceptions import ConstraintError
from repro.relational.attribute import is_null
from repro.similarity.jaro import jaro_winkler_similarity
from repro.similarity.levenshtein import edit_similarity, within_edit_distance
from repro.similarity.qgrams import qgram_similarity


@dataclass(frozen=True)
class SimilarityPredicate:
    """A named boolean similarity test ``≈`` over attribute values.

    Parameters
    ----------
    name:
        Registry name, e.g. ``"eq"`` or ``"edit<=2"``.
    test:
        Callable of two values returning truthiness.  ``NULL`` on either
        side always fails (CFD/MD matching does not apply to nulls,
        Section 7).
    is_equality:
        True only for exact equality — drives confidence propagation.
    edit_budget:
        When the predicate is (at least as strict as) "edit distance ≤ k",
        the value of k; lets the suffix-tree blocking prune candidates.
        ``None`` when no such bound applies.
    qgram_q:
        For q-gram Jaccard predicates, the gram length; ``None`` otherwise.
    qgram_threshold:
        For q-gram Jaccard predicates, the similarity threshold; ``None``
        otherwise.  Together with ``qgram_q`` this lets the similarity-join
        engine derive exact prefix/size/overlap filter bounds.
    """

    name: str
    test: Callable[[Any, Any], bool] = field(compare=False)
    is_equality: bool = False
    edit_budget: Optional[int] = None
    qgram_q: Optional[int] = None
    qgram_threshold: Optional[float] = None

    def __call__(self, left: Any, right: Any) -> bool:
        if is_null(left) or is_null(right):
            return False
        return bool(self.test(left, right))

    def __reduce__(self):
        """Pickle by *name*: the test callable is usually a lambda, but
        every built-in and parametric predicate (``eq``, ``edit<=K``,
        ``jw>=T``, ...) can be reconstructed from its registry name.
        Process-pool sharding relies on this to ship MDs to workers.
        Custom predicates must be registered in :data:`DEFAULT_REGISTRY`
        under a parseable/registered name to cross process boundaries.
        """
        return (_predicate_by_name, (self.name,))

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"SimilarityPredicate({self.name!r})"


def _as_str(value: Any) -> str:
    return value if isinstance(value, str) else str(value)


#: Exact equality — the ``=`` member of Υ.
EQ = SimilarityPredicate("eq", lambda a, b: a == b, is_equality=True, edit_budget=0)

#: Case/whitespace-insensitive equality, a common normalization predicate.
EQ_NORMALIZED = SimilarityPredicate(
    "eq_normalized",
    lambda a, b: _as_str(a).strip().lower() == _as_str(b).strip().lower(),
)


def edit_within(k: int) -> SimilarityPredicate:
    """Predicate "edit distance ≤ k" (with early-exit banded DP)."""
    if k < 0:
        raise ConstraintError(f"edit distance bound must be >= 0, got {k}")
    return SimilarityPredicate(
        f"edit<={k}",
        lambda a, b: within_edit_distance(_as_str(a), _as_str(b), k),
        edit_budget=k,
    )


def edit_sim_at_least(threshold: float) -> SimilarityPredicate:
    """Predicate "normalized edit similarity ≥ threshold"."""
    if not 0.0 <= threshold <= 1.0:
        raise ConstraintError(f"threshold must be in [0, 1], got {threshold}")
    return SimilarityPredicate(
        f"editsim>={threshold:g}",
        lambda a, b: edit_similarity(_as_str(a), _as_str(b)) >= threshold,
    )


def jaro_winkler_at_least(threshold: float) -> SimilarityPredicate:
    """Predicate "Jaro–Winkler similarity ≥ threshold"."""
    if not 0.0 <= threshold <= 1.0:
        raise ConstraintError(f"threshold must be in [0, 1], got {threshold}")
    return SimilarityPredicate(
        f"jw>={threshold:g}",
        lambda a, b: jaro_winkler_similarity(_as_str(a), _as_str(b)) >= threshold,
    )


def qgram_jaccard_at_least(threshold: float, q: int = 2) -> SimilarityPredicate:
    """Predicate "q-gram Jaccard similarity ≥ threshold"."""
    if not 0.0 <= threshold <= 1.0:
        raise ConstraintError(f"threshold must be in [0, 1], got {threshold}")
    return SimilarityPredicate(
        f"qgram{q}>={threshold:g}",
        lambda a, b: qgram_similarity(_as_str(a), _as_str(b), q=q) >= threshold,
        qgram_q=q,
        qgram_threshold=threshold,
    )


class PredicateRegistry:
    """A named registry of similarity predicates (the set Υ).

    The textual rule parser resolves predicate names through a registry, so
    rule files can reference ``~edit<=2`` etc.  A default registry with the
    common predicates is available as :data:`DEFAULT_REGISTRY`.
    """

    def __init__(self) -> None:
        self._predicates: Dict[str, SimilarityPredicate] = {}

    def register(self, predicate: SimilarityPredicate) -> SimilarityPredicate:
        """Add *predicate* under its name; returns it for chaining."""
        self._predicates[predicate.name] = predicate
        return predicate

    def get(self, name: str) -> SimilarityPredicate:
        """Look up a predicate; parses parametric names on demand.

        Supported parametric forms: ``edit<=K``, ``editsim>=T``, ``jw>=T``
        and ``qgramQ>=T``.
        """
        if name in self._predicates:
            return self._predicates[name]
        parsed = self._parse_parametric(name)
        if parsed is not None:
            return self.register(parsed)
        raise ConstraintError(f"unknown similarity predicate {name!r}")

    @staticmethod
    def _parse_parametric(name: str) -> Optional[SimilarityPredicate]:
        try:
            if name.startswith("edit<="):
                return edit_within(int(name[len("edit<=") :]))
            if name.startswith("editsim>="):
                return edit_sim_at_least(float(name[len("editsim>=") :]))
            if name.startswith("jw>="):
                return jaro_winkler_at_least(float(name[len("jw>=") :]))
            if name.startswith("qgram"):
                rest = name[len("qgram") :]
                if ">=" in rest:
                    q_text, threshold_text = rest.split(">=", 1)
                    return qgram_jaccard_at_least(float(threshold_text), q=int(q_text))
        except (ValueError, ConstraintError):
            return None
        return None

    def names(self) -> tuple:
        """Registered predicate names."""
        return tuple(self._predicates)


#: Registry pre-populated with equality and normalized equality.
DEFAULT_REGISTRY = PredicateRegistry()
DEFAULT_REGISTRY.register(EQ)
DEFAULT_REGISTRY.register(EQ_NORMALIZED)


def _predicate_by_name(name: str) -> SimilarityPredicate:
    """Unpickling hook: resolve a predicate through the default registry
    (parametric names like ``edit<=2`` are parsed on demand)."""
    return DEFAULT_REGISTRY.get(name)


@dataclass(frozen=True)
class JoinFilterSpec:
    """Filter parameters the similarity-join engine derives from a predicate.

    ``kind`` selects the bound family:

    * ``"edit"`` — the predicate guarantees ``edit_distance <= k``; the
      engine uses the q-gram count bound (shared grams >=
      ``max(|G_u|, |G_v|) - k*q``), a ±k length window and a ``k*q + 1``
      token prefix.
    * ``"jaccard"`` — the predicate is q-gram Jaccard >= t; the engine
      uses the ``t/(1+t)`` overlap bound, the ``[t*a, a/t]`` size window
      and the matching prefix lengths, and can even *verify* from the
      indexed gram sets without re-tokenizing.

    Every bound is a necessary condition for the predicate to hold, so the
    filter pipeline is lossless; survivors are confirmed with the exact
    predicate (or exact gram-set arithmetic), keeping match sets
    byte-identical to a full scan.
    """

    kind: str
    q: int
    edit_budget: Optional[int] = None
    threshold: Optional[float] = None


#: Gram length used for edit-bound filtering (the Jaccard family carries
#: its own q in the predicate).
EDIT_FILTER_Q = 2


def join_filter_for(predicate: SimilarityPredicate) -> Optional[JoinFilterSpec]:
    """The :class:`JoinFilterSpec` for *predicate*, or ``None``.

    ``None`` means the similarity-join engine has no usable bound family
    for this predicate (e.g. Jaro–Winkler) and must fall back to a full
    scan — still exact, just unfiltered.  Equality predicates return
    ``None`` too: they are served by the hash-based :class:`ExactIndex`.
    """
    if predicate.is_equality:
        return None
    if predicate.qgram_q is not None and predicate.qgram_threshold is not None:
        if predicate.qgram_threshold <= 0.0:
            return None  # J >= 0 admits everything; no filter possible
        return JoinFilterSpec(
            kind="jaccard", q=predicate.qgram_q, threshold=predicate.qgram_threshold
        )
    if predicate.edit_budget is not None:
        return JoinFilterSpec(kind="edit", q=EDIT_FILTER_Q, edit_budget=predicate.edit_budget)
    return None
